//! Property tests for the telemetry name interner.
//!
//! The interner backs [`opml_telemetry::Sym`], the `Copy` handle that
//! replaced per-event name `String`s on the emit hot path. Its
//! contract has two halves. The *resolution* half — every symbol
//! resolves back to exactly the string it was interned from, and equal
//! strings yield equal symbols — is what keeps trace bytes unchanged.
//! The *assignment* half — symbol ids are process-global, assigned
//! once, and never depend on which thread won the race to intern a
//! name first — is what keeps exported bytes identical at any rayon
//! pool size: ids never appear in any serialized output, so as long as
//! resolution is stable, the export is automatically thread-invariant.
//! These properties pin both halves on arbitrary name multisets, in
//! the same shape as the shard-merge laws in
//! `crates/metering/tests/shard_merge.rs`.

use std::sync::atomic::{AtomicU64, Ordering};

use opml_simkernel::SimTime;
use opml_telemetry::event::EventPhase;
use opml_telemetry::export::export_jsonl;
use opml_telemetry::intern::{intern, interned_count};
use opml_telemetry::{Sym, TelemetryEvent};
use proptest::prelude::*;

/// Tests in this binary share the process-global intern table, so
/// names are uniquified per case; ids can never be predicted, only
/// required to be consistent.
static CASE: AtomicU64 = AtomicU64::new(0);

fn uniquify(names: &[String]) -> Vec<String> {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    names.iter().map(|n| format!("{n}.c{case}")).collect()
}

fn event(seq: u64, name: Sym) -> TelemetryEvent {
    TelemetryEvent {
        seq,
        time: SimTime(seq),
        phase: EventPhase::Instant,
        name,
        attrs: Vec::new(),
    }
}

proptest! {
    /// Resolution round-trip: interning any string hands back a symbol
    /// that dereferences to those exact bytes, and re-interning the
    /// same string yields the same id.
    #[test]
    fn intern_resolve_round_trips(names in prop::collection::vec("[a-z.]{1,16}", 1..40)) {
        for name in &names {
            let sym = intern(name);
            prop_assert_eq!(sym.as_str(), name.as_str());
            prop_assert_eq!(intern(name).id(), sym.id());
            // Content equality is independent of interning history.
            prop_assert!(sym == name.as_str());
        }
    }

    /// Id stability under arbitrary interleavings: however a multiset
    /// of names is ordered, each distinct name maps to one id, equal
    /// names always collide, and distinct names never do.
    #[test]
    fn ids_are_stable_under_interleavings(
        names in prop::collection::vec("[a-z]{1,8}", 1..24),
        picks in prop::collection::vec(0usize..24, 1..96),
    ) {
        let names = uniquify(&names);
        // First pass fixes the assignment in one (arbitrary) order.
        let first: Vec<(String, u32)> =
            names.iter().map(|n| (n.clone(), intern(n).id())).collect();
        // Replaying in any other order must reproduce it exactly.
        for &p in &picks {
            let name = &names[p % names.len()];
            let sym = intern(name);
            let expected = first.iter().find(|(n, _)| n == name);
            prop_assert_eq!(expected.map(|(_, id)| *id), Some(sym.id()));
            prop_assert_eq!(sym.as_str(), name.as_str());
        }
        for (i, (na, ia)) in first.iter().enumerate() {
            for (nb, ib) in first.iter().skip(i + 1) {
                prop_assert_eq!(na == nb, ia == ib);
            }
        }
    }

    /// Thread-invariance: eight threads race to intern a fresh
    /// vocabulary; every thread must observe the identical name→id
    /// mapping, and a trace exported from symbols interned on any
    /// thread is byte-identical to one interned serially — symbol ids
    /// never reach the wire, so first-interner races cannot show.
    #[test]
    fn export_bytes_identical_across_interning_threads(
        names in prop::collection::vec("[a-z]{2,10}", 1..16),
    ) {
        let names = uniquify(&names);
        let maps: Vec<Vec<(String, u32)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|t| {
                    let names = &names;
                    s.spawn(move || {
                        // Each thread walks the vocabulary from a
                        // different starting point so no single thread
                        // deterministically wins every first-intern.
                        (0..names.len())
                            .map(|i| {
                                let n = &names[(i + t) % names.len()];
                                (n.clone(), intern(n).id())
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("interner thread")).collect()
        });
        let reference: &Vec<(String, u32)> = &maps[0];
        for map in &maps[1..] {
            let mut sorted_a = reference.clone();
            let mut sorted_b = map.clone();
            sorted_a.sort();
            sorted_b.sort();
            prop_assert_eq!(&sorted_a, &sorted_b, "threads disagree on symbol ids");
        }
        // Serial re-intern and concurrent symbols export identically.
        let concurrent: Vec<TelemetryEvent> = (0..names.len() as u64)
            .map(|i| event(i, intern(&names[i as usize])))
            .collect();
        let serial: Vec<TelemetryEvent> = (0..names.len() as u64)
            .map(|i| event(i, Sym::new(&names[i as usize])))
            .collect();
        prop_assert_eq!(export_jsonl(&concurrent), export_jsonl(&serial));
    }

    /// Interning is idempotent on the table: re-interning an existing
    /// vocabulary never grows `interned_count` (the probe the
    /// differential alloc tests rely on).
    #[test]
    fn reinterning_does_not_grow_the_table(
        names in prop::collection::vec("[a-z]{1,8}", 1..24),
    ) {
        let names = uniquify(&names);
        for n in &names {
            let _ = intern(n);
        }
        let settled = interned_count();
        for n in names.iter().rev() {
            let _ = intern(n);
        }
        prop_assert_eq!(interned_count(), settled);
    }
}
