//! Telemetry sinks: where emitted events go.
//!
//! The sink is behind a trait object so the instrumented crates never
//! know (or care) whether events are recorded, narrated, or dropped.
//! [`MemorySink`] is the recording sink used by the exporters and the
//! golden-trace tests; [`StderrNarrationSink`] renders only narration
//! events, replacing the ad-hoc `eprintln!` progress lines the
//! experiments runner used to have; [`FanoutSink`] composes several.

use crate::event::{TelemetryEvent, NARRATE};
use parking_lot::Mutex;
use std::sync::Arc;

/// Receives every event emitted through an enabled [`crate::Telemetry`]
/// handle, in sequence order.
pub trait TelemetrySink: Send + Sync {
    /// Record one event. Called synchronously from the emitting thread;
    /// implementations must not reorder events.
    fn record(&self, event: &TelemetryEvent);

    /// Record one event, taking ownership. Recording sinks override
    /// this to move the event into their buffer instead of cloning it —
    /// the emit hot path always calls this form.
    fn record_owned(&self, event: TelemetryEvent) {
        self.record(&event);
    }

    /// Record a batch of events in order, taking ownership. Recording
    /// sinks override this with a bulk append; the default forwards to
    /// [`TelemetrySink::record_owned`] per event.
    fn record_batch(&self, events: Vec<TelemetryEvent>) {
        for event in events {
            self.record_owned(event);
        }
    }
}

/// Drops every event. Useful to run the metrics registry without
/// recording a trace (`run-experiments --metrics`).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn record(&self, _event: &TelemetryEvent) {}
}

/// Records every event in memory, in emission order.
///
/// Cloning shares the buffer, so keep a clone before handing the sink to
/// [`crate::Telemetry::with_sink`] and read the events back afterwards.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<TelemetryEvent>>>,
}

impl MemorySink {
    /// Empty recording sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty recording sink whose buffer is pre-sized for `capacity`
    /// events (capacity hint for hot loops with a known event volume).
    pub fn with_capacity(capacity: usize) -> Self {
        MemorySink {
            events: Arc::new(Mutex::new(Vec::with_capacity(capacity))),
        }
    }

    /// Snapshot of the recorded events (clone; the buffer keeps
    /// recording).
    pub fn events(&self) -> Vec<TelemetryEvent> {
        self.events.lock().clone()
    }

    /// Drain the recorded events without cloning, leaving the sink
    /// empty. The shard merge uses this to move each shard's buffer
    /// into the restamp pass allocation-free.
    pub fn take_events(&self) -> Vec<TelemetryEvent> {
        std::mem::take(&mut *self.events.lock())
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl TelemetrySink for MemorySink {
    fn record(&self, event: &TelemetryEvent) {
        self.events.lock().push(event.clone());
    }

    fn record_owned(&self, event: TelemetryEvent) {
        self.events.lock().push(event);
    }

    fn record_batch(&self, events: Vec<TelemetryEvent>) {
        let mut buf = self.events.lock();
        if buf.is_empty() {
            // Common shard-merge shape: the parent buffer adopts the
            // first batch wholesale instead of copying element-wise.
            *buf = events;
        } else {
            buf.extend(events);
        }
    }
}

/// Prints narration events (name == [`NARRATE`]) to stderr and ignores
/// everything else. This is the uniform replacement for scattered
/// `eprintln!` progress lines: `--quiet` swaps the whole handle for
/// [`crate::Telemetry::disabled`] and every narration line vanishes.
#[derive(Debug, Clone, Copy, Default)]
pub struct StderrNarrationSink;

impl TelemetrySink for StderrNarrationSink {
    fn record(&self, event: &TelemetryEvent) {
        if event.name == NARRATE {
            if let Some(msg) = event.attr("message").and_then(crate::AttrValue::as_str) {
                eprintln!("{msg}");
            }
        }
    }
}

/// Sends every event to each inner sink, in registration order.
#[derive(Default)]
pub struct FanoutSink {
    sinks: Vec<Box<dyn TelemetrySink>>,
}

impl std::fmt::Debug for FanoutSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FanoutSink({} sinks)", self.sinks.len())
    }
}

impl FanoutSink {
    /// Empty fan-out.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a sink (builder style).
    pub fn with(mut self, sink: impl TelemetrySink + 'static) -> Self {
        self.sinks.push(Box::new(sink));
        self
    }
}

impl TelemetrySink for FanoutSink {
    fn record(&self, event: &TelemetryEvent) {
        for s in &self.sinks {
            s.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventPhase;
    use opml_simkernel::SimTime;

    fn ev(seq: u64, name: &str) -> TelemetryEvent {
        TelemetryEvent {
            seq,
            time: SimTime(seq),
            phase: EventPhase::Instant,
            name: name.into(),
            attrs: Vec::new(),
        }
    }

    #[test]
    fn memory_sink_preserves_order() {
        let sink = MemorySink::new();
        for i in 0..5 {
            sink.record(&ev(i, "x"));
        }
        let got: Vec<u64> = sink.events().iter().map(|e| e.seq).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(sink.len(), 5);
        assert!(!sink.is_empty());
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let a = MemorySink::new();
        let b = MemorySink::new();
        let fan = FanoutSink::new().with(a.clone()).with(b.clone());
        fan.record(&ev(0, "x"));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }
}
