//! Deterministic string interner for telemetry event names.
//!
//! Event names are drawn from a small, closed vocabulary
//! (`instance.launch`, `queue.pop`, ...) yet the pre-interning pipeline
//! heap-allocated a fresh `String` per emitted event — the single
//! largest contributor to the `shard.sim` allocation profile. The
//! interner maps each distinct name to a [`Sym`] (a `u32` index into a
//! global insertion-order table), so an event carries four bytes
//! instead of an owned string and cloning an event never copies its
//! name.
//!
//! # Wire format
//!
//! Symbols never appear in any serialized artifact. Exporters resolve a
//! `Sym` back to its string (via [`Sym::as_str`] / `Deref<Target =
//! str>`) at render time, so JSONL and Chrome-trace bytes are identical
//! to the pre-interning output — the differential harness in
//! `tests/alloc_pass_differential.rs` pins exactly that.
//!
//! # Determinism
//!
//! Symbol *ids* are assigned in first-intern order. Ids are a process-
//! local encoding and never serialized, so output bytes cannot depend
//! on them; but allocation accounting can see *when* a name is first
//! interned (the table grows). [`preseed`] interns a batch of known
//! names up front from one thread, which both fixes the id assignment
//! and moves every table-growth allocation out of the measured window;
//! after a preseed covering the run's vocabulary, the interner performs
//! zero allocations during the run ([`interned_count`] is the
//! regression probe for that).
//!
//! The table only ever grows and entries are `&'static str` (dynamic
//! names are leaked once per *distinct* name — bounded by the
//! vocabulary, not the event count).

use opml_simkernel::{det_hash_map, DetHashMap};
use parking_lot::RwLock;
use std::fmt;
use std::ops::Deref;

struct Interner {
    /// `name -> id` lookup (fixed-seed hasher: growth is deterministic).
    lookup: Option<DetHashMap<&'static str, u32>>,
    /// Insertion-order table; `Sym(i)` resolves to `names[i]`.
    names: Vec<&'static str>,
}

static INTERNER: RwLock<Interner> = RwLock::new(Interner {
    lookup: None,
    names: Vec::new(),
});

/// An interned event name: a copyable `u32` handle that dereferences to
/// the underlying `&'static str`.
///
/// Construct via [`Sym::new`] / `From<&str>`; compare against string
/// literals directly (`sym == "queue.pop"`). Two `Sym`s are equal iff
/// their strings are equal (the interner guarantees one id per distinct
/// string).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// Intern `name` (a lookup when already present, an insertion
    /// otherwise) and return its symbol.
    pub fn new(name: &str) -> Sym {
        intern(name)
    }

    /// The interned string. O(1): one shared-lock table read.
    pub fn as_str(self) -> &'static str {
        let interner = INTERNER.read();
        interner.names.get(self.0 as usize).copied().unwrap_or("")
    }

    /// The raw table index (insertion order).
    pub fn id(self) -> u32 {
        self.0
    }

    /// Reconstruct a symbol from a raw id, validating it against the
    /// current table. Returns `None` for ids the interner has never
    /// assigned — the spill-run decoder uses this so a corrupt id
    /// surfaces as a typed error instead of resolving to `""`.
    pub fn from_id(id: u32) -> Option<Sym> {
        if (id as usize) < INTERNER.read().names.len() {
            Some(Sym(id))
        } else {
            None
        }
    }
}

impl Deref for Sym {
    type Target = str;

    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({:?}#{})", self.as_str(), self.0)
    }
}

impl From<&str> for Sym {
    fn from(name: &str) -> Sym {
        intern(name)
    }
}

impl From<&String> for Sym {
    fn from(name: &String) -> Sym {
        intern(name)
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<Sym> for &str {
    fn eq(&self, other: &Sym) -> bool {
        *self == other.as_str()
    }
}

/// Intern `name`, returning its stable symbol. The fast path is a
/// shared-lock lookup; a miss upgrades to the write lock, re-checks,
/// and appends.
pub fn intern(name: &str) -> Sym {
    {
        let interner = INTERNER.read();
        if let Some(lookup) = &interner.lookup {
            if let Some(&id) = lookup.get(name) {
                return Sym(id);
            }
        }
    }
    intern_slow(name, None)
}

/// Intern a `'static` string without copying it (preseed path, and the
/// spill codec's attribute-key table — keys are `&'static str` by
/// construction, so interning them costs no leak).
pub fn intern_static(name: &'static str) -> Sym {
    {
        let interner = INTERNER.read();
        if let Some(lookup) = &interner.lookup {
            if let Some(&id) = lookup.get(name) {
                return Sym(id);
            }
        }
    }
    intern_slow(name, Some(name))
}

#[cold]
fn intern_slow(name: &str, as_static: Option<&'static str>) -> Sym {
    let mut interner = INTERNER.write();
    let lookup = interner.lookup.get_or_insert_with(det_hash_map);
    if let Some(&id) = lookup.get(name) {
        return Sym(id);
    }
    let stored: &'static str =
        as_static.unwrap_or_else(|| Box::leak(name.to_string().into_boxed_str()));
    let id = u32::try_from(interner.names.len()).expect("interner table exceeds u32 ids");
    interner
        .lookup
        .as_mut()
        .expect("lookup initialised above")
        .insert(stored, id);
    interner.names.push(stored);
    Sym(id)
}

/// Intern a batch of known names in order, from one thread, before a
/// measured run: fixes id assignment and front-loads every interner
/// allocation. Idempotent.
pub fn preseed(names: &[&'static str]) {
    for name in names {
        let _ = intern_static(name);
    }
}

/// Number of distinct names interned so far. A run whose vocabulary
/// was fully preseeded leaves this unchanged — the regression probe
/// the allocation-pass tests pin.
pub fn interned_count() -> usize {
    INTERNER.read().names.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_resolve_round_trip() {
        let a = Sym::new("test.intern.round_trip");
        assert_eq!(a.as_str(), "test.intern.round_trip");
        assert_eq!(&*a, "test.intern.round_trip");
        assert_eq!(a, "test.intern.round_trip");
    }

    #[test]
    fn same_string_same_symbol() {
        let a = Sym::new("test.intern.same");
        let b = Sym::from("test.intern.same");
        let c = Sym::from(&String::from("test.intern.same"));
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a.id(), c.id());
        assert_ne!(a, Sym::new("test.intern.other"));
    }

    #[test]
    fn preseed_is_idempotent_and_interns_nothing_twice() {
        preseed(&["test.intern.pre_a", "test.intern.pre_b"]);
        let before = interned_count();
        preseed(&["test.intern.pre_a", "test.intern.pre_b"]);
        let _ = Sym::new("test.intern.pre_a");
        assert_eq!(interned_count(), before);
    }

    #[test]
    fn from_id_validates_against_the_table() {
        let s = Sym::new("test.intern.from_id");
        assert_eq!(Sym::from_id(s.id()), Some(s));
        assert_eq!(Sym::from_id(u32::MAX), None);
    }

    #[test]
    fn display_and_debug_show_the_string() {
        let s = Sym::new("test.intern.display");
        assert_eq!(format!("{s}"), "test.intern.display");
        assert!(format!("{s:?}").contains("test.intern.display"));
    }
}
