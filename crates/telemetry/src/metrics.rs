//! Deterministic metrics: counters, gauges, and sim-time histograms.
//!
//! Every map is a `BTreeMap` so iteration (and therefore rendering and
//! serialization) is stable by metric name regardless of registration
//! order. Values are only ever derived from simulation state — never
//! wall clock — so two identical runs produce identical snapshots.

use opml_simkernel::SimDuration;
use serde::Serialize;
use std::collections::BTreeMap;

/// Histogram bucket upper bounds, in simulated minutes. Chosen to
/// resolve the durations the paper cares about: minutes-long API calls
/// up through multi-day reservations.
pub const HISTOGRAM_BOUNDS_MIN: [u64; 10] = [15, 30, 60, 120, 240, 480, 960, 1920, 3840, 10080];

/// A histogram over simulated durations with fixed minute buckets
/// (plus an implicit overflow bucket).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SimTimeHistogram {
    /// Per-bucket counts; `buckets[i]` counts samples `<=
    /// HISTOGRAM_BOUNDS_MIN[i]`, the final slot counts the overflow.
    pub buckets: Vec<u64>,
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples, in minutes.
    pub sum_minutes: u64,
    /// Largest recorded sample, in minutes.
    pub max_minutes: u64,
}

impl Default for SimTimeHistogram {
    fn default() -> Self {
        SimTimeHistogram {
            buckets: vec![0; HISTOGRAM_BOUNDS_MIN.len() + 1],
            count: 0,
            sum_minutes: 0,
            max_minutes: 0,
        }
    }
}

impl SimTimeHistogram {
    /// Record one duration sample.
    pub fn observe(&mut self, d: SimDuration) {
        let idx = HISTOGRAM_BOUNDS_MIN
            .iter()
            .position(|&b| d.0 <= b)
            .unwrap_or(HISTOGRAM_BOUNDS_MIN.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_minutes += d.0;
        self.max_minutes = self.max_minutes.max(d.0);
    }

    /// Fold another histogram into this one (bucketwise sum; shared
    /// fixed bounds make this exact and order-independent).
    pub fn merge(&mut self, other: &SimTimeHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_minutes += other.sum_minutes;
        self.max_minutes = self.max_minutes.max(other.max_minutes);
    }

    /// Mean sample in fractional hours (0 when empty).
    pub fn mean_hours(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_minutes as f64 / self.count as f64 / 60.0
        }
    }

    /// Mean sample in whole ticks, rounded to nearest (0 when empty).
    /// "Minutes" is the batch-simulation reading of a tick; service
    /// mode reads the same value as seconds.
    pub fn mean_minutes(&self) -> u64 {
        (self.sum_minutes + self.count / 2)
            .checked_div(self.count)
            .unwrap_or(0)
    }

    /// Upper-bound estimate of the `q`-quantile in minutes, or `None`
    /// when the histogram is empty.
    ///
    /// Fixed buckets only bound a quantile from above: the result is
    /// the upper bound of the first bucket whose cumulative count
    /// reaches `ceil(q * count)`, clamped to `max_minutes` (which makes
    /// the estimate exact whenever the largest sample falls below the
    /// selected bound, and keeps the overflow bucket finite). `q` is
    /// clamped to `[0, 1]`.
    pub fn percentile_minutes(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= target {
                let bound = HISTOGRAM_BOUNDS_MIN
                    .get(idx)
                    .copied()
                    .unwrap_or(self.max_minutes);
                return Some(bound.min(self.max_minutes));
            }
        }
        Some(self.max_minutes)
    }

    /// Median upper bound in minutes (`None` when empty).
    pub fn p50_minutes(&self) -> Option<u64> {
        self.percentile_minutes(0.50)
    }

    /// 90th-percentile upper bound in minutes (`None` when empty).
    pub fn p90_minutes(&self) -> Option<u64> {
        self.percentile_minutes(0.90)
    }

    /// 99th-percentile upper bound in minutes (`None` when empty).
    pub fn p99_minutes(&self) -> Option<u64> {
        self.percentile_minutes(0.99)
    }
}

/// The mutable metrics store behind a [`crate::Telemetry`] handle.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, SimTimeHistogram>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named counter (created at zero).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Set the named gauge to `value` (last write wins).
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Raise the named gauge to `value` if larger (high-water mark).
    pub fn gauge_max(&mut self, name: &str, value: f64) {
        let g = self.gauges.entry(name.to_string()).or_insert(f64::MIN);
        if value > *g {
            *g = value;
        }
    }

    /// Record a duration sample in the named histogram.
    pub fn observe(&mut self, name: &str, d: SimDuration) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(d);
    }

    /// Fold a (per-shard) snapshot into this registry.
    ///
    /// Merge laws, chosen so that folding shard snapshots in any order
    /// or grouping yields the same registry: counters **add** (exact
    /// `u64` sums), gauges take the **high-water maximum** (every gauge
    /// the simulator sets is a high-water reading, and `max` is the only
    /// order-free fold for them), histograms merge **bucketwise**.
    pub fn merge_snapshot(&mut self, snap: &MetricsSnapshot) {
        for (name, delta) in &snap.counters {
            self.counter_add(name, *delta);
        }
        for (name, value) in &snap.gauges {
            self.gauge_max(name, *value);
        }
        for (name, hist) in &snap.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
    }

    /// Immutable, name-sorted snapshot for rendering/export.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

/// A point-in-time copy of the registry, name-sorted and serializable.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// Monotone event counts.
    pub counters: BTreeMap<String, u64>,
    /// Last-value / high-water readings.
    pub gauges: BTreeMap<String, f64>,
    /// Sim-duration distributions.
    pub histograms: BTreeMap<String, SimTimeHistogram>,
}

impl MetricsSnapshot {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut m = MetricsRegistry::new();
        m.counter_add("b.count", 2);
        m.counter_add("a.count", 1);
        m.counter_add("b.count", 3);
        m.gauge_set("depth", 4.0);
        m.gauge_max("depth.max", 2.0);
        m.gauge_max("depth.max", 7.0);
        m.gauge_max("depth.max", 5.0);
        let snap = m.snapshot();
        // BTreeMap: names iterate sorted.
        let names: Vec<&str> = snap.counters.keys().map(String::as_str).collect();
        assert_eq!(names, vec!["a.count", "b.count"]);
        assert_eq!(snap.counters["b.count"], 5);
        assert_eq!(snap.gauges["depth"], 4.0);
        assert_eq!(snap.gauges["depth.max"], 7.0);
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = SimTimeHistogram::default();
        h.observe(SimDuration::minutes(10)); // bucket 0 (<=15)
        h.observe(SimDuration::minutes(15)); // bucket 0 (inclusive bound)
        h.observe(SimDuration::minutes(90)); // bucket 3 (<=120)
        h.observe(SimDuration::weeks(3)); // overflow
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[HISTOGRAM_BOUNDS_MIN.len()], 1);
        assert_eq!(h.count, 4);
        assert_eq!(h.max_minutes, 3 * 7 * 24 * 60);
    }

    #[test]
    fn mean_hours() {
        let mut h = SimTimeHistogram::default();
        assert_eq!(h.mean_hours(), 0.0);
        h.observe(SimDuration::hours(1));
        h.observe(SimDuration::hours(3));
        assert!((h.mean_hours() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_on_known_uniform_distribution() {
        // 100 samples of 1..=100 minutes. Bucket occupancy against the
        // bounds [15, 30, 60, 120, ...]: 15, 15, 30, 40, 0, ...
        let mut h = SimTimeHistogram::default();
        for m in 1..=100 {
            h.observe(SimDuration::minutes(m));
        }
        // p50 target = 50th sample; cumulative 15, 30, 60 -> bucket
        // bound 60 is the tightest upper bound the histogram can give.
        assert_eq!(h.p50_minutes(), Some(60));
        // p90 and p99 land in the <=120 bucket, clamped to max 100.
        assert_eq!(h.p90_minutes(), Some(100));
        assert_eq!(h.p99_minutes(), Some(100));
        assert_eq!(h.percentile_minutes(0.15), Some(15));
        assert_eq!(h.percentile_minutes(0.0), Some(15));
        assert_eq!(h.percentile_minutes(1.0), Some(100));
    }

    #[test]
    fn percentiles_single_sample_and_overflow() {
        let mut h = SimTimeHistogram::default();
        assert_eq!(h.p50_minutes(), None);
        h.observe(SimDuration::minutes(10));
        // One 10-minute sample: bound 15 clamps to the exact max.
        assert_eq!(h.p50_minutes(), Some(10));
        assert_eq!(h.p99_minutes(), Some(10));

        let mut h = SimTimeHistogram::default();
        h.observe(SimDuration::weeks(3)); // overflow bucket
        let three_weeks = 3 * 7 * 24 * 60;
        assert_eq!(h.p50_minutes(), Some(three_weeks));
        assert_eq!(h.p99_minutes(), Some(three_weeks));
    }

    #[test]
    fn percentiles_survive_merge() {
        let mut a = SimTimeHistogram::default();
        let mut b = SimTimeHistogram::default();
        for m in 1..=50 {
            a.observe(SimDuration::minutes(m));
        }
        for m in 51..=100 {
            b.observe(SimDuration::minutes(m));
        }
        a.merge(&b);
        let mut whole = SimTimeHistogram::default();
        for m in 1..=100 {
            whole.observe(SimDuration::minutes(m));
        }
        assert_eq!(a.p50_minutes(), whole.p50_minutes());
        assert_eq!(a.p90_minutes(), whole.p90_minutes());
        assert_eq!(a.p99_minutes(), whole.p99_minutes());
    }

    #[test]
    fn snapshot_is_deterministic() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        // Different insertion orders, same content.
        a.counter_add("x", 1);
        a.counter_add("y", 2);
        b.counter_add("y", 2);
        b.counter_add("x", 1);
        assert_eq!(a.snapshot(), b.snapshot());
    }
}
