//! Trace exporters: JSONL and Chrome trace-event format.
//!
//! Both exporters hand-roll their JSON with fixed field order so the
//! output is byte-stable: the same event stream always produces the same
//! bytes, which is what the golden-trace test and `verify-determinism`
//! hash.
//!
//! The Chrome exporter targets the [trace-event format] consumed by
//! Perfetto and `chrome://tracing`: one simulated minute is rendered as
//! one microsecond of trace time, simulation events go on `tid` 1 and
//! harness (meta) events on `tid` 2.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::event::{write_json_str, HARNESS_TRACK};
use crate::event::{EventPhase, TelemetryEvent};

/// Process id used for every exported Chrome event (single simulated
/// process).
const PID: u64 = 1;
/// Thread lane for simulation-timeline events.
const SIM_TID: u64 = 1;
/// Thread lane for harness-track (meta) events.
const HARNESS_TID: u64 = 2;

/// Render events as JSON Lines, one event per line in sequence order,
/// with a trailing newline. Byte-stable for a given event stream.
pub fn export_jsonl(events: &[TelemetryEvent]) -> String {
    let mut sorted: Vec<&TelemetryEvent> = events.iter().collect();
    sorted.sort_by_key(|e| e.seq);
    let mut out = String::new();
    for e in sorted {
        out.push_str(&e.to_json_line());
        out.push('\n');
    }
    out
}

/// Render events as a Chrome trace-event JSON document
/// (`{"traceEvents":[…]}`), loadable in Perfetto.
///
/// Events are sorted by `(time, seq)` so the emitted `ts` values are
/// monotonically non-decreasing; thread-name metadata events come first
/// (metadata carries no timestamp semantics).
pub fn export_chrome_trace(events: &[TelemetryEvent]) -> String {
    let mut sorted: Vec<&TelemetryEvent> = events.iter().collect();
    sorted.sort_by_key(|e| (e.time, e.seq));

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    out.push_str(&thread_meta(SIM_TID, "simulation (1 min = 1 us)"));
    out.push(',');
    out.push_str(&thread_meta(HARNESS_TID, HARNESS_TRACK));
    for e in sorted {
        out.push(',');
        write_chrome_event(&mut out, e);
    }
    out.push_str("]}");
    out
}

fn thread_meta(tid: u64, name: &str) -> String {
    let mut out = String::new();
    out.push_str("{\"ph\":\"M\",\"pid\":");
    out.push_str(&PID.to_string());
    out.push_str(",\"tid\":");
    out.push_str(&tid.to_string());
    out.push_str(",\"name\":\"thread_name\",\"args\":{\"name\":");
    write_json_str(&mut out, name);
    out.push_str("}}");
    out
}

fn write_chrome_event(out: &mut String, e: &TelemetryEvent) {
    let tid = if e.is_harness_track() {
        HARNESS_TID
    } else {
        SIM_TID
    };
    out.push_str("{\"name\":");
    write_json_str(out, &e.name);
    out.push_str(",\"ph\":\"");
    out.push_str(e.phase.code());
    out.push_str("\",\"ts\":");
    out.push_str(&e.time.0.to_string());
    out.push_str(",\"pid\":");
    out.push_str(&PID.to_string());
    out.push_str(",\"tid\":");
    out.push_str(&tid.to_string());
    if e.phase == EventPhase::Instant {
        out.push_str(",\"s\":\"t\"");
    }
    out.push_str(",\"args\":{\"seq\":");
    out.push_str(&e.seq.to_string());
    for (k, v) in &e.attrs {
        out.push(',');
        write_json_str(out, k);
        out.push(':');
        // Chrome/Perfetto args accept arbitrary JSON values; reuse the
        // JSONL rendering via a one-attr event would allocate, so the
        // value writer is exposed crate-internally instead.
        v.write_json_into(out);
    }
    out.push_str("}}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AttrValue, TRACK_ATTR};
    use opml_simkernel::SimTime;

    fn ev(seq: u64, t: u64, phase: EventPhase, name: &str) -> TelemetryEvent {
        TelemetryEvent {
            seq,
            time: SimTime(t),
            phase,
            name: name.into(),
            attrs: Vec::new(),
        }
    }

    #[test]
    fn jsonl_is_seq_ordered_and_newline_terminated() {
        let events = vec![
            ev(2, 30, EventPhase::Instant, "c"),
            ev(0, 10, EventPhase::Instant, "a"),
            ev(1, 20, EventPhase::Instant, "b"),
        ];
        let out = export_jsonl(&events);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"seq\":0"));
        assert!(lines[2].contains("\"seq\":2"));
        assert!(out.ends_with('\n'));
    }

    #[test]
    fn chrome_ts_is_monotone_non_decreasing() {
        // Deliberately shuffled input: exporter must sort by (time, seq).
        let mut events = vec![
            ev(5, 500, EventPhase::End, "z"),
            ev(1, 10, EventPhase::Begin, "z"),
            ev(3, 200, EventPhase::Instant, "m"),
            ev(2, 10, EventPhase::Instant, "same-minute"),
            ev(4, 200, EventPhase::Instant, "m2"),
        ];
        events.push(TelemetryEvent {
            seq: 0,
            time: SimTime(0),
            phase: EventPhase::Instant,
            name: "stage".into(),
            attrs: vec![(TRACK_ATTR, AttrValue::from(HARNESS_TRACK))],
        });
        let out = export_chrome_trace(&events);

        let mut last_ts = 0i64;
        let mut seen = 0;
        for chunk in out.split("\"ts\":").skip(1) {
            let digits: String = chunk.chars().take_while(char::is_ascii_digit).collect();
            let ts: i64 = digits.parse().expect("ts is an integer");
            assert!(ts >= last_ts, "ts went backwards: {last_ts} -> {ts}");
            last_ts = ts;
            seen += 1;
        }
        assert_eq!(seen, 6, "every non-metadata event carries a ts");
        // Harness event landed on its own lane.
        assert!(out.contains("\"name\":\"stage\",\"ph\":\"i\",\"ts\":0,\"pid\":1,\"tid\":2"));
    }

    #[test]
    fn chrome_trace_is_well_formed_json() {
        let events = vec![
            ev(0, 10, EventPhase::Begin, "span \"quoted\""),
            ev(1, 20, EventPhase::Instant, "tick"),
            ev(2, 30, EventPhase::End, "span \"quoted\""),
        ];
        let out = export_chrome_trace(&events);
        let mut p = Json {
            bytes: out.as_bytes(),
            pos: 0,
        };
        p.value();
        p.ws();
        assert_eq!(p.pos, p.bytes.len(), "trailing garbage after JSON value");
    }

    #[test]
    fn export_is_byte_stable() {
        let events = vec![
            ev(0, 10, EventPhase::Instant, "a"),
            ev(1, 20, EventPhase::Instant, "b"),
        ];
        assert_eq!(export_jsonl(&events), export_jsonl(&events));
        assert_eq!(export_chrome_trace(&events), export_chrome_trace(&events));
    }

    /// Minimal recursive-descent JSON validator (the vendored serde_json
    /// shim has no parser). Panics on malformed input.
    struct Json<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Json<'_> {
        fn ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| b" \t\r\n".contains(b))
            {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) {
            assert_eq!(
                self.bytes.get(self.pos),
                Some(&b),
                "expected {:?} at byte {}",
                b as char,
                self.pos
            );
            self.pos += 1;
        }

        fn value(&mut self) {
            self.ws();
            match self.bytes.get(self.pos) {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => self.string(),
                Some(b't') => self.literal(b"true"),
                Some(b'f') => self.literal(b"false"),
                Some(b'n') => self.literal(b"null"),
                Some(b'-' | b'0'..=b'9') => self.number(),
                other => panic!("unexpected byte {other:?} at {}", self.pos),
            }
        }

        fn object(&mut self) {
            self.expect(b'{');
            self.ws();
            if self.bytes.get(self.pos) == Some(&b'}') {
                self.pos += 1;
                return;
            }
            loop {
                self.ws();
                self.string();
                self.ws();
                self.expect(b':');
                self.value();
                self.ws();
                match self.bytes.get(self.pos) {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return;
                    }
                    other => panic!("bad object separator {other:?} at {}", self.pos),
                }
            }
        }

        fn array(&mut self) {
            self.expect(b'[');
            self.ws();
            if self.bytes.get(self.pos) == Some(&b']') {
                self.pos += 1;
                return;
            }
            loop {
                self.value();
                self.ws();
                match self.bytes.get(self.pos) {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return;
                    }
                    other => panic!("bad array separator {other:?} at {}", self.pos),
                }
            }
        }

        fn string(&mut self) {
            self.expect(b'"');
            while let Some(&b) = self.bytes.get(self.pos) {
                match b {
                    b'"' => {
                        self.pos += 1;
                        return;
                    }
                    b'\\' => self.pos += 2,
                    _ => self.pos += 1,
                }
            }
            panic!("unterminated string");
        }

        fn number(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| b.is_ascii_digit() || b"-+.eE".contains(b))
            {
                self.pos += 1;
            }
        }

        fn literal(&mut self, lit: &[u8]) {
            assert_eq!(
                &self.bytes[self.pos..self.pos + lit.len()],
                lit,
                "bad literal at {}",
                self.pos
            );
            self.pos += lit.len();
        }
    }
}
