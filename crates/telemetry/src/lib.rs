//! `opml-telemetry` — deterministic sim-time tracing and metrics for the
//! semester simulator.
//!
//! # Determinism contract
//!
//! Every event is stamped with the **simulated** clock ([`SimTime`]) and
//! a stable per-handle sequence number; nothing in this crate reads wall
//! clock or ambient entropy, so a trace of a deterministic simulation is
//! byte-identical across runs and rayon thread counts. The rules:
//!
//! 1. **Sim-time only.** Timestamps come from the caller's simulation
//!    clock. Harness-level stages that have no simulated time use
//!    synthetic monotone stamps on a separate track (see
//!    [`event::HARNESS_TRACK`]).
//! 2. **One handle per run.** A [`Telemetry`] handle is owned by one
//!    simulation run. Parallel sweeps (rayon) give each run its own
//!    handle (usually [`Telemetry::disabled`]) so sequence numbers never
//!    interleave across threads.
//! 3. **Stable iteration.** The metrics registry is `BTreeMap`-backed;
//!    snapshots render identically regardless of registration order.
//!
//! # Cost when disabled
//!
//! [`Telemetry::disabled`] is a `None` — emission is a branch on an
//! `Option`, and attribute vectors are built behind a closure that never
//! runs. `crates/bench/benches/bench_telemetry.rs` gates the disabled
//! path at <5% overhead against uninstrumented code.
//!
//! ```
//! use opml_telemetry::{Telemetry, sink::MemorySink};
//! use opml_simkernel::{SimTime, SimDuration};
//!
//! let sink = MemorySink::new();
//! let t = Telemetry::with_sink(sink.clone());
//! t.instant(SimTime(90), "instance.launch", || vec![("flavor", "g1.xlarge".into())]);
//! t.counter_add("cloud.instances_launched", 1);
//! t.observe("instance.lifetime", SimDuration::hours(3));
//! assert_eq!(sink.events().len(), 1);
//! assert_eq!(t.metrics_snapshot().counters["cloud.instances_launched"], 1);
//! ```

pub mod event;
pub mod export;
pub mod intern;
pub mod metrics;
pub mod sink;
pub mod span;
pub mod spillcodec;

pub use event::{Attr, AttrValue, EventPhase, TelemetryEvent, HARNESS_TRACK, NARRATE, TRACK_ATTR};
pub use export::{export_chrome_trace, export_jsonl};
pub use intern::Sym;
pub use metrics::{MetricsRegistry, MetricsSnapshot, SimTimeHistogram};
pub use sink::{FanoutSink, MemorySink, NullSink, StderrNarrationSink, TelemetrySink};
pub use span::SpanGuard;

use opml_simkernel::{SimDuration, SimTime};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Inner {
    sink: Box<dyn TelemetrySink>,
    /// Next sequence number. Relaxed is sufficient: a handle belongs to
    /// one simulation run, which emits from a single thread; the atomic
    /// only exists so `Telemetry` stays `Sync` for storage in shared
    /// structs.
    seq: AtomicU64,
    metrics: Mutex<MetricsRegistry>,
}

/// Handle to the telemetry pipeline. Cheap to clone (an `Option<Arc>`);
/// a disabled handle is a `None` and every operation on it is a single
/// branch.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Telemetry({})",
            if self.inner.is_some() {
                "enabled"
            } else {
                "disabled"
            }
        )
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

impl Telemetry {
    /// A no-op handle: events are never constructed, metrics never
    /// recorded. This is the default everywhere instrumentation is
    /// threaded through.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled handle sending events to `sink`.
    pub fn with_sink(sink: impl TelemetrySink + 'static) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                sink: Box::new(sink),
                seq: AtomicU64::new(0),
                metrics: Mutex::new(MetricsRegistry::new()),
            })),
        }
    }

    /// Whether events will actually be recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emit one event. `attrs` is a closure so that argument
    /// construction is skipped entirely on the disabled path; the
    /// enabled path is outlined (`#[cold]`) so a disabled emit inlines
    /// to a single test-and-skip at the call site.
    #[inline]
    pub fn emit<F>(&self, time: SimTime, phase: EventPhase, name: &str, attrs: F)
    where
        F: FnOnce() -> Vec<Attr>,
    {
        if let Some(inner) = &self.inner {
            emit_enabled(inner, time, phase, name, attrs);
        }
    }

    /// Emit a point event (`"i"`).
    #[inline]
    pub fn instant<F>(&self, time: SimTime, name: &str, attrs: F)
    where
        F: FnOnce() -> Vec<Attr>,
    {
        self.emit(time, EventPhase::Instant, name, attrs);
    }

    /// Open a span at `time`; close it with [`SpanGuard::end`].
    pub fn span<F>(&self, time: SimTime, name: &'static str, attrs: F) -> SpanGuard
    where
        F: FnOnce() -> Vec<Attr>,
    {
        self.emit(time, EventPhase::Begin, name, attrs);
        SpanGuard::new(self.clone(), name)
    }

    /// Emit a narration event (progress line). Routed to stderr by
    /// [`StderrNarrationSink`]; dropped by every other sink unless it
    /// chooses to record it.
    pub fn narrate(&self, time: SimTime, message: impl Into<String>) {
        if self.is_enabled() {
            let msg = message.into();
            self.instant(time, NARRATE, move || vec![("message", msg.into())]);
        }
    }

    /// Add `delta` to a counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.lock().counter_add(name, delta);
        }
    }

    /// Set a gauge (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.lock().gauge_set(name, value);
        }
    }

    /// Raise a gauge high-water mark.
    pub fn gauge_max(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.lock().gauge_max(name, value);
        }
    }

    /// Record a sim-duration histogram sample.
    pub fn observe(&self, name: &str, d: SimDuration) {
        if let Some(inner) = &self.inner {
            inner.metrics.lock().observe(name, d);
        }
    }

    /// Re-emit previously captured events through this handle, in input
    /// order, restamping each with a fresh sequence number from this
    /// handle's counter (times, phases, names and attrs are preserved).
    ///
    /// This is the shard-merge seam: each shard of a sharded simulation
    /// records into its own buffer with its own dense `seq` space, and
    /// the merger replays the buffers in shard-index order — so the
    /// merged stream's sequence stamps depend only on the shard
    /// structure, never on which thread finished first.
    pub fn replay(&self, events: &[TelemetryEvent]) {
        if let Some(inner) = &self.inner {
            for e in events {
                let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
                inner.sink.record_owned(TelemetryEvent {
                    seq,
                    time: e.time,
                    phase: e.phase,
                    name: e.name,
                    attrs: e.attrs.clone(),
                });
            }
        }
    }

    /// [`Telemetry::replay`], but taking ownership: reserves the whole
    /// sequence range with one counter bump, restamps the events in
    /// place, and hands the buffer to the sink as a single batch. No
    /// per-event allocation — this is the merge-phase hot path
    /// (`merge.replay_restamp`), which previously re-allocated every
    /// event's name and attribute vector.
    pub fn replay_owned(&self, mut events: Vec<TelemetryEvent>) {
        if let Some(inner) = &self.inner {
            let base = inner.seq.fetch_add(events.len() as u64, Ordering::Relaxed);
            for (i, e) in events.iter_mut().enumerate() {
                e.seq = base + i as u64;
            }
            inner.sink.record_batch(events);
        }
    }

    /// Fold a (per-shard) metrics snapshot into this handle's registry;
    /// see [`MetricsRegistry::merge_snapshot`] for the merge laws.
    pub fn merge_metrics(&self, snap: &MetricsSnapshot) {
        if let Some(inner) = &self.inner {
            inner.metrics.lock().merge_snapshot(snap);
        }
    }

    /// Snapshot of the metrics registry (empty for a disabled handle).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => inner.metrics.lock().snapshot(),
            None => MetricsSnapshot::default(),
        }
    }
}

/// The recording half of [`Telemetry::emit`], kept out of line so the
/// disabled fast path stays a bare branch (verified by
/// `bench_telemetry`'s overhead gate).
#[cold]
#[inline(never)]
fn emit_enabled<F>(inner: &Inner, time: SimTime, phase: EventPhase, name: &str, attrs: F)
where
    F: FnOnce() -> Vec<Attr>,
{
    let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
    inner.sink.record_owned(TelemetryEvent {
        seq,
        time,
        phase,
        name: Sym::new(name),
        attrs: attrs(),
    });
}

/// Format-and-narrate convenience: `narrate!(t, time, "sweep {n} done")`.
///
/// The format arguments are only evaluated when the handle is enabled.
#[macro_export]
macro_rules! narrate {
    ($telemetry:expr, $time:expr, $($fmt:tt)*) => {
        if $telemetry.is_enabled() {
            $telemetry.narrate($time, format!($($fmt)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_numbers_are_dense_and_ordered() {
        let sink = MemorySink::new();
        let t = Telemetry::with_sink(sink.clone());
        for i in 0..10u64 {
            t.instant(SimTime(i * 10), "tick", Vec::new);
        }
        let seqs: Vec<u64> = sink.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn disabled_handle_skips_attr_construction() {
        let t = Telemetry::disabled();
        let mut called = false;
        t.instant(SimTime::ZERO, "x", || {
            called = true;
            Vec::new()
        });
        assert!(!called);
        assert!(t.metrics_snapshot().is_empty());
    }

    #[test]
    fn narrate_macro_formats_lazily() {
        let sink = MemorySink::new();
        let t = Telemetry::with_sink(sink.clone());
        narrate!(t, SimTime(5), "step {} of {}", 2, 3);
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, NARRATE);
        assert_eq!(
            events[0].attr("message").and_then(AttrValue::as_str),
            Some("step 2 of 3")
        );

        fn boom() -> u32 {
            unreachable!("format args must not evaluate when disabled")
        }
        let off = Telemetry::disabled();
        narrate!(off, SimTime(5), "never {}", boom());
    }

    #[test]
    fn metrics_via_handle() {
        let t = Telemetry::with_sink(NullSink);
        t.counter_add("c", 1);
        t.counter_add("c", 2);
        t.gauge_set("g", 1.5);
        t.gauge_max("m", 3.0);
        t.gauge_max("m", 2.0);
        t.observe("h", SimDuration::hours(1));
        let snap = t.metrics_snapshot();
        assert_eq!(snap.counters["c"], 3);
        assert_eq!(snap.gauges["g"], 1.5);
        assert_eq!(snap.gauges["m"], 3.0);
        assert_eq!(snap.histograms["h"].count, 1);
    }

    #[test]
    fn replay_restamps_sequence_numbers() {
        let shard_sink = MemorySink::new();
        let shard = Telemetry::with_sink(shard_sink.clone());
        shard.instant(SimTime(5), "a", || vec![("k", 1u64.into())]);
        shard.instant(SimTime(9), "b", Vec::new);

        let parent_sink = MemorySink::new();
        let parent = Telemetry::with_sink(parent_sink.clone());
        parent.instant(SimTime(1), "pre", Vec::new);
        parent.replay(&shard_sink.events());
        let events = parent_sink.events();
        assert_eq!(events.len(), 3);
        // Fresh, dense seq stamps from the parent's counter...
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // ...with times, names and attrs preserved.
        assert_eq!(events[1].time, SimTime(5));
        assert_eq!(events[1].name, "a");
        assert_eq!(events[1].attr("k"), Some(&AttrValue::U64(1)));

        // Replay through a disabled handle is a no-op.
        Telemetry::disabled().replay(&shard_sink.events());
    }

    #[test]
    fn replay_owned_is_byte_identical_to_replay() {
        let shard_sink = MemorySink::new();
        let shard = Telemetry::with_sink(shard_sink.clone());
        shard.instant(SimTime(5), "a", || vec![("k", 1u64.into())]);
        let g = shard.span(SimTime(6), "s", Vec::new);
        g.end(SimTime(8));
        shard.narrate(SimTime(9), "done");

        let run = |owned: bool| {
            let sink = MemorySink::new();
            let parent = Telemetry::with_sink(sink.clone());
            parent.instant(SimTime(1), "pre", Vec::new);
            if owned {
                parent.replay_owned(shard_sink.events());
            } else {
                parent.replay(&shard_sink.events());
            }
            parent.instant(SimTime(99), "post", Vec::new);
            export_jsonl(&sink.events())
        };
        assert_eq!(run(false), run(true));

        // Disabled handle: still a no-op.
        Telemetry::disabled().replay_owned(shard_sink.events());
    }

    #[test]
    fn merge_metrics_folds_shard_snapshots() {
        let mk = |c: u64, g: f64, h_hours: u64| {
            let t = Telemetry::with_sink(NullSink);
            t.counter_add("n", c);
            t.gauge_set("high_water", g);
            t.observe("dur", SimDuration::hours(h_hours));
            t.metrics_snapshot()
        };
        let (a, b) = (mk(2, 5.0, 1), mk(3, 2.0, 3));
        let fold = |first: &MetricsSnapshot, second: &MetricsSnapshot| {
            let t = Telemetry::with_sink(NullSink);
            t.merge_metrics(first);
            t.merge_metrics(second);
            t.metrics_snapshot()
        };
        let ab = fold(&a, &b);
        assert_eq!(ab.counters["n"], 5, "counters add");
        assert_eq!(ab.gauges["high_water"], 5.0, "gauges take the max");
        assert_eq!(ab.histograms["dur"].count, 2, "histograms merge");
        assert_eq!(ab.histograms["dur"].sum_minutes, 4 * 60);
        assert_eq!(ab, fold(&b, &a), "merge is order-invariant");
    }

    #[test]
    fn clones_share_sequence_space() {
        let sink = MemorySink::new();
        let t = Telemetry::with_sink(sink.clone());
        let t2 = t.clone();
        t.instant(SimTime(1), "a", Vec::new);
        t2.instant(SimTime(2), "b", Vec::new);
        let seqs: Vec<u64> = sink.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
    }
}
