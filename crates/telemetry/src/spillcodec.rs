//! Binary spill codec for telemetry events and metrics snapshots.
//!
//! The out-of-core semester pipeline writes each shard's telemetry
//! buffer and metrics snapshot into its on-disk run file (the "aux"
//! block) and streams them back during the merge for `replay_owned`
//! restamping and metrics aggregation. This module is the wire format
//! for that block.
//!
//! # Event rows are (nearly) fixed-width
//!
//! Interned [`Sym`] names and `&'static str` attribute keys mean an
//! event row is a handful of fixed-width scalars — a `u32` symbol id
//! instead of a length-prefixed name, a `u32` symbol id per attribute
//! key (keys are `&'static str` by construction, so interning them via
//! [`crate::intern::intern_static`] leaks nothing). Only dynamic
//! [`AttrValue::Str`] payloads are length-prefixed; those are *not*
//! interned on decode because their value space (instance names) is
//! unbounded, unlike the closed key/name vocabulary.
//!
//! # Sequence numbers are not spilled
//!
//! `replay_owned` restamps `seq` on the merging handle, so the spilled
//! value would be dead weight; the decoder materializes events with
//! `seq: 0` and the replay path assigns the authoritative stamps. All
//! other fields round-trip exactly (floats by bit pattern), which the
//! spill differential test pins end to end.
//!
//! # Corruption is an error, never a panic
//!
//! Every decoder returns `io::Result`: truncation is `UnexpectedEof`,
//! an unknown tag or out-of-table symbol id is `InvalidData`. The
//! streaming semester drivers are DL008 panic-freedom roots, so this
//! property is lint-enforced transitively.

use crate::event::{Attr, AttrValue, EventPhase, TelemetryEvent};
use crate::intern::{intern_static, Sym};
use crate::metrics::{MetricsSnapshot, SimTimeHistogram};
use opml_simkernel::{binio, SimTime};
use std::collections::BTreeMap;
use std::io::{self, Read};

/// Bound on any length-prefixed string in the aux block (metric names,
/// dynamic attribute values). Far above anything the simulator emits;
/// a corrupt length prefix past this is `InvalidData`, not an attempted
/// huge allocation.
const MAX_STR_LEN: u32 = 1 << 16;

/// Bound on per-event attribute count and per-histogram bucket count.
const MAX_SEQ_LEN: u32 = 1 << 16;

const PHASE_BEGIN: u8 = 0;
const PHASE_END: u8 = 1;
const PHASE_INSTANT: u8 = 2;

const VAL_U64: u8 = 0;
const VAL_I64: u8 = 1;
const VAL_F64: u8 = 2;
const VAL_BOOL: u8 = 3;
const VAL_STR: u8 = 4;
const VAL_STATIC: u8 = 5;

fn bad(detail: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail)
}

fn sym_from_wire(id: u32) -> io::Result<Sym> {
    Sym::from_id(id).ok_or_else(|| bad(format!("symbol id {id} not in interner table")))
}

/// Encode one event (everything except `seq`; see module docs).
pub fn encode_event(ev: &TelemetryEvent, out: &mut Vec<u8>) {
    binio::put_u64(out, ev.time.0);
    binio::put_u8(
        out,
        match ev.phase {
            EventPhase::Begin => PHASE_BEGIN,
            EventPhase::End => PHASE_END,
            EventPhase::Instant => PHASE_INSTANT,
        },
    );
    binio::put_u32(out, ev.name.id());
    binio::put_u32(out, ev.attrs.len() as u32);
    for (key, value) in &ev.attrs {
        binio::put_u32(out, intern_static(key).id());
        match value {
            AttrValue::U64(v) => {
                binio::put_u8(out, VAL_U64);
                binio::put_u64(out, *v);
            }
            AttrValue::I64(v) => {
                binio::put_u8(out, VAL_I64);
                binio::put_u64(out, *v as u64);
            }
            AttrValue::F64(v) => {
                binio::put_u8(out, VAL_F64);
                binio::put_f64(out, *v);
            }
            AttrValue::Bool(v) => {
                binio::put_u8(out, VAL_BOOL);
                binio::put_u8(out, u8::from(*v));
            }
            AttrValue::Str(s) => {
                binio::put_u8(out, VAL_STR);
                binio::put_str(out, s);
            }
            AttrValue::Static(s) => {
                binio::put_u8(out, VAL_STATIC);
                binio::put_u32(out, intern_static(s).id());
            }
        }
    }
}

/// Decode one event written by [`encode_event`]. `seq` comes back as 0
/// (replay restamps it).
pub fn decode_event(r: &mut impl Read) -> io::Result<TelemetryEvent> {
    let time = SimTime(binio::read_u64(r)?);
    let phase = match binio::read_u8(r)? {
        PHASE_BEGIN => EventPhase::Begin,
        PHASE_END => EventPhase::End,
        PHASE_INSTANT => EventPhase::Instant,
        other => return Err(bad(format!("unknown event phase tag {other}"))),
    };
    let name = sym_from_wire(binio::read_u32(r)?)?;
    let attr_count = binio::read_u32(r)?;
    if attr_count > MAX_SEQ_LEN {
        return Err(bad(format!("attribute count {attr_count} exceeds bound")));
    }
    let mut attrs: Vec<Attr> = Vec::with_capacity(attr_count as usize);
    for _ in 0..attr_count {
        let key = sym_from_wire(binio::read_u32(r)?)?.as_str();
        let value = match binio::read_u8(r)? {
            VAL_U64 => AttrValue::U64(binio::read_u64(r)?),
            VAL_I64 => AttrValue::I64(binio::read_u64(r)? as i64),
            VAL_F64 => AttrValue::F64(binio::read_f64(r)?),
            VAL_BOOL => AttrValue::Bool(binio::read_u8(r)? != 0),
            VAL_STR => AttrValue::Str(binio::read_string(r, MAX_STR_LEN)?),
            VAL_STATIC => AttrValue::Static(sym_from_wire(binio::read_u32(r)?)?.as_str()),
            other => return Err(bad(format!("unknown attr value tag {other}"))),
        };
        attrs.push((key, value));
    }
    Ok(TelemetryEvent {
        seq: 0,
        time,
        phase,
        name,
        attrs,
    })
}

/// Encode a metrics snapshot (three sorted maps; `BTreeMap` iteration
/// order makes the bytes canonical for a given snapshot).
pub fn encode_metrics(snap: &MetricsSnapshot, out: &mut Vec<u8>) {
    binio::put_u32(out, snap.counters.len() as u32);
    for (name, v) in &snap.counters {
        binio::put_str(out, name);
        binio::put_u64(out, *v);
    }
    binio::put_u32(out, snap.gauges.len() as u32);
    for (name, v) in &snap.gauges {
        binio::put_str(out, name);
        binio::put_f64(out, *v);
    }
    binio::put_u32(out, snap.histograms.len() as u32);
    for (name, h) in &snap.histograms {
        binio::put_str(out, name);
        binio::put_u32(out, h.buckets.len() as u32);
        for b in &h.buckets {
            binio::put_u64(out, *b);
        }
        binio::put_u64(out, h.count);
        binio::put_u64(out, h.sum_minutes);
        binio::put_u64(out, h.max_minutes);
    }
}

fn read_len(r: &mut impl Read, what: &str) -> io::Result<u32> {
    let len = binio::read_u32(r)?;
    if len > MAX_SEQ_LEN {
        return Err(bad(format!("{what} count {len} exceeds bound")));
    }
    Ok(len)
}

/// Decode a metrics snapshot written by [`encode_metrics`].
pub fn decode_metrics(r: &mut impl Read) -> io::Result<MetricsSnapshot> {
    let mut counters = BTreeMap::new();
    for _ in 0..read_len(r, "counter")? {
        let name = binio::read_string(r, MAX_STR_LEN)?;
        counters.insert(name, binio::read_u64(r)?);
    }
    let mut gauges = BTreeMap::new();
    for _ in 0..read_len(r, "gauge")? {
        let name = binio::read_string(r, MAX_STR_LEN)?;
        gauges.insert(name, binio::read_f64(r)?);
    }
    let mut histograms = BTreeMap::new();
    for _ in 0..read_len(r, "histogram")? {
        let name = binio::read_string(r, MAX_STR_LEN)?;
        let bucket_count = read_len(r, "bucket")?;
        let mut buckets = Vec::with_capacity(bucket_count as usize);
        for _ in 0..bucket_count {
            buckets.push(binio::read_u64(r)?);
        }
        histograms.insert(
            name,
            SimTimeHistogram {
                buckets,
                count: binio::read_u64(r)?,
                sum_minutes: binio::read_u64(r)?,
                max_minutes: binio::read_u64(r)?,
            },
        );
    }
    Ok(MetricsSnapshot {
        counters,
        gauges,
        histograms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use opml_simkernel::SimDuration;

    #[test]
    fn event_round_trips_every_value_kind() {
        let ev = TelemetryEvent {
            seq: 99, // deliberately nonzero: seq must NOT round-trip
            time: SimTime(86_400),
            phase: EventPhase::Instant,
            name: "test.spill.event".into(),
            attrs: vec![
                ("vcpus", 8u64.into()),
                ("delta", AttrValue::I64(-42)),
                ("frac", (-0.0f64).into()),
                ("ok", true.into()),
                ("who", String::from("lab2-s007").into()),
                ("cause", "quota".into()),
            ],
        };
        let mut buf = Vec::new();
        encode_event(&ev, &mut buf);
        let mut r = buf.as_slice();
        let got = decode_event(&mut r).expect("decode");
        assert!(r.is_empty());
        assert_eq!(got.seq, 0, "seq is restamped by replay, not spilled");
        assert_eq!(got.time, ev.time);
        assert_eq!(got.phase, ev.phase);
        assert_eq!(got.name, ev.name);
        assert_eq!(got.attrs.len(), ev.attrs.len());
        for ((gk, gv), (wk, wv)) in got.attrs.iter().zip(&ev.attrs) {
            assert_eq!(gk, wk);
            assert_eq!(gv, wv);
        }
        // Variant-exact string round trip: Static stays Static, Str stays Str.
        assert!(matches!(got.attr("who"), Some(AttrValue::Str(_))));
        assert!(matches!(got.attr("cause"), Some(AttrValue::Static(_))));
        // Signed zero survives by bit pattern.
        match got.attr("frac") {
            Some(AttrValue::F64(x)) => assert_eq!(x.to_bits(), (-0.0f64).to_bits()),
            other => panic!("expected F64, got {other:?}"),
        }
    }

    #[test]
    fn event_phases_round_trip() {
        for phase in [EventPhase::Begin, EventPhase::End, EventPhase::Instant] {
            let ev = TelemetryEvent {
                seq: 0,
                time: SimTime::ZERO,
                phase,
                name: "test.spill.phase".into(),
                attrs: Vec::new(),
            };
            let mut buf = Vec::new();
            encode_event(&ev, &mut buf);
            assert_eq!(
                decode_event(&mut buf.as_slice()).expect("decode").phase,
                phase
            );
        }
    }

    #[test]
    fn corrupt_event_is_an_error() {
        let ev = TelemetryEvent {
            seq: 0,
            time: SimTime(1),
            phase: EventPhase::Begin,
            name: "test.spill.corrupt".into(),
            attrs: vec![("gpus", 4u64.into())],
        };
        let mut buf = Vec::new();
        encode_event(&ev, &mut buf);

        // Truncation.
        let cut = &buf[..buf.len() - 3];
        assert!(decode_event(&mut &cut[..]).is_err());

        // Out-of-table symbol id.
        let mut wild = buf.clone();
        wild[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_event(&mut wild.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Unknown phase tag.
        let mut tagged = buf.clone();
        tagged[8] = 7;
        let err = decode_event(&mut tagged.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn metrics_round_trip() {
        let mut registry = MetricsRegistry::new();
        registry.counter_add("jobs.completed", 17);
        registry.gauge_set("pool.utilization", 0.75);
        registry.observe("job.duration", SimDuration(95));
        registry.observe("job.duration", SimDuration(100_000));
        let snap = registry.snapshot();
        assert!(!snap.is_empty());

        let mut buf = Vec::new();
        encode_metrics(&snap, &mut buf);
        let mut r = buf.as_slice();
        let got = decode_metrics(&mut r).expect("decode");
        assert!(r.is_empty());
        assert_eq!(got, snap);

        // Empty snapshot round-trips to empty.
        let mut buf = Vec::new();
        encode_metrics(&MetricsSnapshot::default(), &mut buf);
        assert!(decode_metrics(&mut buf.as_slice())
            .expect("decode")
            .is_empty());
    }
}
