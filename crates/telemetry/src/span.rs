//! Span guard: a begin/end pair on the sim-time trace.
//!
//! Spans are explicit about their end time — there is no `Drop`-based
//! closing, because a drop can't know the simulated time at which the
//! phase finished. `SpanGuard::end(time)` must be called; the guard is
//! `#[must_use]` so forgetting it is a (deny-by-default) warning.

use crate::event::EventPhase;
use crate::Telemetry;
use opml_simkernel::SimTime;

/// An open span. Emitted as a `"B"` event on creation; call
/// [`SpanGuard::end`] with the closing sim-time to emit the matching
/// `"E"` event.
#[must_use = "spans must be closed with .end(time) to balance the trace"]
#[derive(Debug)]
pub struct SpanGuard {
    telemetry: Telemetry,
    name: &'static str,
}

impl SpanGuard {
    pub(crate) fn new(telemetry: Telemetry, name: &'static str) -> Self {
        SpanGuard { telemetry, name }
    }

    /// Close the span at simulated time `time`.
    pub fn end(self, time: SimTime) {
        self.telemetry
            .emit(time, EventPhase::End, self.name, Vec::new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;
    use crate::Telemetry;

    #[test]
    fn span_emits_balanced_begin_end() {
        let sink = MemorySink::new();
        let t = Telemetry::with_sink(sink.clone());
        let span = t.span(SimTime(10), "semester.plan", Vec::new);
        span.end(SimTime(50));
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].phase, EventPhase::Begin);
        assert_eq!(events[0].time, SimTime(10));
        assert_eq!(events[1].phase, EventPhase::End);
        assert_eq!(events[1].time, SimTime(50));
        assert_eq!(events[0].name, events[1].name);
        assert_eq!(events[0].seq + 1, events[1].seq);
    }

    #[test]
    fn disabled_span_is_silent() {
        let t = Telemetry::disabled();
        let span = t.span(SimTime(10), "noop", Vec::new);
        span.end(SimTime(20));
        // Nothing to assert beyond "did not panic": there is no sink.
        assert!(!t.is_enabled());
    }
}
