//! The telemetry event model.
//!
//! Every event is stamped with a [`SimTime`] (never wall clock) and a
//! stable per-handle sequence number, so a recorded stream is
//! byte-identical across runs and thread counts as long as the emitting
//! simulation is itself deterministic. Attributes are an ordered list of
//! key/value pairs — insertion order is the serialization order.

use crate::intern::Sym;
use opml_simkernel::SimTime;
use std::fmt;

/// Reserved event name for progress narration (see
/// [`crate::sink::StderrNarrationSink`]).
pub const NARRATE: &str = "narrate";

/// Attribute key marking an event as belonging to the harness (meta)
/// track rather than the simulation timeline; the Chrome exporter puts
/// such events on their own thread lane.
pub const TRACK_ATTR: &str = "track";

/// Value of [`TRACK_ATTR`] for harness-track events.
pub const HARNESS_TRACK: &str = "harness";

/// Span/event phase, mirroring the Chrome trace-event phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventPhase {
    /// Span open (`"B"` in Chrome trace terms).
    Begin,
    /// Span close (`"E"`).
    End,
    /// Point event (`"i"`).
    Instant,
}

impl EventPhase {
    /// One-letter code used in both exporters.
    pub fn code(self) -> &'static str {
        match self {
            EventPhase::Begin => "B",
            EventPhase::End => "E",
            EventPhase::Instant => "i",
        }
    }
}

/// An attribute value. Constructed via the `From` impls:
/// `("gpus", 4u64.into())`.
///
/// String payloads come in two flavours that serialize identically and
/// compare equal by content: [`AttrValue::Static`] (a borrowed
/// `&'static str` — zero allocation, the hot-path case for literal
/// values like `("cause", "quota".into())`) and [`AttrValue::Str`] (an
/// owned `String` for dynamic values such as instance names).
#[derive(Debug, Clone)]
pub enum AttrValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (serialized with Rust's shortest-roundtrip printing, which
    /// is deterministic per platform and toolchain).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Owned string (dynamic values).
    Str(String),
    /// Borrowed string literal (no allocation; same wire format as
    /// [`AttrValue::Str`]).
    Static(&'static str),
}

impl PartialEq for AttrValue {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (AttrValue::U64(a), AttrValue::U64(b)) => a == b,
            (AttrValue::I64(a), AttrValue::I64(b)) => a == b,
            (AttrValue::F64(a), AttrValue::F64(b)) => a == b,
            (AttrValue::Bool(a), AttrValue::Bool(b)) => a == b,
            // String equality is by content: `Static("x") == Str("x")`,
            // matching the identical serialization.
            (a, b) => match (a.as_str(), b.as_str()) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            },
        }
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(u64::from(v))
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<&'static str> for AttrValue {
    fn from(v: &'static str) -> Self {
        AttrValue::Static(v)
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl AttrValue {
    /// The string payload, if this is a `Str` or `Static` value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            AttrValue::Static(s) => Some(s),
            _ => None,
        }
    }

    /// Append the value as a JSON literal.
    pub(crate) fn write_json_into(&self, out: &mut String) {
        match self {
            AttrValue::U64(n) => out.push_str(&n.to_string()),
            AttrValue::I64(n) => out.push_str(&n.to_string()),
            AttrValue::F64(x) => write_json_f64(out, *x),
            AttrValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            AttrValue::Str(s) => write_json_str(out, s),
            AttrValue::Static(s) => write_json_str(out, s),
        }
    }
}

/// One attribute: a static key plus a value.
pub type Attr = (&'static str, AttrValue);

/// A recorded telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryEvent {
    /// Stable sequence number within the emitting [`crate::Telemetry`]
    /// handle (emission order).
    pub seq: u64,
    /// Simulated time of the event.
    pub time: SimTime,
    /// Phase (span open/close or point event).
    pub phase: EventPhase,
    /// Dotted event name (`instance.launch`, `queue.pop`, …), interned:
    /// a copyable symbol that dereferences to the name string.
    pub name: Sym,
    /// Ordered attributes.
    pub attrs: Vec<Attr>,
}

impl TelemetryEvent {
    /// Look up an attribute value by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// True when the event sits on the harness (meta) track.
    pub fn is_harness_track(&self) -> bool {
        self.attr(TRACK_ATTR).and_then(AttrValue::as_str) == Some(HARNESS_TRACK)
    }

    /// Render as one compact JSON object (no trailing newline). Field
    /// order is fixed (`seq`, `t`, `ph`, `name`, `attrs`) so the output
    /// is byte-stable.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(64 + self.name.len());
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"t\":");
        out.push_str(&self.time.0.to_string());
        out.push_str(",\"ph\":\"");
        out.push_str(self.phase.code());
        out.push_str("\",\"name\":");
        write_json_str(&mut out, &self.name);
        if !self.attrs.is_empty() {
            out.push_str(",\"attrs\":{");
            for (i, (k, v)) in self.attrs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_str(&mut out, k);
                out.push(':');
                v.write_json_into(&mut out);
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

impl fmt::Display for TelemetryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} #{}] {} {}",
            self.time,
            self.seq,
            self.phase.code(),
            self.name
        )
    }
}

/// Append `s` as a JSON string literal (quoted, escaped).
pub(crate) fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite float as JSON (non-finite becomes `null`, matching
/// the vendored serde_json shim).
pub(crate) fn write_json_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 1e15 {
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&x.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_shape_and_escaping() {
        let ev = TelemetryEvent {
            seq: 3,
            time: SimTime(120),
            phase: EventPhase::Instant,
            name: "quota.deny".into(),
            attrs: vec![
                ("resource", "instance".into()),
                ("who", "lab2-s007\"x\"".into()),
                ("vcpus", 8u64.into()),
                ("frac", 0.5f64.into()),
                ("ok", false.into()),
            ],
        };
        let line = ev.to_json_line();
        assert_eq!(
            line,
            "{\"seq\":3,\"t\":120,\"ph\":\"i\",\"name\":\"quota.deny\",\"attrs\":{\"resource\":\"instance\",\"who\":\"lab2-s007\\\"x\\\"\",\"vcpus\":8,\"frac\":0.5,\"ok\":false}}"
        );
    }

    #[test]
    fn attr_lookup_and_track() {
        let ev = TelemetryEvent {
            seq: 0,
            time: SimTime::ZERO,
            phase: EventPhase::Begin,
            name: "stage.table1".into(),
            attrs: vec![(TRACK_ATTR, HARNESS_TRACK.into())],
        };
        assert!(ev.is_harness_track());
        assert_eq!(ev.attr("missing"), None);
    }

    #[test]
    fn float_attr_is_integral_stable() {
        let mut s = String::new();
        write_json_f64(&mut s, 4.0);
        assert_eq!(s, "4.0");
        let mut s = String::new();
        write_json_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }
}
