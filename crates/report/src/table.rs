//! Plain-text table rendering with box-drawing-free ASCII (pipes and
//! dashes), right-aligned numeric columns, and a footer row.

use serde::{Deserialize, Serialize};

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Align {
    /// Left-aligned (text).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// An ASCII table builder.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
    footer: Option<Vec<String>>,
}

impl Table {
    /// Start a table with headers; alignment defaults to Left for the
    /// first column and Right for the rest (the usual stats-table shape).
    pub fn new(headers: &[&str]) -> Self {
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            aligns,
            rows: Vec::new(),
            footer: None,
        }
    }

    /// Override column alignments (must match the header count).
    pub fn aligns(mut self, aligns: &[Align]) -> Self {
        assert_eq!(aligns.len(), self.headers.len(), "alignment count mismatch");
        self.aligns = aligns.to_vec();
        self
    }

    /// Append a data row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Set the footer (totals) row.
    pub fn footer(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "footer cell count mismatch"
        );
        self.footer = Some(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in self.rows.iter().chain(self.footer.iter()) {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for i in 0..cols {
                let cell = &cells[i];
                let pad = widths[i] - cell.len();
                match self.aligns[i] {
                    Align::Left => {
                        line.push(' ');
                        line.push_str(cell);
                        line.push_str(&" ".repeat(pad + 1));
                    }
                    Align::Right => {
                        line.push_str(&" ".repeat(pad + 1));
                        line.push_str(cell);
                        line.push(' ');
                    }
                }
                line.push('|');
            }
            line
        };
        let sep = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        let mut out = String::new();
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        if let Some(f) = &self.footer {
            out.push_str(&sep);
            out.push('\n');
            out.push_str(&fmt_row(f));
            out.push('\n');
        }
        out.push_str(&sep);
        out.push('\n');
        out
    }
}

/// Format a float with thousands separators and the given decimals
/// (`12,345.7`).
pub fn fmt_num(x: f64, decimals: usize) -> String {
    let neg = x < 0.0;
    let s = format!("{:.*}", decimals, x.abs());
    let (int_part, frac_part) = match s.split_once('.') {
        Some((i, f)) => (i.to_string(), Some(f.to_string())),
        None => (s, None),
    };
    let mut grouped = String::new();
    let bytes = int_part.as_bytes();
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && (bytes.len() - i) % 3 == 0 {
            grouped.push(',');
        }
        grouped.push(*b as char);
    }
    let mut out = String::new();
    if neg {
        out.push('-');
    }
    out.push_str(&grouped);
    if let Some(f) = frac_part {
        out.push('.');
        out.push_str(&f);
    }
    out
}

/// Format a dollar amount (`$1,234` or `$12.34` for small values).
pub fn fmt_usd(x: f64) -> String {
    if x.abs() >= 100.0 {
        format!("${}", fmt_num(x, 0))
    } else {
        format!("${}", fmt_num(x, 2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new(&["name", "hours", "cost"]);
        t.row(&["lab1".into(), "2,620".into(), "$40".into()]);
        t.row(&["lab2-longer-name".into(), "52,332".into(), "$2,264".into()]);
        t.footer(&["Total".into(), "54,952".into(), "$2,304".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        // All lines have equal width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "{s}");
        assert!(s.contains("| lab1 "));
        assert!(s.contains(" $2,264 |"));
        assert!(s.contains("Total"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cell count")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn fmt_num_grouping() {
        assert_eq!(fmt_num(1234567.891, 1), "1,234,567.9");
        assert_eq!(fmt_num(999.0, 0), "999");
        assert_eq!(fmt_num(1000.0, 0), "1,000");
        assert_eq!(fmt_num(0.5, 2), "0.50");
        assert_eq!(fmt_num(-12345.0, 0), "-12,345");
    }

    #[test]
    fn fmt_usd_scales_decimals() {
        assert_eq!(fmt_usd(23698.0), "$23,698");
        assert_eq!(fmt_usd(0.21), "$0.21");
        assert_eq!(fmt_usd(124.0), "$124");
        assert_eq!(fmt_usd(12.0), "$12.00");
    }
}
