//! Paper-vs-measured comparison records.
//!
//! Every experiment emits [`Comparison`] rows; EXPERIMENTS.md is the
//! rendered [`ComparisonSet`]. A comparison can carry a tolerance: the
//! reproduction is judged on *shape* (who wins, by what factor), so each
//! row declares how close it is expected to land.

use serde::{Deserialize, Serialize};

/// One paper-vs-measured quantity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Comparison {
    /// What is being compared (e.g. "Table 1 total instance hours").
    pub name: String,
    /// The paper's value.
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
    /// Relative tolerance for the pass/fail verdict (e.g. 0.1 = ±10%).
    pub rel_tolerance: f64,
    /// Unit label for rendering.
    pub unit: String,
}

impl Comparison {
    /// Build a comparison.
    pub fn new(name: &str, paper: f64, measured: f64, rel_tolerance: f64, unit: &str) -> Self {
        Comparison {
            name: name.to_string(),
            paper,
            measured,
            rel_tolerance,
            unit: unit.to_string(),
        }
    }

    /// measured / paper.
    pub fn ratio(&self) -> f64 {
        if self.paper == 0.0 {
            if self.measured == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.measured / self.paper
        }
    }

    /// Whether the measured value is within the declared tolerance.
    pub fn within_tolerance(&self) -> bool {
        (self.ratio() - 1.0).abs() <= self.rel_tolerance
    }

    /// Markdown table row.
    pub fn to_markdown_row(&self) -> String {
        format!(
            "| {} | {:.4} {} | {:.4} {} | {:.3} | {} |",
            self.name,
            self.paper,
            self.unit,
            self.measured,
            self.unit,
            self.ratio(),
            if self.within_tolerance() {
                "✅"
            } else {
                "⚠️"
            }
        )
    }
}

/// A named set of comparisons (one per experiment).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ComparisonSet {
    /// Experiment id (e.g. "table1").
    pub experiment: String,
    /// Rows.
    pub rows: Vec<Comparison>,
}

impl ComparisonSet {
    /// Empty set for an experiment.
    pub fn new(experiment: &str) -> Self {
        ComparisonSet {
            experiment: experiment.to_string(),
            rows: Vec::new(),
        }
    }

    /// Add a row.
    pub fn push(&mut self, c: Comparison) {
        self.rows.push(c);
    }

    /// Fraction of rows within tolerance.
    pub fn pass_rate(&self) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        self.rows.iter().filter(|c| c.within_tolerance()).count() as f64 / self.rows.len() as f64
    }

    /// Render as a Markdown section.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### `{}`\n\n", self.experiment);
        out.push_str("| quantity | paper | measured | ratio | ok |\n");
        out.push_str("|---|---|---|---|---|\n");
        for c in &self.rows {
            out.push_str(&c.to_markdown_row());
            out.push('\n');
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_tolerance() {
        let c = Comparison::new("hours", 100.0, 103.0, 0.05, "h");
        assert!((c.ratio() - 1.03).abs() < 1e-12);
        assert!(c.within_tolerance());
        let far = Comparison::new("hours", 100.0, 150.0, 0.05, "h");
        assert!(!far.within_tolerance());
    }

    #[test]
    fn zero_paper_value() {
        assert_eq!(Comparison::new("z", 0.0, 0.0, 0.1, "").ratio(), 1.0);
        assert!(Comparison::new("z", 0.0, 5.0, 0.1, "")
            .ratio()
            .is_infinite());
    }

    #[test]
    fn markdown_rendering() {
        let mut set = ComparisonSet::new("table1");
        set.push(Comparison::new(
            "total hours",
            109_837.0,
            111_000.0,
            0.05,
            "h",
        ));
        set.push(Comparison::new("AWS cost", 23_698.0, 40_000.0, 0.10, "$"));
        let md = set.to_markdown();
        assert!(md.contains("### `table1`"));
        assert!(md.contains("✅"));
        assert!(md.contains("⚠️"));
        assert!((set.pass_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_set_pass_rate() {
        assert_eq!(ComparisonSet::new("x").pass_rate(), 1.0);
    }
}
