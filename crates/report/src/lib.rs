//! # opml-report
//!
//! Presentation layer for the experiment harness: ASCII tables
//! ([`table`]), text histograms and bar charts ([`chart`]), and
//! paper-vs-measured comparison records ([`compare`]) that EXPERIMENTS.md
//! is generated from.

pub mod chart;
pub mod compare;
pub mod latency;
pub mod metrics;
pub mod table;

pub use chart::{bar_chart, histogram_chart};
pub use compare::{Comparison, ComparisonSet};
pub use latency::{latency_table, LatencyUnit};
pub use metrics::metrics_summary;
pub use table::Table;
