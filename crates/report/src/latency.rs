//! The one latency table: count / mean / p50 / p90 / p99 / max over
//! [`SimTimeHistogram`]s, shared by the metrics summary, the chaos
//! per-arm tables, and the serve report so all three render
//! identically. Only the unit differs: the batch simulation reads a
//! tick as a minute (rendered as fractional hours), service mode reads
//! it as a second.

use crate::table::Table;
use opml_telemetry::SimTimeHistogram;

/// How to render tick values in the table cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyUnit {
    /// Ticks are minutes; render fractional hours ("1.50").
    Hours,
    /// Ticks are seconds; render whole seconds ("90").
    Seconds,
}

impl LatencyUnit {
    fn suffix(self) -> &'static str {
        match self {
            LatencyUnit::Hours => "h",
            LatencyUnit::Seconds => "s",
        }
    }

    fn cell(self, ticks: u64) -> String {
        match self {
            LatencyUnit::Hours => format!("{:.2}", ticks as f64 / 60.0),
            LatencyUnit::Seconds => ticks.to_string(),
        }
    }

    fn mean_cell(self, h: &SimTimeHistogram) -> String {
        match self {
            LatencyUnit::Hours => format!("{:.2}", h.mean_hours()),
            LatencyUnit::Seconds => h.mean_minutes().to_string(),
        }
    }
}

/// Render one `count | mean | p50 | p90 | p99 | max` table over
/// `(label, histogram)` rows. `header` names the label column;
/// percentile cells are bucket upper bounds (see
/// `SimTimeHistogram::percentile_minutes`), `-` when empty.
pub fn latency_table<'a, I>(header: &str, unit: LatencyUnit, rows: I) -> String
where
    I: IntoIterator<Item = (&'a str, &'a SimTimeHistogram)>,
{
    let u = unit.suffix();
    let mut t = Table::new(&[
        header,
        "count",
        &format!("mean {u}"),
        &format!("p50 {u}"),
        &format!("p90 {u}"),
        &format!("p99 {u}"),
        &format!("max {u}"),
    ]);
    for (name, h) in rows {
        let p = |p: Option<u64>| p.map_or_else(|| "-".to_string(), |ticks| unit.cell(ticks));
        t.row(&[
            name.to_string(),
            h.count.to_string(),
            unit.mean_cell(h),
            p(h.p50_minutes()),
            p(h.p90_minutes()),
            p(h.p99_minutes()),
            unit.cell(h.max_minutes),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use opml_simkernel::SimDuration;

    fn hist(samples: &[u64]) -> SimTimeHistogram {
        let mut h = SimTimeHistogram::default();
        for &s in samples {
            h.observe(SimDuration(s));
        }
        h
    }

    #[test]
    fn hours_and_seconds_share_shape() {
        let h = hist(&[60, 120, 180]);
        let hours = latency_table("histogram (sim time)", LatencyUnit::Hours, [("wait", &h)]);
        let secs = latency_table("latency", LatencyUnit::Seconds, [("wait", &h)]);
        for out in [&hours, &secs] {
            for col in ["count", "mean", "p50", "p90", "p99", "max"] {
                assert!(out.contains(col), "{col} missing from {out}");
            }
        }
        assert!(hours.contains("p99 h") && secs.contains("p99 s"));
        // 180 ticks: 3.00 hours, or 180 seconds.
        assert!(hours.contains("3.00"), "{hours}");
        assert!(secs.contains("180"), "{secs}");
    }

    #[test]
    fn empty_histogram_renders_dashes() {
        let h = SimTimeHistogram::default();
        let out = latency_table("latency", LatencyUnit::Seconds, [("idle", &h)]);
        assert!(out.contains('-'), "{out}");
    }
}
