//! Text bar charts and histograms — the harness's reproduction of the
//! paper's figures renders with these.

/// Horizontal bar chart: one labelled bar per `(label, value)` row,
/// scaled to `width` characters, with the numeric value appended.
pub fn bar_chart(rows: &[(String, f64)], width: usize) -> String {
    assert!(width >= 4);
    let max = rows.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let bar_len = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$} |{} {value:.1}\n",
            "#".repeat(bar_len)
        ));
    }
    out
}

/// Paired bar chart for expected-vs-actual figures (Fig. 1): each row
/// shows the expected bar (`.`) and the actual bar (`#`).
pub fn paired_bar_chart(rows: &[(String, f64, f64)], width: usize) -> String {
    assert!(width >= 4);
    let max = rows
        .iter()
        .flat_map(|&(_, a, b)| [a, b])
        .fold(0.0f64, f64::max);
    let label_w = rows.iter().map(|(l, _, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, expected, actual) in rows {
        let len = |v: f64| -> usize {
            if max > 0.0 {
                ((v / max) * width as f64).round() as usize
            } else {
                0
            }
        };
        out.push_str(&format!(
            "{label:<label_w$} expected |{:<width$} {expected:.1}\n",
            ".".repeat(len(*expected))
        ));
        out.push_str(&format!(
            "{:<label_w$} actual   |{:<width$} {actual:.1}\n",
            "",
            "#".repeat(len(*actual))
        ));
    }
    out
}

/// Histogram rendering from `(bucket_lo, bucket_hi, count)` rows.
pub fn histogram_chart(buckets: &[(f64, f64, u64)], width: usize) -> String {
    assert!(width >= 4);
    let max = buckets.iter().map(|&(_, _, c)| c).max().unwrap_or(0);
    let mut out = String::new();
    for &(lo, hi, count) in buckets {
        let bar_len = if max > 0 {
            ((count as f64 / max as f64) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "[{lo:>8.1},{hi:>8.1}) |{} {count}\n",
            "#".repeat(bar_len)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_scales_to_max() {
        let rows = vec![("a".to_string(), 10.0), ("bb".to_string(), 5.0)];
        let s = bar_chart(&rows, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(&"#".repeat(10)));
        assert!(lines[1].contains(&"#".repeat(5)));
        // Labels padded to common width.
        assert!(lines[0].starts_with("a  |"));
    }

    #[test]
    fn bar_chart_all_zero() {
        let rows = vec![("x".to_string(), 0.0)];
        let s = bar_chart(&rows, 10);
        assert!(s.contains("| 0.0"));
    }

    #[test]
    fn paired_chart_has_two_lines_per_row() {
        let rows = vec![("lab1".to_string(), 2.0, 13.7)];
        let s = paired_bar_chart(&rows, 20);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("expected"));
        assert!(lines[1].contains("actual"));
        // Actual bar longer than expected bar.
        let hashes = lines[1].matches('#').count();
        let dots = lines[0].matches('.').count();
        assert!(hashes > dots);
    }

    #[test]
    fn histogram_renders_counts() {
        let buckets = vec![(0.0, 50.0, 100u64), (50.0, 100.0, 25)];
        let s = histogram_chart(&buckets, 8);
        assert!(s.contains("100"));
        assert!(s.lines().count() == 2);
    }
}
