//! Rendering of telemetry metrics snapshots as summary tables
//! (the `--metrics` flag of `run-experiments`).

use crate::latency::{latency_table, LatencyUnit};
use crate::table::Table;
use opml_telemetry::MetricsSnapshot;

/// Render a metrics snapshot as ASCII tables: counters, gauges, and one
/// row per histogram (count/mean/p50/p90/p99/max, percentiles being
/// bucket upper bounds — see `SimTimeHistogram::percentile_minutes`).
/// Sections with no entries are omitted; an entirely empty snapshot
/// renders a placeholder line.
pub fn metrics_summary(snapshot: &MetricsSnapshot) -> String {
    if snapshot.is_empty() {
        return "(no metrics recorded)\n".to_string();
    }
    let mut out = String::new();
    if !snapshot.counters.is_empty() {
        let mut t = Table::new(&["counter", "value"]);
        for (name, value) in &snapshot.counters {
            t.row(&[name.clone(), value.to_string()]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    if !snapshot.gauges.is_empty() {
        let mut t = Table::new(&["gauge", "value"]);
        for (name, value) in &snapshot.gauges {
            t.row(&[name.clone(), format!("{value:.1}")]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    if !snapshot.histograms.is_empty() {
        out.push_str(&latency_table(
            "histogram (sim time)",
            LatencyUnit::Hours,
            snapshot.histograms.iter().map(|(n, h)| (n.as_str(), h)),
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use opml_simkernel::SimDuration;
    use opml_telemetry::{NullSink, Telemetry};

    #[test]
    fn empty_snapshot_renders_placeholder() {
        assert_eq!(
            metrics_summary(&MetricsSnapshot::default()),
            "(no metrics recorded)\n"
        );
    }

    #[test]
    fn sections_render_sorted_and_stable() {
        let t = Telemetry::with_sink(NullSink);
        t.counter_add("z.count", 2);
        t.counter_add("a.count", 40);
        t.gauge_set("depth", 3.0);
        t.observe("wait", SimDuration::hours(2));
        t.observe("wait", SimDuration::hours(4));
        let out = metrics_summary(&t.metrics_snapshot());
        let a = out.find("a.count").expect("a.count rendered");
        let z = out.find("z.count").expect("z.count rendered");
        assert!(a < z, "counters must render name-sorted");
        assert!(out.contains("depth"));
        assert!(out.contains("3.00"), "mean of 2h and 4h is 3.00: {out}");
        assert!(out.contains("p50 h") && out.contains("p99 h"));
        assert_eq!(out, metrics_summary(&t.metrics_snapshot()));
    }

    #[test]
    fn histogram_row_renders_percentile_bounds() {
        let t = Telemetry::with_sink(NullSink);
        // 100 uniform samples 1..=100 min: p50 bound 60 min = 1.00 h,
        // p90/p99 clamp to the 100-minute max = 1.67 h.
        for m in 1..=100 {
            t.observe("wait", SimDuration::minutes(m));
        }
        let out = metrics_summary(&t.metrics_snapshot());
        let row = out
            .lines()
            .find(|l| l.contains("wait"))
            .expect("wait histogram row");
        assert!(row.contains("1.00"), "p50 bound missing: {row}");
        assert!(row.contains("1.67"), "p90/p99 bound missing: {row}");
    }
}
