//! Scheduling policies: FCFS, EASY backfilling, fair share.

use serde::{Deserialize, Serialize};

/// Which ordering/backfill discipline the simulator applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    /// First-come-first-served with strict head-of-line blocking: if the
    /// oldest queued job does not fit, nothing behind it may start.
    Fcfs,
    /// EASY backfilling (Lifka '95): the head job receives a *shadow-time*
    /// reservation (the earliest instant enough GPUs will be free, from
    /// user-supplied runtime estimates); any later job may start now iff it
    /// fits now **and** either (a) it will finish before the shadow time,
    /// or (b) it uses no more than the GPUs left over once the head's
    /// reservation is honoured.
    EasyBackfill,
    /// Fair share: the queue is reordered by each user's consumed
    /// GPU-hours (least-served first, FIFO within a user) before applying
    /// the discipline; with `backfill` the EASY rule runs on the reordered
    /// queue.
    FairShare {
        /// Also apply EASY backfilling after fair-share ordering.
        backfill: bool,
    },
}

impl Policy {
    /// Stable display name for reports/benches.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Fcfs => "fcfs",
            Policy::EasyBackfill => "easy-backfill",
            Policy::FairShare { backfill: false } => "fair-share",
            Policy::FairShare { backfill: true } => "fair-share+backfill",
        }
    }

    /// All policies, for sweeps.
    pub const ALL: [Policy; 4] = [
        Policy::Fcfs,
        Policy::EasyBackfill,
        Policy::FairShare { backfill: false },
        Policy::FairShare { backfill: true },
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Policy::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Policy::ALL.len());
    }
}
