//! # opml-sched
//!
//! A GPU-cluster job scheduler implementing the HPC scheduling concepts the
//! course's Unit 5 lecture teaches "specifically for ML training jobs"
//! (§3.5 of the paper): **FCFS**, **EASY backfilling**, **gang placement**,
//! and **fair sharing**, evaluated on a synthetic trace modelled on the
//! Alibaba MLaaS workload analysis the lecture cites (Weng et al.,
//! NSDI '22: mostly short 1-GPU jobs with a heavy tail of large
//! long-running ones).
//!
//! The crate is a real scheduler, not a sketch: admission, placement with
//! node-boundary constraints, shadow-time reservation for backfilling, and
//! usage-ordered fair-share queues are all implemented and benchmarked
//! (`bench_sched` reproduces the lecture's qualitative claims — backfilling
//! recovers utilization lost to head-of-line blocking; fair share equalizes
//! per-user service at a small throughput cost).
//!
//! ```
//! use opml_sched::{Cluster, Placement, Policy, SchedSim, workload};
//!
//! let jobs = workload::ml_trace(200, 0.7, 42);
//! let cluster = Cluster::homogeneous(8, 4); // 8 nodes × 4 GPUs
//! let fcfs = SchedSim::new(cluster.clone(), Policy::Fcfs, Placement::Packed).run(&jobs);
//! let easy = SchedSim::new(cluster, Policy::EasyBackfill, Placement::Packed).run(&jobs);
//! assert!(easy.metrics().mean_wait_hours <= fcfs.metrics().mean_wait_hours + 1e-9);
//! ```

pub mod cluster;
pub mod job;
pub mod metrics;
pub mod policy;
pub mod sim;
pub mod workload;

pub use cluster::{Cluster, Placement};
pub use job::{Job, JobId, JobOutcome};
pub use metrics::ScheduleMetrics;
pub use policy::Policy;
pub use sim::{SchedError, SchedSim, Schedule};
