//! Aggregate schedule metrics.

use crate::sim::Schedule;
use opml_simkernel::stats::percentile_sorted;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Metrics for one schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScheduleMetrics {
    /// Number of jobs.
    pub jobs: usize,
    /// Mean queue wait (hours).
    pub mean_wait_hours: f64,
    /// 95th-percentile queue wait (hours).
    pub p95_wait_hours: f64,
    /// Mean bounded slowdown.
    pub mean_bounded_slowdown: f64,
    /// Time from first submit to last completion (hours).
    pub makespan_hours: f64,
    /// GPU-hours of work / (total GPUs × makespan) — cluster utilization.
    pub utilization: f64,
    /// Jain's fairness index over per-user received GPU-hour-weighted wait.
    pub jain_fairness: f64,
}

impl ScheduleMetrics {
    /// Compute metrics from a schedule.
    pub fn of(schedule: &Schedule) -> ScheduleMetrics {
        let outcomes = schedule.outcomes();
        if outcomes.is_empty() {
            return ScheduleMetrics {
                jobs: 0,
                mean_wait_hours: 0.0,
                p95_wait_hours: 0.0,
                mean_bounded_slowdown: 0.0,
                makespan_hours: 0.0,
                utilization: 0.0,
                jain_fairness: 1.0,
            };
        }
        let mut waits: Vec<f64> = outcomes.iter().map(|o| o.wait_hours()).collect();
        waits.sort_by(f64::total_cmp);
        let mean_wait = waits.iter().sum::<f64>() / waits.len() as f64;
        let slowdowns: f64 =
            outcomes.iter().map(|o| o.bounded_slowdown()).sum::<f64>() / outcomes.len() as f64;
        let first_submit = outcomes
            .iter()
            .map(|o| o.job.submit)
            .min()
            // detlint::allow(DL008): outcomes proved non-empty by the early return above
            .expect("non-empty");
        // detlint::allow(DL008): outcomes proved non-empty by the early return above
        let last_end = outcomes.iter().map(|o| o.end).max().expect("non-empty");
        let makespan = last_end.since(first_submit).as_hours_f64();
        let work: f64 = outcomes
            .iter()
            .map(|o| o.job.gpus as f64 * o.job.duration.as_hours_f64())
            .sum();
        let utilization = if makespan > 0.0 {
            work / (schedule.total_gpus() as f64 * makespan)
        } else {
            0.0
        };
        // Jain index over per-user mean slowdown (lower variance ⇒ fairer).
        // Ordered map: the float sums inside jain_index depend on the order
        // `shares` is built in (DL002).
        let mut per_user: BTreeMap<u32, (f64, u32)> = BTreeMap::new();
        for o in outcomes {
            let e = per_user.entry(o.job.user).or_insert((0.0, 0));
            e.0 += o.bounded_slowdown();
            e.1 += 1;
        }
        let shares: Vec<f64> = per_user.values().map(|&(s, n)| s / n as f64).collect();
        let jain = jain_index(&shares);
        ScheduleMetrics {
            jobs: outcomes.len(),
            mean_wait_hours: mean_wait,
            p95_wait_hours: percentile_sorted(&waits, 95.0),
            mean_bounded_slowdown: slowdowns,
            makespan_hours: makespan,
            utilization,
            jain_fairness: jain,
        }
    }
}

/// Jain's fairness index: `(Σx)² / (n·Σx²)`; 1.0 = perfectly even.
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sumsq: f64 = xs.iter().map(|x| x * x).sum();
    if sumsq == 0.0 {
        1.0
    } else {
        sum * sum / (xs.len() as f64 * sumsq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, Placement};
    use crate::job::{Job, JobId};
    use crate::policy::Policy;
    use crate::sim::SchedSim;
    use opml_simkernel::{SimDuration, SimTime};

    #[test]
    fn jain_bounds() {
        assert_eq!(jain_index(&[1.0, 1.0, 1.0]), 1.0);
        let skewed = jain_index(&[1.0, 0.0, 0.0]);
        assert!((skewed - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn utilization_of_saturated_cluster() {
        // One job using the whole cluster the whole time → utilization 1.
        let jobs = vec![Job {
            id: JobId(0),
            user: 0,
            gpus: 4,
            duration: SimDuration::hours(10),
            submit: SimTime(0),
        }];
        let m = SchedSim::new(Cluster::homogeneous(1, 4), Policy::Fcfs, Placement::Packed)
            .run(&jobs)
            .metrics();
        assert!((m.utilization - 1.0).abs() < 1e-9);
        assert_eq!(m.mean_wait_hours, 0.0);
        assert_eq!(m.makespan_hours, 10.0);
        assert_eq!(m.jobs, 1);
    }

    #[test]
    fn empty_schedule_metrics() {
        let m = SchedSim::new(Cluster::homogeneous(1, 1), Policy::Fcfs, Placement::Packed)
            .run(&[])
            .metrics();
        assert_eq!(m.jobs, 0);
        assert_eq!(m.jain_fairness, 1.0);
    }
}
