//! The event-driven scheduling simulator.

use crate::cluster::{Cluster, Placement};
use crate::job::{Job, JobId, JobOutcome};
use crate::metrics::ScheduleMetrics;
use crate::policy::Policy;
use opml_faults::{site_key, FaultKind, FaultPlan, RetryPolicy};
use opml_simkernel::{EventQueue, SimDuration, SimTime};
use opml_telemetry::Telemetry;
use std::collections::HashMap;
use std::fmt;

/// Why a trace was rejected before simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// A job wants more GPUs than the cluster has — it could never start
    /// under any policy, so the trace is unrunnable.
    OversizedJob {
        /// The offending job.
        id: JobId,
        /// GPUs it asked for.
        gpus: u32,
        /// GPUs the cluster has in total.
        total: u32,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::OversizedJob { id, gpus, total } => write!(
                f,
                "job {id:?} wants {gpus} GPUs but the cluster has {total}"
            ),
        }
    }
}

impl std::error::Error for SchedError {}

/// The result of running a trace through a policy.
#[derive(Debug, Clone)]
pub struct Schedule {
    outcomes: Vec<JobOutcome>,
    total_gpus: u32,
}

impl Schedule {
    /// Per-job outcomes, in start order.
    pub fn outcomes(&self) -> &[JobOutcome] {
        &self.outcomes
    }

    /// GPUs in the cluster the schedule ran on.
    pub fn total_gpus(&self) -> u32 {
        self.total_gpus
    }

    /// Aggregate metrics.
    pub fn metrics(&self) -> ScheduleMetrics {
        ScheduleMetrics::of(self)
    }
}

/// Simulator: a cluster, a policy, and a placement rule.
#[derive(Debug, Clone)]
pub struct SchedSim {
    cluster: Cluster,
    policy: Policy,
    placement: Placement,
    telemetry: Telemetry,
    faults: FaultPlan,
    restart_policy: RetryPolicy,
}

/// A job running on the cluster (for shadow-time computation).
struct Running {
    end: SimTime,
    gpus: u32,
    outcome_idx: usize,
}

impl SchedSim {
    /// Build a simulator.
    pub fn new(cluster: Cluster, policy: Policy, placement: Placement) -> Self {
        SchedSim {
            cluster,
            policy,
            placement,
            telemetry: Telemetry::disabled(),
            faults: FaultPlan::none(),
            restart_policy: RetryPolicy::exponential(
                SimDuration::minutes(5),
                2.0,
                SimDuration::hours(1),
                u32::MAX,
                0.0,
            ),
        }
    }

    /// Attach a fault plan (builder style). A plan with a nonzero
    /// `spot_preempt` rate reclaims running jobs partway through; the
    /// job checkpoints and re-enters the queue with its remaining
    /// duration after a [`RetryPolicy`] backoff. The inert plan draws
    /// nothing and reproduces the fault-free schedule byte-identically.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Override the checkpoint-restart backoff (default: 5 min doubling
    /// to a 1-hour cap, no jitter, never giving up — a preempted job is
    /// requeued, not abandoned).
    pub fn with_restart_policy(mut self, policy: RetryPolicy) -> Self {
        self.restart_policy = policy;
        self
    }

    /// Attach a telemetry handle (builder style). The simulator emits
    /// `job.start`/`job.complete` events, a `sched.wait` histogram, and a
    /// `sched.queue_depth.max` gauge through it.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Run the trace to completion and return the schedule.
    ///
    /// Panics if any job requests more GPUs than the cluster has (such a
    /// job could never start under any policy); [`SchedSim::try_run`] is
    /// the non-panicking form.
    pub fn run(self, jobs: &[Job]) -> Schedule {
        self.try_run(jobs)
            .expect("trace contains a job the cluster can never run")
    }

    /// Run the trace to completion, or reject it with a typed error if
    /// any job could never start.
    pub fn try_run(mut self, jobs: &[Job]) -> Result<Schedule, SchedError> {
        let total_gpus = self.cluster.total_gpus();
        for j in jobs {
            if j.gpus > total_gpus {
                return Err(SchedError::OversizedJob {
                    id: j.id,
                    gpus: j.gpus,
                    total: total_gpus,
                });
            }
        }
        let mut arrivals: Vec<Job> = jobs.to_vec();
        arrivals.sort_by_key(|j| (j.submit, j.id));
        let mut arrivals = arrivals.into_iter().peekable();

        let mut completions: EventQueue<usize> = EventQueue::new();
        let mut running: Vec<Running> = Vec::new();
        let mut outcomes: Vec<JobOutcome> = Vec::new();
        let mut queue: Vec<Job> = Vec::new();
        let mut usage_gpu_hours: HashMap<u32, f64> = HashMap::new();
        // Checkpoint-restart state. `requeues` holds preempted jobs
        // waiting out their restart backoff; `preempted` maps a running
        // outcome index to the duration left when the reclaim hits;
        // `discarded` flags partial-segment outcomes dropped from the
        // final schedule (the restarted run supersedes them).
        let mut requeues: EventQueue<Job> = EventQueue::new();
        let mut restart_counts: HashMap<JobId, u32> = HashMap::new();
        let mut preempted: HashMap<usize, SimDuration> = HashMap::new();
        let mut discarded: Vec<bool> = Vec::new();

        loop {
            let Some(now) = [
                arrivals.peek().map(|j| j.submit),
                requeues.peek_time(),
                completions.peek_time(),
            ]
            .into_iter()
            .flatten()
            .min() else {
                break;
            };
            // Free completed jobs first so arrivals at `now` can use them.
            for (end, idx) in completions.pop_due(now) {
                // detlint::allow(DL008): completion indices are outcome positions recorded at start
                self.cluster.release(&outcomes[idx].allocation);
                running.retain(|r| r.outcome_idx != idx);
                if let Some(remaining) = preempted.remove(&idx) {
                    // Spot reclaim: the segment checkpointed at `end`;
                    // requeue the rest of the job after a backoff.
                    // detlint::allow(DL008): completion indices are outcome positions recorded at start
                    discarded[idx] = true;
                    // detlint::allow(DL008): completion indices are outcome positions recorded at start
                    let job = outcomes[idx].job.clone();
                    let count = restart_counts.entry(job.id).or_insert(0);
                    *count += 1;
                    let restarts_now = *count;
                    self.telemetry.instant(end, "fault.inject", || {
                        vec![
                            ("kind", FaultKind::SpotPreempt.name().into()),
                            ("job", job.id.0.into()),
                        ]
                    });
                    self.telemetry.instant(end, "job.preempt", || {
                        vec![
                            ("id", job.id.0.into()),
                            ("remaining_min", remaining.0.into()),
                            ("restarts", restarts_now.into()),
                        ]
                    });
                    self.telemetry.counter_add("sched.preemptions", 1);
                    let site = site_key(&format!("job-{}", job.id.0));
                    let delay = self
                        .restart_policy
                        .backoff(self.faults.seed(), site, restarts_now)
                        .unwrap_or(SimDuration(1));
                    let resubmit = end + delay;
                    requeues.push(
                        resubmit,
                        Job {
                            duration: remaining,
                            submit: resubmit,
                            ..job
                        },
                    );
                } else {
                    // detlint::allow(DL008): completion indices are outcome positions recorded at start
                    let o = &outcomes[idx];
                    self.telemetry.instant(end, "job.complete", || {
                        vec![
                            ("id", o.job.id.0.into()),
                            ("user", o.job.user.into()),
                            ("gpus", o.job.gpus.into()),
                        ]
                    });
                }
            }
            for (_, job) in requeues.pop_due(now) {
                queue.push(job);
            }
            while arrivals.peek().is_some_and(|j| j.submit <= now) {
                // detlint::allow(DL008): guarded by the peek in the loop condition
                queue.push(arrivals.next().expect("peeked"));
            }
            self.telemetry
                .gauge_max("sched.queue_depth.max", queue.len() as f64);
            self.try_start(
                now,
                &mut queue,
                &mut running,
                &mut outcomes,
                &mut completions,
                &mut usage_gpu_hours,
                &restart_counts,
                &mut preempted,
                &mut discarded,
            );
        }
        debug_assert!(queue.is_empty(), "jobs left queued at end of trace");
        let outcomes = outcomes
            .into_iter()
            .zip(discarded)
            .filter_map(|(o, d)| (!d).then_some(o))
            .collect();
        Ok(Schedule {
            outcomes,
            total_gpus,
        })
    }

    /// Queue order for this policy: indices into `queue`.
    fn ordered(&self, queue: &[Job], usage: &HashMap<u32, f64>) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..queue.len()).collect();
        match self.policy {
            Policy::Fcfs | Policy::EasyBackfill => {
                // detlint::allow(DL008): `idx` holds indices from 0..queue.len()
                idx.sort_by_key(|&i| (queue[i].submit, queue[i].id));
            }
            Policy::FairShare { .. } => {
                idx.sort_by(|&a, &b| {
                    // detlint::allow(DL008): `idx` holds indices from 0..queue.len()
                    let ua = usage.get(&queue[a].user).copied().unwrap_or(0.0);
                    // detlint::allow(DL008): `idx` holds indices from 0..queue.len()
                    let ub = usage.get(&queue[b].user).copied().unwrap_or(0.0);
                    ua.total_cmp(&ub)
                        // detlint::allow(DL008): `idx` holds indices from 0..queue.len()
                        .then(queue[a].submit.cmp(&queue[b].submit))
                        // detlint::allow(DL008): `idx` holds indices from 0..queue.len()
                        .then(queue[a].id.cmp(&queue[b].id))
                });
            }
        }
        idx
    }

    #[allow(clippy::too_many_arguments)]
    fn start_job(
        &mut self,
        now: SimTime,
        job: Job,
        alloc: Vec<(usize, u32)>,
        restarts: u32,
        running: &mut Vec<Running>,
        outcomes: &mut Vec<JobOutcome>,
        completions: &mut EventQueue<usize>,
        usage: &mut HashMap<u32, f64>,
        preempted: &mut HashMap<usize, SimDuration>,
        discarded: &mut Vec<bool>,
    ) {
        self.cluster.allocate(&alloc);
        let idx = outcomes.len();
        let mut end = now + job.duration;
        // Draw the spot-reclaim decision for this run segment. The
        // reclaim lands 10–90% of the way through, so every segment
        // makes progress and restart chains terminate.
        let site = site_key(&format!("job-{}", job.id.0));
        if self
            .faults
            .fires(FaultKind::SpotPreempt, None, site, restarts)
        {
            let frac = self
                .faults
                .fraction(FaultKind::SpotPreempt, site, restarts, 0.1, 0.9);
            let seg = SimDuration(((job.duration.0 as f64 * frac).ceil() as u64).max(1))
                .min(job.duration);
            if seg < job.duration {
                end = now + seg;
                preempted.insert(idx, SimDuration(job.duration.0 - seg.0));
            }
        }
        // Fair-share usage accrues for the time actually occupied.
        *usage.entry(job.user).or_insert(0.0) += job.gpus as f64 * end.since(now).as_hours_f64();
        let wait = now.since(job.submit);
        self.telemetry.instant(now, "job.start", || {
            vec![
                ("id", job.id.0.into()),
                ("user", job.user.into()),
                ("gpus", job.gpus.into()),
                ("wait_min", wait.0.into()),
            ]
        });
        self.telemetry.observe("sched.wait", wait);
        self.telemetry.counter_add("sched.jobs_started", 1);
        running.push(Running {
            end,
            gpus: job.gpus,
            outcome_idx: idx,
        });
        completions.push(end, idx);
        discarded.push(false);
        outcomes.push(JobOutcome {
            job,
            start: now,
            end,
            allocation: alloc,
            restarts,
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn try_start(
        &mut self,
        now: SimTime,
        queue: &mut Vec<Job>,
        running: &mut Vec<Running>,
        outcomes: &mut Vec<JobOutcome>,
        completions: &mut EventQueue<usize>,
        usage: &mut HashMap<u32, f64>,
        restart_counts: &HashMap<JobId, u32>,
        preempted: &mut HashMap<usize, SimDuration>,
        discarded: &mut Vec<bool>,
    ) {
        // Greedy head-start loop: keep starting the (policy-ordered) head
        // while it fits.
        loop {
            if queue.is_empty() {
                return;
            }
            let order = self.ordered(queue, usage);
            // detlint::allow(DL008): queue proved non-empty above; `ordered` is a permutation of it
            let head = order[0];
            // detlint::allow(DL008): `head` is an index from `ordered`, a permutation of 0..queue.len()
            match self.cluster.plan(queue[head].gpus, self.placement) {
                Some(plan) => {
                    let job = queue.remove(head);
                    let restarts = restart_counts.get(&job.id).copied().unwrap_or(0);
                    self.start_job(
                        now,
                        job,
                        plan,
                        restarts,
                        running,
                        outcomes,
                        completions,
                        usage,
                        preempted,
                        discarded,
                    );
                }
                None => break,
            }
        }
        // Head is blocked. Backfill if the policy allows it.
        let backfill = matches!(
            self.policy,
            Policy::EasyBackfill | Policy::FairShare { backfill: true }
        );
        if !backfill {
            return;
        }
        let order = self.ordered(queue, usage);
        // detlint::allow(DL008): queue is non-empty here (the greedy loop returns when it drains)
        let head_job = queue[order[0]].clone();
        // Shadow time: earliest instant the head could start, accumulating
        // GPUs released by running jobs in end order.
        let mut frees: Vec<(SimTime, u32)> = running.iter().map(|r| (r.end, r.gpus)).collect();
        frees.sort_unstable_by_key(|&(t, _)| t);
        let mut avail = self.cluster.free_gpus();
        let mut shadow: Option<SimTime> = None;
        let mut extra: u32 = 0;
        for (end, g) in frees {
            avail += g;
            if avail >= head_job.gpus {
                shadow = Some(end);
                extra = avail - head_job.gpus;
                break;
            }
        }
        let Some(shadow) = shadow else {
            // Head cannot ever fit given the running set — impossible since
            // job sizes are validated against total capacity and running
            // jobs all terminate.
            // detlint::allow(DL008): job sizes are validated against total capacity on entry
            unreachable!("head job larger than cluster capacity");
        };
        // Scan the rest of the queue (policy order) for backfill starts.
        // detlint::allow(DL008): `order` is a non-empty permutation of 0..queue.len()
        let candidates: Vec<crate::job::JobId> = order[1..].iter().map(|&i| queue[i].id).collect();
        for id in candidates {
            let Some(pos) = queue.iter().position(|j| j.id == id) else {
                continue;
            };
            // detlint::allow(DL008): `pos` was just returned by position() on this queue
            let job = &queue[pos];
            let Some(plan) = self.cluster.plan(job.gpus, self.placement) else {
                continue;
            };
            let finishes_before_shadow = now + job.duration <= shadow;
            let within_extra = job.gpus <= extra;
            if finishes_before_shadow || within_extra {
                if !finishes_before_shadow {
                    extra -= job.gpus;
                }
                let job = queue.remove(pos);
                let restarts = restart_counts.get(&job.id).copied().unwrap_or(0);
                self.start_job(
                    now,
                    job,
                    plan,
                    restarts,
                    running,
                    outcomes,
                    completions,
                    usage,
                    preempted,
                    discarded,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;
    use opml_simkernel::SimDuration;

    fn job(id: u64, user: u32, gpus: u32, hours: u64, submit_h: u64) -> Job {
        Job {
            id: JobId(id),
            user,
            gpus,
            duration: SimDuration::hours(hours),
            submit: SimTime(submit_h * 60),
        }
    }

    #[test]
    fn fcfs_head_of_line_blocks() {
        // 4 GPUs. j0 takes all 4 for 4h. j1 (arrives t=1h) needs 4 → waits.
        // j2 (arrives t=1h) needs 1 for 1h → under FCFS it must wait behind
        // j1 even though a GPU is... no: j0 holds all 4, so nothing fits
        // anyway. Use: j0 takes 3 for 4h; j1 needs 4; j2 needs 1 for 1h.
        let jobs = vec![job(0, 0, 3, 4, 0), job(1, 1, 4, 2, 1), job(2, 2, 1, 1, 1)];
        let cluster = Cluster::homogeneous(1, 4);
        let fcfs = SchedSim::new(cluster.clone(), Policy::Fcfs, Placement::Packed).run(&jobs);
        let o2 = fcfs
            .outcomes()
            .iter()
            .find(|o| o.job.id == JobId(2))
            .unwrap();
        // FCFS: j2 waits for j1 which waits for j0's release at t=4h.
        assert!(o2.start >= SimTime(4 * 60), "j2 started at {:?}", o2.start);

        let easy = SchedSim::new(cluster, Policy::EasyBackfill, Placement::Packed).run(&jobs);
        let o2 = easy
            .outcomes()
            .iter()
            .find(|o| o.job.id == JobId(2))
            .unwrap();
        // EASY: j2 fits in the free GPU and ends (t=2h) before the shadow
        // time (t=4h) → backfills immediately at its arrival.
        assert_eq!(o2.start, SimTime(60));
    }

    #[test]
    fn backfill_never_delays_head() {
        // The backfilled job must not push the head job's start later.
        let jobs = vec![job(0, 0, 3, 4, 0), job(1, 1, 4, 2, 1), job(2, 2, 1, 10, 1)];
        let cluster = Cluster::homogeneous(1, 4);
        let easy = SchedSim::new(cluster, Policy::EasyBackfill, Placement::Packed).run(&jobs);
        let o1 = easy
            .outcomes()
            .iter()
            .find(|o| o.job.id == JobId(1))
            .unwrap();
        let o2 = easy
            .outcomes()
            .iter()
            .find(|o| o.job.id == JobId(2))
            .unwrap();
        // j2 runs 10h > shadow (4h) and extra = (4+3)-4 = ... after j0's
        // release avail=4, head takes 4, extra=0 → j2 may NOT backfill.
        assert_eq!(o1.start, SimTime(4 * 60), "head delayed by backfill");
        assert!(o2.start >= o1.start);
    }

    #[test]
    fn jobs_all_complete_exactly_once() {
        let jobs: Vec<Job> = (0..50)
            .map(|i| job(i, (i % 5) as u32, 1 + (i % 4) as u32, 1 + i % 3, i / 2))
            .collect();
        for policy in Policy::ALL {
            let s = SchedSim::new(Cluster::homogeneous(2, 4), policy, Placement::Packed).run(&jobs);
            assert_eq!(s.outcomes().len(), jobs.len(), "{}", policy.name());
            let mut ids: Vec<u64> = s.outcomes().iter().map(|o| o.job.id.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), jobs.len(), "{}: duplicate starts", policy.name());
        }
    }

    #[test]
    fn no_start_before_submit() {
        let jobs: Vec<Job> = (0..40).map(|i| job(i, 0, 2, 2, 5 + i)).collect();
        let s = SchedSim::new(
            Cluster::homogeneous(2, 2),
            Policy::EasyBackfill,
            Placement::Packed,
        )
        .run(&jobs);
        for o in s.outcomes() {
            assert!(o.start >= o.job.submit);
            assert_eq!(o.end, o.start + o.job.duration);
        }
    }

    #[test]
    fn gpu_capacity_never_exceeded() {
        let jobs: Vec<Job> = (0..60)
            .map(|i| job(i, (i % 7) as u32, 1 + (i % 8) as u32, 1 + i % 5, i / 3))
            .collect();
        let s = SchedSim::new(
            Cluster::homogeneous(2, 4),
            Policy::EasyBackfill,
            Placement::Packed,
        )
        .run(&jobs);
        // Sweep: at every start instant, the sum of overlapping jobs' GPUs
        // must be within capacity.
        for o in s.outcomes() {
            let t = o.start;
            let in_flight: u32 = s
                .outcomes()
                .iter()
                .filter(|x| x.start <= t && t < x.end)
                .map(|x| x.job.gpus)
                .sum();
            assert!(in_flight <= 8, "{} GPUs in flight at {:?}", in_flight, t);
        }
    }

    #[test]
    fn fair_share_prioritizes_starved_user() {
        // User 0 floods the queue; user 1 submits one job slightly later.
        let mut jobs: Vec<Job> = (0..8).map(|i| job(i, 0, 4, 4, 0)).collect();
        jobs.push(job(100, 1, 4, 1, 1));
        let cluster = Cluster::homogeneous(1, 4);
        let fcfs = SchedSim::new(cluster.clone(), Policy::Fcfs, Placement::Packed).run(&jobs);
        let fair = SchedSim::new(
            cluster,
            Policy::FairShare { backfill: false },
            Placement::Packed,
        )
        .run(&jobs);
        let wait = |s: &Schedule| {
            s.outcomes()
                .iter()
                .find(|o| o.job.id == JobId(100))
                .unwrap()
                .wait_hours()
        };
        assert!(
            wait(&fair) < wait(&fcfs),
            "fair share should serve the starved user sooner ({} vs {})",
            wait(&fair),
            wait(&fcfs)
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let jobs: Vec<Job> = (0..80)
            .map(|i| job(i, (i % 6) as u32, 1 + (i % 4) as u32, 1 + i % 6, i / 4))
            .collect();
        let run = || {
            SchedSim::new(
                Cluster::homogeneous(4, 4),
                Policy::EasyBackfill,
                Placement::Packed,
            )
            .run(&jobs)
            .outcomes()
            .iter()
            .map(|o| (o.job.id.0, o.start.0))
            .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn telemetry_balances_starts_and_completions() {
        use opml_telemetry::MemorySink;
        let sink = MemorySink::new();
        let telemetry = Telemetry::with_sink(sink.clone());
        let jobs: Vec<Job> = (0..10).map(|i| job(i, 0, 2, 2, i)).collect();
        let s = SchedSim::new(Cluster::homogeneous(1, 4), Policy::Fcfs, Placement::Packed)
            .with_telemetry(telemetry.clone())
            .run(&jobs);
        assert_eq!(s.outcomes().len(), 10);
        let events = sink.events();
        let starts = events.iter().filter(|e| e.name == "job.start").count();
        let completes = events.iter().filter(|e| e.name == "job.complete").count();
        assert_eq!(starts, 10);
        assert_eq!(completes, 10);
        let metrics = telemetry.metrics_snapshot();
        assert_eq!(metrics.counters["sched.jobs_started"], 10);
        assert_eq!(metrics.histograms["sched.wait"].count, 10);
        assert!(metrics.gauges["sched.queue_depth.max"] >= 1.0);
    }

    #[test]
    #[should_panic(expected = "can never run")]
    fn oversized_job_panics() {
        let jobs = vec![job(0, 0, 99, 1, 0)];
        SchedSim::new(Cluster::homogeneous(1, 4), Policy::Fcfs, Placement::Packed).run(&jobs);
    }

    #[test]
    fn oversized_job_is_a_typed_error() {
        let jobs = vec![job(0, 0, 99, 1, 0)];
        let err = SchedSim::new(Cluster::homogeneous(1, 4), Policy::Fcfs, Placement::Packed)
            .try_run(&jobs)
            .unwrap_err();
        assert!(matches!(
            err,
            SchedError::OversizedJob {
                gpus: 99,
                total: 4,
                ..
            }
        ));
        assert!(err.to_string().contains("wants 99 GPUs"));
    }

    #[test]
    fn preempted_jobs_checkpoint_and_complete() {
        use opml_faults::FaultRates;
        let jobs: Vec<Job> = (0..25)
            .map(|i| job(i, (i % 3) as u32, 1 + (i % 4) as u32, 2 + i % 5, i / 2))
            .collect();
        let mut rates = FaultRates::none();
        rates.spot_preempt = 0.6;
        let run = || {
            SchedSim::new(
                Cluster::homogeneous(2, 4),
                Policy::EasyBackfill,
                Placement::Packed,
            )
            .with_faults(FaultPlan::new(9, rates.clone()))
            .run(&jobs)
        };
        let s = run();
        // Every job completes exactly once despite reclaims.
        assert_eq!(s.outcomes().len(), jobs.len());
        let mut ids: Vec<u64> = s.outcomes().iter().map(|o| o.job.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), jobs.len(), "duplicate or lost jobs");
        let total_restarts: u32 = s.outcomes().iter().map(|o| o.restarts).sum();
        assert!(total_restarts > 0, "no preemptions fired at a 60% rate");
        // The final segment runs its remaining duration to completion.
        for o in s.outcomes() {
            assert_eq!(o.end, o.start + o.job.duration);
            assert!(o.start >= o.job.submit);
        }
        // Faulty schedules replay deterministically.
        let again = run();
        let key = |s: &Schedule| {
            s.outcomes()
                .iter()
                .map(|o| (o.job.id.0, o.start.0, o.end.0, o.restarts))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&s), key(&again));
    }

    #[test]
    fn inert_plan_reproduces_fault_free_schedule() {
        let jobs: Vec<Job> = (0..40)
            .map(|i| job(i, (i % 5) as u32, 1 + (i % 4) as u32, 1 + i % 6, i / 3))
            .collect();
        let base = SchedSim::new(
            Cluster::homogeneous(2, 4),
            Policy::FairShare { backfill: true },
            Placement::Packed,
        )
        .run(&jobs);
        let inert = SchedSim::new(
            Cluster::homogeneous(2, 4),
            Policy::FairShare { backfill: true },
            Placement::Packed,
        )
        .with_faults(FaultPlan::none())
        .run(&jobs);
        let key = |s: &Schedule| {
            s.outcomes()
                .iter()
                .map(|o| (o.job.id.0, o.start.0, o.end.0, o.restarts))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&base), key(&inert));
    }
}
