//! The event-driven scheduling simulator.

use crate::cluster::{Cluster, Placement};
use crate::job::{Job, JobOutcome};
use crate::metrics::ScheduleMetrics;
use crate::policy::Policy;
use opml_simkernel::{EventQueue, SimTime};
use opml_telemetry::Telemetry;
use std::collections::HashMap;

/// The result of running a trace through a policy.
#[derive(Debug, Clone)]
pub struct Schedule {
    outcomes: Vec<JobOutcome>,
    total_gpus: u32,
}

impl Schedule {
    /// Per-job outcomes, in start order.
    pub fn outcomes(&self) -> &[JobOutcome] {
        &self.outcomes
    }

    /// GPUs in the cluster the schedule ran on.
    pub fn total_gpus(&self) -> u32 {
        self.total_gpus
    }

    /// Aggregate metrics.
    pub fn metrics(&self) -> ScheduleMetrics {
        ScheduleMetrics::of(self)
    }
}

/// Simulator: a cluster, a policy, and a placement rule.
#[derive(Debug, Clone)]
pub struct SchedSim {
    cluster: Cluster,
    policy: Policy,
    placement: Placement,
    telemetry: Telemetry,
}

/// A job running on the cluster (for shadow-time computation).
struct Running {
    end: SimTime,
    gpus: u32,
    outcome_idx: usize,
}

impl SchedSim {
    /// Build a simulator.
    pub fn new(cluster: Cluster, policy: Policy, placement: Placement) -> Self {
        SchedSim {
            cluster,
            policy,
            placement,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry handle (builder style). The simulator emits
    /// `job.start`/`job.complete` events, a `sched.wait` histogram, and a
    /// `sched.queue_depth.max` gauge through it.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Run the trace to completion and return the schedule.
    ///
    /// Panics if any job requests more GPUs than the cluster has (such a
    /// job could never start under any policy).
    pub fn run(mut self, jobs: &[Job]) -> Schedule {
        let total_gpus = self.cluster.total_gpus();
        for j in jobs {
            assert!(
                j.gpus <= total_gpus,
                "job {:?} wants {} GPUs but the cluster has {}",
                j.id,
                j.gpus,
                total_gpus
            );
        }
        let mut arrivals: Vec<Job> = jobs.to_vec();
        arrivals.sort_by_key(|j| (j.submit, j.id));
        let mut arrivals = arrivals.into_iter().peekable();

        let mut completions: EventQueue<usize> = EventQueue::new();
        let mut running: Vec<Running> = Vec::new();
        let mut outcomes: Vec<JobOutcome> = Vec::new();
        let mut queue: Vec<Job> = Vec::new();
        let mut usage_gpu_hours: HashMap<u32, f64> = HashMap::new();

        loop {
            let next_arrival = arrivals.peek().map(|j| j.submit);
            let next_completion = completions.peek_time();
            let now = match (next_arrival, next_completion) {
                (None, None) => break,
                (Some(a), None) => a,
                (None, Some(c)) => c,
                (Some(a), Some(c)) => a.min(c),
            };
            // Free completed jobs first so arrivals at `now` can use them.
            for (end, idx) in completions.pop_due(now) {
                self.cluster.release(&outcomes[idx].allocation);
                running.retain(|r| r.outcome_idx != idx);
                let o = &outcomes[idx];
                self.telemetry.instant(end, "job.complete", || {
                    vec![
                        ("id", o.job.id.0.into()),
                        ("user", o.job.user.into()),
                        ("gpus", o.job.gpus.into()),
                    ]
                });
            }
            while arrivals.peek().is_some_and(|j| j.submit <= now) {
                queue.push(arrivals.next().expect("peeked"));
            }
            self.telemetry
                .gauge_max("sched.queue_depth.max", queue.len() as f64);
            self.try_start(
                now,
                &mut queue,
                &mut running,
                &mut outcomes,
                &mut completions,
                &mut usage_gpu_hours,
            );
        }
        debug_assert!(queue.is_empty(), "jobs left queued at end of trace");
        Schedule {
            outcomes,
            total_gpus,
        }
    }

    /// Queue order for this policy: indices into `queue`.
    fn ordered(&self, queue: &[Job], usage: &HashMap<u32, f64>) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..queue.len()).collect();
        match self.policy {
            Policy::Fcfs | Policy::EasyBackfill => {
                idx.sort_by_key(|&i| (queue[i].submit, queue[i].id));
            }
            Policy::FairShare { .. } => {
                idx.sort_by(|&a, &b| {
                    let ua = usage.get(&queue[a].user).copied().unwrap_or(0.0);
                    let ub = usage.get(&queue[b].user).copied().unwrap_or(0.0);
                    ua.partial_cmp(&ub)
                        .expect("usage is never NaN")
                        .then(queue[a].submit.cmp(&queue[b].submit))
                        .then(queue[a].id.cmp(&queue[b].id))
                });
            }
        }
        idx
    }

    #[allow(clippy::too_many_arguments)]
    fn start_job(
        &mut self,
        now: SimTime,
        job: Job,
        alloc: Vec<(usize, u32)>,
        running: &mut Vec<Running>,
        outcomes: &mut Vec<JobOutcome>,
        completions: &mut EventQueue<usize>,
        usage: &mut HashMap<u32, f64>,
    ) {
        self.cluster.allocate(&alloc);
        let end = now + job.duration;
        *usage.entry(job.user).or_insert(0.0) += job.gpus as f64 * job.duration.as_hours_f64();
        let wait = now.since(job.submit);
        self.telemetry.instant(now, "job.start", || {
            vec![
                ("id", job.id.0.into()),
                ("user", job.user.into()),
                ("gpus", job.gpus.into()),
                ("wait_min", wait.0.into()),
            ]
        });
        self.telemetry.observe("sched.wait", wait);
        self.telemetry.counter_add("sched.jobs_started", 1);
        let idx = outcomes.len();
        running.push(Running {
            end,
            gpus: job.gpus,
            outcome_idx: idx,
        });
        completions.push(end, idx);
        outcomes.push(JobOutcome {
            job,
            start: now,
            end,
            allocation: alloc,
        });
    }

    fn try_start(
        &mut self,
        now: SimTime,
        queue: &mut Vec<Job>,
        running: &mut Vec<Running>,
        outcomes: &mut Vec<JobOutcome>,
        completions: &mut EventQueue<usize>,
        usage: &mut HashMap<u32, f64>,
    ) {
        // Greedy head-start loop: keep starting the (policy-ordered) head
        // while it fits.
        loop {
            if queue.is_empty() {
                return;
            }
            let order = self.ordered(queue, usage);
            let head = order[0];
            match self.cluster.plan(queue[head].gpus, self.placement) {
                Some(plan) => {
                    let job = queue.remove(head);
                    self.start_job(now, job, plan, running, outcomes, completions, usage);
                }
                None => break,
            }
        }
        // Head is blocked. Backfill if the policy allows it.
        let backfill = matches!(
            self.policy,
            Policy::EasyBackfill | Policy::FairShare { backfill: true }
        );
        if !backfill {
            return;
        }
        let order = self.ordered(queue, usage);
        let head_job = queue[order[0]].clone();
        // Shadow time: earliest instant the head could start, accumulating
        // GPUs released by running jobs in end order.
        let mut frees: Vec<(SimTime, u32)> = running.iter().map(|r| (r.end, r.gpus)).collect();
        frees.sort_unstable_by_key(|&(t, _)| t);
        let mut avail = self.cluster.free_gpus();
        let mut shadow: Option<SimTime> = None;
        let mut extra: u32 = 0;
        for (end, g) in frees {
            avail += g;
            if avail >= head_job.gpus {
                shadow = Some(end);
                extra = avail - head_job.gpus;
                break;
            }
        }
        let Some(shadow) = shadow else {
            // Head cannot ever fit given the running set — impossible since
            // job sizes are validated against total capacity and running
            // jobs all terminate.
            unreachable!("head job larger than cluster capacity");
        };
        // Scan the rest of the queue (policy order) for backfill starts.
        let candidates: Vec<crate::job::JobId> = order[1..].iter().map(|&i| queue[i].id).collect();
        for id in candidates {
            let Some(pos) = queue.iter().position(|j| j.id == id) else {
                continue;
            };
            let job = &queue[pos];
            let Some(plan) = self.cluster.plan(job.gpus, self.placement) else {
                continue;
            };
            let finishes_before_shadow = now + job.duration <= shadow;
            let within_extra = job.gpus <= extra;
            if finishes_before_shadow || within_extra {
                if !finishes_before_shadow {
                    extra -= job.gpus;
                }
                let job = queue.remove(pos);
                self.start_job(now, job, plan, running, outcomes, completions, usage);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;
    use opml_simkernel::SimDuration;

    fn job(id: u64, user: u32, gpus: u32, hours: u64, submit_h: u64) -> Job {
        Job {
            id: JobId(id),
            user,
            gpus,
            duration: SimDuration::hours(hours),
            submit: SimTime(submit_h * 60),
        }
    }

    #[test]
    fn fcfs_head_of_line_blocks() {
        // 4 GPUs. j0 takes all 4 for 4h. j1 (arrives t=1h) needs 4 → waits.
        // j2 (arrives t=1h) needs 1 for 1h → under FCFS it must wait behind
        // j1 even though a GPU is... no: j0 holds all 4, so nothing fits
        // anyway. Use: j0 takes 3 for 4h; j1 needs 4; j2 needs 1 for 1h.
        let jobs = vec![job(0, 0, 3, 4, 0), job(1, 1, 4, 2, 1), job(2, 2, 1, 1, 1)];
        let cluster = Cluster::homogeneous(1, 4);
        let fcfs = SchedSim::new(cluster.clone(), Policy::Fcfs, Placement::Packed).run(&jobs);
        let o2 = fcfs
            .outcomes()
            .iter()
            .find(|o| o.job.id == JobId(2))
            .unwrap();
        // FCFS: j2 waits for j1 which waits for j0's release at t=4h.
        assert!(o2.start >= SimTime(4 * 60), "j2 started at {:?}", o2.start);

        let easy = SchedSim::new(cluster, Policy::EasyBackfill, Placement::Packed).run(&jobs);
        let o2 = easy
            .outcomes()
            .iter()
            .find(|o| o.job.id == JobId(2))
            .unwrap();
        // EASY: j2 fits in the free GPU and ends (t=2h) before the shadow
        // time (t=4h) → backfills immediately at its arrival.
        assert_eq!(o2.start, SimTime(60));
    }

    #[test]
    fn backfill_never_delays_head() {
        // The backfilled job must not push the head job's start later.
        let jobs = vec![job(0, 0, 3, 4, 0), job(1, 1, 4, 2, 1), job(2, 2, 1, 10, 1)];
        let cluster = Cluster::homogeneous(1, 4);
        let easy = SchedSim::new(cluster, Policy::EasyBackfill, Placement::Packed).run(&jobs);
        let o1 = easy
            .outcomes()
            .iter()
            .find(|o| o.job.id == JobId(1))
            .unwrap();
        let o2 = easy
            .outcomes()
            .iter()
            .find(|o| o.job.id == JobId(2))
            .unwrap();
        // j2 runs 10h > shadow (4h) and extra = (4+3)-4 = ... after j0's
        // release avail=4, head takes 4, extra=0 → j2 may NOT backfill.
        assert_eq!(o1.start, SimTime(4 * 60), "head delayed by backfill");
        assert!(o2.start >= o1.start);
    }

    #[test]
    fn jobs_all_complete_exactly_once() {
        let jobs: Vec<Job> = (0..50)
            .map(|i| job(i, (i % 5) as u32, 1 + (i % 4) as u32, 1 + i % 3, i / 2))
            .collect();
        for policy in Policy::ALL {
            let s = SchedSim::new(Cluster::homogeneous(2, 4), policy, Placement::Packed).run(&jobs);
            assert_eq!(s.outcomes().len(), jobs.len(), "{}", policy.name());
            let mut ids: Vec<u64> = s.outcomes().iter().map(|o| o.job.id.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), jobs.len(), "{}: duplicate starts", policy.name());
        }
    }

    #[test]
    fn no_start_before_submit() {
        let jobs: Vec<Job> = (0..40).map(|i| job(i, 0, 2, 2, 5 + i)).collect();
        let s = SchedSim::new(
            Cluster::homogeneous(2, 2),
            Policy::EasyBackfill,
            Placement::Packed,
        )
        .run(&jobs);
        for o in s.outcomes() {
            assert!(o.start >= o.job.submit);
            assert_eq!(o.end, o.start + o.job.duration);
        }
    }

    #[test]
    fn gpu_capacity_never_exceeded() {
        let jobs: Vec<Job> = (0..60)
            .map(|i| job(i, (i % 7) as u32, 1 + (i % 8) as u32, 1 + i % 5, i / 3))
            .collect();
        let s = SchedSim::new(
            Cluster::homogeneous(2, 4),
            Policy::EasyBackfill,
            Placement::Packed,
        )
        .run(&jobs);
        // Sweep: at every start instant, the sum of overlapping jobs' GPUs
        // must be within capacity.
        for o in s.outcomes() {
            let t = o.start;
            let in_flight: u32 = s
                .outcomes()
                .iter()
                .filter(|x| x.start <= t && t < x.end)
                .map(|x| x.job.gpus)
                .sum();
            assert!(in_flight <= 8, "{} GPUs in flight at {:?}", in_flight, t);
        }
    }

    #[test]
    fn fair_share_prioritizes_starved_user() {
        // User 0 floods the queue; user 1 submits one job slightly later.
        let mut jobs: Vec<Job> = (0..8).map(|i| job(i, 0, 4, 4, 0)).collect();
        jobs.push(job(100, 1, 4, 1, 1));
        let cluster = Cluster::homogeneous(1, 4);
        let fcfs = SchedSim::new(cluster.clone(), Policy::Fcfs, Placement::Packed).run(&jobs);
        let fair = SchedSim::new(
            cluster,
            Policy::FairShare { backfill: false },
            Placement::Packed,
        )
        .run(&jobs);
        let wait = |s: &Schedule| {
            s.outcomes()
                .iter()
                .find(|o| o.job.id == JobId(100))
                .unwrap()
                .wait_hours()
        };
        assert!(
            wait(&fair) < wait(&fcfs),
            "fair share should serve the starved user sooner ({} vs {})",
            wait(&fair),
            wait(&fcfs)
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let jobs: Vec<Job> = (0..80)
            .map(|i| job(i, (i % 6) as u32, 1 + (i % 4) as u32, 1 + i % 6, i / 4))
            .collect();
        let run = || {
            SchedSim::new(
                Cluster::homogeneous(4, 4),
                Policy::EasyBackfill,
                Placement::Packed,
            )
            .run(&jobs)
            .outcomes()
            .iter()
            .map(|o| (o.job.id.0, o.start.0))
            .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn telemetry_balances_starts_and_completions() {
        use opml_telemetry::MemorySink;
        let sink = MemorySink::new();
        let telemetry = Telemetry::with_sink(sink.clone());
        let jobs: Vec<Job> = (0..10).map(|i| job(i, 0, 2, 2, i)).collect();
        let s = SchedSim::new(Cluster::homogeneous(1, 4), Policy::Fcfs, Placement::Packed)
            .with_telemetry(telemetry.clone())
            .run(&jobs);
        assert_eq!(s.outcomes().len(), 10);
        let events = sink.events();
        let starts = events.iter().filter(|e| e.name == "job.start").count();
        let completes = events.iter().filter(|e| e.name == "job.complete").count();
        assert_eq!(starts, 10);
        assert_eq!(completes, 10);
        let metrics = telemetry.metrics_snapshot();
        assert_eq!(metrics.counters["sched.jobs_started"], 10);
        assert_eq!(metrics.histograms["sched.wait"].count, 10);
        assert!(metrics.gauges["sched.queue_depth.max"] >= 1.0);
    }

    #[test]
    #[should_panic(expected = "wants")]
    fn oversized_job_panics() {
        let jobs = vec![job(0, 0, 99, 1, 0)];
        SchedSim::new(Cluster::homogeneous(1, 4), Policy::Fcfs, Placement::Packed).run(&jobs);
    }
}
