//! The GPU cluster and gang placement.
//!
//! Every job is allocated **gang-style**: all of its GPUs are claimed
//! atomically or the job does not start (§3.5's "gang scheduling"). The
//! [`Placement`] policy decides *which* nodes supply the GPUs:
//!
//! * [`Placement::Packed`] fills the fullest nodes first, minimizing the
//!   number of nodes a job spans (good for all-reduce locality, reduces
//!   fragmentation for future large jobs).
//! * [`Placement::Spread`] fills the emptiest nodes first (what naive
//!   load-balancers do; fragments the cluster — the ablation bench shows
//!   large jobs starving under it).

use serde::{Deserialize, Serialize};

/// Which nodes supply a job's GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Fewest nodes / fullest-first (anti-fragmentation).
    Packed,
    /// Emptiest-first (fragments; baseline for the ablation).
    Spread,
}

/// A cluster of GPU nodes.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// GPUs per node (total capacity).
    capacity: Vec<u32>,
    /// GPUs currently free per node.
    free: Vec<u32>,
}

impl Cluster {
    /// `nodes` identical nodes with `gpus_per_node` GPUs each.
    pub fn homogeneous(nodes: usize, gpus_per_node: u32) -> Self {
        Cluster {
            capacity: vec![gpus_per_node; nodes],
            free: vec![gpus_per_node; nodes],
        }
    }

    /// Heterogeneous cluster from explicit per-node GPU counts.
    pub fn from_nodes(gpus: Vec<u32>) -> Self {
        Cluster {
            free: gpus.clone(),
            capacity: gpus,
        }
    }

    /// Total GPUs in the cluster.
    pub fn total_gpus(&self) -> u32 {
        self.capacity.iter().sum()
    }

    /// GPUs currently free across all nodes.
    pub fn free_gpus(&self) -> u32 {
        self.free.iter().sum()
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.capacity.len()
    }

    /// Free GPUs on one node.
    pub fn free_on(&self, node: usize) -> u32 {
        self.free[node]
    }

    /// Plan a gang allocation of `gpus` without committing it.
    ///
    /// Returns `(node, count)` pairs or `None` if the job cannot start now.
    /// With `Packed`, a job that fits on one node never spans two.
    pub fn plan(&self, gpus: u32, placement: Placement) -> Option<Vec<(usize, u32)>> {
        if gpus == 0 || gpus > self.free_gpus() {
            return None;
        }
        // detlint::allow(DL008): node indices come from 0..self.nodes() == self.free.len()
        let mut order: Vec<usize> = (0..self.nodes()).filter(|&n| self.free[n] > 0).collect();
        match placement {
            // Fullest (least free) first; ties by index for determinism.
            // detlint::allow(DL008): `order` holds indices from 0..self.nodes()
            Placement::Packed => order.sort_by_key(|&n| (self.free[n], n)),
            // Emptiest (most free) first.
            // detlint::allow(DL008): `order` holds indices from 0..self.nodes()
            Placement::Spread => order.sort_by_key(|&n| (u32::MAX - self.free[n], n)),
        }
        // Packed refinement: if any single node can hold the whole job,
        // use the *tightest* such node (best-fit) instead of splitting.
        if placement == Placement::Packed {
            if let Some(&best) = order
                .iter()
                // detlint::allow(DL008): `order` holds indices from 0..self.nodes()
                .filter(|&&n| self.free[n] >= gpus)
                // detlint::allow(DL008): `order` holds indices from 0..self.nodes()
                .min_by_key(|&&n| (self.free[n], n))
            {
                return Some(vec![(best, gpus)]);
            }
        }
        let mut remaining = gpus;
        let mut alloc = Vec::new();
        for n in order {
            if remaining == 0 {
                break;
            }
            // detlint::allow(DL008): `order` holds indices from 0..self.nodes()
            let take = self.free[n].min(remaining);
            alloc.push((n, take));
            remaining -= take;
        }
        if remaining == 0 {
            Some(alloc)
        } else {
            None
        }
    }

    /// Commit a planned allocation.
    pub fn allocate(&mut self, alloc: &[(usize, u32)]) {
        for &(n, g) in alloc {
            assert!(
                // detlint::allow(DL008): allocations are produced by `plan` over valid node indices
                self.free[n] >= g,
                "allocation exceeds free GPUs on node {n}"
            );
            // detlint::allow(DL008): allocations are produced by `plan` over valid node indices
            self.free[n] -= g;
        }
    }

    /// Release an allocation.
    pub fn release(&mut self, alloc: &[(usize, u32)]) {
        for &(n, g) in alloc {
            // detlint::allow(DL008): allocations are produced by `plan` over valid node indices
            self.free[n] += g;
            assert!(
                // detlint::allow(DL008): allocations are produced by `plan` over valid node indices
                self.free[n] <= self.capacity[n],
                "released more than capacity on node {n}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_prefers_single_tight_node() {
        let mut c = Cluster::from_nodes(vec![4, 4, 4]);
        c.allocate(&[(0, 2)]); // node 0 has 2 free, others 4
                               // A 2-GPU job best-fits node 0 exactly.
        let plan = c.plan(2, Placement::Packed).unwrap();
        assert_eq!(plan, vec![(0, 2)]);
        // A 3-GPU job cannot fit node 0, takes a 4-free node.
        let plan3 = c.plan(3, Placement::Packed).unwrap();
        assert_eq!(plan3.len(), 1);
        assert_ne!(plan3[0].0, 0);
    }

    #[test]
    fn spread_uses_emptiest_first() {
        let mut c = Cluster::from_nodes(vec![4, 4]);
        c.allocate(&[(0, 3)]); // node0: 1 free, node1: 4 free
        let plan = c.plan(2, Placement::Spread).unwrap();
        assert_eq!(plan, vec![(1, 2)]);
    }

    #[test]
    fn gang_spans_nodes_when_needed() {
        let c = Cluster::homogeneous(3, 4);
        let plan = c.plan(10, Placement::Packed).unwrap();
        let total: u32 = plan.iter().map(|&(_, g)| g).sum();
        assert_eq!(total, 10);
        assert_eq!(plan.len(), 3);
    }

    #[test]
    fn refuses_oversized_jobs() {
        let c = Cluster::homogeneous(2, 4);
        assert!(c.plan(9, Placement::Packed).is_none());
        assert!(c.plan(0, Placement::Packed).is_none());
    }

    #[test]
    fn allocate_release_roundtrip() {
        let mut c = Cluster::homogeneous(2, 4);
        let plan = c.plan(6, Placement::Packed).unwrap();
        c.allocate(&plan);
        assert_eq!(c.free_gpus(), 2);
        c.release(&plan);
        assert_eq!(c.free_gpus(), 8);
    }

    #[test]
    fn fragmentation_blocks_gang_on_packed_cluster() {
        // 2 nodes × 4 GPUs; two 2-GPU jobs spread out leave 2+2 free: a
        // 4-GPU job that must be gang-placed still *can* run (spanning),
        // but a job needing 4 on one node conceptually can't. Our model
        // allows spanning, so verify free accounting instead.
        let mut c = Cluster::homogeneous(2, 4);
        c.allocate(&c.plan(2, Placement::Spread).unwrap());
        c.allocate(&c.plan(2, Placement::Spread).unwrap());
        assert_eq!(c.free_on(0), 2);
        assert_eq!(c.free_on(1), 2);
        let plan = c.plan(4, Placement::Packed).unwrap();
        assert_eq!(plan.len(), 2, "must span both nodes");
    }
}
