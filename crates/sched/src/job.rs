//! Training jobs and their scheduling outcomes.

use opml_simkernel::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Opaque job identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

/// A GPU training job as submitted.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Job {
    /// Identifier (unique within a trace).
    pub id: JobId,
    /// Submitting user (fair-share accounting key).
    pub user: u32,
    /// Total GPUs required, allocated gang-style (all at once).
    pub gpus: u32,
    /// Runtime once started. Schedulers treat this as the user-supplied
    /// estimate (EASY backfilling relies on it).
    pub duration: SimDuration,
    /// Submission time.
    pub submit: SimTime,
}

/// Where and when a job ran.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobOutcome {
    /// The job.
    pub job: Job,
    /// Start time.
    pub start: SimTime,
    /// Completion time.
    pub end: SimTime,
    /// GPUs taken from each node, as `(node_index, gpu_count)`.
    pub allocation: Vec<(usize, u32)>,
    /// Checkpoint-restarts this job survived (spot preemptions). Zero
    /// unless the simulator ran with a fault plan that preempts jobs.
    pub restarts: u32,
}

impl JobOutcome {
    /// Queue wait in hours.
    pub fn wait_hours(&self) -> f64 {
        self.start.since(self.job.submit).as_hours_f64()
    }

    /// Bounded slowdown: `(wait + run) / max(run, 10 min)` — the standard
    /// metric that keeps tiny jobs from dominating.
    pub fn bounded_slowdown(&self) -> f64 {
        let run = self.job.duration.as_hours_f64();
        let denom = run.max(1.0 / 6.0);
        (self.wait_hours() + run) / denom
    }

    /// Number of distinct nodes the job spans.
    pub fn node_span(&self) -> usize {
        self.allocation.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_and_slowdown() {
        let o = JobOutcome {
            job: Job {
                id: JobId(1),
                user: 0,
                gpus: 1,
                duration: SimDuration::hours(2),
                submit: SimTime(0),
            },
            start: SimTime(60),
            end: SimTime(180),
            allocation: vec![(0, 1)],
            restarts: 0,
        };
        assert_eq!(o.wait_hours(), 1.0);
        assert!((o.bounded_slowdown() - 1.5).abs() < 1e-12);
        assert_eq!(o.node_span(), 1);
    }

    #[test]
    fn slowdown_bounded_for_tiny_jobs() {
        let o = JobOutcome {
            job: Job {
                id: JobId(2),
                user: 0,
                gpus: 1,
                duration: SimDuration::minutes(1),
                submit: SimTime(0),
            },
            start: SimTime(10),
            end: SimTime(11),
            allocation: vec![(0, 1)],
            restarts: 0,
        };
        // Unbounded slowdown would be 11; bounded uses a 10-minute floor.
        assert!(o.bounded_slowdown() < 1.2);
    }
}
