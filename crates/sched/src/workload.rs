//! Synthetic ML training traces.
//!
//! Modelled on the workload analysis the Unit 5 lecture uses as a case
//! study (Weng et al., "MLaaS in the Wild", NSDI '22): the vast majority of
//! jobs are short and use a single GPU, while a small fraction of large
//! multi-GPU jobs dominate GPU-hours. Durations are lognormal with a heavy
//! tail; arrivals are Poisson with rate set from a target offered load.

use crate::job::{Job, JobId};
use opml_simkernel::{Rng, SimDuration, SimTime};

/// GPU-count distribution: (gpus, weight). ~63% of jobs are 1-GPU,
/// mirroring the MLaaS trace's skew.
const GPU_MIX: [(u32, f64); 5] = [(1, 0.63), (2, 0.15), (4, 0.12), (8, 0.08), (16, 0.02)];

/// Duration lognormal parameters: median 30 min, σ = 1.4 → mean ≈ 1.3 h,
/// p99 ≈ 13 h (clamped at 48 h).
// ln(0.5 h) — median duration of 30 minutes.
const DUR_MU: f64 = -std::f64::consts::LN_2;
const DUR_SIGMA: f64 = 1.4;
const DUR_MAX_HOURS: f64 = 48.0;

/// Number of distinct users submitting.
const USERS: u32 = 24;

/// Generate a trace sized for a cluster with `total_gpus` GPUs.
///
/// `load` is the offered load: the ratio of mean offered GPU-hours per
/// hour to cluster capacity (0.7 ⇒ the cluster is ~70% subscribed).
pub fn ml_trace_for(n_jobs: usize, load: f64, total_gpus: u32, seed: u64) -> Vec<Job> {
    assert!(load > 0.0, "load must be positive");
    assert!(total_gpus > 0);
    let mut rng = Rng::new(seed);
    // Expected GPU-hours per job under the mix and duration model.
    let mean_dur = (DUR_MU + DUR_SIGMA * DUR_SIGMA / 2.0).exp();
    let mean_gpus: f64 = GPU_MIX.iter().map(|&(g, w)| g as f64 * w).sum();
    let mean_work = mean_dur * mean_gpus;
    // Poisson arrivals with rate λ jobs/hour s.t. λ·mean_work = load·GPUs.
    let rate = load * total_gpus as f64 / mean_work;
    let mean_interarrival_h = 1.0 / rate;

    let weights: Vec<f64> = GPU_MIX.iter().map(|&(_, w)| w).collect();
    let mut t_hours = 0.0;
    (0..n_jobs)
        .map(|i| {
            t_hours += rng.exponential(mean_interarrival_h);
            let gpus = GPU_MIX[rng.weighted_index(&weights)].0.min(total_gpus);
            let dur_h = rng
                .lognormal(DUR_MU, DUR_SIGMA)
                .clamp(1.0 / 60.0, DUR_MAX_HOURS);
            Job {
                id: JobId(i as u64),
                user: rng.below(USERS as u64) as u32,
                gpus,
                duration: SimDuration::from_hours_f64(dur_h),
                submit: SimTime::from_hours_f64(t_hours),
            }
        })
        .collect()
}

/// [`ml_trace_for`] against a reference 32-GPU cluster.
pub fn ml_trace(n_jobs: usize, load: f64, seed: u64) -> Vec<Job> {
    ml_trace_for(n_jobs, load, 32, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_shape() {
        let jobs = ml_trace(2000, 0.7, 1);
        assert_eq!(jobs.len(), 2000);
        // Mostly 1-GPU jobs.
        let one_gpu = jobs.iter().filter(|j| j.gpus == 1).count() as f64 / 2000.0;
        assert!((0.55..0.72).contains(&one_gpu), "1-GPU fraction {one_gpu}");
        // Submissions are nondecreasing.
        for w in jobs.windows(2) {
            assert!(w[0].submit <= w[1].submit);
        }
        // Every job fits the reference cluster.
        assert!(jobs.iter().all(|j| j.gpus <= 32 && j.duration.0 >= 1));
    }

    #[test]
    fn heavy_tail_dominates_gpu_hours() {
        let jobs = ml_trace(5000, 0.7, 2);
        let mut work: Vec<f64> = jobs
            .iter()
            .map(|j| j.gpus as f64 * j.duration.as_hours_f64())
            .collect();
        work.sort_by(|a, b| b.partial_cmp(a).expect("no NaN"));
        let total: f64 = work.iter().sum();
        let top10: f64 = work[..500].iter().sum();
        assert!(
            top10 / total > 0.5,
            "top 10% of jobs should dominate GPU-hours"
        );
    }

    #[test]
    fn deterministic_by_seed() {
        let a = ml_trace(100, 0.5, 7);
        let b = ml_trace(100, 0.5, 7);
        assert_eq!(
            a.iter().map(|j| (j.submit.0, j.gpus)).collect::<Vec<_>>(),
            b.iter().map(|j| (j.submit.0, j.gpus)).collect::<Vec<_>>()
        );
        let c = ml_trace(100, 0.5, 8);
        assert_ne!(
            a.iter().map(|j| j.submit.0).collect::<Vec<_>>(),
            c.iter().map(|j| j.submit.0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn load_scales_arrival_density() {
        let light = ml_trace(1000, 0.3, 3);
        let heavy = ml_trace(1000, 1.2, 3);
        let span = |jobs: &[Job]| jobs.last().unwrap().submit.as_hours_f64();
        // Same work arriving under higher load ⇒ compressed into less time.
        assert!(span(&heavy) < span(&light) / 2.0);
    }

    #[test]
    fn gpus_clamped_to_cluster() {
        let jobs = ml_trace_for(500, 0.7, 4, 5);
        assert!(jobs.iter().all(|j| j.gpus <= 4));
    }
}
