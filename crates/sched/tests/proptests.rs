//! Property-based tests for scheduler invariants on random traces.

use opml_sched::{workload, Cluster, Placement, Policy, SchedSim};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Under every policy and random trace: every job runs exactly once,
    /// never before submission, and the cluster is never oversubscribed.
    #[test]
    fn scheduler_invariants(
        n_jobs in 1usize..150,
        load in 0.2f64..1.5,
        seed in any::<u64>(),
        nodes in 1usize..6,
        gpus_per_node in 1u32..5,
    ) {
        let total = nodes as u32 * gpus_per_node;
        let jobs = workload::ml_trace_for(n_jobs, load, total, seed);
        for policy in Policy::ALL {
            for placement in [Placement::Packed, Placement::Spread] {
                let schedule = SchedSim::new(
                    Cluster::homogeneous(nodes, gpus_per_node),
                    policy,
                    placement,
                )
                .run(&jobs);
                prop_assert_eq!(schedule.outcomes().len(), jobs.len());
                // No early starts; allocations complete.
                for o in schedule.outcomes() {
                    prop_assert!(o.start >= o.job.submit);
                    let allocated: u32 = o.allocation.iter().map(|&(_, g)| g).sum();
                    prop_assert_eq!(allocated, o.job.gpus);
                }
                // Capacity at every start instant.
                for o in schedule.outcomes() {
                    let t = o.start;
                    let busy: u32 = schedule
                        .outcomes()
                        .iter()
                        .filter(|x| x.start <= t && t < x.end)
                        .map(|x| x.job.gpus)
                        .sum();
                    prop_assert!(busy <= total, "{}: {busy} > {total}", policy.name());
                }
                // Per-node capacity too.
                for o in schedule.outcomes() {
                    let t = o.start;
                    for node in 0..nodes {
                        let node_busy: u32 = schedule
                            .outcomes()
                            .iter()
                            .filter(|x| x.start <= t && t < x.end)
                            .flat_map(|x| &x.allocation)
                            .filter(|&&(n, _)| n == node)
                            .map(|&(_, g)| g)
                            .sum();
                        prop_assert!(node_busy <= gpus_per_node);
                    }
                }
            }
        }
    }

    /// Backfilling never increases total makespan versus FCFS (it only
    /// fills holes) and never hurts mean wait.
    #[test]
    fn backfill_dominates_fcfs(n_jobs in 10usize..120, seed in any::<u64>()) {
        let jobs = workload::ml_trace(n_jobs, 0.9, seed);
        let cluster = Cluster::homogeneous(4, 4);
        let fcfs = SchedSim::new(cluster.clone(), Policy::Fcfs, Placement::Packed)
            .run(&jobs)
            .metrics();
        let easy = SchedSim::new(cluster, Policy::EasyBackfill, Placement::Packed)
            .run(&jobs)
            .metrics();
        prop_assert!(easy.mean_wait_hours <= fcfs.mean_wait_hours + 1e-9);
    }

    /// Metrics are internally consistent.
    #[test]
    fn metrics_consistency(n_jobs in 1usize..120, seed in any::<u64>()) {
        let jobs = workload::ml_trace(n_jobs, 0.8, seed);
        let m = SchedSim::new(Cluster::homogeneous(4, 4), Policy::EasyBackfill, Placement::Packed)
            .run(&jobs)
            .metrics();
        prop_assert_eq!(m.jobs, n_jobs);
        prop_assert!(m.mean_wait_hours >= 0.0);
        prop_assert!(m.p95_wait_hours + 1e-9 >= m.mean_wait_hours || m.p95_wait_hours >= 0.0);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&m.utilization));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&m.jain_fairness));
        // Tiny jobs (run < the 10-minute floor) can have bounded
        // slowdown below 1 even with zero wait.
        prop_assert!(m.mean_bounded_slowdown > 0.0);
    }
}
