//! Bounded admission queue with priority-aware load shedding.
//!
//! The queue is FIFO in arrival order. When it is full, an arriving op
//! may displace ("shed") a queued op of strictly lower priority —
//! lowest priority first, most recently enqueued first among equals —
//! otherwise the arrival itself is rejected with the typed
//! [`CloudError::Overload`] the caller reports to the client. Both
//! rules are pure functions of queue content, so admission decisions
//! replay byte-identically.

use opml_testbed::CloudError;
use std::collections::VecDeque;

/// One admitted-but-not-yet-dispatched request attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedOp {
    /// Index into the round's op vector.
    pub op_index: usize,
    /// Arrival tick of **this attempt** (retries re-enter later).
    pub arrival: u64,
    /// Arrival tick of the first attempt (deadline budgets are measured
    /// from here).
    pub first_arrival: u64,
    /// 0-based attempt counter (0 = first try).
    pub attempt: u32,
    /// Shedding priority (higher wins).
    pub priority: u32,
}

/// What [`AdmissionQueue::offer`] did with an arrival.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionOutcome {
    /// Queued; no one was displaced.
    Enqueued,
    /// Queued after shedding the returned lower-priority op.
    Shed(QueuedOp),
    /// Queue full of equal-or-higher-priority work: the arrival is
    /// turned away with the typed overload error.
    Rejected(CloudError),
}

/// FIFO queue bounded at `bound` entries.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    queue: VecDeque<QueuedOp>,
    bound: usize,
    /// High-water mark of the queue depth (reported).
    pub peak_depth: usize,
}

impl AdmissionQueue {
    /// A queue admitting at most `bound` ops (0 is normalized to 1).
    pub fn new(bound: usize) -> AdmissionQueue {
        AdmissionQueue {
            queue: VecDeque::new(),
            bound: bound.max(1),
            peak_depth: 0,
        }
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Oldest queued op, if any.
    pub fn front(&self) -> Option<&QueuedOp> {
        self.queue.front()
    }

    /// Dequeue the oldest op.
    pub fn pop_front(&mut self) -> Option<QueuedOp> {
        self.queue.pop_front()
    }

    /// Offer an arrival; full queues shed strictly-lower-priority work
    /// (lowest priority, then most recently enqueued) or reject the
    /// arrival with [`CloudError::Overload`].
    pub fn offer(&mut self, op: QueuedOp) -> AdmissionOutcome {
        if self.queue.len() < self.bound {
            self.queue.push_back(op);
            self.peak_depth = self.peak_depth.max(self.queue.len());
            return AdmissionOutcome::Enqueued;
        }
        // Victim: minimal priority; ties broken toward the back of the
        // queue (shed the newest of the lowest class — it has waited
        // least). `min_by` over (priority asc, index desc).
        let victim = self
            .queue
            .iter()
            .enumerate()
            .min_by(|(ia, a), (ib, b)| a.priority.cmp(&b.priority).then(ib.cmp(ia)))
            .map(|(i, q)| (i, q.priority));
        match victim {
            Some((idx, vp)) if vp < op.priority => {
                // VecDeque::remove is None only for an out-of-range
                // index; idx came from enumerate() above.
                match self.queue.remove(idx) {
                    Some(shed) => {
                        self.queue.push_back(op);
                        AdmissionOutcome::Shed(shed)
                    }
                    None => AdmissionOutcome::Rejected(self.overload()),
                }
            }
            _ => AdmissionOutcome::Rejected(self.overload()),
        }
    }

    fn overload(&self) -> CloudError {
        CloudError::Overload {
            queue_depth: self.queue.len() as u64,
            limit: self.bound as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(op_index: usize, arrival: u64, priority: u32) -> QueuedOp {
        QueuedOp {
            op_index,
            arrival,
            first_arrival: arrival,
            attempt: 0,
            priority,
        }
    }

    #[test]
    fn fifo_below_bound() {
        let mut q = AdmissionQueue::new(3);
        assert_eq!(q.offer(op(0, 1, 1)), AdmissionOutcome::Enqueued);
        assert_eq!(q.offer(op(1, 2, 4)), AdmissionOutcome::Enqueued);
        assert_eq!(q.pop_front().map(|o| o.op_index), Some(0));
        assert_eq!(q.pop_front().map(|o| o.op_index), Some(1));
        assert!(q.is_empty());
    }

    #[test]
    fn full_queue_sheds_lowest_priority_newest_first() {
        let mut q = AdmissionQueue::new(3);
        q.offer(op(0, 1, 2));
        q.offer(op(1, 2, 1));
        q.offer(op(2, 3, 1)); // same lowest class, newer than op 1
        match q.offer(op(3, 4, 3)) {
            AdmissionOutcome::Shed(shed) => assert_eq!(shed.op_index, 2),
            other => panic!("expected shed, got {other:?}"),
        }
        // Queue keeps FIFO order of survivors, new op at the back.
        let order: Vec<usize> = std::iter::from_fn(|| q.pop_front().map(|o| o.op_index)).collect();
        assert_eq!(order, vec![0, 1, 3]);
    }

    #[test]
    fn equal_priority_arrival_is_rejected_with_typed_overload() {
        let mut q = AdmissionQueue::new(2);
        q.offer(op(0, 1, 2));
        q.offer(op(1, 2, 2));
        match q.offer(op(2, 3, 2)) {
            AdmissionOutcome::Rejected(e) => {
                assert!(e.is_retryable(), "overload is transient backpressure");
                assert!(e.to_string().contains("queue"), "{e}");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(q.len(), 2, "rejection must not perturb the queue");
    }

    #[test]
    fn lower_priority_arrival_never_sheds_higher() {
        let mut q = AdmissionQueue::new(1);
        q.offer(op(0, 1, 5));
        assert!(matches!(
            q.offer(op(1, 2, 1)),
            AdmissionOutcome::Rejected(_)
        ));
        assert_eq!(q.front().map(|o| o.op_index), Some(0));
    }

    #[test]
    fn peak_depth_tracks_high_water() {
        let mut q = AdmissionQueue::new(8);
        for i in 0..5 {
            q.offer(op(i, i as u64, 1));
        }
        q.pop_front();
        q.offer(op(9, 9, 1));
        assert_eq!(q.peak_depth, 5);
    }
}
