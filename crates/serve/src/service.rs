//! The service loop: ramp rounds of seeded load through one persistent
//! [`Cloud`] until an overload gate trips.
//!
//! Each round offers `target_rps + round * increment_rps` ops/sec
//! (capped at `max_rps`) for `round_secs` sim seconds, then drains
//! completely before the gates are evaluated:
//!
//! * **failure-rate gate** — stop when the round's unserved fraction
//!   reaches `stop_failure_ppm` (`STOP_FAILURE_RATE` in the IC
//!   scalability suite);
//! * **p99 latency gate** — stop when the round's p99 sim latency
//!   exceeds `allowable_latency_s` (`ALLOWABLE_LATENCY`).
//!
//! The loop is a sequential discrete-event sweep: arrivals and queued
//! dispatches interleave in sim-time order, `servers` simulated workers
//! serve queued ops FIFO, and every source of randomness is a seeded
//! stream keyed by stable op id — so the digested report is
//! byte-identical across reruns and rayon thread counts.

use crate::admission::{AdmissionOutcome, AdmissionQueue, QueuedOp};
use crate::report::{
    kind_index, KindStats, LatencySummary, OpCounts, RoundStats, ServeCounts, ServeReport,
    TenantStats, SERVE_SCHEMA,
};
use crate::workload::{generate_round, OpKind, OpSpec};
use opml_faults::{BreakerState, CircuitBreaker, FaultKind, FaultPlan, FaultRates, RetryPolicy};
use opml_simkernel::{SimDuration, SimTime};
use opml_telemetry::SimTimeHistogram;
use opml_testbed::{Cloud, CloudError, InstanceId, LeaseId};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Stream tag decorrelating the fault plan from workload draws.
const FAULT_TAG: u64 = 0x5E12_FA17;
/// Stream tag decorrelating retry jitter from both of the above.
const RETRY_TAG: u64 = 0x5E12_4E72;
/// Lead time between a reserve op and its window start, in ticks.
const RESERVE_LEAD_TICKS: u64 = 30;

/// Configuration for one service soak. Rates are ops/sec, durations
/// are sim seconds, and the gate thresholds are integer parts-per-
/// million so the config echo in the digested report stays float-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Master seed for every stream (workload, faults, retry jitter).
    pub seed: u64,
    /// Number of tenants (priority = tenant index + 1).
    pub tenants: u32,
    /// Simulated service workers draining the admission queue.
    pub servers: u32,
    /// Admission queue bound (0 is normalized to 1).
    pub queue_bound: usize,
    /// Offered rate of the first round, ops/sec.
    pub target_rps: u64,
    /// Rate added each round, ops/sec.
    pub increment_rps: u64,
    /// Rate ceiling; the ramp stops after the round that reaches it.
    pub max_rps: u64,
    /// Arrival window of each round, sim seconds.
    pub round_secs: u64,
    /// Stop the ramp when a round's unserved fraction reaches this
    /// (parts-per-million; 500_000 = the classic STOP_FAILURE_RATE 0.5).
    pub stop_failure_ppm: u64,
    /// A round is "sustainable" only if its unserved fraction stays at
    /// or below this (parts-per-million).
    pub allowable_failure_ppm: u64,
    /// A round is "sustainable" only if its p99 latency stays at or
    /// below this; exceeding it also stops the ramp. Sim seconds.
    pub allowable_latency_s: u64,
    /// Per-op total budget from first arrival, sim seconds: ops still
    /// unserved past this are abandoned as timed out.
    pub deadline_s: u64,
    /// Uniform fault-injection rate (parts-per-million; 0 = inert).
    pub fault_rate_ppm: u64,
    /// Consecutive quota failures that trip a tenant's breaker.
    pub breaker_threshold: u32,
    /// Breaker cool-down before a half-open probe, sim seconds.
    pub breaker_cooldown_s: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            seed: 42,
            tenants: 4,
            servers: 64,
            queue_bound: 256,
            target_rps: 8,
            increment_rps: 8,
            max_rps: 64,
            round_secs: 60,
            stop_failure_ppm: 500_000,
            allowable_failure_ppm: 200_000,
            allowable_latency_s: 30,
            deadline_s: 120,
            fault_rate_ppm: 0,
            breaker_threshold: 5,
            breaker_cooldown_s: 30,
        }
    }
}

impl ServeConfig {
    /// Clamp degenerate values so the loop always terminates and stays
    /// within memory bounds (rates are capped at 10k ops/sec, rounds at
    /// one sim hour — far above anything the gates survive).
    fn normalized(&self) -> ServeConfig {
        let mut c = self.clone();
        c.tenants = c.tenants.max(1);
        c.servers = c.servers.max(1);
        c.round_secs = c.round_secs.clamp(1, 3_600);
        c.target_rps = c.target_rps.clamp(1, 10_000);
        c.max_rps = c.max_rps.clamp(c.target_rps, 10_000);
        c.stop_failure_ppm = c.stop_failure_ppm.min(1_000_000);
        c
    }
}

/// Where one queued attempt ended up.
enum Disposition {
    /// Served; payload is end-to-end latency in ticks.
    Completed(u64),
    Shed,
    Rejected,
    TimedOut,
    Failed,
}

/// Per-round accumulator (drives the gates and the round table row).
struct RoundAccum {
    counts: OpCounts,
    retries: u64,
    injected: u64,
    hist: SimTimeHistogram,
    kind_completed: [u64; 5],
}

impl RoundAccum {
    fn new() -> RoundAccum {
        RoundAccum {
            counts: OpCounts::default(),
            retries: 0,
            injected: 0,
            hist: SimTimeHistogram::default(),
            kind_completed: [0; 5],
        }
    }
}

/// Retry heap entry: `(tick, op index, failures so far)`, min-ordered.
type Pending = Reverse<(u64, u64, u32)>;

struct Service {
    cloud: Cloud,
    plan: FaultPlan,
    policy: RetryPolicy,
    retry_seed: u64,
    breakers: Vec<CircuitBreaker>,
    /// Per-tenant pools of live VM ids (terminate targets).
    instances: Vec<Vec<InstanceId>>,
    /// Per-tenant pools of admitted lease ids (revoke targets).
    leases: Vec<Vec<LeaseId>>,
    /// Next-free tick per simulated server.
    servers: Vec<u64>,
    queue: AdmissionQueue,
    kind_counts: [OpCounts; 5],
    kind_retries: [u64; 5],
    kind_injected: [u64; 5],
    kind_hists: [SimTimeHistogram; 5],
    tenant_counts: Vec<OpCounts>,
    tenant_breaker_rejects: Vec<u64>,
    tenant_breaker_trips: Vec<u64>,
    overall_hist: SimTimeHistogram,
    retries_total: u64,
    injected_total: u64,
}

impl Service {
    fn new(cfg: &ServeConfig) -> Service {
        let t = cfg.tenants as usize;
        let rate = cfg.fault_rate_ppm.min(1_000_000) as f64 / 1_000_000.0;
        let rates = if cfg.fault_rate_ppm == 0 {
            FaultRates::none()
        } else {
            FaultRates::uniform(rate)
        };
        Service {
            cloud: Cloud::paper_course(),
            plan: FaultPlan::new(cfg.seed ^ FAULT_TAG, rates),
            policy: RetryPolicy::exponential(SimDuration(2), 2.0, SimDuration(16), 4, 0.25)
                .with_deadline(SimDuration(cfg.deadline_s.max(1))),
            retry_seed: cfg.seed ^ RETRY_TAG,
            breakers: vec![
                CircuitBreaker::new(
                    cfg.breaker_threshold,
                    SimDuration(cfg.breaker_cooldown_s.max(1)),
                );
                t
            ],
            instances: vec![Vec::new(); t],
            leases: vec![Vec::new(); t],
            servers: vec![0; cfg.servers as usize],
            queue: AdmissionQueue::new(cfg.queue_bound),
            kind_counts: [OpCounts::default(); 5],
            kind_retries: [0; 5],
            kind_injected: [0; 5],
            kind_hists: std::array::from_fn(|_| SimTimeHistogram::default()),
            tenant_counts: vec![OpCounts::default(); t],
            tenant_breaker_rejects: vec![0; t],
            tenant_breaker_trips: vec![0; t],
            overall_hist: SimTimeHistogram::default(),
            retries_total: 0,
            injected_total: 0,
        }
    }

    /// Apply `bump` to the round, per-kind, and per-tenant counters of
    /// `op` in lockstep.
    fn bump(&mut self, acc: &mut RoundAccum, op: &OpSpec, bump: impl Fn(&mut OpCounts)) {
        bump(&mut acc.counts);
        if let Some(c) = self.kind_counts.get_mut(kind_index(op.kind)) {
            bump(c);
        }
        if let Some(c) = self.tenant_counts.get_mut(op.tenant as usize) {
            bump(c);
        }
    }

    /// Attribute a terminal disposition for `op`.
    fn record(&mut self, acc: &mut RoundAccum, op: &OpSpec, d: Disposition) {
        match d {
            Disposition::Completed(latency) => {
                self.bump(acc, op, |c| c.completed += 1);
                let ki = kind_index(op.kind);
                acc.hist.observe(SimDuration(latency));
                self.overall_hist.observe(SimDuration(latency));
                if let Some(h) = self.kind_hists.get_mut(ki) {
                    h.observe(SimDuration(latency));
                }
                if let Some(k) = acc.kind_completed.get_mut(ki) {
                    *k += 1;
                }
            }
            Disposition::Shed => self.bump(acc, op, |c| c.shed += 1),
            Disposition::Rejected => self.bump(acc, op, |c| c.rejected += 1),
            Disposition::TimedOut => self.bump(acc, op, |c| c.timed_out += 1),
            Disposition::Failed => self.bump(acc, op, |c| c.failed += 1),
        }
    }

    /// Lowest-numbered server with the earliest next-free tick.
    fn earliest_server(&self) -> (usize, u64) {
        let mut best = (0usize, u64::MAX);
        for (i, &free) in self.servers.iter().enumerate() {
            if free < best.1 {
                best = (i, free);
            }
        }
        best
    }

    /// One full round: feed `ops` through admission, dispatch, retry,
    /// and drain the queue to empty before returning.
    fn run_round(&mut self, ops: &[OpSpec]) -> RoundAccum {
        let mut acc = RoundAccum::new();
        for op in ops {
            self.bump(&mut acc, op, |c| c.generated += 1);
        }
        let mut heap: BinaryHeap<Pending> = ops
            .iter()
            .enumerate()
            .map(|(i, op)| Reverse((op.arrival, i as u64, 0u32)))
            .collect();
        while !(heap.is_empty() && self.queue.is_empty()) {
            let next_arrival = heap.peek().map(|Reverse((t, _, _))| *t);
            // Dispatch the queue head if a server frees up before the
            // next arrival; ties go to the arrival so admission (and
            // shedding) sees the fullest queue.
            let mut dispatched = false;
            if let Some(head) = self.queue.front().copied() {
                let (si, free) = self.earliest_server();
                let start = free.max(head.arrival);
                if next_arrival.is_none_or(|na| start < na) {
                    if self.queue.pop_front().is_some() {
                        self.dispatch(head, start, si, ops, &mut heap, &mut acc);
                    }
                    dispatched = true;
                }
            }
            if !dispatched {
                if let Some(Reverse((t, idx, failures))) = heap.pop() {
                    self.admit(t, idx as usize, failures, ops, &mut acc);
                }
            }
        }
        acc
    }

    /// An arrival (or retry re-arrival) meets the admission queue.
    fn admit(&mut self, t: u64, idx: usize, failures: u32, ops: &[OpSpec], acc: &mut RoundAccum) {
        let Some(op) = ops.get(idx) else { return };
        let queued = QueuedOp {
            op_index: idx,
            arrival: t,
            first_arrival: op.arrival,
            attempt: failures,
            priority: op.priority,
        };
        match self.queue.offer(queued) {
            AdmissionOutcome::Enqueued => {}
            AdmissionOutcome::Shed(victim) => {
                if let Some(vop) = ops.get(victim.op_index) {
                    let vop = vop.clone();
                    self.record(acc, &vop, Disposition::Shed);
                }
            }
            AdmissionOutcome::Rejected(_) => {
                let op = op.clone();
                self.record(acc, &op, Disposition::Rejected);
            }
        }
    }

    /// A server picks up the queue head at `start`.
    fn dispatch(
        &mut self,
        head: QueuedOp,
        start: u64,
        si: usize,
        ops: &[OpSpec],
        heap: &mut BinaryHeap<Pending>,
        acc: &mut RoundAccum,
    ) {
        let Some(op) = ops.get(head.op_index) else {
            return;
        };
        let op = op.clone();
        let now = SimTime(start);
        let first = SimTime(head.first_arrival);
        // Deadline budget: abandon before consuming a server.
        if self.policy.deadline_exceeded(first, now) {
            self.record(acc, &op, Disposition::TimedOut);
            return;
        }
        // Per-tenant quota breaker gates quota-consuming kinds; while
        // half-open exactly one probe op is admitted per cool-down.
        if op.kind.consumes_quota() {
            let admitted = match self.breakers.get_mut(op.tenant as usize) {
                Some(b) => match b.state(now) {
                    BreakerState::Closed => true,
                    BreakerState::HalfOpen => b.try_acquire_probe(now),
                    BreakerState::Open => false,
                },
                None => true,
            };
            if !admitted {
                if let Some(r) = self.tenant_breaker_rejects.get_mut(op.tenant as usize) {
                    *r += 1;
                }
                self.record(acc, &op, Disposition::Rejected);
                return;
            }
        }
        let completion = start + op.service_ticks;
        if let Some(free) = self.servers.get_mut(si) {
            *free = completion;
        }
        self.cloud.advance_to(now);
        let result = self.execute(&op, head.attempt, acc);
        // The breaker hears every outcome of the guarded kind: quota
        // denials and injected faults open it, successes close it (and
        // resolve any in-flight probe).
        if op.kind.consumes_quota() {
            if let Some(b) = self.breakers.get_mut(op.tenant as usize) {
                match &result {
                    Ok(()) => b.record_success(),
                    Err(_) => {
                        if b.record_failure(now) {
                            if let Some(trips) =
                                self.tenant_breaker_trips.get_mut(op.tenant as usize)
                            {
                                *trips += 1;
                            }
                        }
                    }
                }
            }
        }
        match result {
            Ok(()) => {
                self.record(
                    acc,
                    &op,
                    Disposition::Completed(completion.saturating_sub(head.first_arrival)),
                );
            }
            Err(e) if e.is_retryable() => {
                let failures = head.attempt + 1;
                match self.policy.backoff(self.retry_seed, op.id, failures) {
                    Some(delay) => {
                        let retry_at = completion + delay.0;
                        if self.policy.deadline_exceeded(first, SimTime(retry_at)) {
                            self.record(acc, &op, Disposition::TimedOut);
                        } else {
                            acc.retries += 1;
                            self.retries_total += 1;
                            if let Some(r) = self.kind_retries.get_mut(kind_index(op.kind)) {
                                *r += 1;
                            }
                            heap.push(Reverse((retry_at, head.op_index as u64, failures)));
                        }
                    }
                    None => self.record(acc, &op, Disposition::Failed),
                }
            }
            Err(_) => self.record(acc, &op, Disposition::Failed),
        }
    }

    /// Note a fault-plan injection against `op`.
    fn inject(&mut self, op: &OpSpec, acc: &mut RoundAccum) {
        acc.injected += 1;
        self.injected_total += 1;
        if let Some(n) = self.kind_injected.get_mut(kind_index(op.kind)) {
            *n += 1;
        }
    }

    /// Run one op against the cloud. Transient errors bubble up to the
    /// retry path; no-ops (terminating with an empty pool, revoking an
    /// already-ended lease) succeed.
    fn execute(
        &mut self,
        op: &OpSpec,
        attempt: u32,
        acc: &mut RoundAccum,
    ) -> Result<(), CloudError> {
        let ti = op.tenant as usize;
        match op.kind {
            OpKind::Launch => {
                if self
                    .plan
                    .fires(FaultKind::LaunchFail, Some(op.vm_flavor), op.id, attempt)
                {
                    self.inject(op, acc);
                    return Err(CloudError::TransientFault {
                        op: "create_instance",
                    });
                }
                let name = format!("t{}-op{}", op.tenant, op.id);
                let id = self.cloud.create_instance(&name, op.vm_flavor)?;
                if let Some(pool) = self.instances.get_mut(ti) {
                    pool.push(id);
                }
                Ok(())
            }
            OpKind::Terminate => {
                if self
                    .plan
                    .fires(FaultKind::InstanceCrash, None, op.id, attempt)
                {
                    self.inject(op, acc);
                    return Err(CloudError::TransientFault {
                        op: "delete_instance",
                    });
                }
                let target = self.instances.get_mut(ti).and_then(|pool| {
                    if pool.is_empty() {
                        None
                    } else {
                        let i = (op.pick % pool.len() as u64) as usize;
                        Some(pool.swap_remove(i))
                    }
                });
                match target {
                    // Nothing to terminate yet: a no-op success.
                    None => Ok(()),
                    Some(id) => self.cloud.delete_instance(id),
                }
            }
            OpKind::Reserve => {
                if self
                    .plan
                    .fires(FaultKind::LeaseRevoke, Some(op.bm_flavor), op.id, attempt)
                {
                    self.inject(op, acc);
                    return Err(CloudError::TransientFault { op: "reserve" });
                }
                let start = self.cloud.now() + SimDuration(RESERVE_LEAD_TICKS);
                let end = start + SimDuration(op.lease_ticks.max(1));
                let name = format!("t{}-op{}", op.tenant, op.id);
                let lease = self
                    .cloud
                    .reserve(op.bm_flavor, op.count.max(1), start, end, &name)?;
                if let Some(pool) = self.leases.get_mut(ti) {
                    pool.push(lease.id);
                }
                Ok(())
            }
            OpKind::Revoke => {
                let target = self.leases.get_mut(ti).and_then(|pool| {
                    if pool.is_empty() {
                        None
                    } else {
                        let i = (op.pick % pool.len() as u64) as usize;
                        Some(pool.swap_remove(i))
                    }
                });
                match target {
                    None => Ok(()),
                    Some(id) => match self.cloud.revoke_lease(id) {
                        // A lease that already ended (auto-terminated by
                        // `advance_to`) or was already revoked is a
                        // revoke no-op, not a failure.
                        Ok(_)
                        | Err(CloudError::OutsideLease)
                        | Err(CloudError::LeaseRevoked)
                        | Err(CloudError::NoSuchLease) => Ok(()),
                        Err(e) => Err(e),
                    },
                }
            }
            OpKind::QuotaCheck => {
                // Both read-only hot paths: the sweep-line calendar
                // earliest-slot query and the quota headroom probe.
                let now = self.cloud.now();
                let _ = self.cloud.earliest_slot(
                    op.bm_flavor,
                    op.count.max(1),
                    SimDuration(op.lease_ticks.max(1)),
                    now,
                );
                self.cloud.quota_check(op.vm_flavor)
            }
        }
    }
}

/// Run a full soak: ramp rounds until a gate trips (or the rate
/// ceiling is reached), then seal the schema-versioned report.
///
/// This is the crate's simulation entry point for the DL008 panic-
/// freedom walk.
pub fn run_service(config: &ServeConfig) -> ServeReport {
    let cfg = config.normalized();
    let mut svc = Service::new(&cfg);
    let mut rounds: Vec<RoundStats> = Vec::new();
    let mut round_kind_completed: Vec<[u64; 5]> = Vec::new();
    let mut round_start = 0u64;
    let mut base_id = 0u64;
    let mut round = 0u32;
    let mut stop_reason = "max_rate_reached";
    loop {
        let rate = cfg
            .target_rps
            .saturating_add(u64::from(round).saturating_mul(cfg.increment_rps))
            .min(cfg.max_rps);
        let ops = generate_round(
            cfg.seed,
            round,
            round_start,
            rate,
            cfg.round_secs,
            cfg.tenants,
            base_id,
        );
        base_id += ops.len() as u64;
        let acc = svc.run_round(&ops);
        let latency = LatencySummary::from_histogram(&acc.hist);
        let failure_ppm = acc.counts.failure_ppm();
        let sustainable = acc.counts.completed > 0
            && failure_ppm <= cfg.allowable_failure_ppm
            && latency.p99_s <= cfg.allowable_latency_s;
        rounds.push(RoundStats {
            round,
            offered_rps: rate,
            counts: acc.counts,
            retries: acc.retries,
            injected: acc.injected,
            failure_ppm,
            latency,
            sustainable,
        });
        round_kind_completed.push(acc.kind_completed);
        if failure_ppm >= cfg.stop_failure_ppm {
            stop_reason = "failure_rate";
            break;
        }
        if latency.p99_s > cfg.allowable_latency_s {
            stop_reason = "p99_latency";
            break;
        }
        if rate >= cfg.max_rps {
            break;
        }
        round_start += cfg.round_secs;
        round += 1;
    }

    // Best sustainable round (highest offered rate that cleared both
    // gates) anchors the "max sustainable" numbers.
    let best = rounds
        .iter()
        .enumerate()
        .filter(|(_, r)| r.sustainable)
        .max_by_key(|(_, r)| r.offered_rps)
        .map(|(i, r)| (i, r.offered_rps));
    let max_sustainable_rps = best.map_or(0, |(_, rps)| rps);
    let per_kind: Vec<KindStats> = OpKind::ALL
        .iter()
        .enumerate()
        .map(|(ki, kind)| {
            let sustained = best
                .and_then(|(bi, _)| round_kind_completed.get(bi))
                .and_then(|ks| ks.get(ki))
                .map_or(0, |done| done * 1_000 / cfg.round_secs);
            KindStats {
                kind: kind.name().to_string(),
                counts: svc.kind_counts.get(ki).copied().unwrap_or_default(),
                retries: svc.kind_retries.get(ki).copied().unwrap_or(0),
                injected: svc.kind_injected.get(ki).copied().unwrap_or(0),
                sustained_milli_ops_per_sec: sustained,
                latency: svc
                    .kind_hists
                    .get(ki)
                    .map(LatencySummary::from_histogram)
                    .unwrap_or_default(),
            }
        })
        .collect();
    let per_tenant: Vec<TenantStats> = (0..cfg.tenants)
        .map(|t| TenantStats {
            tenant: t,
            priority: t + 1,
            counts: svc
                .tenant_counts
                .get(t as usize)
                .copied()
                .unwrap_or_default(),
            breaker_rejects: svc
                .tenant_breaker_rejects
                .get(t as usize)
                .copied()
                .unwrap_or(0),
            breaker_trips: svc
                .tenant_breaker_trips
                .get(t as usize)
                .copied()
                .unwrap_or(0),
        })
        .collect();
    let mut totals = OpCounts::default();
    for r in &rounds {
        totals.merge(&r.counts);
    }
    let stop_round = rounds.len().saturating_sub(1) as u32;
    let counts = ServeCounts {
        schema: SERVE_SCHEMA.to_string(),
        seed: cfg.seed,
        tenants: cfg.tenants,
        servers: cfg.servers,
        queue_bound: cfg.queue_bound.max(1) as u64,
        target_rps: cfg.target_rps,
        increment_rps: cfg.increment_rps,
        max_rps: cfg.max_rps,
        round_secs: cfg.round_secs,
        fault_rate_ppm: cfg.fault_rate_ppm,
        rounds,
        per_kind,
        per_tenant,
        totals,
        retries: svc.retries_total,
        injected: svc.injected_total,
        breaker_trips: svc.tenant_breaker_trips.iter().sum(),
        breaker_rejects: svc.tenant_breaker_rejects.iter().sum(),
        peak_queue_depth: svc.queue.peak_depth as u64,
        stop_round,
        stop_reason: stop_reason.to_string(),
        max_sustainable_rps,
        overall_latency: LatencySummary::from_histogram(&svc.overall_hist),
    };
    let mut histograms = BTreeMap::new();
    histograms.insert("overall".to_string(), svc.overall_hist.clone());
    for (ki, kind) in OpKind::ALL.iter().enumerate() {
        if let Some(h) = svc.kind_hists.get(ki) {
            histograms.insert(kind.name().to_string(), h.clone());
        }
    }
    ServeReport::seal(counts, histograms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opml_simkernel::parallel::with_thread_count;

    fn tiny() -> ServeConfig {
        ServeConfig {
            seed: 42,
            tenants: 3,
            servers: 8,
            queue_bound: 16,
            target_rps: 2,
            increment_rps: 2,
            max_rps: 8,
            round_secs: 20,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn accounting_invariant_holds() {
        let report = run_service(&tiny());
        assert_eq!(
            report.counts.totals.accounted(),
            report.counts.totals.generated,
            "every generated op must land in exactly one terminal bucket"
        );
        for r in &report.counts.rounds {
            assert_eq!(
                r.counts.accounted(),
                r.counts.generated,
                "round {}",
                r.round
            );
        }
        assert!(report.counts.totals.generated > 0);
    }

    #[test]
    fn rerun_is_byte_identical() {
        let a = run_service(&tiny());
        let b = run_service(&tiny());
        assert_eq!(a.counts_json, b.counts_json);
        assert_eq!(a.counts_digest, b.counts_digest);
    }

    #[test]
    fn thread_count_does_not_change_digest() {
        let cfg = tiny();
        let one = with_thread_count(1, || run_service(&cfg));
        let eight = with_thread_count(8, || run_service(&cfg));
        assert_eq!(one.counts_json, eight.counts_json);
        assert_eq!(one.counts.stop_round, eight.counts.stop_round);
    }

    #[test]
    fn overload_sheds_and_rejects_under_pressure() {
        let cfg = ServeConfig {
            servers: 2,
            queue_bound: 8,
            target_rps: 16,
            increment_rps: 16,
            max_rps: 64,
            round_secs: 30,
            ..ServeConfig::default()
        };
        let report = run_service(&cfg);
        let t = &report.counts.totals;
        assert!(
            t.shed + t.rejected > 0,
            "2 servers at 16+ ops/sec must overflow an 8-deep queue: {t:?}"
        );
        assert_eq!(report.counts.stop_reason, "failure_rate");
        assert!(report.counts.peak_queue_depth >= 8);
    }

    #[test]
    fn priority_shedding_favors_high_tenants() {
        let cfg = ServeConfig {
            servers: 2,
            queue_bound: 8,
            target_rps: 32,
            increment_rps: 0,
            max_rps: 32,
            round_secs: 30,
            ..ServeConfig::default()
        };
        let report = run_service(&cfg);
        let shed: Vec<u64> = report
            .counts
            .per_tenant
            .iter()
            .map(|t| t.counts.shed)
            .collect();
        let (Some(first), Some(last)) = (shed.first(), shed.last()) else {
            panic!("per-tenant stats missing");
        };
        assert!(
            first >= last,
            "lowest-priority tenant must shed at least as much as the highest: {shed:?}"
        );
    }

    #[test]
    fn fault_soak_reports_injections_without_panicking() {
        let cfg = ServeConfig {
            fault_rate_ppm: 200_000,
            ..tiny()
        };
        let report = run_service(&cfg);
        assert!(report.counts.injected > 0, "20% fault rate must fire");
        assert!(report.counts.retries > 0, "transient faults must retry");
        assert_eq!(
            report.counts.totals.accounted(),
            report.counts.totals.generated
        );
    }

    #[test]
    fn zero_fault_plan_matches_inert_plan_digest() {
        let base = run_service(&tiny());
        let zero = run_service(&ServeConfig {
            fault_rate_ppm: 0,
            ..tiny()
        });
        assert_eq!(base.counts_digest, zero.counts_digest);
    }

    #[test]
    fn ramp_stops_at_gate_or_ceiling() {
        let report = run_service(&ServeConfig::default());
        let n = report.counts.rounds.len() as u32;
        assert!(n > 0);
        assert_eq!(report.counts.stop_round, n - 1);
        assert!(
            ["failure_rate", "p99_latency", "max_rate_reached"]
                .contains(&report.counts.stop_reason.as_str()),
            "{}",
            report.counts.stop_reason
        );
    }
}
