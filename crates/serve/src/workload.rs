//! Seeded workload generation: one round of the ramping op stream.
//!
//! Each op's randomness (tenant, kind, flavor, service jitter, target
//! pick) derives from `split_seed(round stream, index)` via
//! [`opml_simkernel::parallel::indexed_map`], so a round's op vector is
//! byte-identical across rayon thread counts, and arrival ticks are
//! spread evenly over the round at the offered rate.

use opml_simkernel::{parallel, split_seed, Rng};
use opml_testbed::FlavorId;

/// Stream tag decorrelating workload draws from fault-plan and retry
/// streams derived from the same master seed.
const WORKLOAD_TAG: u64 = 0x5E12_7E00;

/// The five request kinds the service ingests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpKind {
    /// Create an on-demand VM (quota hot path; breaker-guarded).
    Launch,
    /// Delete one of the tenant's VMs (ledger/metering hot path).
    Terminate,
    /// Book a bare-metal window (sweep-line calendar hot path).
    Reserve,
    /// Revoke one of the tenant's admitted leases.
    Revoke,
    /// Read-only headroom check: quota fit + earliest calendar slot.
    QuotaCheck,
}

impl OpKind {
    /// All kinds, in report order.
    pub const ALL: [OpKind; 5] = [
        OpKind::Launch,
        OpKind::Terminate,
        OpKind::Reserve,
        OpKind::Revoke,
        OpKind::QuotaCheck,
    ];

    /// Stable snake-case name (report keys, telemetry labels).
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Launch => "launch",
            OpKind::Terminate => "terminate",
            OpKind::Reserve => "reserve",
            OpKind::Revoke => "revoke",
            OpKind::QuotaCheck => "quota_check",
        }
    }

    /// Base service time in ticks (seconds); per-op jitter adds 0–2.
    pub fn base_service_ticks(self) -> u64 {
        match self {
            OpKind::Launch => 4,
            OpKind::Terminate => 1,
            OpKind::Reserve => 3,
            OpKind::Revoke => 1,
            OpKind::QuotaCheck => 1,
        }
    }

    /// Whether the op consumes project quota (breaker-guarded kinds).
    pub fn consumes_quota(self) -> bool {
        matches!(self, OpKind::Launch)
    }
}

/// One generated request.
#[derive(Debug, Clone)]
pub struct OpSpec {
    /// Globally unique op id (stable across thread counts).
    pub id: u64,
    /// Round the op belongs to (stats are attributed by arrival round).
    pub round: u32,
    /// Owning tenant (0-based).
    pub tenant: u32,
    /// Shedding priority: higher wins. Derived from the tenant.
    pub priority: u32,
    /// Request kind.
    pub kind: OpKind,
    /// Arrival tick.
    pub arrival: u64,
    /// Service time in ticks once a server picks the op up.
    pub service_ticks: u64,
    /// VM flavor for launch / quota-check.
    pub vm_flavor: FlavorId,
    /// Bare-metal flavor for reserve / quota-check slot queries.
    pub bm_flavor: FlavorId,
    /// Nodes requested by a reserve.
    pub count: u32,
    /// Reserve window length in ticks.
    pub lease_ticks: u64,
    /// Seeded index used to pick a terminate/revoke target.
    pub pick: u64,
}

const VM_FLAVORS: [FlavorId; 3] = [FlavorId::M1Small, FlavorId::M1Medium, FlavorId::M1Large];
const BM_FLAVORS: [FlavorId; 4] = [
    FlavorId::GpuA100Pcie,
    FlavorId::GpuV100,
    FlavorId::GpuP100,
    FlavorId::ComputeCascadeLake,
];

/// Generate the ops for one round: `rate * round_ticks` arrivals spread
/// evenly over `[round_start, round_start + round_ticks)`, ids starting
/// at `base_id`. Runs under the ambient rayon pool with index-stable
/// output.
pub fn generate_round(
    seed: u64,
    round: u32,
    round_start: u64,
    rate: u64,
    round_ticks: u64,
    tenants: u32,
    base_id: u64,
) -> Vec<OpSpec> {
    let n = (rate * round_ticks) as usize;
    let tenants = tenants.max(1);
    let round_seed = split_seed(seed ^ WORKLOAD_TAG, u64::from(round));
    parallel::indexed_map(n, round_seed, |i, child_seed| {
        let mut rng = Rng::new(child_seed);
        let tenant = rng.below(u64::from(tenants)) as u32;
        let kind = match rng.below(100) {
            0..=29 => OpKind::Launch,
            30..=49 => OpKind::Terminate,
            50..=69 => OpKind::Reserve,
            70..=79 => OpKind::Revoke,
            _ => OpKind::QuotaCheck,
        };
        let vm_flavor = *rng.choose(&VM_FLAVORS);
        let bm_flavor = *rng.choose(&BM_FLAVORS);
        OpSpec {
            id: base_id + i as u64,
            round,
            tenant,
            // Higher tenant index = higher priority (tenant N-1 is
            // "staff"); +1 keeps zero free as "sheds to nobody".
            priority: tenant + 1,
            kind,
            arrival: round_start + (i as u64 * round_ticks) / n.max(1) as u64,
            service_ticks: kind.base_service_ticks() + rng.below(3),
            vm_flavor,
            bm_flavor,
            count: 1 + rng.below(2) as u32,
            lease_ticks: 120 + rng.below(481),
            pick: rng.next_u64(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use opml_simkernel::parallel::with_thread_count;

    #[test]
    fn round_generation_is_thread_invariant() {
        let gen = |t: usize| {
            with_thread_count(t, || generate_round(42, 3, 1000, 8, 60, 4, 5000))
                .iter()
                .map(|o| {
                    (
                        o.id,
                        o.tenant,
                        o.kind,
                        o.arrival,
                        o.service_ticks,
                        o.pick,
                        o.lease_ticks,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(gen(1), gen(8));
    }

    #[test]
    fn arrivals_are_monotone_and_in_round() {
        let ops = generate_round(7, 0, 500, 10, 30, 4, 0);
        assert_eq!(ops.len(), 300);
        let mut prev = 0;
        for op in &ops {
            assert!(op.arrival >= prev, "arrivals must be non-decreasing");
            assert!((500..530).contains(&op.arrival));
            prev = op.arrival;
        }
    }

    #[test]
    fn priorities_follow_tenants() {
        for op in generate_round(9, 1, 0, 4, 25, 3, 0) {
            assert_eq!(op.priority, op.tenant + 1);
            assert!(op.tenant < 3);
        }
    }

    #[test]
    fn op_mix_covers_every_kind() {
        let ops = generate_round(11, 0, 0, 20, 60, 4, 0);
        for kind in OpKind::ALL {
            assert!(
                ops.iter().any(|o| o.kind == kind),
                "kind {} missing from 1200 ops",
                kind.name()
            );
        }
    }
}
