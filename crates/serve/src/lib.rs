//! # opml-serve
//!
//! The campus cloud as a **long-running multi-tenant service** under
//! ramping load — the operational counterpart of the batch semester
//! simulation. A seeded workload generator emits launch / terminate /
//! reserve / revoke / quota-check requests against one persistent
//! [`opml_testbed::Cloud`], round by round, raising the offered rate
//! each round (`target_rps` → `+increment_rps` → `max_rps`, the IC
//! scalability suite's `WorkloadExperiment` shape) until a failure-rate
//! gate (`STOP_FAILURE_RATE`-style) or a p99 sim-latency gate
//! (`ALLOWABLE_LATENCY`-style) trips.
//!
//! The robustness core is the overload path:
//!
//! * a **bounded admission queue** with typed
//!   [`opml_testbed::CloudError::Overload`] rejection,
//! * **priority-aware load shedding** — when the queue is full, the
//!   lowest-priority queued op is shed to make room for a
//!   higher-priority arrival, otherwise the arrival is rejected,
//! * **deadline budgets** per op, reusing
//!   [`opml_faults::RetryPolicy`]'s backoff + deadline machinery for
//!   retries of transient failures,
//! * **per-tenant quota circuit breakers**
//!   ([`opml_faults::CircuitBreaker`], with half-open single-probe
//!   admission) in front of quota-consuming ops.
//!
//! ## Time model
//!
//! The simulator clock ([`opml_simkernel::SimTime`]) is unit-agnostic:
//! nothing in the testbed interprets a tick beyond "60 ticks = one
//! metering hour". The batch semester reads ticks as minutes; **the
//! service mode reads one tick as one second**, which puts request
//! rates in ops/sec and service latencies in seconds — the natural
//! units for a soak — while reusing every sim-time type unchanged
//! (histogram bucket bounds 15 s, 30 s, 60 s, … instead of minutes).
//!
//! ## Determinism contract
//!
//! Every draw (op mix, tenants, service jitter, fault decisions, retry
//! jitter) comes from a stream derived with
//! [`opml_simkernel::split_seed`] from the master seed and a stable op
//! id; the service loop itself is a sequential discrete-event sweep in
//! sim time. Per-round op generation fans out through
//! [`opml_simkernel::parallel::indexed_map`] (order-stable), so the
//! digested report is byte-identical across reruns and rayon thread
//! counts — including under an active [`opml_faults::FaultPlan`], which
//! makes chaos soaks replayable.

pub mod admission;
pub mod report;
pub mod service;
pub mod workload;

pub use admission::{AdmissionOutcome, AdmissionQueue, QueuedOp};
pub use report::{
    kind_index, KindStats, LatencySummary, OpCounts, RoundStats, ServeCounts, ServeReport,
    TenantStats, SERVE_SCHEMA,
};
pub use service::{run_service, ServeConfig};
pub use workload::{OpKind, OpSpec};
