//! Schema-versioned serve report.
//!
//! [`ServeCounts`] is the **digested subtree**: every field in it is an
//! integer, string, or bool derived purely from the seeded simulation,
//! so its canonical JSON is byte-identical across reruns and rayon
//! thread counts. [`ServeReport`] wraps the counts together with
//! presentation-only extras (latency histograms for table rendering)
//! that never enter the digest.

use crate::workload::OpKind;
use opml_faults::site_key;
use opml_telemetry::SimTimeHistogram;
use serde::Serialize;
use std::collections::BTreeMap;

/// Schema tag embedded in `serve.json`; bump on any breaking change to
/// the digested subtree.
pub const SERVE_SCHEMA: &str = "serve/v1";

/// Terminal dispositions of generated ops. Every generated op lands in
/// exactly one bucket (retries are attributed once, by their final
/// outcome), so `generated == accounted()` is the ledger invariant the
/// proptests enforce.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct OpCounts {
    /// Ops emitted by the workload generator.
    pub generated: u64,
    /// Served successfully (possibly after retries).
    pub completed: u64,
    /// Displaced from the full admission queue by higher priority work.
    pub shed: u64,
    /// Turned away at admission (queue overload or open breaker).
    pub rejected: u64,
    /// Abandoned because the per-op deadline budget ran out.
    pub timed_out: u64,
    /// Terminal errors: permanent, or retry budget exhausted.
    pub failed: u64,
}

impl OpCounts {
    /// Sum of all terminal dispositions; equals `generated` when the
    /// accounting invariant holds.
    pub fn accounted(&self) -> u64 {
        self.completed + self.shed + self.rejected + self.timed_out + self.failed
    }

    /// Ops that did not complete (the failure-rate gate numerator).
    pub fn unserved(&self) -> u64 {
        self.generated.saturating_sub(self.completed)
    }

    /// Fold another counter set into this one.
    pub fn merge(&mut self, other: &OpCounts) {
        self.generated += other.generated;
        self.completed += other.completed;
        self.shed += other.shed;
        self.rejected += other.rejected;
        self.timed_out += other.timed_out;
        self.failed += other.failed;
    }

    /// Unserved fraction in parts-per-million (integer, digest-safe);
    /// 0 when nothing was generated.
    pub fn failure_ppm(&self) -> u64 {
        if self.generated == 0 {
            0
        } else {
            self.unserved() * 1_000_000 / self.generated
        }
    }
}

/// Integer latency digest of a [`SimTimeHistogram`] (ticks = seconds in
/// service mode). All-zero when no samples were recorded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct LatencySummary {
    /// Recorded samples.
    pub count: u64,
    /// Mean latency in seconds, rounded to nearest.
    pub mean_s: u64,
    /// Median upper bound in seconds.
    pub p50_s: u64,
    /// 90th-percentile upper bound in seconds.
    pub p90_s: u64,
    /// 99th-percentile upper bound in seconds.
    pub p99_s: u64,
    /// Largest sample in seconds.
    pub max_s: u64,
}

impl LatencySummary {
    /// Summarize a histogram (empty histogram → all zeros).
    pub fn from_histogram(h: &SimTimeHistogram) -> LatencySummary {
        LatencySummary {
            count: h.count,
            mean_s: h.mean_minutes(),
            p50_s: h.p50_minutes().unwrap_or(0),
            p90_s: h.p90_minutes().unwrap_or(0),
            p99_s: h.p99_minutes().unwrap_or(0),
            max_s: h.max_minutes,
        }
    }
}

/// One ramp round's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct RoundStats {
    /// Round index (0-based).
    pub round: u32,
    /// Offered rate for the round, ops/sec.
    pub offered_rps: u64,
    /// Terminal dispositions of the round's ops.
    pub counts: OpCounts,
    /// Retry attempts re-queued during the round.
    pub retries: u64,
    /// Fault-plan injections that fired during the round.
    pub injected: u64,
    /// `counts.failure_ppm()`, precomputed for the report.
    pub failure_ppm: u64,
    /// Latency digest over the round's completed ops.
    pub latency: LatencySummary,
    /// Whether the round cleared both gates (failure rate and p99).
    pub sustainable: bool,
}

/// Totals for one op kind across the whole soak.
#[derive(Debug, Clone, Serialize)]
pub struct KindStats {
    /// Stable kind name ([`OpKind::name`]).
    pub kind: String,
    /// Terminal dispositions for this kind.
    pub counts: OpCounts,
    /// Retry attempts for this kind.
    pub retries: u64,
    /// Injections that fired against this kind.
    pub injected: u64,
    /// Completed ops/sec of this kind during the best sustainable
    /// round, in milli-ops/sec (0 when no round was sustainable).
    pub sustained_milli_ops_per_sec: u64,
    /// Latency digest over this kind's completed ops.
    pub latency: LatencySummary,
}

/// Totals for one tenant across the whole soak.
#[derive(Debug, Clone, Serialize)]
pub struct TenantStats {
    /// Tenant index (0-based).
    pub tenant: u32,
    /// Shedding priority (higher survives longer).
    pub priority: u32,
    /// Terminal dispositions for this tenant's ops.
    pub counts: OpCounts,
    /// Admissions refused by the tenant's quota breaker.
    pub breaker_rejects: u64,
    /// Times the tenant's breaker tripped open.
    pub breaker_trips: u64,
}

/// The digested subtree of `serve.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ServeCounts {
    /// Schema tag ([`SERVE_SCHEMA`]).
    pub schema: String,
    /// Master seed.
    pub seed: u64,
    /// Tenant count.
    pub tenants: u32,
    /// Simulated server (worker) count.
    pub servers: u32,
    /// Admission queue bound.
    pub queue_bound: u64,
    /// Initial offered rate, ops/sec.
    pub target_rps: u64,
    /// Per-round rate increment, ops/sec.
    pub increment_rps: u64,
    /// Rate ceiling, ops/sec.
    pub max_rps: u64,
    /// Round length in sim seconds.
    pub round_secs: u64,
    /// Fault-injection rate in parts-per-million.
    pub fault_rate_ppm: u64,
    /// Per-round outcomes, in ramp order.
    pub rounds: Vec<RoundStats>,
    /// Per-kind totals, in [`OpKind::ALL`] order.
    pub per_kind: Vec<KindStats>,
    /// Per-tenant totals, in tenant order.
    pub per_tenant: Vec<TenantStats>,
    /// Whole-soak disposition totals.
    pub totals: OpCounts,
    /// Whole-soak retry attempts.
    pub retries: u64,
    /// Whole-soak fault injections fired.
    pub injected: u64,
    /// Whole-soak breaker trips.
    pub breaker_trips: u64,
    /// Whole-soak breaker admission refusals.
    pub breaker_rejects: u64,
    /// Admission-queue high-water mark.
    pub peak_queue_depth: u64,
    /// Round the ramp stopped on (last round run).
    pub stop_round: u32,
    /// Which gate stopped the ramp ("failure_rate", "p99_latency", or
    /// "max_rate_reached").
    pub stop_reason: String,
    /// Highest offered rate whose round cleared both gates (0 = none).
    pub max_sustainable_rps: u64,
    /// Latency digest over all completed ops.
    pub overall_latency: LatencySummary,
}

/// Full result of a service soak: digested counts plus presentation
/// extras.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The digested subtree.
    pub counts: ServeCounts,
    /// Canonical JSON of `counts` (what the digest is taken over).
    pub counts_json: String,
    /// FNV-1a digest of `counts_json`.
    pub counts_digest: u64,
    /// Latency histograms for table rendering, keyed `"overall"` and
    /// per kind name. Not digested.
    pub histograms: BTreeMap<String, SimTimeHistogram>,
}

impl ServeReport {
    /// Seal a report: canonicalize the counts to JSON and digest them.
    pub fn seal(
        counts: ServeCounts,
        histograms: BTreeMap<String, SimTimeHistogram>,
    ) -> ServeReport {
        // The vendored writer is infallible for derive-produced trees;
        // an empty string would still digest deterministically.
        let counts_json = serde_json::to_string(&counts).unwrap_or_default();
        let counts_digest = site_key(&counts_json);
        ServeReport {
            counts,
            counts_json,
            counts_digest,
            histograms,
        }
    }
}

/// Index of `kind` in [`OpKind::ALL`] (report row order).
pub fn kind_index(kind: OpKind) -> usize {
    match kind {
        OpKind::Launch => 0,
        OpKind::Terminate => 1,
        OpKind::Reserve => 2,
        OpKind::Revoke => 3,
        OpKind::QuotaCheck => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opml_simkernel::SimDuration;

    #[test]
    fn op_counts_ledger_invariant() {
        let c = OpCounts {
            generated: 10,
            completed: 4,
            shed: 2,
            rejected: 1,
            timed_out: 2,
            failed: 1,
        };
        assert_eq!(c.accounted(), 10);
        assert_eq!(c.unserved(), 6);
        assert_eq!(c.failure_ppm(), 600_000);
        assert_eq!(OpCounts::default().failure_ppm(), 0);
    }

    #[test]
    fn latency_summary_from_histogram() {
        let mut h = SimTimeHistogram::default();
        for s in [5, 10, 20, 40, 40] {
            h.observe(SimDuration(s));
        }
        let l = LatencySummary::from_histogram(&h);
        assert_eq!(l.count, 5);
        assert_eq!(l.mean_s, 23);
        assert_eq!(l.max_s, 40);
        assert!(l.p50_s <= l.p99_s && l.p99_s <= l.max_s);
        assert_eq!(
            LatencySummary::from_histogram(&SimTimeHistogram::default()),
            LatencySummary::default()
        );
    }

    #[test]
    fn seal_digest_tracks_counts_json() {
        let counts = ServeCounts {
            schema: SERVE_SCHEMA.to_string(),
            seed: 42,
            tenants: 4,
            servers: 64,
            queue_bound: 256,
            target_rps: 8,
            increment_rps: 8,
            max_rps: 64,
            round_secs: 60,
            fault_rate_ppm: 0,
            rounds: Vec::new(),
            per_kind: Vec::new(),
            per_tenant: Vec::new(),
            totals: OpCounts::default(),
            retries: 0,
            injected: 0,
            breaker_trips: 0,
            breaker_rejects: 0,
            peak_queue_depth: 0,
            stop_round: 0,
            stop_reason: "max_rate_reached".to_string(),
            max_sustainable_rps: 0,
            overall_latency: LatencySummary::default(),
        };
        let a = ServeReport::seal(counts.clone(), BTreeMap::new());
        let b = ServeReport::seal(counts, BTreeMap::new());
        assert_eq!(a.counts_json, b.counts_json);
        assert_eq!(a.counts_digest, b.counts_digest);
        assert!(a.counts_json.contains("\"schema\":\"serve/v1\""));
    }

    #[test]
    fn kind_index_matches_all_order() {
        for (i, kind) in OpKind::ALL.iter().enumerate() {
            assert_eq!(kind_index(*kind), i);
        }
    }
}
