//! Property-based tests for the service soak.
//!
//! Three promises under arbitrary (small) configurations:
//!
//! 1. the soak never panics, under any fault rate or ramp shape;
//! 2. the op ledger balances — every generated op lands in exactly one
//!    terminal bucket, per round and in total;
//! 3. a zero-fault, below-saturation soak replays byte-identically
//!    under 8 rayon threads (the determinism contract the digested
//!    `serve.json` rests on).

use opml_serve::{run_service, ServeConfig};
use opml_simkernel::parallel::with_thread_count;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary fault plans and ramp shapes never panic, and the
    /// accounting invariant holds in every round.
    #[test]
    fn soak_never_panics_and_ledger_balances(
        seed in any::<u64>(),
        tenants in 1u32..6,
        servers in 1u32..16,
        queue_bound in 1usize..32,
        target_rps in 1u64..12,
        increment_rps in 0u64..12,
        max_rps in 1u64..24,
        round_secs in 5u64..30,
        fault_rate_ppm in 0u64..400_000,
        deadline_s in 10u64..200,
    ) {
        let cfg = ServeConfig {
            seed,
            tenants,
            servers,
            queue_bound,
            target_rps,
            increment_rps,
            max_rps,
            round_secs,
            fault_rate_ppm,
            deadline_s,
            ..ServeConfig::default()
        };
        let report = run_service(&cfg);
        let t = &report.counts.totals;
        prop_assert!(t.generated > 0);
        prop_assert_eq!(
            t.accounted(), t.generated,
            "completed+shed+rejected+timed_out+failed must equal generated: {:?}", t
        );
        for r in &report.counts.rounds {
            prop_assert_eq!(r.counts.accounted(), r.counts.generated, "round {}", r.round);
        }
        // Stop round is always the last round run.
        prop_assert_eq!(
            report.counts.stop_round as usize,
            report.counts.rounds.len() - 1
        );
        // Histogram sample count matches the completed total.
        prop_assert_eq!(report.counts.overall_latency.count, t.completed);
    }

    /// Zero faults, light load: the digested report is byte-identical
    /// between a 1-thread and an 8-thread replay.
    #[test]
    fn below_saturation_soak_is_thread_invariant(
        seed in any::<u64>(),
        tenants in 1u32..5,
        target_rps in 1u64..4,
    ) {
        let cfg = ServeConfig {
            seed,
            tenants,
            servers: 32,
            target_rps,
            increment_rps: 2,
            max_rps: 8,
            round_secs: 15,
            fault_rate_ppm: 0,
            ..ServeConfig::default()
        };
        let one = with_thread_count(1, || run_service(&cfg));
        let eight = with_thread_count(8, || run_service(&cfg));
        prop_assert_eq!(&one.counts_json, &eight.counts_json);
        prop_assert_eq!(one.counts_digest, eight.counts_digest);
        prop_assert_eq!(one.counts.stop_round, eight.counts.stop_round);
    }
}
