//! Usage rollups from the ledger.

use crate::attribution::{parse_name, Owner};
use opml_testbed::flavor::FlavorId;
use opml_testbed::ledger::{Ledger, UsageKind};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Usage of one `(assignment, flavor)` cell — one row of Table 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AssignmentUsage {
    /// Assignment tag.
    pub tag: String,
    /// Flavor.
    pub flavor: FlavorId,
    /// Total instance hours.
    pub instance_hours: f64,
    /// Total floating-IP hours attributed to this cell.
    pub fip_hours: f64,
    /// Hours closed by lease auto-termination (bare metal / edge).
    pub auto_terminated_hours: f64,
    /// Distinct owners (students/groups) seen.
    pub owners: usize,
}

/// Per-assignment rollup of a ledger.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AssignmentRollup {
    /// Rows sorted by `(tag, flavor)`.
    pub rows: Vec<AssignmentUsage>,
    /// Enrollment used for per-student normalization.
    pub enrollment: usize,
}

impl AssignmentRollup {
    /// Build from a ledger.
    ///
    /// FIP records carry the deployment name; their flavor is resolved by
    /// finding an instance record whose name starts with the FIP's name
    /// (the deployment's nodes are `"<fip-name>"` or `"<fip-name>-…"`)
    /// — mirroring how the paper's authors joined the two data sources.
    pub fn from_ledger(ledger: &Ledger, enrollment: usize) -> AssignmentRollup {
        assert!(enrollment > 0);
        // Deployment name → flavor (from instance records). Ordered map:
        // the prefix-fallback below takes the *first* matching entry, so
        // iteration order must be deterministic (DL002).
        let mut deployment_flavor: BTreeMap<&str, FlavorId> = BTreeMap::new();
        for r in ledger.records() {
            if let UsageKind::Instance { flavor, .. } = r.kind {
                deployment_flavor.entry(r.name.as_str()).or_insert(flavor);
            }
        }
        #[derive(Default)]
        struct Cell {
            instance_hours: f64,
            fip_hours: f64,
            auto_hours: f64,
            owners: std::collections::HashSet<Owner>,
        }
        let mut cells: HashMap<(String, FlavorId), Cell> = HashMap::new();
        for r in ledger.records() {
            match r.kind {
                UsageKind::Instance {
                    flavor,
                    auto_terminated,
                } => {
                    let a = parse_name(&r.name);
                    let cell = cells.entry((a.tag, flavor)).or_default();
                    cell.instance_hours += r.hours();
                    if auto_terminated {
                        cell.auto_hours += r.hours();
                    }
                    cell.owners.insert(a.owner);
                }
                UsageKind::FloatingIp => {
                    // Resolve flavor via the longest matching deployment
                    // prefix; fall back over instance names that extend
                    // the FIP name.
                    let flavor = deployment_flavor.get(r.name.as_str()).copied().or_else(|| {
                        deployment_flavor
                            .iter()
                            .filter(|(name, _)| name.starts_with(r.name.as_str()))
                            .map(|(_, &f)| f)
                            .next()
                    });
                    if let Some(flavor) = flavor {
                        let a = parse_name(&r.name);
                        let cell = cells.entry((a.tag, flavor)).or_default();
                        cell.fip_hours += r.hours();
                        cell.owners.insert(a.owner);
                    }
                }
                _ => {}
            }
        }
        let mut rows: Vec<AssignmentUsage> = cells
            .into_iter()
            .map(|((tag, flavor), c)| AssignmentUsage {
                tag,
                flavor,
                instance_hours: c.instance_hours,
                fip_hours: c.fip_hours,
                auto_terminated_hours: c.auto_hours,
                owners: c.owners.len(),
            })
            .collect();
        rows.sort_by(|a, b| a.tag.cmp(&b.tag).then(a.flavor.cmp(&b.flavor)));
        AssignmentRollup { rows, enrollment }
    }

    /// Total instance hours across all rows.
    pub fn total_instance_hours(&self) -> f64 {
        self.rows.iter().map(|r| r.instance_hours).sum()
    }

    /// Total FIP hours across all rows.
    pub fn total_fip_hours(&self) -> f64 {
        self.rows.iter().map(|r| r.fip_hours).sum()
    }

    /// Rows for one tag.
    pub fn rows_for(&self, tag: &str) -> Vec<&AssignmentUsage> {
        self.rows.iter().filter(|r| r.tag == tag).collect()
    }

    /// Per-student mean hours for a tag (Fig. 1's y-axis).
    pub fn per_student_hours(&self, tag: &str) -> f64 {
        self.rows_for(tag)
            .iter()
            .map(|r| r.instance_hours)
            .sum::<f64>()
            / self.enrollment as f64
    }
}

/// One student's usage of one `(tag, flavor)` cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudentLabUsage {
    /// Assignment tag.
    pub tag: String,
    /// Flavor.
    pub flavor: FlavorId,
    /// Instance hours.
    pub instance_hours: f64,
    /// FIP hours.
    pub fip_hours: f64,
}

/// Per-student usage breakdown (Fig. 2's input).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerStudentUsage {
    /// `student → usage cells` (students with zero usage are absent).
    /// Ordered map: this struct is serialized, so entry order must not
    /// depend on hasher state.
    pub students: BTreeMap<u32, Vec<StudentLabUsage>>,
}

impl PerStudentUsage {
    /// Build from a ledger (only `Owner::Student` records).
    pub fn from_ledger(ledger: &Ledger) -> PerStudentUsage {
        // Ordered for a deterministic prefix-fallback pick (DL002).
        let mut deployment_flavor: BTreeMap<&str, FlavorId> = BTreeMap::new();
        for r in ledger.records() {
            if let UsageKind::Instance { flavor, .. } = r.kind {
                deployment_flavor.entry(r.name.as_str()).or_insert(flavor);
            }
        }
        type Cells = HashMap<(String, FlavorId), (f64, f64)>;
        let mut students: HashMap<u32, Cells> = HashMap::new();
        for r in ledger.records() {
            let a = parse_name(&r.name);
            let Owner::Student(id) = a.owner else {
                continue;
            };
            match r.kind {
                UsageKind::Instance { flavor, .. } => {
                    let e = students
                        .entry(id)
                        .or_default()
                        .entry((a.tag, flavor))
                        .or_insert((0.0, 0.0));
                    e.0 += r.hours();
                }
                UsageKind::FloatingIp => {
                    let flavor = deployment_flavor.get(r.name.as_str()).copied().or_else(|| {
                        deployment_flavor
                            .iter()
                            .filter(|(name, _)| name.starts_with(r.name.as_str()))
                            .map(|(_, &f)| f)
                            .next()
                    });
                    if let Some(flavor) = flavor {
                        let e = students
                            .entry(id)
                            .or_default()
                            .entry((a.tag, flavor))
                            .or_insert((0.0, 0.0));
                        e.1 += r.hours();
                    }
                }
                _ => {}
            }
        }
        let students: BTreeMap<u32, Vec<StudentLabUsage>> = students
            .into_iter()
            .map(|(id, cells)| {
                let mut rows: Vec<StudentLabUsage> = cells
                    .into_iter()
                    .map(|((tag, flavor), (ih, fh))| StudentLabUsage {
                        tag,
                        flavor,
                        instance_hours: ih,
                        fip_hours: fh,
                    })
                    .collect();
                rows.sort_by(|a, b| a.tag.cmp(&b.tag).then(a.flavor.cmp(&b.flavor)));
                (id, rows)
            })
            .collect();
        PerStudentUsage { students }
    }

    /// Hours a student spent on a tag.
    pub fn student_hours(&self, student: u32, tag: &str) -> f64 {
        self.students
            .get(&student)
            .map(|rows| {
                rows.iter()
                    .filter(|r| r.tag == tag)
                    .map(|r| r.instance_hours)
                    .sum()
            })
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opml_simkernel::SimTime;
    use opml_testbed::ledger::UsageRecord;

    fn t(h: u64) -> SimTime {
        SimTime(h * 60)
    }

    fn ledger_fixture() -> Ledger {
        let mut l = Ledger::new();
        // Student 1: lab2 with 3 m1.medium for 10h + one FIP for 10h.
        for n in 0..3 {
            l.push(UsageRecord {
                name: format!("lab2-s001-node{n}"),
                kind: UsageKind::Instance {
                    flavor: FlavorId::M1Medium,
                    auto_terminated: false,
                },
                start: t(0),
                end: t(10),
            });
        }
        l.push(UsageRecord {
            name: "lab2-s001".into(),
            kind: UsageKind::FloatingIp,
            start: t(0),
            end: t(10),
        });
        // Student 2: lab4 multi on v100 for 3h, auto-terminated.
        l.push(UsageRecord {
            name: "lab4-multi-s002".into(),
            kind: UsageKind::Instance {
                flavor: FlavorId::GpuV100,
                auto_terminated: true,
            },
            start: t(0),
            end: t(3),
        });
        l.push(UsageRecord {
            name: "lab4-multi-s002".into(),
            kind: UsageKind::FloatingIp,
            start: t(0),
            end: t(3),
        });
        // A project group's instance.
        l.push(UsageRecord {
            name: "proj-g03-serve".into(),
            kind: UsageKind::Instance {
                flavor: FlavorId::M1Large,
                auto_terminated: false,
            },
            start: t(0),
            end: t(100),
        });
        l
    }

    #[test]
    fn rollup_cells() {
        let rollup = AssignmentRollup::from_ledger(&ledger_fixture(), 2);
        assert_eq!(rollup.rows.len(), 3);
        let lab2 = rollup
            .rows
            .iter()
            .find(|r| r.tag == "lab2")
            .expect("lab2 row");
        assert_eq!(lab2.flavor, FlavorId::M1Medium);
        assert_eq!(lab2.instance_hours, 30.0);
        assert_eq!(lab2.fip_hours, 10.0);
        assert_eq!(lab2.owners, 1);
        let lab4 = rollup.rows.iter().find(|r| r.tag == "lab4-multi").unwrap();
        assert_eq!(lab4.instance_hours, 3.0);
        assert_eq!(lab4.auto_terminated_hours, 3.0);
        assert_eq!(lab4.fip_hours, 3.0);
        assert_eq!(rollup.total_instance_hours(), 133.0);
    }

    #[test]
    fn per_student_hours_normalized() {
        let rollup = AssignmentRollup::from_ledger(&ledger_fixture(), 2);
        assert_eq!(rollup.per_student_hours("lab2"), 15.0);
    }

    #[test]
    fn fip_resolves_flavor_via_prefix() {
        // lab2's FIP name has no exact instance match ("-node*" suffixes),
        // yet its hours land on the m1.medium row.
        let rollup = AssignmentRollup::from_ledger(&ledger_fixture(), 2);
        let lab2 = rollup.rows.iter().find(|r| r.tag == "lab2").unwrap();
        assert!(lab2.fip_hours > 0.0);
    }

    #[test]
    fn per_student_usage() {
        let per = PerStudentUsage::from_ledger(&ledger_fixture());
        assert_eq!(per.students.len(), 2); // groups excluded
        assert_eq!(per.student_hours(1, "lab2"), 30.0);
        assert_eq!(per.student_hours(2, "lab4-multi"), 3.0);
        assert_eq!(per.student_hours(1, "lab4-multi"), 0.0);
        assert_eq!(per.student_hours(99, "lab2"), 0.0);
        let s1 = &per.students[&1];
        assert_eq!(s1.len(), 1);
        assert_eq!(s1[0].fip_hours, 10.0);
    }

    #[test]
    fn empty_ledger() {
        let rollup = AssignmentRollup::from_ledger(&Ledger::new(), 191);
        assert!(rollup.rows.is_empty());
        assert_eq!(rollup.total_instance_hours(), 0.0);
    }
}
