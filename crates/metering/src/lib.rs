//! # opml-metering
//!
//! Usage-ledger aggregation. §5 of the paper: "Using the course timeline
//! and the naming conventions specified in the lab instructions, we were
//! able to associate most individual compute instances with specific lab
//! assignments". This crate implements that association and the rollups
//! the evaluation consumes:
//!
//! * [`attribution`] — parse instance/FIP names into `(assignment tag,
//!   student | group)` under the course naming convention,
//! * [`rollup`] — per-assignment×flavor usage (Table 1's hours columns)
//!   and per-student usage (Fig. 1 and Fig. 2 inputs).

pub mod attribution;
pub mod rollup;

pub use attribution::{parse_name, Attribution, Owner};
pub use rollup::{AssignmentRollup, AssignmentUsage, PerStudentUsage, StudentLabUsage};
