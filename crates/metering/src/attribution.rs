//! The course naming convention and its parser.
//!
//! Lab instructions tell students to name resources
//! `"<tag>-s<student>"` (e.g. `lab2-s017`), with an optional
//! `-<suffix>` for multi-resource deployments (`lab2-s017-node1`).
//! Project resources are named `"<tag>-g<group>"` (`proj-g07-train`).
//! Resources that do not follow the convention (it happens — §5 says
//! "most" instances could be associated) parse as [`Owner::Unknown`].

use serde::{Deserialize, Serialize};

/// Who owns a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Owner {
    /// A student, by index.
    Student(u32),
    /// A project group, by index.
    Group(u32),
    /// Could not be attributed.
    Unknown,
}

/// Parsed attribution of a resource name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribution {
    /// Assignment tag (`lab1`, `lab4a`, `proj`, …).
    pub tag: String,
    /// Owner.
    pub owner: Owner,
}

/// Compose a student resource name.
pub fn student_name(tag: &str, student: u32) -> String {
    format!("{tag}-s{student:03}")
}

/// Compose a group resource name.
pub fn group_name(tag: &str, group: u32, suffix: &str) -> String {
    if suffix.is_empty() {
        format!("{tag}-g{group:02}")
    } else {
        format!("{tag}-g{group:02}-{suffix}")
    }
}

/// Parse a resource name under the convention.
pub fn parse_name(name: &str) -> Attribution {
    let parts: Vec<&str> = name.split('-').collect();
    for (i, part) in parts.iter().enumerate().skip(1) {
        if let Some(rest) = part.strip_prefix('s') {
            if !rest.is_empty() && rest.chars().all(|c| c.is_ascii_digit()) {
                return Attribution {
                    tag: parts[..i].join("-"),
                    owner: Owner::Student(rest.parse().expect("digits checked")),
                };
            }
        }
        if let Some(rest) = part.strip_prefix('g') {
            if !rest.is_empty() && rest.chars().all(|c| c.is_ascii_digit()) {
                return Attribution {
                    tag: parts[..i].join("-"),
                    owner: Owner::Group(rest.parse().expect("digits checked")),
                };
            }
        }
    }
    Attribution {
        tag: name.to_string(),
        owner: Owner::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn student_roundtrip() {
        let name = student_name("lab2", 17);
        assert_eq!(name, "lab2-s017");
        let a = parse_name(&name);
        assert_eq!(a.tag, "lab2");
        assert_eq!(a.owner, Owner::Student(17));
    }

    #[test]
    fn suffixed_deployment_names() {
        let a = parse_name("lab2-s017-node2");
        assert_eq!(a.tag, "lab2");
        assert_eq!(a.owner, Owner::Student(17));
    }

    #[test]
    fn group_names() {
        let name = group_name("proj", 7, "train");
        assert_eq!(name, "proj-g07-train");
        let a = parse_name(&name);
        assert_eq!(a.tag, "proj");
        assert_eq!(a.owner, Owner::Group(7));
        let bare = parse_name(&group_name("proj", 12, ""));
        assert_eq!(bare.owner, Owner::Group(12));
    }

    #[test]
    fn multi_part_tags() {
        let a = parse_name("lab4-multi-s003");
        assert_eq!(a.tag, "lab4-multi");
        assert_eq!(a.owner, Owner::Student(3));
    }

    #[test]
    fn unattributable_names() {
        for name in [
            "my-test-vm",
            "server",
            "lab2-student17",
            "lab2-s",
            "lab2-sabc",
        ] {
            let a = parse_name(name);
            assert_eq!(a.owner, Owner::Unknown, "{name}");
            assert_eq!(a.tag, name);
        }
    }
}
