//! Property tests for the shard-merge laws.
//!
//! The sharded semester driver folds per-shard results with three
//! merges: [`Ledger::merge_sorted`] for usage records, fieldwise
//! [`FaultStats::merge`] for failure counters, and rollups rebuilt from
//! the canonically merged ledger. Each law must be associative and
//! invariant to shard order, or the parallel driver could not promise
//! byte-identical outcomes at any thread count. These properties pin
//! exactly that, on arbitrary synthetic fragments.

use opml_faults::FaultStats;
use opml_metering::attribution::student_name;
use opml_metering::rollup::{AssignmentRollup, PerStudentUsage};
use opml_simkernel::SimTime;
use opml_testbed::flavor::FlavorId;
use opml_testbed::ledger::{Ledger, RecordSource, StreamMerge, UsageKind, UsageRecord};
use proptest::prelude::*;

/// Deterministically build one synthetic record from drawn scalars.
fn record(student: u32, kind_sel: usize, start: u64, len: u64) -> UsageRecord {
    let flavors = [
        FlavorId::M1Small,
        FlavorId::M1Medium,
        FlavorId::GpuV100,
        FlavorId::ComputeGigaio,
    ];
    let tags = ["lab1", "lab2", "lab7", "proj"];
    let kind = match kind_sel % 6 {
        0 | 1 => UsageKind::Instance {
            flavor: flavors[kind_sel % flavors.len()],
            auto_terminated: kind_sel % 2 == 0,
        },
        2 => UsageKind::FloatingIp,
        3 => UsageKind::Volume {
            size_gb: 10 + (start % 50),
        },
        4 => UsageKind::ObjectStorage {
            gb: (start % 17) as f64 + 0.5,
        },
        _ => UsageKind::Instance {
            flavor: flavors[(kind_sel / 2) % flavors.len()],
            auto_terminated: false,
        },
    };
    UsageRecord {
        name: student_name(tags[kind_sel % tags.len()], student),
        kind,
        start: SimTime(start * 60),
        end: SimTime((start + len) * 60),
    }
}

/// Split drawn records into `shards` fragments by round-robin.
fn fragments(draws: &[(u32, usize, u64, u64)], shards: usize) -> Vec<Ledger> {
    let mut frags = vec![Ledger::new(); shards.max(1)];
    for (i, &(student, kind_sel, start, len)) in draws.iter().enumerate() {
        frags[i % shards.max(1)].push(record(student, kind_sel, start, len));
    }
    frags
}

fn ledger_bytes(l: &Ledger) -> String {
    serde_json::to_string(l).expect("ledger serializes")
}

proptest! {
    /// Merging ledger fragments is invariant to fragment order and to
    /// grouping (associativity): any shard schedule serializes to the
    /// same bytes.
    #[test]
    fn ledger_merge_is_order_and_grouping_invariant(
        draws in prop::collection::vec((0u32..40, 0usize..12, 0u64..2000, 1u64..200), 1..80),
        shards in 1usize..6,
    ) {
        let frags = fragments(&draws, shards);

        // Fragment order: forward vs reversed.
        let forward = Ledger::merge_sorted(frags.clone());
        let mut reversed_frags = frags.clone();
        reversed_frags.reverse();
        let reversed = Ledger::merge_sorted(reversed_frags);
        prop_assert_eq!(ledger_bytes(&forward), ledger_bytes(&reversed));

        // Grouping: fold pairwise-left vs merge-all-at-once.
        let mut left = Ledger::new();
        for frag in frags {
            left = Ledger::merge_sorted([left, frag]);
        }
        prop_assert_eq!(ledger_bytes(&forward), ledger_bytes(&left));
    }

    /// Fieldwise FaultStats merge is associative and commutative with
    /// the default value as identity.
    #[test]
    fn fault_stats_merge_is_associative_and_commutative(
        a in prop::collection::vec(0u64..1_000_000, 7),
        b in prop::collection::vec(0u64..1_000_000, 7),
        c in prop::collection::vec(0u64..1_000_000, 7),
    ) {
        let stats = |v: &[u64]| FaultStats {
            injected: v[0],
            retries: v[1],
            abandoned: v[2],
            leaked: v[3],
            requeued: v[4],
            degraded: v[5],
            breaker_trips: v[6],
        };
        let (a, b, c) = (stats(&a), stats(&b), stats(&c));

        let mut ab_c = a;
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut a_bc = a;
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c, a_bc);

        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab, ba);

        let mut id = a;
        id.merge(&FaultStats::default());
        prop_assert_eq!(id, a);
    }

    /// Rollups built over the canonically merged ledger are invariant to
    /// how the records were fragmented across shards: same bytes for the
    /// assignment rollup and the per-student usage.
    #[test]
    fn rollups_from_merged_ledger_are_shard_order_invariant(
        draws in prop::collection::vec((0u32..30, 0usize..12, 0u64..2000, 1u64..150), 1..60),
        shards in 1usize..5,
    ) {
        let frags = fragments(&draws, shards);
        let mut rotated = frags.clone();
        rotated.rotate_left(1);

        let merged_a = Ledger::merge_sorted(frags);
        let merged_b = Ledger::merge_sorted(rotated);

        let rollup_a = AssignmentRollup::from_ledger(&merged_a, 191);
        let rollup_b = AssignmentRollup::from_ledger(&merged_b, 191);
        prop_assert_eq!(
            serde_json::to_string(&rollup_a).expect("serialize rollup"),
            serde_json::to_string(&rollup_b).expect("serialize rollup")
        );

        let per_a = PerStudentUsage::from_ledger(&merged_a);
        let per_b = PerStudentUsage::from_ledger(&merged_b);
        prop_assert_eq!(
            serde_json::to_string(&per_a).expect("serialize per-student"),
            serde_json::to_string(&per_b).expect("serialize per-student")
        );
    }
}

/// In-memory [`RecordSource`] over a pre-sorted fragment — the test
/// stand-in for an on-disk spill run.
struct VecSource {
    records: std::vec::IntoIter<UsageRecord>,
}

impl RecordSource for VecSource {
    type Error = std::convert::Infallible;

    fn next_record(&mut self) -> Result<Option<UsageRecord>, Self::Error> {
        Ok(self.records.next())
    }
}

proptest! {
    /// The streaming k-way merge over sorted sources is record-for-
    /// record identical to the in-memory [`Ledger::merge_sorted`] over
    /// the same fragments — the law that lets the out-of-core semester
    /// pipeline substitute disk runs for materialized shard ledgers
    /// without perturbing a single byte of the canonical ledger.
    #[test]
    fn stream_merge_equals_in_memory_merge(
        draws in prop::collection::vec((0u32..40, 0usize..12, 0u64..2000, 1u64..200), 1..80),
        shards in 1usize..6,
    ) {
        let mut frags = fragments(&draws, shards);
        for frag in &mut frags {
            frag.sort_canonical();
        }

        let reference = Ledger::merge_sorted(frags.clone());

        let sources = frags
            .into_iter()
            .map(|f| VecSource {
                records: f.records().to_vec().into_iter(),
            })
            .collect();
        let mut merge = StreamMerge::new(sources).expect("infallible sources");
        let mut streamed = Ledger::new();
        while let Some(rec) = merge.next().expect("infallible sources") {
            streamed.push(rec);
        }

        prop_assert_eq!(ledger_bytes(&reference), ledger_bytes(&streamed));
    }
}
