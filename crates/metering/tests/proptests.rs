//! Property-based tests for attribution and rollups.

use opml_metering::attribution::{group_name, parse_name, student_name, Owner};
use opml_metering::rollup::AssignmentRollup;
use opml_simkernel::SimTime;
use opml_testbed::flavor::FlavorId;
use opml_testbed::ledger::{Ledger, UsageKind, UsageRecord};
use proptest::prelude::*;

fn tag_strategy() -> impl Strategy<Value = String> {
    "(lab[1-8]|lab[45]-multi|lab[45]-single|proj)".prop_map(|s| s)
}

proptest! {
    /// Naming convention roundtrips for any tag and id.
    #[test]
    fn student_name_roundtrip(tag in tag_strategy(), id in 0u32..10_000) {
        let a = parse_name(&student_name(&tag, id));
        prop_assert_eq!(a.tag, tag);
        prop_assert_eq!(a.owner, Owner::Student(id));
    }

    /// Group names roundtrip with arbitrary suffixes.
    #[test]
    fn group_name_roundtrip(tag in tag_strategy(), id in 0u32..99, suffix in "[a-z]{0,8}") {
        let a = parse_name(&group_name(&tag, id, &suffix));
        prop_assert_eq!(a.tag, tag);
        prop_assert_eq!(a.owner, Owner::Group(id));
    }

    /// Rollup conserves hours: the sum over cells equals the ledger's
    /// total instance hours, for arbitrary record sets.
    #[test]
    fn rollup_conserves_hours(
        records in prop::collection::vec(
            (0u32..50, 0usize..4, 0u64..100, 1u64..50),
            1..100,
        ),
    ) {
        let flavors = [
            FlavorId::M1Small,
            FlavorId::M1Medium,
            FlavorId::M1Large,
            FlavorId::GpuV100,
        ];
        let mut ledger = Ledger::new();
        for (student, flavor_idx, start, len) in records {
            ledger.push(UsageRecord {
                name: student_name("lab2", student),
                kind: UsageKind::Instance {
                    flavor: flavors[flavor_idx],
                    auto_terminated: false,
                },
                start: SimTime(start * 60),
                end: SimTime((start + len) * 60),
            });
        }
        let rollup = AssignmentRollup::from_ledger(&ledger, 191);
        let cell_sum: f64 = rollup.rows.iter().map(|r| r.instance_hours).sum();
        let ledger_sum = ledger.instance_hours(None);
        prop_assert!((cell_sum - ledger_sum).abs() < 1e-9);
    }

    /// Per-student rollup: summing any student's cells reproduces that
    /// student's ledger hours.
    #[test]
    fn per_student_conserves(
        records in prop::collection::vec((0u32..10, 1u64..30), 1..60),
    ) {
        use opml_metering::rollup::PerStudentUsage;
        let mut ledger = Ledger::new();
        let mut expected: std::collections::HashMap<u32, f64> = Default::default();
        for (student, len) in records {
            ledger.push(UsageRecord {
                name: student_name("lab7", student),
                kind: UsageKind::Instance {
                    flavor: FlavorId::M1Medium,
                    auto_terminated: false,
                },
                start: SimTime(0),
                end: SimTime(len * 60),
            });
            *expected.entry(student).or_insert(0.0) += len as f64;
        }
        let per = PerStudentUsage::from_ledger(&ledger);
        for (student, hours) in expected {
            prop_assert!((per.student_hours(student, "lab7") - hours).abs() < 1e-9);
        }
    }
}
