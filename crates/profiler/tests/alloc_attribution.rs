//! Counting-allocator attribution test.
//!
//! This integration test installs [`CountingAlloc`] as the global
//! allocator for its own test binary (integration tests link their own
//! executable, so nothing else in the workspace is affected) and
//! checks the satellite-task invariant: per-phase attribution balances
//! to the global totals.

use opml_profiler::{phase, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn per_phase_attribution_balances_to_global_totals() {
    assert!(
        opml_profiler::counting_allocator_installed(),
        "CountingAlloc should be this binary's global allocator"
    );

    opml_profiler::reset();
    opml_profiler::reset_totals();
    opml_profiler::enable();
    opml_profiler::enable_counting();

    // Allocate in two named phases and outside any phase; sizes are
    // arbitrary but distinctive.
    {
        let _p = phase::wall_phase("test.alloc_a");
        let v: Vec<u8> = Vec::with_capacity(4096);
        std::hint::black_box(&v);
    }
    {
        let _p = phase::wall_phase("test.alloc_b");
        let v: Vec<u64> = Vec::with_capacity(1000);
        std::hint::black_box(&v);
        let s = String::from("phase-b allocation payload");
        std::hint::black_box(&s);
    }
    let loose: Box<[u8; 512]> = Box::new([0u8; 512]);
    std::hint::black_box(&loose);
    drop(loose);

    opml_profiler::disable_counting();
    opml_profiler::disable();

    let totals = opml_profiler::totals();
    let report = opml_profiler::phase_report();

    let a = report
        .iter()
        .find(|s| s.name == "test.alloc_a")
        .expect("phase a reported");
    let b = report
        .iter()
        .find(|s| s.name == "test.alloc_b")
        .expect("phase b reported");
    assert!(a.allocs >= 1, "phase a saw no allocations");
    assert!(a.alloc_bytes >= 4096, "phase a bytes {}", a.alloc_bytes);
    assert!(b.allocs >= 2, "phase b saw {} allocations", b.allocs);
    assert!(b.alloc_bytes >= 8000, "phase b bytes {}", b.alloc_bytes);

    // The balance invariant: summing attribution over every slot
    // (including unattributed) reproduces the global totals exactly.
    let sum_allocs: u64 = report.iter().map(|s| s.allocs).sum();
    let sum_alloc_bytes: u64 = report.iter().map(|s| s.alloc_bytes).sum();
    let sum_deallocs: u64 = report.iter().map(|s| s.deallocs).sum();
    let sum_dealloc_bytes: u64 = report.iter().map(|s| s.dealloc_bytes).sum();
    assert_eq!(sum_allocs, totals.allocs, "alloc count attribution leak");
    assert_eq!(
        sum_alloc_bytes, totals.alloc_bytes,
        "alloc byte attribution leak"
    );
    assert_eq!(
        sum_deallocs, totals.deallocs,
        "dealloc count attribution leak"
    );
    assert_eq!(
        sum_dealloc_bytes, totals.dealloc_bytes,
        "dealloc byte attribution leak"
    );

    // The scoped allocations above were dropped while counting was
    // still on, so dealloc traffic must be visible too (exact equality
    // with alloc bytes is not asserted: the libtest harness allocates
    // concurrently on other threads).
    assert!(totals.deallocs >= 3, "deallocs {}", totals.deallocs);
}
