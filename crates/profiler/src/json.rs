//! Minimal JSON value parser.
//!
//! The vendored `serde_json` shim is serialize-only (the build
//! container has no crates.io access), so tooling that must *read*
//! committed JSON — the perf-regression gate comparing live bench
//! numbers against `BENCH_*.json`, tests inspecting `profile.json` —
//! uses this hand-rolled recursive-descent parser instead. It accepts
//! strict JSON as produced by the workspace's own writers; it is not a
//! general validator (no `\uXXXX` surrogate-pair handling beyond BMP
//! code points, numbers parsed via `f64`).

/// A parsed JSON value. Objects preserve key order as a pair list (the
/// workspace has no deterministic hash maps, and writers emit sorted
/// keys anyway).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => *pos += 1,
            _ => break,
        }
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    match bytes.get(*pos) {
        Some(b) if *b == want => {
            *pos += 1;
            Ok(())
        }
        Some(b) => Err(format!(
            "expected `{}` at byte {}, found `{}`",
            want as char, *pos, *b as char
        )),
        None => Err(format!(
            "expected `{}` at byte {}, found EOF",
            want as char, *pos
        )),
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(b) => Err(format!("unexpected byte `{}` at {}", *b as char, *pos)),
        None => Err("unexpected EOF".to_string()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes.get(*pos..*pos + word.len()) == Some(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') = bytes.get(*pos) {
        *pos += 1;
    }
    let text = std::str::from_utf8(bytes.get(start..*pos).unwrap_or_default())
        .map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|e| format!("bad \\u escape `{hex}`: {e}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => {
                        return Err(format!("bad escape `{:?}` at byte {}", other, *pos));
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe): find the
                // char boundary by decoding from the current position.
                let rest = std::str::from_utf8(bytes.get(*pos..).unwrap_or_default())
                    .map_err(|e| e.to_string())?;
                let Some(c) = rest.chars().next() else {
                    return Err("unterminated string".to_string());
                };
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect_byte(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect_byte(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect_byte(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_shaped_document() {
        let doc = r#"{
  "schema": "bench_calendar/v1",
  "speedup": 138.8,
  "identical": true,
  "arms": [
    {"threads": 1, "wall_s": 0.5, "digest": "ab12"},
    {"threads": 2, "wall_s": 0.6, "digest": "ab12"}
  ],
  "note": null
}"#;
        let v = Json::parse(doc).expect("parse");
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("bench_calendar/v1")
        );
        assert_eq!(v.get("speedup").and_then(Json::as_f64), Some(138.8));
        assert_eq!(v.get("identical").and_then(Json::as_bool), Some(true));
        let arms = v.get("arms").and_then(Json::as_array).expect("arms");
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[1].get("threads").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("note"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::parse(r#""a\"b\\c\nA""#).expect("parse");
        assert_eq!(v.as_str(), Some("a\"b\\c\nA"));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("{\"a\":").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn numbers_and_nesting() {
        let v = Json::parse("[-1.5e2, 0, 42, [true, false]]").expect("parse");
        let items = v.as_array().expect("arr");
        assert_eq!(items[0].as_f64(), Some(-150.0));
        assert_eq!(items[2].as_u64(), Some(42));
        assert_eq!(items[0].as_u64(), None);
    }
}
