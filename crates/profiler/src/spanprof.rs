//! Span-stream profiling: deterministic time attribution from the
//! recorded telemetry event stream.
//!
//! Everything here is computed from [`TelemetryEvent`]s stamped with
//! *sim time*, so every number (counts and sim-minute durations alike)
//! is byte-identical across runs and thread counts — unlike the
//! wall-clock phase profiler in [`crate::phase`]. The two views are
//! complementary: sim-time attribution says where the *modelled* time
//! goes; wall-phase attribution says where the *host* time goes.
//!
//! Span nesting is reconstructed per the Begin/End discipline of
//! `opml-telemetry` (well-nested per emitting handle; the merged
//! multi-shard stream replays shards in shard order, so each shard's
//! spans re-open and re-close the same paths and their stats
//! accumulate). Self time is total time minus the time of directly
//! nested child spans, saturating at zero.

use std::collections::BTreeMap;

use opml_telemetry::{AttrValue, EventPhase, TelemetryEvent};

/// Aggregated statistics for one span *path* (semicolon-joined chain of
/// span names from the outermost open span to this one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanPathStat {
    /// `outer;inner;leaf` — flamegraph.pl frame syntax.
    pub path: String,
    /// Number of completed spans at this path.
    pub count: u64,
    /// Total sim-minutes spent inside spans at this path.
    pub total_min: u64,
    /// Sim-minutes not covered by directly nested child spans.
    pub self_min: u64,
}

/// Profile of a whole event stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanProfile {
    /// Completed span paths, sorted by path.
    pub paths: Vec<SpanPathStat>,
    /// Instant-event paths (`parent_path;event_name` or bare name at
    /// top level) with occurrence counts, sorted by path.
    pub instant_paths: Vec<(String, u64)>,
    /// Total events seen.
    pub events: u64,
    /// Total instant events.
    pub instants: u64,
    /// Total span Begins.
    pub begins: u64,
    /// Total span Ends.
    pub ends: u64,
    /// `End` events whose name did not match the innermost open span
    /// (skipped, not attributed).
    pub unbalanced_ends: u64,
    /// Spans still open when the stream finished (not attributed).
    pub open_at_end: u64,
}

struct OpenSpan {
    name: opml_telemetry::Sym,
    path: String,
    begin_min: u64,
    child_min: u64,
}

/// Reconstruct span nesting and attribute sim time per span path.
pub fn profile_spans(events: &[TelemetryEvent]) -> SpanProfile {
    let mut agg: BTreeMap<String, SpanPathStat> = BTreeMap::new();
    let mut instants: BTreeMap<String, u64> = BTreeMap::new();
    let mut stack: Vec<OpenSpan> = Vec::new();
    let mut profile = SpanProfile::default();

    for ev in events {
        profile.events += 1;
        match ev.phase {
            EventPhase::Begin => {
                profile.begins += 1;
                let path = match stack.last() {
                    Some(parent) => format!("{};{}", parent.path, ev.name),
                    None => ev.name.to_string(),
                };
                stack.push(OpenSpan {
                    name: ev.name,
                    path,
                    begin_min: ev.time.0,
                    child_min: 0,
                });
            }
            EventPhase::End => {
                profile.ends += 1;
                let matches = stack.last().is_some_and(|top| top.name == ev.name);
                if !matches {
                    profile.unbalanced_ends += 1;
                    continue;
                }
                let Some(top) = stack.pop() else { continue };
                let total = ev.time.0.saturating_sub(top.begin_min);
                let self_min = total.saturating_sub(top.child_min);
                let entry = agg.entry(top.path.clone()).or_insert_with(|| SpanPathStat {
                    path: top.path,
                    count: 0,
                    total_min: 0,
                    self_min: 0,
                });
                entry.count += 1;
                entry.total_min += total;
                entry.self_min += self_min;
                if let Some(parent) = stack.last_mut() {
                    parent.child_min = parent.child_min.saturating_add(total);
                }
            }
            EventPhase::Instant => {
                profile.instants += 1;
                let path = match stack.last() {
                    Some(parent) => format!("{};{}", parent.path, ev.name),
                    None => ev.name.to_string(),
                };
                *instants.entry(path).or_insert(0) += 1;
            }
        }
    }

    profile.open_at_end = stack.len() as u64;
    profile.paths = agg.into_values().collect();
    profile.instant_paths = instants.into_iter().collect();
    profile
}

impl SpanProfile {
    /// Render flamegraph.pl / inferno-compatible folded stacks, one
    /// `frame;frame value` line per span path, weighted by *self
    /// sim-minutes*. Deterministic: paths are emitted in sorted order.
    /// Zero-self paths are kept (they still show structure).
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for stat in &self.paths {
            out.push_str(&stat.path);
            out.push(' ');
            out.push_str(&stat.self_min.to_string());
            out.push('\n');
        }
        out
    }
}

/// Per-shard slice of a merged multi-shard event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStat {
    /// Shard index from the `semester.plan` span's `shard` attribute;
    /// `None` for a single-shard (unannotated) stream.
    pub shard: Option<u64>,
    /// Events attributed to this shard's segment.
    pub events: u64,
    /// Instant events in the segment.
    pub instants: u64,
    /// `queue.pop` instants — the shard's scheduling work.
    pub queue_pops: u64,
    /// Quota denials reported by the shard's `semester.finalize`.
    pub quota_denials: u64,
}

/// Shard-segmented view of a merged stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardBreakdown {
    /// Per-shard stats in stream (= shard) order.
    pub shards: Vec<ShardStat>,
    /// Harness-track events (never attributed to a shard).
    pub harness_events: u64,
    /// Events before the first shard segment opened.
    pub preamble_events: u64,
}

impl ShardBreakdown {
    /// (min, max) events across shards — the imbalance envelope.
    pub fn imbalance(&self) -> Option<(u64, u64)> {
        let min = self.shards.iter().map(|s| s.events).min()?;
        let max = self.shards.iter().map(|s| s.events).max()?;
        Some((min, max))
    }
}

/// Segment a merged event stream by shard. A `semester.plan` Begin
/// opens a new segment (its `shard` attribute names the shard; absent
/// for the single-shard path); every following non-harness event
/// belongs to that segment until the next `semester.plan` Begin.
pub fn shard_breakdown(events: &[TelemetryEvent]) -> ShardBreakdown {
    let mut out = ShardBreakdown::default();
    let mut current: Option<ShardStat> = None;

    for ev in events {
        if ev.is_harness_track() {
            out.harness_events += 1;
            continue;
        }
        if ev.phase == EventPhase::Begin && ev.name == "semester.plan" {
            if let Some(done) = current.take() {
                out.shards.push(done);
            }
            let shard = match ev.attr("shard") {
                Some(AttrValue::U64(n)) => Some(*n),
                _ => None,
            };
            current = Some(ShardStat {
                shard,
                events: 0,
                instants: 0,
                queue_pops: 0,
                quota_denials: 0,
            });
        }
        match current.as_mut() {
            Some(stat) => {
                stat.events += 1;
                if ev.phase == EventPhase::Instant {
                    stat.instants += 1;
                    if ev.name == "queue.pop" {
                        stat.queue_pops += 1;
                    } else if ev.name == "semester.finalize" {
                        if let Some(AttrValue::U64(n)) = ev.attr("quota_denials") {
                            stat.quota_denials = *n;
                        }
                    }
                }
            }
            None => out.preamble_events += 1,
        }
    }
    if let Some(done) = current.take() {
        out.shards.push(done);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use opml_simkernel::SimTime;

    fn ev(
        seq: u64,
        t: u64,
        phase: EventPhase,
        name: &str,
        attrs: Vec<(&'static str, AttrValue)>,
    ) -> TelemetryEvent {
        TelemetryEvent {
            seq,
            time: SimTime(t),
            phase,
            name: name.into(),
            attrs,
        }
    }

    #[test]
    fn nested_spans_attribute_self_and_total() {
        let stream = vec![
            ev(0, 0, EventPhase::Begin, "outer", vec![]),
            ev(1, 10, EventPhase::Begin, "inner", vec![]),
            ev(2, 30, EventPhase::End, "inner", vec![]),
            ev(3, 100, EventPhase::End, "outer", vec![]),
        ];
        let p = profile_spans(&stream);
        assert_eq!(p.unbalanced_ends, 0);
        assert_eq!(p.open_at_end, 0);
        let outer = p.paths.iter().find(|s| s.path == "outer").expect("outer");
        let inner = p
            .paths
            .iter()
            .find(|s| s.path == "outer;inner")
            .expect("inner");
        assert_eq!(outer.total_min, 100);
        assert_eq!(outer.self_min, 80); // 100 - 20 nested
        assert_eq!(inner.total_min, 20);
        assert_eq!(inner.self_min, 20);
    }

    #[test]
    fn instants_are_counted_per_path() {
        let stream = vec![
            ev(0, 0, EventPhase::Begin, "exec", vec![]),
            ev(1, 5, EventPhase::Instant, "queue.pop", vec![]),
            ev(2, 6, EventPhase::Instant, "queue.pop", vec![]),
            ev(3, 9, EventPhase::End, "exec", vec![]),
            ev(4, 10, EventPhase::Instant, "loose", vec![]),
        ];
        let p = profile_spans(&stream);
        assert_eq!(p.instants, 3);
        assert_eq!(
            p.instant_paths,
            vec![("exec;queue.pop".to_string(), 2), ("loose".to_string(), 1)]
        );
    }

    #[test]
    fn unbalanced_end_is_skipped_not_misattributed() {
        let stream = vec![
            ev(0, 0, EventPhase::Begin, "a", vec![]),
            ev(1, 5, EventPhase::End, "b", vec![]),
        ];
        let p = profile_spans(&stream);
        assert_eq!(p.unbalanced_ends, 1);
        assert_eq!(p.open_at_end, 1);
        assert!(p.paths.is_empty());
    }

    #[test]
    fn folded_output_is_sorted_and_newline_terminated() {
        let stream = vec![
            ev(0, 0, EventPhase::Begin, "b", vec![]),
            ev(1, 4, EventPhase::End, "b", vec![]),
            ev(2, 4, EventPhase::Begin, "a", vec![]),
            ev(3, 9, EventPhase::End, "a", vec![]),
        ];
        let p = profile_spans(&stream);
        assert_eq!(p.to_folded(), "a 5\nb 4\n");
    }

    #[test]
    fn shard_breakdown_segments_by_plan_begin() {
        let stream = vec![
            ev(
                0,
                0,
                EventPhase::Begin,
                "stage",
                vec![("track", "harness".into())],
            ),
            ev(
                1,
                0,
                EventPhase::Begin,
                "semester.plan",
                vec![("shard", 0u64.into())],
            ),
            ev(2, 0, EventPhase::End, "semester.plan", vec![]),
            ev(3, 1, EventPhase::Instant, "queue.pop", vec![]),
            ev(
                4,
                2,
                EventPhase::Instant,
                "semester.finalize",
                vec![("quota_denials", 3u64.into())],
            ),
            ev(
                5,
                0,
                EventPhase::Begin,
                "semester.plan",
                vec![("shard", 1u64.into())],
            ),
            ev(6, 1, EventPhase::Instant, "queue.pop", vec![]),
            ev(7, 1, EventPhase::Instant, "queue.pop", vec![]),
            ev(
                8,
                2,
                EventPhase::Instant,
                "semester.finalize",
                vec![("quota_denials", 0u64.into())],
            ),
            ev(
                9,
                9,
                EventPhase::End,
                "stage",
                vec![("track", "harness".into())],
            ),
        ];
        let b = shard_breakdown(&stream);
        assert_eq!(b.harness_events, 2);
        assert_eq!(b.preamble_events, 0);
        assert_eq!(b.shards.len(), 2);
        assert_eq!(b.shards[0].shard, Some(0));
        assert_eq!(b.shards[0].queue_pops, 1);
        assert_eq!(b.shards[0].quota_denials, 3);
        assert_eq!(b.shards[1].shard, Some(1));
        assert_eq!(b.shards[1].queue_pops, 2);
        assert_eq!(b.imbalance(), Some((4, 4)));
    }
}
