//! Opt-in counting allocator.
//!
//! [`CountingAlloc`] wraps the system allocator and, while counting is
//! enabled, attributes every allocation/deallocation to the calling
//! thread's active leaf phase (see [`crate::phase`]) plus a global
//! total. Installing it is a *binary-level* decision:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: opml_profiler::CountingAlloc = opml_profiler::CountingAlloc;
//! ```
//!
//! The workspace installs it only behind the `alloc-profile` feature of
//! `opml-experiments` (the `run-experiments` binary), so benches and
//! library consumers pay nothing — not even the disabled-path atomic
//! load. With the wrapper installed but counting disabled, the cost is
//! one relaxed atomic load per allocator call.
//!
//! The record path must be re-entrancy safe: it runs inside
//! `GlobalAlloc::alloc` and therefore must not allocate, lock, or touch
//! lazily-initialised thread-locals. It reads a `const`-init TLS cell
//! and bumps static atomics, nothing else.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::phase;

static COUNTING: AtomicBool = AtomicBool::new(false);

static GLOBAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static GLOBAL_DEALLOCS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_DEALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// Global allocation totals (independent of phase attribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocTotals {
    pub allocs: u64,
    pub alloc_bytes: u64,
    pub deallocs: u64,
    pub dealloc_bytes: u64,
}

/// Start attributing allocator traffic. No-op unless [`CountingAlloc`]
/// is installed as the global allocator.
pub fn enable_counting() {
    COUNTING.store(true, Ordering::Relaxed);
}

/// Stop attributing allocator traffic.
pub fn disable_counting() {
    COUNTING.store(false, Ordering::Relaxed);
}

/// Is the counting flag set? (Says nothing about installation.)
pub fn is_counting() -> bool {
    COUNTING.load(Ordering::Relaxed)
}

/// Zero the global totals (per-phase alloc counters are zeroed by
/// [`crate::reset`]).
pub fn reset_totals() {
    GLOBAL_ALLOCS.store(0, Ordering::Relaxed);
    GLOBAL_ALLOC_BYTES.store(0, Ordering::Relaxed);
    GLOBAL_DEALLOCS.store(0, Ordering::Relaxed);
    GLOBAL_DEALLOC_BYTES.store(0, Ordering::Relaxed);
}

/// Snapshot the global totals.
pub fn totals() -> AllocTotals {
    AllocTotals {
        allocs: GLOBAL_ALLOCS.load(Ordering::Relaxed),
        alloc_bytes: GLOBAL_ALLOC_BYTES.load(Ordering::Relaxed),
        deallocs: GLOBAL_DEALLOCS.load(Ordering::Relaxed),
        dealloc_bytes: GLOBAL_DEALLOC_BYTES.load(Ordering::Relaxed),
    }
}

/// Runtime probe: is [`CountingAlloc`] actually the global allocator?
/// Briefly enables counting, performs a heap allocation through a
/// `black_box`, and checks whether the global counter moved. Restores
/// the previous counting flag.
pub fn counting_allocator_installed() -> bool {
    let was = COUNTING.swap(true, Ordering::Relaxed);
    let before = GLOBAL_ALLOCS.load(Ordering::Relaxed);
    let probe: Box<u64> = Box::new(std::hint::black_box(0xA110C));
    std::hint::black_box(&probe);
    drop(probe);
    let after = GLOBAL_ALLOCS.load(Ordering::Relaxed);
    COUNTING.store(was, Ordering::Relaxed);
    after > before
}

#[inline]
fn record(bytes: usize, is_alloc: bool) {
    if !COUNTING.load(Ordering::Relaxed) {
        return;
    }
    if is_alloc {
        GLOBAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
        GLOBAL_ALLOC_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    } else {
        GLOBAL_DEALLOCS.fetch_add(1, Ordering::Relaxed);
        GLOBAL_DEALLOC_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    }
    phase::record_alloc_for(phase::current_phase(), bytes, is_alloc);
}

/// Counting wrapper around [`System`]. See the module docs for the
/// installation contract and cost model.
pub struct CountingAlloc;

// SAFETY: defers every allocation decision to `System`; the counting
// side channel only touches atomics and a const-init TLS cell, so the
// GlobalAlloc contract (no unwinding, no reentrant allocation) holds.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record(layout.size(), true);
        // SAFETY: caller upholds the GlobalAlloc contract for `layout`.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        record(layout.size(), false);
        // SAFETY: `ptr` was allocated by this allocator (which defers
        // to System) with the same `layout`, per the caller's contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record(layout.size(), true);
        // SAFETY: caller upholds the GlobalAlloc contract for `layout`.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc is modelled as dealloc(old) + alloc(new) so byte
        // totals stay balanced against dealloc accounting.
        record(layout.size(), false);
        record(new_size, true);
        // SAFETY: caller upholds the GlobalAlloc::realloc contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}
