//! `opml-profiler` — the workspace's self-profiling layer.
//!
//! The paper's thesis is that operational cost stays invisible until it
//! is metered; this crate applies the same discipline to the simulator
//! itself. It provides four small, composable pieces:
//!
//! * [`phase`] — a wall-clock phase profiler with fixed static slots.
//!   The semester simulator brackets its shard bodies and merge stages
//!   in [`wall_phase`] guards, so a profiled run can split host time
//!   into `shard.sim` vs `merge.replay_restamp`/`merge.metrics`/
//!   `merge.ledger` — the breakdown that explains why the sharded path
//!   can run slower than serial on a small host.
//! * [`alloc`] — an opt-in [`CountingAlloc`] global-allocator wrapper
//!   attributing allocation counts/bytes to the active phase via a
//!   `const`-init thread-local. Binary-level opt-in (`alloc-profile`
//!   feature of `opml-experiments`); zero cost when not installed.
//! * [`spanprof`] — deterministic sim-time attribution computed from
//!   the recorded telemetry span stream: per-path total/self time,
//!   per-shard event/work breakdown, and flamegraph.pl-compatible
//!   folded-stack export.
//! * [`rss`] — `/proc/self/status` readers ([`peak_rss_kb`],
//!   [`current_rss_kb`]) shared by every subcommand, plus a sampled
//!   RSS timeline ([`RssSampler`]).
//!
//! Determinism contract: everything derived from the telemetry stream
//! (span counts, sim-minute durations, shard breakdowns) and every
//! *count* the phase layer produces (enters, phase-attributed allocs)
//! is identical across runs and thread counts for a fixed seed. Wall
//! times and RSS are host noise and are never digested; the `profile`
//! subcommand keeps them in a separate, explicitly non-deterministic
//! part of its output.

pub mod alloc;
pub mod json;
pub mod phase;
pub mod rss;
pub mod spanprof;

pub use alloc::{
    counting_allocator_installed, disable_counting, enable_counting, is_counting, reset_totals,
    totals, AllocTotals, CountingAlloc,
};
pub use json::Json;
pub use phase::{
    current_phase, disable, enable, is_enabled, phase_report, phases, reset, wall_phase,
    PhaseGuard, PhaseStat, MAX_PHASES, UNATTRIBUTED, UNATTRIBUTED_NAME,
};
pub use rss::{current_rss_kb, peak_rss_kb, RssSample, RssSampler};

/// Route the rayon shim's dispatch machinery (worker spawn/join,
/// per-worker result buffers, reassembly) into the
/// [`phase::phases::RUNTIME_POOL`] phase. Idempotent and cheap; the
/// hooks are inert while phase profiling is disabled, so installing
/// them unconditionally costs one atomic load per pool dispatch.
///
/// Without this, pool bookkeeping lands in whatever phase the
/// dispatching thread happened to be in — which varies with thread
/// count and makes user-phase allocation counts undigestable.
pub fn install_pool_attribution() {
    rayon::install_pool_hooks(phase::pool_phase_enter, phase::pool_phase_exit);
}
pub use spanprof::{
    profile_spans, shard_breakdown, ShardBreakdown, ShardStat, SpanPathStat, SpanProfile,
};
