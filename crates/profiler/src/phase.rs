//! Wall-clock phase profiler with fixed static slots.
//!
//! A *phase* is a named region of host execution (`shard.sim`,
//! `merge.ledger`, ...) entered via [`wall_phase`]. Each phase owns a
//! fixed slot of atomic counters: enter count, accumulated wall
//! nanoseconds, and (when the counting allocator is installed)
//! allocation counts/bytes attributed while the phase was the active
//! leaf on the entering thread.
//!
//! Design constraints, in priority order:
//!
//! 1. **Zero-cost when disabled.** [`wall_phase`] is a single relaxed
//!    atomic load when profiling is off; no registration, no TLS touch,
//!    no clock read. The simulation hot paths call it unconditionally.
//! 2. **No allocation on the record path.** The counting allocator
//!    calls [`current_phase`] from inside `GlobalAlloc::alloc`;
//!    everything it touches is a `const`-initialised thread-local
//!    `Cell` and a static array of atomics — re-entrancy safe.
//! 3. **Panic-free.** These hooks sit on the shard/merge path of the
//!    semester simulator; lookups use `get`/`try_with`, never indexing.
//!
//! Wall times are host-dependent and therefore *never* part of any
//! determinism digest; enter counts and (phase-attributed) allocation
//! counts are deterministic for a fixed seed and config, independent of
//! thread count, because phases are entered on whichever thread runs
//! the shard and the work per shard is identical.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

/// Maximum number of distinct phase names. Registration past this
/// falls back to the unattributed slot rather than failing.
pub const MAX_PHASES: usize = 64;

/// Slot 0 is reserved: work recorded while no phase is active.
pub const UNATTRIBUTED: u16 = 0;

/// Name reported for slot 0.
pub const UNATTRIBUTED_NAME: &str = "(unattributed)";

/// Well-known phase names used by the semester simulator hooks.
/// Centralised so the profile report and tests spell them identically.
pub mod phases {
    /// Per-shard simulation body (`run_shard_buffered`).
    pub const SHARD_SIM: &str = "shard.sim";
    /// Replaying shard event buffers into the parent sink (restamp).
    pub const MERGE_REPLAY: &str = "merge.replay_restamp";
    /// Folding shard metrics snapshots into the parent registry.
    pub const MERGE_METRICS: &str = "merge.metrics";
    /// K-way merge of shard ledgers.
    pub const MERGE_LEDGER: &str = "merge.ledger";
    /// Encoding shard output into on-disk spill runs (out-of-core
    /// path), plus intermediate merge passes that rewrite runs.
    pub const MERGE_SPILL: &str = "merge.spill";
    /// Final streaming k-way merge over on-disk runs (decode +
    /// heap merge + consumer callback).
    pub const MERGE_STREAM: &str = "merge.stream";
    /// Thread-pool dispatch machinery (worker spawn/join, per-worker
    /// result buffers, reassembly). Attributed via the rayon-shim pool
    /// hooks; thread-count dependent by nature, so it is excluded from
    /// allocation digests — its existence is what makes the *user*
    /// phases digestable.
    pub const RUNTIME_POOL: &str = "runtime.pool";
}

/// One phase's counters. All relaxed atomics: totals are read only
/// after the profiled region has quiesced (joins/barriers provide the
/// ordering we need).
struct Slot {
    enters: AtomicU64,
    wall_ns: AtomicU64,
    allocs: AtomicU64,
    alloc_bytes: AtomicU64,
    deallocs: AtomicU64,
    dealloc_bytes: AtomicU64,
}

impl Slot {
    const fn new() -> Self {
        Slot {
            enters: AtomicU64::new(0),
            wall_ns: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
            alloc_bytes: AtomicU64::new(0),
            deallocs: AtomicU64::new(0),
            dealloc_bytes: AtomicU64::new(0),
        }
    }

    fn reset(&self) {
        self.enters.store(0, Ordering::Relaxed);
        self.wall_ns.store(0, Ordering::Relaxed);
        self.allocs.store(0, Ordering::Relaxed);
        self.alloc_bytes.store(0, Ordering::Relaxed);
        self.deallocs.store(0, Ordering::Relaxed);
        self.dealloc_bytes.store(0, Ordering::Relaxed);
    }
}

static SLOTS: [Slot; MAX_PHASES] = [const { Slot::new() }; MAX_PHASES];

/// Registered phase names; slot 0 is implicit. `NAME_COUNT` counts the
/// *named* slots (so slot ids run 1..=NAME_COUNT). The mutex guards
/// registration; reads for reporting take it too (reporting is cold).
static NAMES: Mutex<[&'static str; MAX_PHASES]> = Mutex::new([""; MAX_PHASES]);
static NAME_COUNT: AtomicUsize = AtomicUsize::new(0);

static ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// The active leaf phase on this thread. `const`-initialised so the
    /// first access never allocates (the counting allocator reads this
    /// from inside `GlobalAlloc::alloc`).
    static CURRENT: std::cell::Cell<u16> = const { std::cell::Cell::new(UNATTRIBUTED) };
}

/// Turn phase profiling on. Counters are *not* reset; call [`reset`]
/// first for a fresh capture.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn phase profiling off. Guards created while enabled still
/// restore their saved phase on drop, but stop accumulating wall time.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Is phase profiling currently on?
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zero every slot's counters. Phase name registrations are kept (slot
/// ids are stable for the process lifetime, which keeps attribution
/// meaningful across repeated captures in one process).
pub fn reset() {
    for slot in &SLOTS {
        slot.reset();
    }
}

/// The active leaf phase id on the calling thread. Safe to call from
/// allocator context: const-init TLS, `try_with`, no allocation.
#[inline]
pub fn current_phase() -> u16 {
    CURRENT.try_with(|c| c.get()).unwrap_or(UNATTRIBUTED)
}

/// Record an allocation event against a phase slot (called by the
/// counting allocator; also usable from tests).
#[inline]
pub(crate) fn record_alloc_for(id: u16, bytes: usize, is_alloc: bool) {
    if let Some(slot) = SLOTS.get(id as usize) {
        if is_alloc {
            slot.allocs.fetch_add(1, Ordering::Relaxed);
            slot.alloc_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        } else {
            slot.deallocs.fetch_add(1, Ordering::Relaxed);
            slot.dealloc_bytes
                .fetch_add(bytes as u64, Ordering::Relaxed);
        }
    }
}

/// Find-or-register the slot id for `name`. Linear scan under a mutex:
/// registration happens once per (phase, process) on cold paths, and
/// MAX_PHASES is small. Returns [`UNATTRIBUTED`] when the table is
/// full rather than failing.
fn register_phase(name: &'static str) -> u16 {
    let mut names = NAMES.lock();
    let count = NAME_COUNT.load(Ordering::Relaxed);
    for (i, existing) in names.iter().enumerate().take(count) {
        if *existing == name {
            // Slot ids are offset by 1: names[0] lives in SLOTS[1].
            return (i as u16).saturating_add(1);
        }
    }
    if count + 1 >= MAX_PHASES {
        return UNATTRIBUTED;
    }
    if let Some(entry) = names.get_mut(count) {
        *entry = name;
        NAME_COUNT.store(count + 1, Ordering::Relaxed);
        (count as u16).saturating_add(1)
    } else {
        UNATTRIBUTED
    }
}

/// RAII guard for a wall phase; restores the previous leaf phase and
/// accumulates elapsed wall time on drop.
pub struct PhaseGuard {
    id: u16,
    prev: u16,
    start: Option<Instant>,
}

/// Enter a named wall phase on the calling thread. Returns an inert
/// guard (one atomic load total) when profiling is disabled.
///
/// Attribution is *leaf-based*, not stack-based: while this guard is
/// live, wall time and allocations on this thread are attributed to
/// `name` alone, and the previous phase is restored on drop. Leaf
/// attribution is what keeps counts thread-count invariant — a shard
/// body attributes identically whether it runs on the caller or on a
/// pool worker whose stack is otherwise empty.
#[must_use = "the phase ends when the guard drops; binding to `_` ends it immediately"]
pub fn wall_phase(name: &'static str) -> PhaseGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return PhaseGuard {
            id: UNATTRIBUTED,
            prev: UNATTRIBUTED,
            start: None,
        };
    }
    let id = register_phase(name);
    let prev = CURRENT
        .try_with(|c| {
            let p = c.get();
            c.set(id);
            p
        })
        .unwrap_or(UNATTRIBUTED);
    if let Some(slot) = SLOTS.get(id as usize) {
        slot.enters.fetch_add(1, Ordering::Relaxed);
    }
    PhaseGuard {
        id,
        prev,
        // detlint::allow(DL001): host-side profiling measurement, never fed into simulation state
        start: Some(Instant::now()),
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let _ = CURRENT.try_with(|c| c.set(self.prev));
        let elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if let Some(slot) = SLOTS.get(self.id as usize) {
            slot.wall_ns.fetch_add(elapsed_ns, Ordering::Relaxed);
        }
    }
}

/// Token returned by [`pool_phase_enter`] when profiling was off at
/// entry: nothing to restore on exit.
const POOL_TOKEN_INERT: usize = usize::MAX;

/// Low 48 bits of the token carry nanoseconds since [`pool_epoch`]
/// (~78 hours of range); the high 16 bits carry the phase id to
/// restore on exit.
const POOL_NS_MASK: u64 = (1 << 48) - 1;

/// Lazily-pinned process epoch for pool wall accounting. The hook pair
/// cannot carry an `Instant` through its `usize` token, so elapsed
/// time is reconstructed from two offsets against this epoch.
fn pool_epoch() -> Instant {
    static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    // detlint::allow(DL001): host-side profiling measurement, never fed into simulation state
    *EPOCH.get_or_init(Instant::now)
}

/// Rayon-shim pool hook: re-point this thread's attribution at
/// [`phases::RUNTIME_POOL`] and return a token encoding the previous
/// phase plus the entry timestamp. Allocation-free (the counting
/// allocator may interrogate [`current_phase`] while this runs) and
/// panic-free, per the hook contract.
pub fn pool_phase_enter() -> usize {
    if !ENABLED.load(Ordering::Relaxed) {
        return POOL_TOKEN_INERT;
    }
    let id = register_phase(phases::RUNTIME_POOL);
    let prev = CURRENT
        .try_with(|c| {
            let p = c.get();
            c.set(id);
            p
        })
        .unwrap_or(UNATTRIBUTED);
    if let Some(slot) = SLOTS.get(id as usize) {
        slot.enters.fetch_add(1, Ordering::Relaxed);
    }
    // detlint::allow(DL001): host-side profiling measurement, never fed into simulation state
    let ns = u64::try_from(pool_epoch().elapsed().as_nanos()).unwrap_or(u64::MAX) & POOL_NS_MASK;
    (u64::from(prev) << 48 | ns) as usize
}

/// Rayon-shim pool hook: restore the phase saved by
/// [`pool_phase_enter`] and accumulate the bracket's wall time on the
/// pool slot.
pub fn pool_phase_exit(token: usize) {
    if token == POOL_TOKEN_INERT {
        return;
    }
    let prev = (token as u64 >> 48) as u16;
    let _ = CURRENT.try_with(|c| c.set(prev));
    // detlint::allow(DL001): host-side profiling measurement, never fed into simulation state
    let now = u64::try_from(pool_epoch().elapsed().as_nanos()).unwrap_or(u64::MAX) & POOL_NS_MASK;
    let elapsed = now.saturating_sub(token as u64 & POOL_NS_MASK);
    let id = register_phase(phases::RUNTIME_POOL);
    if let Some(slot) = SLOTS.get(id as usize) {
        slot.wall_ns.fetch_add(elapsed, Ordering::Relaxed);
    }
}

/// A snapshot of one phase's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    pub name: &'static str,
    pub enters: u64,
    pub wall_ns: u64,
    pub allocs: u64,
    pub alloc_bytes: u64,
    pub deallocs: u64,
    pub dealloc_bytes: u64,
}

impl PhaseStat {
    /// Wall time in seconds (host-dependent; excluded from digests).
    pub fn wall_s(&self) -> f64 {
        self.wall_ns as f64 / 1e9
    }
}

/// Snapshot every touched phase, sorted by name, with the unattributed
/// slot (if it saw any activity) last. Cold path; takes the name lock.
pub fn phase_report() -> Vec<PhaseStat> {
    let names = NAMES.lock();
    let count = NAME_COUNT.load(Ordering::Relaxed);
    let mut out = Vec::new();
    for (i, name) in names.iter().enumerate().take(count) {
        if let Some(slot) = SLOTS.get(i + 1) {
            out.push(snapshot_slot(name, slot));
        }
    }
    out.sort_by(|a, b| a.name.cmp(b.name));
    if let Some(slot) = SLOTS.get(UNATTRIBUTED as usize) {
        let stat = snapshot_slot(UNATTRIBUTED_NAME, slot);
        if stat.enters != 0 || stat.wall_ns != 0 || stat.allocs != 0 || stat.deallocs != 0 {
            out.push(stat);
        }
    }
    out
}

fn snapshot_slot(name: &'static str, slot: &Slot) -> PhaseStat {
    PhaseStat {
        name,
        enters: slot.enters.load(Ordering::Relaxed),
        wall_ns: slot.wall_ns.load(Ordering::Relaxed),
        allocs: slot.allocs.load(Ordering::Relaxed),
        alloc_bytes: slot.alloc_bytes.load(Ordering::Relaxed),
        deallocs: slot.deallocs.load(Ordering::Relaxed),
        dealloc_bytes: slot.dealloc_bytes.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Phase tests share global state; run them under one lock so
    // `cargo test` thread interleaving cannot cross-contaminate slots.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_wall_phase_records_nothing() {
        let _guard = TEST_LOCK.lock();
        reset();
        disable();
        {
            let _p = wall_phase("test.disabled");
        }
        assert!(phase_report().iter().all(|s| s.name != "test.disabled"));
    }

    #[test]
    fn nested_phases_restore_leaf_and_count_enters() {
        let _guard = TEST_LOCK.lock();
        reset();
        enable();
        assert_eq!(current_phase(), UNATTRIBUTED);
        {
            let _outer = wall_phase("test.outer");
            let outer_id = current_phase();
            assert_ne!(outer_id, UNATTRIBUTED);
            {
                let _inner = wall_phase("test.inner");
                assert_ne!(current_phase(), outer_id);
            }
            assert_eq!(current_phase(), outer_id);
        }
        assert_eq!(current_phase(), UNATTRIBUTED);
        disable();
        let report = phase_report();
        let outer = report.iter().find(|s| s.name == "test.outer");
        let inner = report.iter().find(|s| s.name == "test.inner");
        assert_eq!(outer.map(|s| s.enters), Some(1));
        assert_eq!(inner.map(|s| s.enters), Some(1));
    }

    #[test]
    fn reenter_same_phase_reuses_slot() {
        let _guard = TEST_LOCK.lock();
        reset();
        enable();
        for _ in 0..3 {
            let _p = wall_phase("test.reenter");
        }
        disable();
        let report = phase_report();
        let stat = report.iter().find(|s| s.name == "test.reenter");
        assert_eq!(stat.map(|s| s.enters), Some(3));
    }
}
