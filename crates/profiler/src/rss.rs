//! Resident-set-size accounting via `/proc/self/status`.
//!
//! The one-shot readers ([`peak_rss_kb`], [`current_rss_kb`]) return
//! `None` off-Linux or when the pseudo-file is unreadable — callers
//! render "n/a" rather than failing. [`RssSampler`] generalizes the
//! one-shot read into a background-thread timeline: host wall-clock
//! timestamps paired with RSS readings, strictly for the human-facing
//! side of a profile (never digested — both coordinates are
//! host-dependent).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Read an integer-kB field (e.g. `VmHWM`, `VmRSS`) from
/// `/proc/self/status`. Returns `None` off-Linux, on read failure, or
/// when the field is absent.
fn read_status_kb(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    let rest = line.strip_prefix(field)?.trim_start_matches(':').trim();
    let digits = rest.split_whitespace().next()?;
    digits.parse().ok()
}

/// Peak resident set size (VmHWM) of this process in kB, if available.
pub fn peak_rss_kb() -> Option<u64> {
    read_status_kb("VmHWM")
}

/// Current resident set size (VmRSS) of this process in kB.
pub fn current_rss_kb() -> Option<u64> {
    read_status_kb("VmRSS")
}

/// One point on the RSS timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RssSample {
    /// Milliseconds since the sampler started (host wall clock).
    pub elapsed_ms: u64,
    /// VmRSS at that moment, in kB.
    pub rss_kb: u64,
}

/// Background RSS sampler. Spawns a thread that appends a sample every
/// `interval`; [`RssSampler::stop`] joins it and returns the timeline.
pub struct RssSampler {
    stop: Arc<AtomicBool>,
    samples: Arc<Mutex<Vec<RssSample>>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl RssSampler {
    /// Start sampling every `interval`. The first sample is taken
    /// immediately. On platforms without `/proc`, the thread idles and
    /// the timeline comes back empty.
    pub fn start(interval: Duration) -> RssSampler {
        let stop = Arc::new(AtomicBool::new(false));
        let samples = Arc::new(Mutex::new(Vec::new()));
        let thread_stop = Arc::clone(&stop);
        let thread_samples = Arc::clone(&samples);
        let handle = std::thread::Builder::new()
            .name("opml-rss-sampler".to_string())
            .spawn(move || {
                // detlint::allow(DL001): host-side RSS timeline timestamps, never fed into simulation state
                let start = Instant::now();
                loop {
                    if let Some(rss_kb) = current_rss_kb() {
                        let elapsed_ms =
                            u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX);
                        thread_samples.lock().push(RssSample { elapsed_ms, rss_kb });
                    }
                    if thread_stop.load(Ordering::Relaxed) {
                        return;
                    }
                    std::thread::sleep(interval);
                }
            })
            .ok();
        RssSampler {
            stop,
            samples,
            handle,
        }
    }

    /// Stop the sampler, wait for the thread, and return the timeline
    /// (includes one final sample taken on the way out).
    pub fn stop(mut self) -> Vec<RssSample> {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        let mut samples = self.samples.lock();
        std::mem::take(&mut *samples)
    }
}

impl Drop for RssSampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_readers_agree_with_proc_availability() {
        let has_proc = std::path::Path::new("/proc/self/status").exists();
        assert_eq!(peak_rss_kb().is_some(), has_proc);
        assert_eq!(current_rss_kb().is_some(), has_proc);
        if let (Some(peak), Some(cur)) = (peak_rss_kb(), current_rss_kb()) {
            assert!(
                peak >= cur / 2,
                "peak {peak} implausibly below current {cur}"
            );
            assert!(peak > 0);
        }
    }

    #[test]
    fn sampler_produces_monotonic_timeline() {
        let sampler = RssSampler::start(Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(25));
        let samples = sampler.stop();
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(
                samples.len() >= 2,
                "expected >=2 samples, got {}",
                samples.len()
            );
            assert!(samples
                .windows(2)
                .all(|w| w[0].elapsed_ms <= w[1].elapsed_ms));
        }
    }
}
