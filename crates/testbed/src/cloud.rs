//! The cloud facade: one object that owns the clock, quota, reservation
//! calendar, live resources, and the usage ledger.
//!
//! Semantics follow §4–§5 of the paper:
//!
//! * VM instances are created on demand against the project quota and run
//!   **until explicitly deleted** (or until [`Cloud::finalize`] closes the
//!   books at semester end).
//! * Bare-metal and edge instances can only be created inside an admitted
//!   lease window and are **auto-terminated** when the simulation clock
//!   passes the lease end.
//! * Floating IPs, private networks, volumes, and buckets are tracked and
//!   metered the same way.

use crate::error::CloudError;
use crate::flavor::{FlavorId, SiteKind};
use crate::instance::{Instance, InstanceId, InstanceState};
use crate::lease::{Lease, LeaseId, ReservationCalendar};
use crate::ledger::{Ledger, UsageKind, UsageRecord};
use crate::network::{FloatingIp, FloatingIpId, NetworkId, PrivateNetwork};
use crate::quota::{Quota, QuotaUsage};
use crate::storage::{Bucket, Volume, VolumeId, VolumeState};
use opml_simkernel::{det_hash_map, DetHashMap};
use opml_simkernel::{EventQueue, SimDuration, SimTime};
use opml_telemetry::Telemetry;

/// The simulated research cloud.
#[derive(Debug)]
pub struct Cloud {
    now: SimTime,
    quota: Quota,
    usage: QuotaUsage,
    calendar: ReservationCalendar,
    instances: DetHashMap<InstanceId, Instance>,
    fips: DetHashMap<FloatingIpId, FloatingIp>,
    networks: DetHashMap<NetworkId, PrivateNetwork>,
    volumes: DetHashMap<VolumeId, Volume>,
    buckets: DetHashMap<String, Bucket>,
    lease_instances: DetHashMap<LeaseId, Vec<InstanceId>>,
    lease_ends: EventQueue<LeaseId>,
    ledger: Ledger,
    next_id: u64,
    telemetry: Telemetry,
}

impl Cloud {
    /// A cloud with the given project quota and an empty bare-metal
    /// calendar (register node counts with [`Cloud::set_node_capacity`]).
    pub fn new(quota: Quota) -> Self {
        Cloud {
            now: SimTime::ZERO,
            quota,
            usage: QuotaUsage::default(),
            calendar: ReservationCalendar::new(),
            instances: det_hash_map(),
            fips: det_hash_map(),
            networks: det_hash_map(),
            volumes: det_hash_map(),
            buckets: det_hash_map(),
            lease_instances: det_hash_map(),
            lease_ends: EventQueue::new(),
            ledger: Ledger::new(),
            next_id: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry handle (builder style). The cloud emits
    /// `instance.launch`/`instance.terminate`, `lease.accept`/`lease.deny`
    /// and `quota.deny` events plus the `cloud.*` counters through it.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attach a telemetry handle in place.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Pre-size the usage ledger (builder style). Callers that know the
    /// expected record volume — the shard driver derives one from the
    /// shard's student count — use this so the close-record hot loop
    /// never grows the ledger mid-run.
    pub fn with_ledger_capacity(mut self, capacity: usize) -> Self {
        self.ledger = Ledger::with_capacity(capacity);
        self
    }

    /// A cloud configured like the paper's course: the §4 KVM\@TACC quota
    /// plus representative bare-metal/edge node counts (GPU nodes are
    /// scarce — that is why staff pre-reserved week-long blocks).
    pub fn paper_course() -> Self {
        let mut cloud = Cloud::new(Quota::paper_course());
        cloud.set_node_capacity(FlavorId::GpuA100Pcie, 4);
        cloud.set_node_capacity(FlavorId::GpuV100, 6);
        cloud.set_node_capacity(FlavorId::ComputeGigaio, 8);
        cloud.set_node_capacity(FlavorId::ComputeLiqid, 8);
        cloud.set_node_capacity(FlavorId::ComputeLiqid2, 4);
        cloud.set_node_capacity(FlavorId::GpuMi100, 8);
        cloud.set_node_capacity(FlavorId::GpuP100, 8);
        cloud.set_node_capacity(FlavorId::RaspberryPi5, 7); // §4: 7 devices
        cloud.set_node_capacity(FlavorId::ComputeCascadeLake, 12);
        cloud
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Register the number of physical nodes backing a leased flavor.
    pub fn set_node_capacity(&mut self, flavor: FlavorId, nodes: u32) {
        self.calendar.set_capacity(flavor, nodes);
    }

    /// Advance the clock, auto-terminating instances whose lease expired.
    pub fn advance_to(&mut self, t: SimTime) {
        if t <= self.now {
            return;
        }
        while let Some(end_time) = self.lease_ends.peek_time() {
            if end_time > t {
                break;
            }
            // detlint::allow(DL008): guarded by the peek in the loop condition
            let (end_time, lease_id) = self.lease_ends.pop().expect("peeked");
            // `None` is legitimate here — the lease was admitted but never
            // provisioned against, or was revoked early (revoke_lease
            // already drained its instances). Anything else is a bug.
            let ids = match self.lease_instances.remove(&lease_id) {
                Some(ids) => ids,
                None => Vec::new(),
            };
            for id in ids {
                if self.instances.get(&id).is_some_and(Instance::is_active) {
                    self.close_instance(id, end_time, InstanceState::AutoTerminated);
                }
            }
        }
        self.now = t;
    }

    /// Advance the clock by a span.
    pub fn advance(&mut self, d: SimDuration) {
        self.advance_to(self.now + d);
    }

    // ---------------------------------------------------------- instances

    /// Create an on-demand VM instance. Fails for leased flavors.
    pub fn create_instance(
        &mut self,
        name: &str,
        flavor: FlavorId,
    ) -> Result<InstanceId, CloudError> {
        if flavor.requires_lease() {
            return Err(CloudError::LeaseRequired(flavor));
        }
        let spec = flavor.spec();
        if let Err(e) = self
            .usage
            .take_instance(&self.quota, spec.vcpus as u64, spec.ram_gb as u64)
        {
            self.quota_deny("instance", name);
            return Err(e);
        }
        let id = InstanceId(self.fresh_id());
        self.instances.insert(
            id,
            Instance {
                id,
                name: name.to_string(),
                flavor,
                created: self.now,
                deleted: None,
                state: InstanceState::Active,
                lease: None,
            },
        );
        self.note_launch(name, flavor, false);
        Ok(id)
    }

    /// Read-only headroom probe: would one more instance of `flavor`
    /// fit the project quota right now? Consumes nothing and emits no
    /// `quota.deny` telemetry (it is a check, not a denied request).
    pub fn quota_check(&self, flavor: FlavorId) -> Result<(), CloudError> {
        if flavor.requires_lease() {
            return Err(CloudError::LeaseRequired(flavor));
        }
        let spec = flavor.spec();
        self.usage
            .can_take_instance(&self.quota, spec.vcpus as u64, spec.ram_gb as u64)
    }

    /// Create a bare-metal/edge instance inside an admitted lease.
    pub fn create_leased_instance(
        &mut self,
        name: &str,
        lease_id: LeaseId,
    ) -> Result<InstanceId, CloudError> {
        if self.calendar.is_revoked(lease_id) {
            return Err(CloudError::LeaseRevoked);
        }
        let lease = self.calendar.get(lease_id).ok_or(CloudError::NoSuchLease)?;
        if !lease.covers(self.now) {
            return Err(CloudError::OutsideLease);
        }
        let flavor = lease.flavor;
        let id = InstanceId(self.fresh_id());
        self.instances.insert(
            id,
            Instance {
                id,
                name: name.to_string(),
                flavor,
                created: self.now,
                deleted: None,
                state: InstanceState::Active,
                lease: Some(lease_id),
            },
        );
        self.lease_instances.entry(lease_id).or_default().push(id);
        self.note_launch(name, flavor, true);
        Ok(id)
    }

    fn note_launch(&self, name: &str, flavor: FlavorId, leased: bool) {
        self.telemetry.instant(self.now, "instance.launch", || {
            vec![
                ("name", name.to_string().into()),
                ("flavor", flavor.name().into()),
                ("leased", leased.into()),
            ]
        });
        self.telemetry.counter_add("cloud.instances_launched", 1);
    }

    fn quota_deny(&self, resource: &'static str, name: &str) {
        self.telemetry.instant(self.now, "quota.deny", || {
            vec![
                ("resource", resource.into()),
                ("name", name.to_string().into()),
            ]
        });
        self.telemetry.counter_add("cloud.quota_denials", 1);
    }

    /// Delete an instance now.
    pub fn delete_instance(&mut self, id: InstanceId) -> Result<(), CloudError> {
        match self.instances.get(&id) {
            None => Err(CloudError::NoSuchInstance),
            Some(inst) if !inst.is_active() => Err(CloudError::AlreadyDeleted),
            Some(_) => {
                self.close_instance(id, self.now, InstanceState::Deleted);
                Ok(())
            }
        }
    }

    fn close_instance(&mut self, id: InstanceId, at: SimTime, state: InstanceState) {
        let inst = self
            .instances
            .get_mut(&id)
            // detlint::allow(DL008): callers pass ids taken from self.instances
            .expect("close_instance: unknown id");
        inst.deleted = Some(at);
        inst.state = state;
        let spec = inst.flavor.spec();
        if spec.site == SiteKind::Vm {
            self.usage
                .release_instance(spec.vcpus as u64, spec.ram_gb as u64);
        }
        self.ledger.push(UsageRecord {
            name: inst.name.clone(),
            kind: UsageKind::Instance {
                flavor: inst.flavor,
                auto_terminated: state == InstanceState::AutoTerminated,
            },
            start: inst.created,
            end: at,
        });
        let (name, flavor, created) = (inst.name.clone(), inst.flavor, inst.created);
        let auto = state == InstanceState::AutoTerminated;
        self.telemetry.instant(at, "instance.terminate", || {
            vec![
                ("name", name.into()),
                ("flavor", flavor.name().into()),
                ("auto_terminated", auto.into()),
                ("lifetime_min", at.since(created).0.into()),
            ]
        });
        self.telemetry
            .observe("instance.lifetime", at.since(created));
        if auto {
            self.telemetry.counter_add("cloud.auto_terminations", 1);
        }
    }

    /// Kill a running instance mid-flight (hardware failure or injected
    /// fault). The instance stops metering now; whatever workload it ran
    /// is the caller's problem to relaunch.
    pub fn crash_instance(&mut self, id: InstanceId) -> Result<(), CloudError> {
        match self.instances.get(&id) {
            None => Err(CloudError::NoSuchInstance),
            Some(inst) if !inst.is_active() => Err(CloudError::AlreadyDeleted),
            Some(inst) => {
                let name = inst.name.clone();
                let flavor = inst.flavor;
                self.telemetry.instant(self.now, "instance.crash", || {
                    vec![("name", name.into()), ("flavor", flavor.name().into())]
                });
                self.telemetry.counter_add("cloud.crashes", 1);
                self.close_instance(id, self.now, InstanceState::Crashed);
                Ok(())
            }
        }
    }

    /// Look up an instance.
    pub fn instance(&self, id: InstanceId) -> Option<&Instance> {
        self.instances.get(&id)
    }

    /// Number of currently active instances.
    pub fn active_instances(&self) -> usize {
        self.instances.values().filter(|i| i.is_active()).count()
    }

    // ------------------------------------------------------------- leases

    /// Request an advance reservation.
    pub fn reserve(
        &mut self,
        flavor: FlavorId,
        count: u32,
        start: SimTime,
        end: SimTime,
        owner: &str,
    ) -> Result<Lease, CloudError> {
        if !flavor.requires_lease() {
            // Chameleon later added VM reservations too; the ablation
            // experiment turns this on by reserving VM flavors — so it is
            // allowed, and VMs created under the lease auto-terminate.
        }
        match self.calendar.reserve(flavor, count, start, end, owner) {
            Ok(lease) => {
                self.lease_ends.push(lease.end, lease.id);
                self.telemetry.instant(self.now, "lease.accept", || {
                    vec![
                        ("owner", owner.to_string().into()),
                        ("flavor", flavor.name().into()),
                        ("count", count.into()),
                        ("start_min", start.0.into()),
                        ("end_min", end.0.into()),
                    ]
                });
                self.telemetry.counter_add("cloud.leases_accepted", 1);
                Ok(lease)
            }
            Err(e) => {
                self.telemetry.instant(self.now, "lease.deny", || {
                    vec![
                        ("owner", owner.to_string().into()),
                        ("flavor", flavor.name().into()),
                        ("count", count.into()),
                        ("start_min", start.0.into()),
                    ]
                });
                self.telemetry.counter_add("cloud.lease_denials", 1);
                Err(e)
            }
        }
    }

    /// Revoke an admitted lease now: its window is truncated in the
    /// calendar (freeing the nodes for rebooking) and any instances
    /// running under it are auto-terminated immediately. Returns the ids
    /// of the instances that were terminated.
    pub fn revoke_lease(&mut self, lease_id: LeaseId) -> Result<Vec<InstanceId>, CloudError> {
        self.calendar.revoke(lease_id, self.now)?;
        // `None` just means nothing was provisioned against the lease yet.
        let ids = match self.lease_instances.remove(&lease_id) {
            Some(ids) => ids,
            None => Vec::new(),
        };
        let mut terminated = Vec::new();
        for id in ids {
            if self.instances.get(&id).is_some_and(Instance::is_active) {
                self.close_instance(id, self.now, InstanceState::AutoTerminated);
                terminated.push(id);
            }
        }
        self.telemetry.instant(self.now, "lease.revoke", || {
            vec![
                ("lease", lease_id.0.into()),
                ("terminated", (terminated.len() as u64).into()),
            ]
        });
        self.telemetry.counter_add("cloud.lease_revocations", 1);
        Ok(terminated)
    }

    /// Earliest admissible slot for a reservation (student "next free slot"
    /// workflow).
    pub fn earliest_slot(
        &self,
        flavor: FlavorId,
        count: u32,
        length: SimDuration,
        earliest: SimTime,
    ) -> Option<SimTime> {
        self.calendar.earliest_slot(flavor, count, length, earliest)
    }

    /// Reservation calendar (read access for capacity planning).
    pub fn calendar(&self) -> &ReservationCalendar {
        &self.calendar
    }

    // ----------------------------------------------------------- networks

    /// Allocate a floating IP (counts against quota; metered on release).
    pub fn allocate_fip(&mut self, name: &str) -> Result<FloatingIpId, CloudError> {
        if let Err(e) = self.usage.take_fip(&self.quota) {
            self.quota_deny("floating_ip", name);
            return Err(e);
        }
        let id = FloatingIpId(self.fresh_id());
        self.fips.insert(
            id,
            FloatingIp {
                id,
                name: name.to_string(),
                allocated: self.now,
                released: None,
            },
        );
        Ok(id)
    }

    /// Release a floating IP now.
    pub fn release_fip(&mut self, id: FloatingIpId) -> Result<(), CloudError> {
        let fip = self.fips.get_mut(&id).ok_or(CloudError::NoSuchFip)?;
        if fip.released.is_some() {
            return Err(CloudError::AlreadyDeleted);
        }
        fip.released = Some(self.now);
        self.usage.release_fip();
        self.ledger.push(UsageRecord {
            name: fip.name.clone(),
            kind: UsageKind::FloatingIp,
            start: fip.allocated,
            end: self.now,
        });
        Ok(())
    }

    /// Create a private network + router pair.
    pub fn create_network(&mut self, name: &str) -> Result<NetworkId, CloudError> {
        if let Err(e) = self.usage.take_network(&self.quota) {
            self.quota_deny("network", name);
            return Err(e);
        }
        if let Err(e) = self.usage.take_router(&self.quota) {
            self.usage.release_network();
            self.quota_deny("router", name);
            return Err(e);
        }
        let id = NetworkId(self.fresh_id());
        self.networks.insert(
            id,
            PrivateNetwork {
                id,
                name: name.to_string(),
                created: self.now,
                deleted: None,
            },
        );
        Ok(id)
    }

    /// Delete a private network + its router.
    pub fn delete_network(&mut self, id: NetworkId) -> Result<(), CloudError> {
        let net = self
            .networks
            .get_mut(&id)
            .ok_or(CloudError::NoSuchNetwork)?;
        if net.deleted.is_some() {
            return Err(CloudError::AlreadyDeleted);
        }
        net.deleted = Some(self.now);
        self.usage.release_network();
        self.usage.release_router();
        Ok(())
    }

    // ------------------------------------------------------------ storage

    /// Create a block volume.
    pub fn create_volume(&mut self, name: &str, size_gb: u64) -> Result<VolumeId, CloudError> {
        if let Err(e) = self.usage.take_volume(&self.quota, size_gb) {
            self.quota_deny("volume", name);
            return Err(e);
        }
        let id = VolumeId(self.fresh_id());
        self.volumes.insert(
            id,
            Volume {
                id,
                name: name.to_string(),
                size_gb,
                created: self.now,
                deleted: None,
                state: VolumeState::Available,
                attached_to: None,
                formatted: false,
            },
        );
        Ok(id)
    }

    /// Attach a volume to an instance.
    pub fn attach_volume(&mut self, vol: VolumeId, inst: InstanceId) -> Result<(), CloudError> {
        if !self.instances.get(&inst).is_some_and(Instance::is_active) {
            return Err(CloudError::NoSuchInstance);
        }
        let v = self.volumes.get_mut(&vol).ok_or(CloudError::NoSuchVolume)?;
        if v.state == VolumeState::Deleted {
            return Err(CloudError::NoSuchVolume);
        }
        if v.state == VolumeState::InUse && v.attached_to != Some(inst) {
            return Err(CloudError::VolumeInUse);
        }
        v.state = VolumeState::InUse;
        v.attached_to = Some(inst);
        Ok(())
    }

    /// Detach a volume (data persists — that is the point of Unit 8).
    pub fn detach_volume(&mut self, vol: VolumeId) -> Result<(), CloudError> {
        let v = self.volumes.get_mut(&vol).ok_or(CloudError::NoSuchVolume)?;
        if v.state != VolumeState::InUse {
            return Err(CloudError::VolumeNotAttached);
        }
        v.state = VolumeState::Available;
        v.attached_to = None;
        Ok(())
    }

    /// Format a volume (must be attached).
    pub fn format_volume(&mut self, vol: VolumeId) -> Result<(), CloudError> {
        let v = self.volumes.get_mut(&vol).ok_or(CloudError::NoSuchVolume)?;
        if v.state != VolumeState::InUse {
            return Err(CloudError::VolumeInUse);
        }
        v.formatted = true;
        Ok(())
    }

    /// Delete a volume; refused while attached.
    pub fn delete_volume(&mut self, vol: VolumeId) -> Result<(), CloudError> {
        let v = self.volumes.get_mut(&vol).ok_or(CloudError::NoSuchVolume)?;
        if v.state == VolumeState::InUse {
            return Err(CloudError::VolumeInUse);
        }
        if v.state == VolumeState::Deleted {
            return Err(CloudError::AlreadyDeleted);
        }
        v.state = VolumeState::Deleted;
        v.deleted = Some(self.now);
        self.usage.release_volume(v.size_gb);
        self.ledger.push(UsageRecord {
            name: v.name.clone(),
            kind: UsageKind::Volume { size_gb: v.size_gb },
            start: v.created,
            end: self.now,
        });
        Ok(())
    }

    /// Create (or get) an object-store bucket.
    pub fn bucket(&mut self, name: &str) -> &mut Bucket {
        let now = self.now;
        self.buckets
            .entry(name.to_string())
            .or_insert_with(|| Bucket {
                name: name.to_string(),
                stored_gb: 0.0,
                created: now,
                object_count: 0,
                mounted_on: Vec::new(),
            })
    }

    /// Mount a bucket as a filesystem on an instance (Unit 8 lab step).
    pub fn mount_bucket(&mut self, name: &str, inst: InstanceId) -> Result<(), CloudError> {
        if !self.instances.get(&inst).is_some_and(Instance::is_active) {
            return Err(CloudError::NoSuchInstance);
        }
        self.bucket(name).mounted_on.push(inst);
        Ok(())
    }

    // ----------------------------------------------------------- closing

    /// Close the books: advance to `end`, auto-terminate expired leases,
    /// close every still-open instance/FIP/volume record at `end`, and emit
    /// one object-storage record per bucket.
    pub fn finalize(&mut self, end: SimTime) {
        self.advance_to(end);
        // Close in id order: closing appends ledger records, so the order
        // must not follow hash-map iteration (DL002).
        let mut open: Vec<InstanceId> = self
            .instances
            .values()
            .filter(|i| i.is_active())
            .map(|i| i.id)
            .collect();
        open.sort_unstable();
        for id in open {
            self.close_instance(id, end, InstanceState::Deleted);
        }
        let mut open_fips: Vec<FloatingIpId> = self
            .fips
            .values()
            .filter(|f| f.is_held())
            .map(|f| f.id)
            .collect();
        open_fips.sort_unstable();
        for id in open_fips {
            // detlint::allow(DL008): `id` came from self.fips and is held, so release succeeds
            self.release_fip(id).expect("open fip must release");
        }
        let mut open_vols: Vec<VolumeId> = self
            .volumes
            .values()
            .filter(|v| v.state != VolumeState::Deleted)
            .map(|v| v.id)
            .collect();
        open_vols.sort_unstable();
        for id in open_vols {
            let _ = self.detach_volume(id);
            // detlint::allow(DL008): `id` came from self.volumes and was just detached
            self.delete_volume(id).expect("open volume must delete");
        }
        let mut bucket_names: Vec<String> = self.buckets.keys().cloned().collect();
        bucket_names.sort_unstable();
        for name in bucket_names {
            // detlint::allow(DL008): `name` came from self.buckets.keys()
            let b = &self.buckets[&name];
            self.ledger.push(UsageRecord {
                name: b.name.clone(),
                kind: UsageKind::ObjectStorage { gb: b.stored_gb },
                start: b.created,
                end,
            });
        }
        self.buckets.clear();
    }

    /// The usage ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Take the ledger out of the cloud (after [`Cloud::finalize`]).
    pub fn into_ledger(self) -> Ledger {
        self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(h: u64) -> SimTime {
        SimTime(h * 60)
    }

    #[test]
    fn vm_lifecycle_and_metering() {
        let mut cloud = Cloud::new(Quota::unlimited());
        let id = cloud
            .create_instance("lab1-alice", FlavorId::M1Small)
            .unwrap();
        cloud.advance(SimDuration::hours(3));
        cloud.delete_instance(id).unwrap();
        assert_eq!(cloud.ledger().instance_hours(None), 3.0);
        assert_eq!(cloud.active_instances(), 0);
    }

    #[test]
    fn vm_runs_until_finalize_if_neglected() {
        // The core mechanism of the paper's long tail.
        let mut cloud = Cloud::new(Quota::unlimited());
        cloud
            .create_instance("lab2-forgetful", FlavorId::M1Medium)
            .unwrap();
        cloud.finalize(t(500));
        assert_eq!(cloud.ledger().instance_hours(None), 500.0);
    }

    #[test]
    fn bare_metal_requires_lease() {
        let mut cloud = Cloud::paper_course();
        let err = cloud
            .create_instance("lab4-x", FlavorId::GpuA100Pcie)
            .unwrap_err();
        assert_eq!(err, CloudError::LeaseRequired(FlavorId::GpuA100Pcie));
    }

    #[test]
    fn leased_instance_auto_terminates() {
        let mut cloud = Cloud::paper_course();
        let lease = cloud
            .reserve(FlavorId::GpuA100Pcie, 1, t(0), t(3), "lab4-alice")
            .unwrap();
        let id = cloud
            .create_leased_instance("lab4-alice", lease.id)
            .unwrap();
        // Student walks away; the lease ends at hour 3 and the node is
        // reclaimed even though the clock advances to hour 10.
        cloud.advance_to(t(10));
        let inst = cloud.instance(id).unwrap();
        assert_eq!(inst.state, InstanceState::AutoTerminated);
        assert_eq!(
            cloud.ledger().instance_hours(Some(FlavorId::GpuA100Pcie)),
            3.0
        );
    }

    #[test]
    fn cannot_provision_outside_lease() {
        let mut cloud = Cloud::paper_course();
        let lease = cloud
            .reserve(FlavorId::GpuV100, 1, t(5), t(8), "lab4-bob")
            .unwrap();
        assert_eq!(
            cloud
                .create_leased_instance("lab4-bob", lease.id)
                .unwrap_err(),
            CloudError::OutsideLease
        );
        cloud.advance_to(t(5));
        cloud.create_leased_instance("lab4-bob", lease.id).unwrap();
    }

    #[test]
    fn quota_blocks_and_releases() {
        let quota = Quota {
            instances: 1,
            ..Quota::unlimited()
        };
        let mut cloud = Cloud::new(quota);
        let a = cloud.create_instance("a", FlavorId::M1Small).unwrap();
        assert!(cloud.create_instance("b", FlavorId::M1Small).is_err());
        cloud.delete_instance(a).unwrap();
        cloud.create_instance("b", FlavorId::M1Small).unwrap();
    }

    #[test]
    fn fip_metering_matches_hold_time() {
        let mut cloud = Cloud::new(Quota::unlimited());
        let fip = cloud.allocate_fip("lab2-carol").unwrap();
        cloud.advance(SimDuration::hours(7));
        cloud.release_fip(fip).unwrap();
        assert_eq!(cloud.ledger().fip_hours(), 7.0);
        assert!(cloud.release_fip(fip).is_err(), "double release refused");
    }

    #[test]
    fn network_router_quota_pairs() {
        let quota = Quota {
            networks: 5,
            routers: 1,
            ..Quota::unlimited()
        };
        let mut cloud = Cloud::new(quota);
        let n = cloud.create_network("net1").unwrap();
        // Router quota (1) is exhausted; network allocation must roll back.
        assert!(cloud.create_network("net2").is_err());
        cloud.delete_network(n).unwrap();
        cloud.create_network("net3").unwrap();
    }

    #[test]
    fn volume_lifecycle_unit8() {
        let mut cloud = Cloud::new(Quota::unlimited());
        let inst = cloud
            .create_instance("lab8-dan", FlavorId::M1Large)
            .unwrap();
        let vol = cloud.create_volume("lab8-dan-vol", 2).unwrap();
        cloud.attach_volume(vol, inst).unwrap();
        cloud.format_volume(vol).unwrap();
        // Deleting while attached is refused.
        assert_eq!(
            cloud.delete_volume(vol).unwrap_err(),
            CloudError::VolumeInUse
        );
        cloud.detach_volume(vol).unwrap();
        cloud.advance(SimDuration::hours(4));
        cloud.delete_volume(vol).unwrap();
        let gb_hours: f64 = cloud
            .ledger()
            .records()
            .iter()
            .filter_map(|r| match r.kind {
                UsageKind::Volume { size_gb } => Some(size_gb as f64 * r.hours()),
                _ => None,
            })
            .sum();
        assert_eq!(gb_hours, 8.0);
    }

    #[test]
    fn bucket_put_and_finalize() {
        let mut cloud = Cloud::new(Quota::unlimited());
        cloud.bucket("food11").put(1000, 1.2);
        cloud.finalize(t(100));
        assert!((cloud.ledger().object_gb() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn finalize_closes_everything() {
        let mut cloud = Cloud::new(Quota::unlimited());
        cloud.create_instance("x", FlavorId::M1Medium).unwrap();
        cloud.allocate_fip("x").unwrap();
        cloud.create_volume("xv", 10).unwrap();
        cloud.finalize(t(10));
        assert_eq!(cloud.active_instances(), 0);
        let l = cloud.ledger();
        assert_eq!(l.instance_hours(None), 10.0);
        assert_eq!(l.fip_hours(), 10.0);
        assert_eq!(l.peak_block_gb(), 10);
    }

    #[test]
    fn telemetry_records_lifecycle_and_denials() {
        use opml_telemetry::MemorySink;
        let sink = MemorySink::new();
        let quota = Quota {
            instances: 1,
            ..Quota::unlimited()
        };
        let mut cloud = Cloud::new(quota).with_telemetry(Telemetry::with_sink(sink.clone()));
        let id = cloud.create_instance("a", FlavorId::M1Small).unwrap();
        assert!(cloud.create_instance("b", FlavorId::M1Small).is_err());
        cloud.advance(SimDuration::hours(2));
        cloud.delete_instance(id).unwrap();

        let names: Vec<String> = sink.events().iter().map(|e| e.name.to_string()).collect();
        assert_eq!(
            names,
            vec!["instance.launch", "quota.deny", "instance.terminate"]
        );
        let metrics = cloud.telemetry.metrics_snapshot();
        assert_eq!(metrics.counters["cloud.instances_launched"], 1);
        assert_eq!(metrics.counters["cloud.quota_denials"], 1);
        assert_eq!(metrics.histograms["instance.lifetime"].sum_minutes, 120);
    }

    #[test]
    fn crash_stops_metering_and_is_typed() {
        let mut cloud = Cloud::new(Quota::unlimited());
        let id = cloud
            .create_instance("lab3-eve", FlavorId::M1Small)
            .unwrap();
        cloud.advance(SimDuration::hours(2));
        cloud.crash_instance(id).unwrap();
        cloud.advance(SimDuration::hours(5));
        assert_eq!(cloud.ledger().instance_hours(None), 2.0);
        assert_eq!(cloud.instance(id).unwrap().state, InstanceState::Crashed);
        assert_eq!(cloud.crash_instance(id), Err(CloudError::AlreadyDeleted));
        assert_eq!(
            cloud.crash_instance(InstanceId(999)),
            Err(CloudError::NoSuchInstance)
        );
        // Quota was released on crash: a replacement fits.
        cloud
            .create_instance("lab3-eve-2", FlavorId::M1Small)
            .unwrap();
    }

    #[test]
    fn revoke_lease_terminates_and_frees_slot() {
        let mut cloud = Cloud::paper_course();
        let lease = cloud
            .reserve(FlavorId::GpuA100Pcie, 4, t(0), t(10), "staff")
            .unwrap();
        let id = cloud.create_leased_instance("lab4-fay", lease.id).unwrap();
        cloud.advance_to(t(2));
        let terminated = cloud.revoke_lease(lease.id).unwrap();
        assert_eq!(terminated, vec![id]);
        assert_eq!(
            cloud.instance(id).unwrap().state,
            InstanceState::AutoTerminated
        );
        assert_eq!(
            cloud.ledger().instance_hours(Some(FlavorId::GpuA100Pcie)),
            2.0
        );
        // Provisioning against the revoked lease is a typed refusal.
        assert_eq!(
            cloud.create_leased_instance("lab4-fay", lease.id),
            Err(CloudError::LeaseRevoked)
        );
        // The nodes are free again for a rebooking.
        cloud
            .reserve(FlavorId::GpuA100Pcie, 4, t(3), t(6), "lab4-fay")
            .unwrap();
        // Passing the original lease end must not double-terminate.
        cloud.advance_to(t(11));
        assert_eq!(
            cloud.ledger().instance_hours(Some(FlavorId::GpuA100Pcie)),
            2.0
        );
    }

    #[test]
    fn typed_errors_on_fip_network_volume_paths() {
        let mut cloud = Cloud::new(Quota::unlimited());
        assert_eq!(
            cloud.release_fip(FloatingIpId(7)),
            Err(CloudError::NoSuchFip)
        );
        assert_eq!(
            cloud.delete_network(NetworkId(7)),
            Err(CloudError::NoSuchNetwork)
        );
        let vol = cloud.create_volume("v", 1).unwrap();
        assert_eq!(cloud.detach_volume(vol), Err(CloudError::VolumeNotAttached));
        let a = cloud.create_instance("a", FlavorId::M1Small).unwrap();
        let b = cloud.create_instance("b", FlavorId::M1Small).unwrap();
        cloud.attach_volume(vol, a).unwrap();
        // Attaching an in-use volume to another instance is refused.
        assert_eq!(cloud.attach_volume(vol, b), Err(CloudError::VolumeInUse));
        // Re-attaching to the same instance is idempotent.
        cloud.attach_volume(vol, a).unwrap();
    }

    #[test]
    fn gpu_slot_contention() {
        // 4 A100 nodes, 5 students want the same 3-hour window: the fifth
        // is pushed to the next slot.
        let mut cloud = Cloud::paper_course();
        for i in 0..4 {
            cloud
                .reserve(FlavorId::GpuA100Pcie, 1, t(0), t(3), &format!("s{i}"))
                .unwrap();
        }
        assert!(cloud
            .reserve(FlavorId::GpuA100Pcie, 1, t(1), t(4), "s4")
            .is_err());
        let slot = cloud
            .earliest_slot(FlavorId::GpuA100Pcie, 1, SimDuration::hours(3), t(0))
            .unwrap();
        assert_eq!(slot, t(3));
    }
}
