//! Persistent storage: block volumes and object-store buckets (Unit 8).
//!
//! The Unit 8 lab provisions a 2 GB block volume (attach/format/mount) and
//! ~1.2 GB of object storage; project work consumed 9 TB of block volumes
//! and 1,541 GB of object storage (§5).

use crate::instance::InstanceId;
use opml_simkernel::SimTime;
use serde::{Deserialize, Serialize};

/// Opaque volume identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VolumeId(pub u64);

/// Block-volume lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VolumeState {
    /// Created, not attached.
    Available,
    /// Attached to an instance.
    InUse,
    /// Deleted.
    Deleted,
}

/// A block-storage volume.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Volume {
    /// Identifier.
    pub id: VolumeId,
    /// Attribution key.
    pub name: String,
    /// Size in GB.
    pub size_gb: u64,
    /// Creation time.
    pub created: SimTime,
    /// Deletion time, once deleted.
    pub deleted: Option<SimTime>,
    /// Lifecycle state.
    pub state: VolumeState,
    /// Attached instance, if any.
    pub attached_to: Option<InstanceId>,
    /// Whether the volume has been formatted with a filesystem.
    pub formatted: bool,
}

impl Volume {
    /// GB-hours accrued as of `now` (volumes bill on existence, not
    /// attachment — exactly why "persist data across ephemeral compute"
    /// works).
    pub fn gb_hours(&self, now: SimTime) -> f64 {
        let end = self.deleted.unwrap_or(now);
        self.size_gb as f64 * end.since(self.created).as_hours_f64()
    }
}

/// An object-store bucket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bucket {
    /// Bucket name (attribution key).
    pub name: String,
    /// Stored bytes, in GB (fractional — the Unit 8 dataset is 1.2 GB).
    pub stored_gb: f64,
    /// Creation time.
    pub created: SimTime,
    /// Objects stored (count only; contents are out of scope).
    pub object_count: u64,
    /// Instances that currently mount the bucket as a filesystem.
    pub mounted_on: Vec<InstanceId>,
}

impl Bucket {
    /// Add objects totalling `gb`.
    pub fn put(&mut self, objects: u64, gb: f64) {
        self.object_count += objects;
        self.stored_gb += gb;
    }

    /// GB-hours accrued as of `now` (flat model: current size × lifetime;
    /// adequate because the evaluation only reports final stored GB).
    pub fn gb_hours(&self, now: SimTime) -> f64 {
        self.stored_gb * now.since(self.created).as_hours_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opml_simkernel::SimDuration;

    #[test]
    fn volume_gb_hours() {
        let v = Volume {
            id: VolumeId(0),
            name: "lab8-bob".into(),
            size_gb: 2,
            created: SimTime::ZERO,
            deleted: Some(SimTime::ZERO + SimDuration::hours(10)),
            state: VolumeState::Deleted,
            attached_to: None,
            formatted: true,
        };
        assert_eq!(v.gb_hours(SimTime::ZERO + SimDuration::hours(99)), 20.0);
    }

    #[test]
    fn bucket_accumulates() {
        let mut b = Bucket {
            name: "food11".into(),
            stored_gb: 0.0,
            created: SimTime::ZERO,
            object_count: 0,
            mounted_on: vec![],
        };
        b.put(100, 0.7);
        b.put(50, 0.5);
        assert_eq!(b.object_count, 150);
        assert!((b.stored_gb - 1.2).abs() < 1e-12);
        assert!((b.gb_hours(SimTime::ZERO + SimDuration::hours(2)) - 2.4).abs() < 1e-9);
    }
}
