//! The usage ledger — the single source of truth for the cost analysis.
//!
//! Every resource the simulated course consumes is closed out as a
//! [`UsageRecord`] carrying its attribution name, kind, and `[start, end)`
//! window. `opml-metering` rolls records up per assignment/student and
//! `opml-pricing` converts them to dollars; §5 of the paper does exactly
//! this with Chameleon's monitoring and reservation data.

use crate::flavor::FlavorId;
use opml_simkernel::{binio, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;

/// What kind of resource a record meters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum UsageKind {
    /// A compute instance of the given flavor. `auto_terminated` marks
    /// records closed by lease expiry rather than user deletion.
    Instance {
        /// Flavor of the metered instance.
        flavor: FlavorId,
        /// Closed by lease expiry (bare metal / edge) rather than deletion.
        auto_terminated: bool,
    },
    /// A held floating IP.
    FloatingIp,
    /// A block volume of the given size.
    Volume {
        /// Volume size in GB.
        size_gb: u64,
    },
    /// Object storage; `gb` is the stored size over the window.
    ObjectStorage {
        /// Stored GB.
        gb: f64,
    },
}

impl UsageKind {
    /// Stable total-order key over the variant and its payload. Float
    /// payloads order by bit pattern (all stored values are finite), so
    /// the order is total and two records compare equal only when their
    /// serialized bytes are identical.
    fn sort_key(self) -> (u8, u64, u64) {
        match self {
            UsageKind::Instance {
                flavor,
                auto_terminated,
            } => (0, flavor as u64, u64::from(auto_terminated)),
            UsageKind::FloatingIp => (1, 0, 0),
            UsageKind::Volume { size_gb } => (2, size_gb, 0),
            UsageKind::ObjectStorage { gb } => (3, gb.to_bits(), 0),
        }
    }
}

/// One closed usage interval.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UsageRecord {
    /// Attribution name (e.g. `lab2-student042`).
    pub name: String,
    /// Resource kind.
    pub kind: UsageKind,
    /// Interval start.
    pub start: SimTime,
    /// Interval end.
    pub end: SimTime,
}

/// Bound on a spilled record's name length; anything larger in a run
/// file is corruption, not a real attribution name.
const MAX_NAME_LEN: u32 = 1 << 16;

/// [`UsageKind`] wire tags for the spill-run encoding.
const KIND_INSTANCE: u8 = 0;
const KIND_FLOATING_IP: u8 = 1;
const KIND_VOLUME: u8 = 2;
const KIND_OBJECT_STORAGE: u8 = 3;

impl UsageRecord {
    /// Metered hours.
    pub fn hours(&self) -> f64 {
        self.end.since(self.start).as_hours_f64()
    }

    /// Append this record to a spill-run buffer: length-prefixed name,
    /// one kind tag byte plus its payload, then the `[start, end)`
    /// window. Floats travel by bit pattern and the flavor by its
    /// [`FlavorId::ALL`] position, so [`UsageRecord::decode_from`]
    /// reproduces the record exactly — the spilled merge stream must
    /// serialize byte-identically to the in-memory one.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        binio::put_str(out, &self.name);
        match self.kind {
            UsageKind::Instance {
                flavor,
                auto_terminated,
            } => {
                binio::put_u8(out, KIND_INSTANCE);
                binio::put_u8(out, flavor as u8);
                binio::put_u8(out, u8::from(auto_terminated));
            }
            UsageKind::FloatingIp => binio::put_u8(out, KIND_FLOATING_IP),
            UsageKind::Volume { size_gb } => {
                binio::put_u8(out, KIND_VOLUME);
                binio::put_u64(out, size_gb);
            }
            UsageKind::ObjectStorage { gb } => {
                binio::put_u8(out, KIND_OBJECT_STORAGE);
                binio::put_f64(out, gb);
            }
        }
        binio::put_u64(out, self.start.0);
        binio::put_u64(out, self.end.0);
    }

    /// Decode one record written by [`UsageRecord::encode_into`].
    /// Corrupt tags or out-of-range flavors are `InvalidData`;
    /// truncation is `UnexpectedEof`. Never panics.
    pub fn decode_from(r: &mut impl io::Read) -> io::Result<UsageRecord> {
        let name = binio::read_string(r, MAX_NAME_LEN)?;
        let kind = match binio::read_u8(r)? {
            KIND_INSTANCE => {
                let raw = binio::read_u8(r)?;
                let flavor = FlavorId::ALL
                    .get(usize::from(raw))
                    .copied()
                    .ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("flavor index {raw} out of range"),
                        )
                    })?;
                UsageKind::Instance {
                    flavor,
                    auto_terminated: binio::read_u8(r)? != 0,
                }
            }
            KIND_FLOATING_IP => UsageKind::FloatingIp,
            KIND_VOLUME => UsageKind::Volume {
                size_gb: binio::read_u64(r)?,
            },
            KIND_OBJECT_STORAGE => UsageKind::ObjectStorage {
                gb: binio::read_f64(r)?,
            },
            tag => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown usage-kind tag {tag}"),
                ))
            }
        };
        Ok(UsageRecord {
            name,
            kind,
            start: SimTime(binio::read_u64(r)?),
            end: SimTime(binio::read_u64(r)?),
        })
    }

    /// Flavor, for instance records.
    pub fn flavor(&self) -> Option<FlavorId> {
        match self.kind {
            UsageKind::Instance { flavor, .. } => Some(flavor),
            _ => None,
        }
    }
}

/// Append-only collection of closed usage records, with the aggregate
/// queries the evaluation needs.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Ledger {
    records: Vec<UsageRecord>,
}

impl Ledger {
    /// Empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Empty ledger pre-sized for `capacity` records. The shard driver
    /// passes a per-student volume estimate so the hot close-record
    /// loop appends without reallocating; the hint is a capacity, not a
    /// bound.
    pub fn with_capacity(capacity: usize) -> Self {
        Ledger {
            records: Vec::with_capacity(capacity),
        }
    }

    /// Append a closed record.
    pub fn push(&mut self, rec: UsageRecord) {
        debug_assert!(rec.end >= rec.start, "record ends before it starts");
        self.records.push(rec);
    }

    /// All records.
    pub fn records(&self) -> &[UsageRecord] {
        &self.records
    }

    /// Merge another ledger's records (used when combining per-student
    /// partial simulations).
    pub fn extend(&mut self, other: Ledger) {
        self.records.extend(other.records);
    }

    /// Sort records into the canonical order: `(name, start, end, kind)`
    /// under a total key. Idempotent, and independent of the order the
    /// records were appended in.
    pub fn sort_canonical(&mut self) {
        self.records
            .sort_by(|a, b| record_key(a).cmp(&record_key(b)));
    }

    /// Whether the records are already in the canonical order.
    pub fn is_canonically_sorted(&self) -> bool {
        self.records
            .windows(2)
            .all(|w| record_key(&w[0]) <= record_key(&w[1]))
    }

    /// Merge ledger fragments into one canonically-ordered ledger.
    ///
    /// This is the shard-merge law for usage records. When every part is
    /// already canonically sorted — shard ledgers are, by construction:
    /// each shard sorts its own ledger before the merge — the parts are
    /// k-way merged with ties broken by part order, which is exactly the
    /// result of concatenating and running the *stable*
    /// [`Ledger::sort_canonical`], in `O(N log k)` instead of
    /// `O(N log N)`. Unsorted parts fall back to concatenate-then-sort.
    /// Either way the sort key is a total order, so the merge is
    /// associative *and* fragment-order-invariant — any grouping of
    /// shards serializes to identical bytes. Property-tested in
    /// `crates/metering/tests/shard_merge.rs`.
    pub fn merge_sorted(parts: impl IntoIterator<Item = Ledger>) -> Ledger {
        let mut parts: Vec<Ledger> = parts.into_iter().collect();
        if parts.len() == 1 {
            // detlint::allow(DL008): parts.len() == 1 checked just above
            let mut only = parts.pop().expect("one part");
            only.sort_canonical();
            return only;
        }
        if parts.iter().all(Ledger::is_canonically_sorted) {
            return Ledger {
                records: kway_merge(parts.into_iter().map(|p| p.records).collect()),
            };
        }
        let mut merged = Ledger::new();
        for part in parts {
            merged.records.extend(part.records);
        }
        merged.sort_canonical();
        merged
    }

    /// Total instance-hours, optionally restricted to one flavor.
    pub fn instance_hours(&self, flavor: Option<FlavorId>) -> f64 {
        self.records
            .iter()
            .filter(|r| match (r.kind, flavor) {
                (UsageKind::Instance { flavor: f, .. }, Some(want)) => f == want,
                (UsageKind::Instance { .. }, None) => true,
                _ => false,
            })
            .map(UsageRecord::hours)
            .sum()
    }

    /// Total floating-IP hours.
    pub fn fip_hours(&self) -> f64 {
        self.records
            .iter()
            .filter(|r| r.kind == UsageKind::FloatingIp)
            .map(UsageRecord::hours)
            .sum()
    }

    /// Total block-storage GB (peak existing at any time, by sweep).
    pub fn peak_block_gb(&self) -> u64 {
        let deltas: Vec<(SimTime, i64)> = self
            .records
            .iter()
            .filter_map(|r| match r.kind {
                UsageKind::Volume { size_gb } => {
                    Some([(r.start, size_gb as i64), (r.end, -(size_gb as i64))])
                }
                _ => None,
            })
            .flatten()
            .collect();
        sweep_peak(deltas) as u64
    }

    /// Total object-storage GB across buckets (final stored size).
    pub fn object_gb(&self) -> f64 {
        self.records
            .iter()
            .filter_map(|r| match r.kind {
                UsageKind::ObjectStorage { gb } => Some(gb),
                _ => None,
            })
            .sum()
    }

    /// Instance-hours grouped by flavor, in [`FlavorId::ALL`] order.
    pub fn hours_by_flavor(&self) -> Vec<(FlavorId, f64)> {
        let mut map: BTreeMap<FlavorId, f64> = BTreeMap::new();
        for r in &self.records {
            if let UsageKind::Instance { flavor, .. } = r.kind {
                *map.entry(flavor).or_insert(0.0) += r.hours();
            }
        }
        FlavorId::ALL
            .into_iter()
            .filter_map(|f| map.get(&f).map(|&h| (f, h)))
            .collect()
    }

    /// Peak simultaneous active instances (sweep-line over records).
    ///
    /// The capacity-planning example compares this against the §4 quota of
    /// 600 simultaneous instances.
    pub fn peak_concurrent_instances(&self) -> u64 {
        let deltas: Vec<(SimTime, i64)> = self
            .records
            .iter()
            .filter(|r| matches!(r.kind, UsageKind::Instance { .. }))
            .flat_map(|r| [(r.start, 1i64), (r.end, -1i64)])
            .collect();
        sweep_peak(deltas) as u64
    }

    /// Peak simultaneous vCPU cores (for quota validation).
    pub fn peak_concurrent_cores(&self) -> u64 {
        let deltas: Vec<(SimTime, i64)> = self
            .records
            .iter()
            .filter_map(|r| match r.kind {
                UsageKind::Instance { flavor, .. } => {
                    let c = flavor.spec().vcpus as i64;
                    Some([(r.start, c), (r.end, -c)])
                }
                _ => None,
            })
            .flatten()
            .collect();
        sweep_peak(deltas) as u64
    }

    /// Records whose name starts with `prefix` (assignment attribution).
    pub fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a UsageRecord> {
        self.records
            .iter()
            .filter(move |r| r.name.starts_with(prefix))
    }
}

/// The canonical total-order key: `(name, start, end, kind)`.
fn record_key(r: &UsageRecord) -> (&str, SimTime, SimTime, (u8, u64, u64)) {
    (r.name.as_str(), r.start, r.end, r.kind.sort_key())
}

/// Whether part `a`'s next record merges before part `b`'s; ties break on
/// part index, which together with FIFO order within each (stably
/// pre-sorted) part reproduces concat + stable sort exactly.
fn part_less(parts: &[Vec<UsageRecord>], a: usize, b: usize) -> bool {
    // detlint::allow(DL008): heap entries are indices of non-empty parts by construction
    let ra = parts[a].last().expect("heap part is nonempty");
    // detlint::allow(DL008): heap entries are indices of non-empty parts by construction
    let rb = parts[b].last().expect("heap part is nonempty");
    (record_key(ra), a) < (record_key(rb), b)
}

/// Restore the min-heap property at `i` (children `2i+1`, `2i+2`).
fn sift_down(heap: &mut [usize], parts: &[Vec<UsageRecord>], mut i: usize) {
    loop {
        let l = 2 * i + 1;
        if l >= heap.len() {
            break;
        }
        let r = l + 1;
        let mut m = l;
        // detlint::allow(DL008): l and r are bounds-checked heap positions
        if r < heap.len() && part_less(parts, heap[r], heap[l]) {
            m = r;
        }
        // detlint::allow(DL008): m and i are bounds-checked heap positions
        if part_less(parts, heap[m], heap[i]) {
            heap.swap(m, i);
            i = m;
        } else {
            break;
        }
    }
}

/// Stable k-way merge of canonically-sorted record runs: `O(N log k)`
/// comparisons via a small index heap (replacement selection); each part
/// is reversed once so its next record pops from the tail in `O(1)`.
fn kway_merge(mut parts: Vec<Vec<UsageRecord>>) -> Vec<UsageRecord> {
    let total: usize = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for p in &mut parts {
        p.reverse();
    }
    // detlint::allow(DL008): i ranges over 0..parts.len()
    let mut heap: Vec<usize> = (0..parts.len()).filter(|&i| !parts[i].is_empty()).collect();
    for i in (0..heap.len() / 2).rev() {
        sift_down(&mut heap, &parts, i);
    }
    while let Some(&top) = heap.first() {
        // detlint::allow(DL008): heap entries index non-empty parts; emptied entries are evicted below
        out.push(parts[top].pop().expect("heap entries have records"));
        // detlint::allow(DL008): `top` is a heap entry, an index into parts
        if parts[top].is_empty() {
            // detlint::allow(DL008): the while-let head guarantees the heap is non-empty
            let tail = heap.pop().expect("heap is nonempty");
            if heap.is_empty() {
                break;
            }
            // detlint::allow(DL008): heap proved non-empty just above
            heap[0] = tail;
        }
        sift_down(&mut heap, &parts, 0);
    }
    out
}

/// A pull source of canonically-sorted usage records, the streaming
/// counterpart of one `kway_merge` part. Implementations are typically
/// on-disk spill runs; errors (I/O, corruption) surface through the
/// associated error type rather than panicking.
pub trait RecordSource {
    /// Error produced by a failed pull.
    type Error;

    /// The next record, `None` when the source is exhausted. Records
    /// must come out in canonical order ([`Ledger::sort_canonical`]);
    /// the merge's output order is only guaranteed for sorted sources.
    fn next_record(&mut self) -> Result<Option<UsageRecord>, Self::Error>;
}

/// Incremental k-way merge over [`RecordSource`]s: the streaming
/// extension of [`Ledger::merge_sorted`]'s in-memory `kway_merge`.
///
/// Holds exactly one buffered head record per source (plus whatever the
/// sources themselves buffer), so peak memory is O(k), independent of
/// the total record count. Ties break on source index — identical to
/// the in-memory merge's part-order tie-break — so for sources that are
/// the pre-sorted shard ledgers in shard order, the merged stream is
/// byte-identical to concatenating and stably sorting in memory.
pub struct StreamMerge<S: RecordSource> {
    sources: Vec<S>,
    /// Buffered next record per source (`None` once exhausted).
    heads: Vec<Option<UsageRecord>>,
    /// Index min-heap over sources with a live head.
    heap: Vec<usize>,
}

/// Whether source `a`'s buffered head merges before source `b`'s; ties
/// break on source index (see [`StreamMerge`]).
fn head_less(heads: &[Option<UsageRecord>], a: usize, b: usize) -> bool {
    let (ra, rb) = (
        heads.get(a).and_then(Option::as_ref),
        heads.get(b).and_then(Option::as_ref),
    );
    // detlint::allow(DL008): heap entries are indices of sources with live heads by construction
    let ra = ra.expect("heap source has a head");
    // detlint::allow(DL008): heap entries are indices of sources with live heads by construction
    let rb = rb.expect("heap source has a head");
    (record_key(ra), a) < (record_key(rb), b)
}

/// Restore the min-heap property at `i` over the buffered heads.
fn sift_down_heads(heap: &mut [usize], heads: &[Option<UsageRecord>], mut i: usize) {
    loop {
        let l = 2 * i + 1;
        if l >= heap.len() {
            break;
        }
        let r = l + 1;
        let mut m = l;
        // detlint::allow(DL008): l and r are bounds-checked heap positions
        if r < heap.len() && head_less(heads, heap[r], heap[l]) {
            m = r;
        }
        // detlint::allow(DL008): m and i are bounds-checked heap positions
        if head_less(heads, heap[m], heap[i]) {
            heap.swap(m, i);
            i = m;
        } else {
            break;
        }
    }
}

impl<S: RecordSource> StreamMerge<S> {
    /// Prime one head from every source and build the heap. A source
    /// that errors on its first pull fails construction.
    pub fn new(mut sources: Vec<S>) -> Result<StreamMerge<S>, S::Error> {
        let mut heads = Vec::with_capacity(sources.len());
        for s in &mut sources {
            heads.push(s.next_record()?);
        }
        let mut heap: Vec<usize> = (0..heads.len())
            .filter(|&i| heads.get(i).is_some_and(Option::is_some))
            .collect();
        for i in (0..heap.len() / 2).rev() {
            sift_down_heads(&mut heap, &heads, i);
        }
        Ok(StreamMerge {
            sources,
            heads,
            heap,
        })
    }

    /// Pop the globally-next record, refilling the winning source's
    /// head. `None` once every source is exhausted.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<UsageRecord>, S::Error> {
        let Some(&top) = self.heap.first() else {
            return Ok(None);
        };
        let out = self.heads.get_mut(top).and_then(Option::take);
        // detlint::allow(DL008): heap entries index sources with live heads; exhausted entries are evicted below
        let out = out.expect("heap source has a head");
        // detlint::allow(DL008): `top` is a heap entry, an index into sources
        let refill = match self.sources.get_mut(top) {
            Some(s) => s.next_record()?,
            None => None,
        };
        if let Some(slot) = self.heads.get_mut(top) {
            *slot = refill;
        }
        if self.heads.get(top).is_some_and(Option::is_none) {
            // detlint::allow(DL008): the heap head read above guarantees the heap is non-empty
            let tail = self.heap.pop().expect("heap is nonempty");
            if self.heap.is_empty() {
                return Ok(Some(out));
            }
            if let Some(root) = self.heap.first_mut() {
                *root = tail;
            }
        }
        sift_down_heads(&mut self.heap, &self.heads, 0);
        Ok(Some(out))
    }
}

/// Max running sum of time-ordered deltas; ends sort before starts at the
/// same instant (an instance replaced at time t does not double-count).
fn sweep_peak(mut deltas: Vec<(SimTime, i64)>) -> i64 {
    deltas.sort_by_key(|&(t, d)| (t, d));
    let mut cur = 0i64;
    let mut peak = 0i64;
    for (_, d) in deltas {
        cur += d;
        peak = peak.max(cur);
    }
    peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use opml_simkernel::SimDuration;

    fn t(h: u64) -> SimTime {
        SimTime(h * 60)
    }

    fn inst(name: &str, flavor: FlavorId, s: u64, e: u64) -> UsageRecord {
        UsageRecord {
            name: name.into(),
            kind: UsageKind::Instance {
                flavor,
                auto_terminated: false,
            },
            start: t(s),
            end: t(e),
        }
    }

    #[test]
    fn hours_sums() {
        let mut l = Ledger::new();
        l.push(inst("lab1-a", FlavorId::M1Small, 0, 2));
        l.push(inst("lab1-b", FlavorId::M1Small, 1, 4));
        l.push(inst("lab2-a", FlavorId::M1Medium, 0, 10));
        assert_eq!(l.instance_hours(Some(FlavorId::M1Small)), 5.0);
        assert_eq!(l.instance_hours(None), 15.0);
        assert_eq!(l.instance_hours(Some(FlavorId::M1Large)), 0.0);
    }

    #[test]
    fn fip_hours_separate_from_instances() {
        let mut l = Ledger::new();
        l.push(inst("lab1-a", FlavorId::M1Small, 0, 2));
        l.push(UsageRecord {
            name: "lab1-a".into(),
            kind: UsageKind::FloatingIp,
            start: t(0),
            end: t(3),
        });
        assert_eq!(l.fip_hours(), 3.0);
        assert_eq!(l.instance_hours(None), 2.0);
    }

    #[test]
    fn peak_concurrency_sweep() {
        let mut l = Ledger::new();
        l.push(inst("a", FlavorId::M1Medium, 0, 4));
        l.push(inst("b", FlavorId::M1Medium, 1, 3));
        l.push(inst("c", FlavorId::M1Medium, 2, 6));
        l.push(inst("d", FlavorId::M1Medium, 4, 5)); // starts when a ends
        assert_eq!(l.peak_concurrent_instances(), 3);
        assert_eq!(l.peak_concurrent_cores(), 6); // 3 × 2 vCPU
    }

    #[test]
    fn adjacent_intervals_do_not_double_count() {
        let mut l = Ledger::new();
        l.push(inst("a", FlavorId::M1Small, 0, 2));
        l.push(inst("b", FlavorId::M1Small, 2, 4));
        assert_eq!(l.peak_concurrent_instances(), 1);
    }

    #[test]
    fn peak_block_gb() {
        let mut l = Ledger::new();
        l.push(UsageRecord {
            name: "v1".into(),
            kind: UsageKind::Volume { size_gb: 100 },
            start: t(0),
            end: t(10),
        });
        l.push(UsageRecord {
            name: "v2".into(),
            kind: UsageKind::Volume { size_gb: 50 },
            start: t(5),
            end: t(20),
        });
        assert_eq!(l.peak_block_gb(), 150);
    }

    #[test]
    fn hours_by_flavor_stable_order() {
        let mut l = Ledger::new();
        l.push(inst("x", FlavorId::GpuV100, 0, 1));
        l.push(inst("y", FlavorId::M1Small, 0, 1));
        let by = l.hours_by_flavor();
        // FlavorId::ALL order: m1.small comes before gpu_v100.
        assert_eq!(by[0].0, FlavorId::M1Small);
        assert_eq!(by[1].0, FlavorId::GpuV100);
    }

    #[test]
    fn prefix_filter() {
        let mut l = Ledger::new();
        l.push(inst("lab2-alice", FlavorId::M1Medium, 0, 1));
        l.push(inst("lab2-bob", FlavorId::M1Medium, 0, 1));
        l.push(inst("lab3-alice", FlavorId::M1Medium, 0, 1));
        assert_eq!(l.with_prefix("lab2-").count(), 2);
        assert_eq!(l.with_prefix("lab3-").count(), 1);
        assert_eq!(l.with_prefix("proj-").count(), 0);
    }

    #[test]
    fn object_gb_sums_buckets() {
        let mut l = Ledger::new();
        for gb in [1.2, 0.3] {
            l.push(UsageRecord {
                name: "bucket".into(),
                kind: UsageKind::ObjectStorage { gb },
                start: t(0),
                end: t(1),
            });
        }
        assert!((l.object_gb() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn merge_sorted_is_order_invariant() {
        let mut a = Ledger::new();
        a.push(inst("lab2-b", FlavorId::M1Small, 3, 5));
        a.push(inst("lab1-a", FlavorId::M1Small, 0, 1));
        let mut b = Ledger::new();
        b.push(UsageRecord {
            name: "lab1-a".into(),
            kind: UsageKind::FloatingIp,
            start: t(0),
            end: t(1),
        });
        b.push(inst("lab1-a", FlavorId::M1Medium, 0, 1));
        let mut c = Ledger::new();
        c.push(inst("lab1-a", FlavorId::M1Small, 0, 1)); // duplicate of a's
        let merge = |parts: Vec<&Ledger>| {
            let m = Ledger::merge_sorted(parts.into_iter().cloned());
            serde_json::to_string(m.records()).expect("serialize")
        };
        let abc = merge(vec![&a, &b, &c]);
        assert_eq!(abc, merge(vec![&c, &a, &b]), "order must not matter");
        // Associativity: ((a ∪ b) ∪ c) == (a ∪ (b ∪ c)).
        let left = Ledger::merge_sorted([Ledger::merge_sorted([a.clone(), b.clone()]), c.clone()]);
        let right = Ledger::merge_sorted([a.clone(), Ledger::merge_sorted([b.clone(), c.clone()])]);
        assert_eq!(
            serde_json::to_string(left.records()).expect("serialize"),
            serde_json::to_string(right.records()).expect("serialize"),
        );
        // Canonical order: name first, then start/end, then kind rank
        // (Instance before FloatingIp at the same window).
        let m = Ledger::merge_sorted([a, b, c]);
        let names: Vec<&str> = m.records().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["lab1-a", "lab1-a", "lab1-a", "lab1-a", "lab2-b"]
        );
        assert!(matches!(m.records()[0].kind, UsageKind::Instance { .. }));
        assert_eq!(m.records()[3].kind, UsageKind::FloatingIp);
    }

    #[test]
    fn kway_merge_matches_concat_then_sort() {
        // Deterministic pseudo-random fragments with heavy key collisions
        // (shared names/windows) to exercise the stability tie-breaks.
        let mut state = 0x9e37_79b9_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let flavors = [FlavorId::M1Small, FlavorId::M1Medium, FlavorId::GpuV100];
        let mut parts: Vec<Ledger> = Vec::new();
        for _ in 0..7 {
            let mut l = Ledger::new();
            for _ in 0..50 {
                let s = next() % 40;
                let e = s + 1 + next() % 10;
                l.push(inst(
                    &format!("lab{}-s{:02}", next() % 3, next() % 8),
                    flavors[(next() % 3) as usize],
                    s,
                    e,
                ));
            }
            parts.push(l);
        }
        // Reference: the old path — concatenate, then stable sort.
        let mut reference = Ledger::new();
        for p in &parts {
            reference.records.extend(p.records.iter().cloned());
        }
        reference.sort_canonical();
        let json = |l: &Ledger| serde_json::to_string(l.records()).expect("serialize");
        // Unsorted parts take the fallback, byte-identically.
        assert_eq!(json(&Ledger::merge_sorted(parts.clone())), json(&reference));
        // Pre-sorted parts take the k-way merge, byte-identically.
        let mut sorted_parts = parts.clone();
        for p in &mut sorted_parts {
            p.sort_canonical();
            assert!(p.is_canonically_sorted());
        }
        assert_eq!(json(&Ledger::merge_sorted(sorted_parts)), json(&reference));
        // Mixed sorted/unsorted parts still agree (fallback path).
        let mut mixed = parts;
        mixed[0].sort_canonical();
        assert_eq!(json(&Ledger::merge_sorted(mixed)), json(&reference));
    }

    /// Infallible in-memory source for exercising [`StreamMerge`].
    struct VecSource(std::vec::IntoIter<UsageRecord>);

    impl RecordSource for VecSource {
        type Error = std::convert::Infallible;

        fn next_record(&mut self) -> Result<Option<UsageRecord>, Self::Error> {
            Ok(self.0.next())
        }
    }

    fn all_kinds_corpus() -> Vec<UsageRecord> {
        let mut records = vec![
            inst("lab1-a", FlavorId::M1Small, 0, 2),
            UsageRecord {
                name: "lab1-a".into(),
                kind: UsageKind::Instance {
                    flavor: FlavorId::ComputeCascadeLake,
                    auto_terminated: true,
                },
                start: t(0),
                end: t(5),
            },
            UsageRecord {
                name: "lab1-a".into(),
                kind: UsageKind::FloatingIp,
                start: t(0),
                end: t(3),
            },
            UsageRecord {
                name: "v1".into(),
                kind: UsageKind::Volume { size_gb: 100 },
                start: t(1),
                end: t(9),
            },
            UsageRecord {
                name: "bucket".into(),
                kind: UsageKind::ObjectStorage { gb: 1.25 },
                start: t(2),
                end: t(4),
            },
        ];
        for f in FlavorId::ALL {
            records.push(inst("sweep", f, 1, 2));
        }
        records
    }

    #[test]
    fn encode_decode_round_trips_every_kind() {
        let corpus = all_kinds_corpus();
        let mut buf = Vec::new();
        for r in &corpus {
            r.encode_into(&mut buf);
        }
        let mut reader = buf.as_slice();
        for want in &corpus {
            let got = UsageRecord::decode_from(&mut reader).expect("decode");
            // Byte-identity is the contract, not just field equality.
            assert_eq!(
                serde_json::to_string(&got).expect("serialize"),
                serde_json::to_string(want).expect("serialize"),
            );
        }
        assert!(reader.is_empty());
        assert!(UsageRecord::decode_from(&mut reader).is_err(), "EOF errors");
    }

    #[test]
    fn flavor_discriminants_match_all_order() {
        // The spill encoding writes `flavor as u8` and decodes via
        // `FlavorId::ALL[i]`; this pins the two orderings together.
        for (i, f) in FlavorId::ALL.into_iter().enumerate() {
            assert_eq!(f as usize, i, "{f:?} discriminant drifted from ALL order");
        }
    }

    #[test]
    fn stream_merge_matches_kway_merge() {
        // Same adversarial fragments as `kway_merge_matches_concat_then_sort`.
        let mut state = 0x5ee3_1aa7_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let flavors = [FlavorId::M1Small, FlavorId::M1Medium, FlavorId::GpuV100];
        let mut parts: Vec<Ledger> = Vec::new();
        for _ in 0..6 {
            let mut l = Ledger::new();
            for _ in 0..40 {
                let s = next() % 30;
                let e = s + 1 + next() % 8;
                l.push(inst(
                    &format!("lab{}-s{:02}", next() % 3, next() % 6),
                    flavors[(next() % 3) as usize],
                    s,
                    e,
                ));
            }
            l.sort_canonical();
            parts.push(l);
        }
        parts.push(Ledger::new()); // an empty source must be harmless
        let reference = Ledger::merge_sorted(parts.clone());
        let sources: Vec<VecSource> = parts
            .into_iter()
            .map(|p| VecSource(p.records.into_iter()))
            .collect();
        let mut merge = StreamMerge::new(sources).expect("infallible");
        let mut streamed = Ledger::new();
        while let Some(rec) = merge.next().expect("infallible") {
            streamed.push(rec);
        }
        assert_eq!(
            serde_json::to_string(streamed.records()).expect("serialize"),
            serde_json::to_string(reference.records()).expect("serialize"),
        );
    }

    #[test]
    fn is_canonically_sorted_detects_order() {
        let mut l = Ledger::new();
        assert!(l.is_canonically_sorted());
        l.push(inst("b", FlavorId::M1Small, 0, 1));
        assert!(l.is_canonically_sorted());
        l.push(inst("a", FlavorId::M1Small, 0, 1));
        assert!(!l.is_canonically_sorted());
        l.sort_canonical();
        assert!(l.is_canonically_sorted());
    }

    #[test]
    fn merge_ledgers() {
        let mut a = Ledger::new();
        a.push(inst("a", FlavorId::M1Small, 0, 1));
        let mut b = Ledger::new();
        b.push(inst("b", FlavorId::M1Small, 0, 2));
        a.extend(b);
        assert_eq!(a.records().len(), 2);
        assert_eq!(a.instance_hours(None), 3.0);
        let _ = SimDuration::ZERO; // silence unused import in some cfgs
    }
}
