//! Project quotas and their enforcement.
//!
//! §4 of the paper lists the quota increase requested for the class project
//! on KVM\@TACC; [`Quota::paper_course`] encodes it. Quotas are enforced at
//! provision time and released at deletion, exactly like OpenStack's
//! `nova`/`neutron`/`cinder` quota engines.

use crate::error::CloudError;
use serde::{Deserialize, Serialize};

/// Limits for one project.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quota {
    /// Maximum simultaneous VM instances.
    pub instances: u64,
    /// Maximum simultaneous vCPU cores.
    pub cores: u64,
    /// Maximum simultaneous RAM in GB.
    pub ram_gb: u64,
    /// Maximum simultaneous floating IPs.
    pub floating_ips: u64,
    /// Maximum simultaneous routers.
    pub routers: u64,
    /// Maximum simultaneous private networks (u64::MAX = unlimited).
    pub networks: u64,
    /// Maximum simultaneous security groups.
    pub security_groups: u64,
    /// Maximum simultaneous block-storage volumes.
    pub volumes: u64,
    /// Maximum total block storage in GB.
    pub block_storage_gb: u64,
}

impl Quota {
    /// The quota the course negotiated for KVM\@TACC (§4): 600 instances,
    /// 1,200 cores, 2.5 TB RAM; unlimited networks, 200 routers, 300
    /// floating IPs, 100 security groups; 200 volumes, 10 TB block storage.
    pub fn paper_course() -> Quota {
        Quota {
            instances: 600,
            cores: 1_200,
            ram_gb: 2_560,
            floating_ips: 300,
            routers: 200,
            networks: u64::MAX,
            security_groups: 100,
            volumes: 200,
            block_storage_gb: 10_240,
        }
    }

    /// The default per-project quota before the increase (representative
    /// Chameleon defaults) — used by the capacity-planning example to show
    /// why the increase was needed.
    pub fn chameleon_default() -> Quota {
        Quota {
            instances: 10,
            cores: 20,
            ram_gb: 50,
            floating_ips: 2,
            routers: 1,
            networks: 1,
            security_groups: 10,
            volumes: 10,
            block_storage_gb: 1_000,
        }
    }

    /// An effectively unlimited quota (for unit tests of other subsystems).
    pub fn unlimited() -> Quota {
        Quota {
            instances: u64::MAX,
            cores: u64::MAX,
            ram_gb: u64::MAX,
            floating_ips: u64::MAX,
            routers: u64::MAX,
            networks: u64::MAX,
            security_groups: u64::MAX,
            volumes: u64::MAX,
            block_storage_gb: u64::MAX,
        }
    }
}

/// Current consumption against a [`Quota`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuotaUsage {
    /// Active VM instances.
    pub instances: u64,
    /// vCPUs of active VM instances.
    pub cores: u64,
    /// RAM (GB) of active VM instances.
    pub ram_gb: u64,
    /// Allocated floating IPs.
    pub floating_ips: u64,
    /// Active routers.
    pub routers: u64,
    /// Active private networks.
    pub networks: u64,
    /// Active security groups.
    pub security_groups: u64,
    /// Existing volumes.
    pub volumes: u64,
    /// Total GB across existing volumes.
    pub block_storage_gb: u64,
}

impl QuotaUsage {
    fn check_one(
        current: u64,
        delta: u64,
        limit: u64,
        resource: &'static str,
    ) -> Result<(), CloudError> {
        let requested = current.saturating_add(delta);
        if requested > limit {
            Err(CloudError::QuotaExceeded {
                resource,
                limit,
                requested,
            })
        } else {
            Ok(())
        }
    }

    /// Check that a VM of the given shape *would* fit without consuming
    /// anything — the read-only headroom probe service mode exposes as
    /// its quota-check op.
    pub fn can_take_instance(
        &self,
        quota: &Quota,
        vcpus: u64,
        ram_gb: u64,
    ) -> Result<(), CloudError> {
        Self::check_one(self.instances, 1, quota.instances, "instances")?;
        Self::check_one(self.cores, vcpus, quota.cores, "cores")?;
        Self::check_one(self.ram_gb, ram_gb, quota.ram_gb, "ram_gb")
    }

    /// Check that a VM of the given shape fits; on success, consume it.
    pub fn take_instance(
        &mut self,
        quota: &Quota,
        vcpus: u64,
        ram_gb: u64,
    ) -> Result<(), CloudError> {
        Self::check_one(self.instances, 1, quota.instances, "instances")?;
        Self::check_one(self.cores, vcpus, quota.cores, "cores")?;
        Self::check_one(self.ram_gb, ram_gb, quota.ram_gb, "ram_gb")?;
        self.instances += 1;
        self.cores += vcpus;
        self.ram_gb += ram_gb;
        Ok(())
    }

    /// Release a VM's resources.
    pub fn release_instance(&mut self, vcpus: u64, ram_gb: u64) {
        self.instances = self.instances.saturating_sub(1);
        self.cores = self.cores.saturating_sub(vcpus);
        self.ram_gb = self.ram_gb.saturating_sub(ram_gb);
    }

    /// Allocate one floating IP.
    pub fn take_fip(&mut self, quota: &Quota) -> Result<(), CloudError> {
        Self::check_one(self.floating_ips, 1, quota.floating_ips, "floating_ips")?;
        self.floating_ips += 1;
        Ok(())
    }

    /// Release one floating IP.
    pub fn release_fip(&mut self) {
        self.floating_ips = self.floating_ips.saturating_sub(1);
    }

    /// Allocate one router.
    pub fn take_router(&mut self, quota: &Quota) -> Result<(), CloudError> {
        Self::check_one(self.routers, 1, quota.routers, "routers")?;
        self.routers += 1;
        Ok(())
    }

    /// Release one router.
    pub fn release_router(&mut self) {
        self.routers = self.routers.saturating_sub(1);
    }

    /// Allocate one private network.
    pub fn take_network(&mut self, quota: &Quota) -> Result<(), CloudError> {
        Self::check_one(self.networks, 1, quota.networks, "networks")?;
        self.networks += 1;
        Ok(())
    }

    /// Release one private network.
    pub fn release_network(&mut self) {
        self.networks = self.networks.saturating_sub(1);
    }

    /// Create a volume of `gb`.
    pub fn take_volume(&mut self, quota: &Quota, gb: u64) -> Result<(), CloudError> {
        Self::check_one(self.volumes, 1, quota.volumes, "volumes")?;
        Self::check_one(
            self.block_storage_gb,
            gb,
            quota.block_storage_gb,
            "block_storage_gb",
        )?;
        self.volumes += 1;
        self.block_storage_gb += gb;
        Ok(())
    }

    /// Delete a volume of `gb`.
    pub fn release_volume(&mut self, gb: u64) {
        self.volumes = self.volumes.saturating_sub(1);
        self.block_storage_gb = self.block_storage_gb.saturating_sub(gb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_quota_enforced() {
        let quota = Quota {
            instances: 2,
            cores: 100,
            ram_gb: 100,
            ..Quota::unlimited()
        };
        let mut u = QuotaUsage::default();
        u.take_instance(&quota, 2, 4).unwrap();
        u.take_instance(&quota, 2, 4).unwrap();
        let err = u.take_instance(&quota, 2, 4).unwrap_err();
        assert!(matches!(
            err,
            CloudError::QuotaExceeded {
                resource: "instances",
                ..
            }
        ));
        u.release_instance(2, 4);
        u.take_instance(&quota, 2, 4).unwrap();
    }

    #[test]
    fn core_quota_enforced_independently() {
        let quota = Quota {
            instances: 100,
            cores: 8,
            ram_gb: 1000,
            ..Quota::unlimited()
        };
        let mut u = QuotaUsage::default();
        u.take_instance(&quota, 6, 1).unwrap();
        let err = u.take_instance(&quota, 4, 1).unwrap_err();
        assert!(matches!(
            err,
            CloudError::QuotaExceeded {
                resource: "cores",
                limit: 8,
                requested: 10
            }
        ));
        // A smaller request still fits.
        u.take_instance(&quota, 2, 1).unwrap();
    }

    #[test]
    fn can_take_is_read_only() {
        let quota = Quota {
            instances: 1,
            cores: 4,
            ram_gb: 8,
            ..Quota::unlimited()
        };
        let mut u = QuotaUsage::default();
        assert!(u.can_take_instance(&quota, 2, 4).is_ok());
        assert_eq!(u, QuotaUsage::default(), "probe must not consume");
        u.take_instance(&quota, 2, 4).unwrap();
        assert!(matches!(
            u.can_take_instance(&quota, 2, 4),
            Err(CloudError::QuotaExceeded {
                resource: "instances",
                ..
            })
        ));
    }

    #[test]
    fn failed_take_consumes_nothing() {
        let quota = Quota {
            instances: 10,
            cores: 4,
            ram_gb: 2,
            ..Quota::unlimited()
        };
        let mut u = QuotaUsage::default();
        // RAM check fails after instance+core checks pass — nothing consumed.
        assert!(u.take_instance(&quota, 2, 4).is_err());
        assert_eq!(u, QuotaUsage::default());
    }

    #[test]
    fn block_storage_tracks_gb() {
        let quota = Quota {
            volumes: 3,
            block_storage_gb: 100,
            ..Quota::unlimited()
        };
        let mut u = QuotaUsage::default();
        u.take_volume(&quota, 60).unwrap();
        assert!(matches!(
            u.take_volume(&quota, 50),
            Err(CloudError::QuotaExceeded {
                resource: "block_storage_gb",
                ..
            })
        ));
        u.take_volume(&quota, 40).unwrap();
        u.release_volume(60);
        assert_eq!(u.block_storage_gb, 40);
        assert_eq!(u.volumes, 1);
    }

    #[test]
    fn paper_course_quota_values() {
        let q = Quota::paper_course();
        assert_eq!(q.instances, 600);
        assert_eq!(q.cores, 1200);
        assert_eq!(q.ram_gb, 2560); // 2.5 TB
        assert_eq!(q.floating_ips, 300);
        assert_eq!(q.routers, 200);
        assert_eq!(q.block_storage_gb, 10_240); // 10 TB
    }

    #[test]
    fn release_never_underflows() {
        let mut u = QuotaUsage::default();
        u.release_instance(4, 8);
        u.release_fip();
        u.release_volume(100);
        assert_eq!(u, QuotaUsage::default());
    }
}
