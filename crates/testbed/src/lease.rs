//! Advance reservations (leases) for bare-metal and edge resources.
//!
//! §4 of the paper: course staff reserved specific bare-metal GPU nodes for
//! week-long blocks aligned with the course schedule; within a block,
//! students reserved short 2–3-hour slots without contending with other
//! testbed users. At the end of a reservation the instance is **terminated
//! automatically** — which is why Fig. 1(b) shows actual ≈ expected for
//! bare-metal labs, unlike the VM labs of Fig. 1(a).
//!
//! The calendar is a per-flavor interval structure: a lease for `count`
//! nodes of a flavor over `[start, end)` is admitted iff, at every instant
//! of the window, the sum of overlapping leases plus `count` does not
//! exceed the flavor's node capacity.

use crate::error::CloudError;
use crate::flavor::FlavorId;
use opml_simkernel::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Opaque lease identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LeaseId(pub u64);

/// An admitted reservation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lease {
    /// Identifier.
    pub id: LeaseId,
    /// Reserved flavor.
    pub flavor: FlavorId,
    /// Number of nodes reserved.
    pub count: u32,
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive) — instances are auto-terminated here.
    pub end: SimTime,
    /// Who reserved (attribution key, same convention as instance names).
    pub owner: String,
}

impl Lease {
    /// Whether `t` falls inside the lease window.
    pub fn covers(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// Per-flavor reservation calendar with capacity admission control.
#[derive(Debug, Default)]
pub struct ReservationCalendar {
    /// Number of physical nodes per flavor.
    capacity: HashMap<FlavorId, u32>,
    /// Admitted leases per flavor (append-only; expired leases retained for
    /// the usage analysis).
    leases: HashMap<FlavorId, Vec<Lease>>,
    /// Leases revoked before their window ended, in revocation order.
    revoked: Vec<LeaseId>,
    next_id: u64,
}

impl ReservationCalendar {
    /// Empty calendar; flavors must be registered with [`set_capacity`]
    /// before they can be leased.
    ///
    /// [`set_capacity`]: ReservationCalendar::set_capacity
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or update) the number of nodes for a flavor.
    pub fn set_capacity(&mut self, flavor: FlavorId, nodes: u32) {
        self.capacity.insert(flavor, nodes);
    }

    /// Node count for a flavor (0 if unregistered).
    pub fn capacity(&self, flavor: FlavorId) -> u32 {
        self.capacity.get(&flavor).copied().unwrap_or(0)
    }

    /// Peak number of nodes of `flavor` already reserved at any instant of
    /// `[start, end)`.
    pub fn peak_reserved(&self, flavor: FlavorId, start: SimTime, end: SimTime) -> u32 {
        let Some(leases) = self.leases.get(&flavor) else {
            return 0;
        };
        // Sweep over the boundary points of overlapping leases.
        let mut points: Vec<SimTime> = vec![start];
        for l in leases {
            if l.end > start && l.start < end {
                points.push(l.start.max(start));
            }
        }
        points
            .iter()
            .map(|&p| {
                leases
                    .iter()
                    .filter(|l| l.start <= p && p < l.end)
                    .map(|l| l.count)
                    .sum()
            })
            .max()
            .unwrap_or(0)
    }

    /// Try to admit a reservation; returns the lease on success.
    pub fn reserve(
        &mut self,
        flavor: FlavorId,
        count: u32,
        start: SimTime,
        end: SimTime,
        owner: &str,
    ) -> Result<Lease, CloudError> {
        if end <= start {
            return Err(CloudError::InvalidLeaseWindow);
        }
        let cap = self.capacity(flavor);
        if count > cap {
            return Err(CloudError::NoCapacity {
                flavor,
                capacity: cap,
            });
        }
        if self.peak_reserved(flavor, start, end) + count > cap {
            return Err(CloudError::NoCapacity {
                flavor,
                capacity: cap,
            });
        }
        let id = LeaseId(self.next_id);
        self.next_id += 1;
        let lease = Lease {
            id,
            flavor,
            count,
            start,
            end,
            owner: owner.to_string(),
        };
        self.leases.entry(flavor).or_default().push(lease.clone());
        Ok(lease)
    }

    /// Find the earliest admissible start ≥ `earliest` for a window of the
    /// given length, scanning existing lease boundaries. Returns the start
    /// time, or `None` if `count` exceeds capacity outright.
    ///
    /// This models the student workflow of "grab the next free 3-hour GPU
    /// slot this week".
    pub fn earliest_slot(
        &self,
        flavor: FlavorId,
        count: u32,
        length: opml_simkernel::SimDuration,
        earliest: SimTime,
    ) -> Option<SimTime> {
        let cap = self.capacity(flavor);
        if count > cap {
            return None;
        }
        // Candidate starts: `earliest` and every lease end after it.
        let mut candidates = vec![earliest];
        if let Some(leases) = self.leases.get(&flavor) {
            for l in leases {
                if l.end > earliest {
                    candidates.push(l.end);
                }
            }
        }
        candidates.sort_unstable();
        candidates
            .into_iter()
            .find(|&s| self.peak_reserved(flavor, s, s + length) + count <= cap)
    }

    /// Revoke an admitted lease at `at`: its window is truncated (freeing
    /// the nodes for rebooking) and further provisioning against it is
    /// refused with [`CloudError::LeaseRevoked`].
    pub fn revoke(&mut self, id: LeaseId, at: SimTime) -> Result<(), CloudError> {
        if self.is_revoked(id) {
            return Err(CloudError::LeaseRevoked);
        }
        // detlint::allow(DL002): unique lease id, at most one match
        let lease = self
            .leases
            .values_mut()
            .flatten()
            .find(|l| l.id == id)
            .ok_or(CloudError::NoSuchLease)?;
        if lease.end <= at {
            // Already over; nothing to revoke.
            return Err(CloudError::OutsideLease);
        }
        lease.end = at.max(lease.start);
        self.revoked.push(id);
        Ok(())
    }

    /// Whether a lease has been revoked.
    pub fn is_revoked(&self, id: LeaseId) -> bool {
        self.revoked.contains(&id)
    }

    /// Look up an admitted lease.
    pub fn get(&self, id: LeaseId) -> Option<&Lease> {
        // Lease ids are unique, so `find` matches at most one element and
        // traversal order cannot change the result.
        // detlint::allow(DL002): unique lease id, at most one match
        self.leases.values().flatten().find(|l| l.id == id)
    }

    /// All leases for a flavor, in admission order.
    pub fn leases_for(&self, flavor: FlavorId) -> &[Lease] {
        self.leases
            .get(&flavor)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opml_simkernel::SimDuration;

    fn t(h: u64) -> SimTime {
        SimTime::at(0, 0, h, 0)
    }

    #[test]
    fn reserve_within_capacity() {
        let mut cal = ReservationCalendar::new();
        cal.set_capacity(FlavorId::GpuA100Pcie, 2);
        cal.reserve(FlavorId::GpuA100Pcie, 1, t(0), t(3), "a")
            .unwrap();
        cal.reserve(FlavorId::GpuA100Pcie, 1, t(1), t(4), "b")
            .unwrap();
        // Both nodes busy in [1,3): a third overlapping lease is refused.
        let err = cal
            .reserve(FlavorId::GpuA100Pcie, 1, t(2), t(5), "c")
            .unwrap_err();
        assert!(matches!(err, CloudError::NoCapacity { .. }));
        // Back-to-back is fine (end is exclusive).
        cal.reserve(FlavorId::GpuA100Pcie, 2, t(4), t(6), "d")
            .unwrap();
    }

    #[test]
    fn unregistered_flavor_has_no_capacity() {
        let mut cal = ReservationCalendar::new();
        let err = cal
            .reserve(FlavorId::GpuV100, 1, t(0), t(1), "x")
            .unwrap_err();
        assert_eq!(
            err,
            CloudError::NoCapacity {
                flavor: FlavorId::GpuV100,
                capacity: 0
            }
        );
    }

    #[test]
    fn invalid_window_rejected() {
        let mut cal = ReservationCalendar::new();
        cal.set_capacity(FlavorId::GpuV100, 1);
        assert_eq!(
            cal.reserve(FlavorId::GpuV100, 1, t(5), t(5), "x")
                .unwrap_err(),
            CloudError::InvalidLeaseWindow
        );
    }

    #[test]
    fn peak_reserved_counts_overlap() {
        let mut cal = ReservationCalendar::new();
        cal.set_capacity(FlavorId::GpuP100, 4);
        cal.reserve(FlavorId::GpuP100, 2, t(0), t(2), "a").unwrap();
        cal.reserve(FlavorId::GpuP100, 1, t(1), t(3), "b").unwrap();
        assert_eq!(cal.peak_reserved(FlavorId::GpuP100, t(0), t(4)), 3);
        assert_eq!(cal.peak_reserved(FlavorId::GpuP100, t(2), t(4)), 1);
        assert_eq!(cal.peak_reserved(FlavorId::GpuP100, t(3), t(4)), 0);
    }

    #[test]
    fn earliest_slot_skips_busy_windows() {
        let mut cal = ReservationCalendar::new();
        cal.set_capacity(FlavorId::ComputeGigaio, 1);
        cal.reserve(FlavorId::ComputeGigaio, 1, t(0), t(5), "a")
            .unwrap();
        let slot = cal
            .earliest_slot(FlavorId::ComputeGigaio, 1, SimDuration::hours(2), t(1))
            .unwrap();
        assert_eq!(slot, t(5));
        // With capacity 2 the requested time itself is free.
        cal.set_capacity(FlavorId::ComputeGigaio, 2);
        let slot2 = cal
            .earliest_slot(FlavorId::ComputeGigaio, 1, SimDuration::hours(2), t(1))
            .unwrap();
        assert_eq!(slot2, t(1));
    }

    #[test]
    fn earliest_slot_none_when_over_capacity() {
        let mut cal = ReservationCalendar::new();
        cal.set_capacity(FlavorId::ComputeLiqid, 3);
        assert!(cal
            .earliest_slot(FlavorId::ComputeLiqid, 4, SimDuration::hours(1), t(0))
            .is_none());
    }

    #[test]
    fn revoke_truncates_and_frees_capacity() {
        let mut cal = ReservationCalendar::new();
        cal.set_capacity(FlavorId::GpuV100, 1);
        let lease = cal.reserve(FlavorId::GpuV100, 1, t(0), t(10), "a").unwrap();
        // Node busy all decade: nobody else fits.
        assert!(cal.reserve(FlavorId::GpuV100, 1, t(4), t(6), "b").is_err());
        cal.revoke(lease.id, t(3)).unwrap();
        assert!(cal.is_revoked(lease.id));
        assert!(!cal.get(lease.id).unwrap().covers(t(5)));
        // Window truncated at t(3): the slot is free again.
        cal.reserve(FlavorId::GpuV100, 1, t(4), t(6), "b").unwrap();
        // Double revocation and unknown ids are typed errors.
        assert_eq!(cal.revoke(lease.id, t(4)), Err(CloudError::LeaseRevoked));
        assert_eq!(cal.revoke(LeaseId(999), t(4)), Err(CloudError::NoSuchLease));
    }

    #[test]
    fn revoke_after_end_is_refused() {
        let mut cal = ReservationCalendar::new();
        cal.set_capacity(FlavorId::GpuP100, 1);
        let lease = cal.reserve(FlavorId::GpuP100, 1, t(0), t(2), "a").unwrap();
        assert_eq!(cal.revoke(lease.id, t(2)), Err(CloudError::OutsideLease));
    }

    #[test]
    fn lease_covers() {
        let mut cal = ReservationCalendar::new();
        cal.set_capacity(FlavorId::RaspberryPi5, 7);
        let lease = cal
            .reserve(FlavorId::RaspberryPi5, 1, t(2), t(4), "edge")
            .unwrap();
        assert!(!lease.covers(t(1)));
        assert!(lease.covers(t(2)));
        assert!(lease.covers(t(3)));
        assert!(!lease.covers(t(4)));
        assert_eq!(cal.get(lease.id).unwrap().owner, "edge");
    }
}
