//! Advance reservations (leases) for bare-metal and edge resources.
//!
//! §4 of the paper: course staff reserved specific bare-metal GPU nodes for
//! week-long blocks aligned with the course schedule; within a block,
//! students reserved short 2–3-hour slots without contending with other
//! testbed users. At the end of a reservation the instance is **terminated
//! automatically** — which is why Fig. 1(b) shows actual ≈ expected for
//! bare-metal labs, unlike the VM labs of Fig. 1(a).
//!
//! The calendar is a per-flavor interval structure: a lease for `count`
//! nodes of a flavor over `[start, end)` is admitted iff, at every instant
//! of the window, the sum of overlapping leases plus `count` does not
//! exceed the flavor's node capacity.
//!
//! # Sweep-line profile
//!
//! Admission control runs on an incrementally-maintained sweep-line
//! profile per flavor ([`FlavorProfile`]): a `BTreeMap<SimTime, Seg>`
//! keyed by interval boundaries, where each entry carries the occupancy
//! *delta* at that boundary and the cached occupancy *level* on the
//! segment `[key, next_key)`. This makes
//!
//! * [`peak_reserved`] an `O(log L + W)` range-max (`W` = boundaries
//!   inside the queried window),
//! * [`reserve`] an `O(log L + W)` incremental update, and
//! * [`earliest_slot`] a forward sweep over candidate starts with an
//!   `O(log L + W)` feasibility check each,
//!
//! replacing the naive re-scan of every lease ever admitted (`O(L²)` per
//! query, `O(L³)` per placement — see [`naive`], kept as the differential
//! reference). Candidate starts for `earliest_slot` are tracked exactly
//! as the naive code enumerated them — the multiset of current lease
//! *ends* — so slot choices are byte-identical by construction, not just
//! equivalent-by-argument.
//!
//! The append-only `Vec<Lease>` archive is retained solely for the usage
//! analysis ([`leases_for`] and the Fig. 1/3 rollups read it); admission
//! decisions never scan it.
//!
//! [`peak_reserved`]: ReservationCalendar::peak_reserved
//! [`reserve`]: ReservationCalendar::reserve
//! [`earliest_slot`]: ReservationCalendar::earliest_slot
//! [`leases_for`]: ReservationCalendar::leases_for

use crate::error::CloudError;
use crate::flavor::FlavorId;
use opml_simkernel::DetHashMap;
use opml_simkernel::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound::{Excluded, Unbounded};

/// Opaque lease identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LeaseId(pub u64);

/// An admitted reservation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lease {
    /// Identifier.
    pub id: LeaseId,
    /// Reserved flavor.
    pub flavor: FlavorId,
    /// Number of nodes reserved.
    pub count: u32,
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive) — instances are auto-terminated here.
    pub end: SimTime,
    /// Who reserved (attribution key, same convention as instance names).
    pub owner: String,
}

impl Lease {
    /// Whether `t` falls inside the lease window.
    pub fn covers(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// One profile boundary: the occupancy change at this instant and the
/// cached occupancy level on the segment from here to the next boundary.
///
/// Invariants (checked by `debug_assert_invariants` in tests):
/// * `delta != 0` for every stored boundary (zero-delta boundaries are
///   merged away);
/// * `level = predecessor.level + delta` (with an implicit level of 0
///   before the first boundary).
#[derive(Debug, Clone, Copy, Default)]
struct Seg {
    delta: i64,
    level: i64,
}

/// Per-flavor sweep-line occupancy profile plus the exact candidate-start
/// multiset for [`ReservationCalendar::earliest_slot`].
#[derive(Debug, Clone, Default)]
struct FlavorProfile {
    /// Boundary → (delta, cached level on `[key, next_key)`).
    segs: BTreeMap<SimTime, Seg>,
    /// Multiset of current lease end times (refcounted). Revocation
    /// moves a lease's end here, exactly as it truncates the archived
    /// lease, so the candidate set matches the naive enumeration of
    /// `l.end` over all leases byte-for-byte.
    ends: BTreeMap<SimTime, u32>,
}

impl FlavorProfile {
    /// Occupancy on the segment containing `t` (0 before the first
    /// boundary).
    fn occupancy_at(&self, t: SimTime) -> i64 {
        self.segs
            .range(..=t)
            .next_back()
            .map(|(_, s)| s.level)
            .unwrap_or(0)
    }

    /// Max occupancy over `[start, end)`: the level at `start` plus every
    /// boundary level strictly inside the window. `O(log L + W)`.
    ///
    /// An empty window (`end <= start`) still samples the instant
    /// `start` — the naive scan always probes `start` itself — so the
    /// two implementations agree there too.
    fn peak(&self, start: SimTime, end: SimTime) -> i64 {
        let mut peak = self.occupancy_at(start);
        if start < end {
            for (_, seg) in self.segs.range((Excluded(start), Excluded(end))) {
                peak = peak.max(seg.level);
            }
        }
        peak
    }

    /// Insert a boundary at `t` (delta 0, level inherited from the
    /// containing segment) if none exists.
    fn ensure_boundary(&mut self, t: SimTime) {
        if !self.segs.contains_key(&t) {
            let level = self.occupancy_at(t);
            self.segs.insert(t, Seg { delta: 0, level });
        }
    }

    /// Add `count` (may be negative, for revocation) to the occupancy on
    /// `[start, end)`, merging away boundaries whose delta cancels to 0.
    fn add(&mut self, start: SimTime, end: SimTime, count: i64) {
        if start >= end || count == 0 {
            return;
        }
        self.ensure_boundary(start);
        self.ensure_boundary(end);
        for (_, seg) in self.segs.range_mut(start..end) {
            seg.level += count;
        }
        // detlint::allow(DL008): ensure_boundary(start) above inserted the key
        self.segs.get_mut(&start).expect("boundary at start").delta += count;
        // detlint::allow(DL008): ensure_boundary(end) above inserted the key
        self.segs.get_mut(&end).expect("boundary at end").delta -= count;
        // Only the two touched boundaries can have become redundant; a
        // zero-delta boundary's level equals its predecessor's, so
        // removing it preserves the step function.
        for t in [start, end] {
            if self.segs.get(&t).is_some_and(|s| s.delta == 0) {
                self.segs.remove(&t);
            }
        }
    }

    /// Record a lease end as an `earliest_slot` candidate.
    fn push_end(&mut self, t: SimTime) {
        *self.ends.entry(t).or_insert(0) += 1;
    }

    /// Move one end candidate from `from` to `to` (revocation truncates
    /// the lease window).
    fn move_end(&mut self, from: SimTime, to: SimTime) {
        if from == to {
            return;
        }
        if let Some(n) = self.ends.get_mut(&from) {
            *n -= 1;
            if *n == 0 {
                self.ends.remove(&from);
            }
        }
        self.push_end(to);
    }
}

/// Per-flavor reservation calendar with capacity admission control.
#[derive(Debug, Default)]
pub struct ReservationCalendar {
    /// Number of physical nodes per flavor.
    capacity: DetHashMap<FlavorId, u32>,
    /// Admitted leases per flavor (append-only; expired leases retained
    /// for the usage analysis — admission control never scans this).
    leases: DetHashMap<FlavorId, Vec<Lease>>,
    /// Sweep-line occupancy profile per flavor.
    profiles: DetHashMap<FlavorId, FlavorProfile>,
    /// Lease id → (flavor, index into `leases[flavor]`) for `O(1)`
    /// lookup; ids are unique and never reused.
    index: DetHashMap<LeaseId, (FlavorId, usize)>,
    /// Leases revoked before their window ended.
    revoked: BTreeSet<LeaseId>,
    next_id: u64,
}

impl ReservationCalendar {
    /// Empty calendar; flavors must be registered with [`set_capacity`]
    /// before they can be leased.
    ///
    /// [`set_capacity`]: ReservationCalendar::set_capacity
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or update) the number of nodes for a flavor.
    pub fn set_capacity(&mut self, flavor: FlavorId, nodes: u32) {
        self.capacity.insert(flavor, nodes);
    }

    /// Node count for a flavor (0 if unregistered).
    pub fn capacity(&self, flavor: FlavorId) -> u32 {
        self.capacity.get(&flavor).copied().unwrap_or(0)
    }

    /// Peak number of nodes of `flavor` already reserved at any instant of
    /// `[start, end)`. `O(log L + W)` on the sweep-line profile.
    pub fn peak_reserved(&self, flavor: FlavorId, start: SimTime, end: SimTime) -> u32 {
        let Some(profile) = self.profiles.get(&flavor) else {
            return 0;
        };
        // Occupancy is a sum of admitted counts, each bounded by the
        // flavor capacity at admission; it is never negative and fits u32.
        profile.peak(start, end).max(0) as u32
    }

    /// Try to admit a reservation; returns the lease on success.
    pub fn reserve(
        &mut self,
        flavor: FlavorId,
        count: u32,
        start: SimTime,
        end: SimTime,
        owner: &str,
    ) -> Result<Lease, CloudError> {
        if end <= start {
            return Err(CloudError::InvalidLeaseWindow);
        }
        let cap = self.capacity(flavor);
        if count > cap {
            return Err(CloudError::NoCapacity {
                flavor,
                capacity: cap,
            });
        }
        if self.peak_reserved(flavor, start, end) + count > cap {
            return Err(CloudError::NoCapacity {
                flavor,
                capacity: cap,
            });
        }
        let id = LeaseId(self.next_id);
        self.next_id += 1;
        let lease = Lease {
            id,
            flavor,
            count,
            start,
            end,
            owner: owner.to_string(),
        };
        let archive = self.leases.entry(flavor).or_default();
        self.index.insert(id, (flavor, archive.len()));
        archive.push(lease.clone());
        let profile = self.profiles.entry(flavor).or_default();
        profile.add(start, end, i64::from(count));
        profile.push_end(end);
        Ok(lease)
    }

    /// Find the earliest admissible start ≥ `earliest` for a window of the
    /// given length, scanning existing lease boundaries. Returns the start
    /// time, or `None` if `count` exceeds capacity outright.
    ///
    /// This models the student workflow of "grab the next free 3-hour GPU
    /// slot this week". Candidate starts are `earliest` and every current
    /// lease end after it — the same set the naive reference enumerates —
    /// swept forward with an `O(log L + W)` range-max per candidate.
    pub fn earliest_slot(
        &self,
        flavor: FlavorId,
        count: u32,
        length: opml_simkernel::SimDuration,
        earliest: SimTime,
    ) -> Option<SimTime> {
        let cap = self.capacity(flavor);
        if count > cap {
            return None;
        }
        let Some(profile) = self.profiles.get(&flavor) else {
            // No leases yet: the requested time is free.
            return Some(earliest);
        };
        let fits = |s: SimTime| profile.peak(s, s + length).max(0) as u32 + count <= cap;
        if fits(earliest) {
            return Some(earliest);
        }
        profile
            .ends
            .range((Excluded(earliest), Unbounded))
            .map(|(&t, _)| t)
            .find(|&s| fits(s))
    }

    /// Revoke an admitted lease at `at`: its window is truncated (freeing
    /// the nodes for rebooking) and further provisioning against it is
    /// refused with [`CloudError::LeaseRevoked`].
    pub fn revoke(&mut self, id: LeaseId, at: SimTime) -> Result<(), CloudError> {
        if self.is_revoked(id) {
            return Err(CloudError::LeaseRevoked);
        }
        let &(flavor, idx) = self.index.get(&id).ok_or(CloudError::NoSuchLease)?;
        // detlint::allow(DL008): self.index entries always name a live (flavor, idx) slot
        let lease = &mut self.leases.get_mut(&flavor).expect("indexed flavor")[idx];
        if lease.end <= at {
            // Already over; nothing to revoke.
            return Err(CloudError::OutsideLease);
        }
        let old_end = lease.end;
        let new_end = at.max(lease.start);
        lease.end = new_end;
        let count = i64::from(lease.count);
        let profile = self.profiles.entry(flavor).or_default();
        profile.add(new_end, old_end, -count);
        profile.move_end(old_end, new_end);
        self.revoked.insert(id);
        Ok(())
    }

    /// Whether a lease has been revoked.
    pub fn is_revoked(&self, id: LeaseId) -> bool {
        self.revoked.contains(&id)
    }

    /// Look up an admitted lease.
    pub fn get(&self, id: LeaseId) -> Option<&Lease> {
        let &(flavor, idx) = self.index.get(&id)?;
        self.leases.get(&flavor).and_then(|v| v.get(idx))
    }

    /// All leases for a flavor, in admission order.
    pub fn leases_for(&self, flavor: FlavorId) -> &[Lease] {
        self.leases
            .get(&flavor)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Check the profile invariants against the lease archive: every
    /// boundary has a nonzero delta, levels are running sums of deltas,
    /// and both deltas and end candidates reconstruct exactly from the
    /// (truncation-adjusted) archive. Test-only.
    #[cfg(test)]
    fn debug_assert_invariants(&self) {
        for (&flavor, profile) in &self.profiles {
            let mut level = 0i64;
            for (&t, seg) in &profile.segs {
                assert_ne!(seg.delta, 0, "zero-delta boundary at {t:?}");
                level += seg.delta;
                assert_eq!(seg.level, level, "stale cached level at {t:?}");
            }
            assert_eq!(level, 0, "profile does not return to 0 for {flavor:?}");
            let mut deltas: BTreeMap<SimTime, i64> = BTreeMap::new();
            let mut ends: BTreeMap<SimTime, u32> = BTreeMap::new();
            for l in self
                .leases
                .get(&flavor)
                .map(|v| v.as_slice())
                .unwrap_or(&[])
            {
                *ends.entry(l.end).or_insert(0) += 1;
                if l.start < l.end && l.count > 0 {
                    *deltas.entry(l.start).or_insert(0) += i64::from(l.count);
                    *deltas.entry(l.end).or_insert(0) -= i64::from(l.count);
                }
            }
            deltas.retain(|_, d| *d != 0);
            let got: BTreeMap<SimTime, i64> =
                profile.segs.iter().map(|(&t, s)| (t, s.delta)).collect();
            assert_eq!(got, deltas, "profile deltas diverge from archive");
            assert_eq!(profile.ends, ends, "end candidates diverge from archive");
        }
    }
}

/// The pre-sweep-line calendar, verbatim: `peak_reserved` re-scans every
/// lease ever admitted (`O(L²)` per query) and `earliest_slot` tries
/// every lease end against full rescans (`O(L³)`).
///
/// Kept as the differential reference for the sweep-line rewrite: the
/// proptest in `crates/testbed/tests/calendar_differential.rs` drives
/// arbitrary operation sequences through both and demands identical
/// decisions, errors, and slot choices, and `bench_calendar` measures
/// the speedup. Not for production use.
#[doc(hidden)]
pub mod naive {
    use super::{Lease, LeaseId};
    use crate::error::CloudError;
    use crate::flavor::FlavorId;
    use opml_simkernel::SimTime;
    use std::collections::HashMap;

    /// Naive reference calendar (see module docs).
    #[derive(Debug, Default)]
    pub struct NaiveCalendar {
        capacity: HashMap<FlavorId, u32>,
        leases: HashMap<FlavorId, Vec<Lease>>,
        revoked: Vec<LeaseId>,
        next_id: u64,
    }

    impl NaiveCalendar {
        /// Empty calendar.
        pub fn new() -> Self {
            Self::default()
        }

        /// Register (or update) the number of nodes for a flavor.
        pub fn set_capacity(&mut self, flavor: FlavorId, nodes: u32) {
            self.capacity.insert(flavor, nodes);
        }

        /// Node count for a flavor (0 if unregistered).
        pub fn capacity(&self, flavor: FlavorId) -> u32 {
            self.capacity.get(&flavor).copied().unwrap_or(0)
        }

        /// Peak reserved nodes over `[start, end)` by full re-scan.
        pub fn peak_reserved(&self, flavor: FlavorId, start: SimTime, end: SimTime) -> u32 {
            let Some(leases) = self.leases.get(&flavor) else {
                return 0;
            };
            let mut points: Vec<SimTime> = vec![start];
            for l in leases {
                if l.end > start && l.start < end {
                    points.push(l.start.max(start));
                }
            }
            points
                .iter()
                .map(|&p| {
                    leases
                        .iter()
                        .filter(|l| l.start <= p && p < l.end)
                        .map(|l| l.count)
                        .sum()
                })
                .max()
                .unwrap_or(0)
        }

        /// Try to admit a reservation.
        pub fn reserve(
            &mut self,
            flavor: FlavorId,
            count: u32,
            start: SimTime,
            end: SimTime,
            owner: &str,
        ) -> Result<Lease, CloudError> {
            if end <= start {
                return Err(CloudError::InvalidLeaseWindow);
            }
            let cap = self.capacity(flavor);
            if count > cap {
                return Err(CloudError::NoCapacity {
                    flavor,
                    capacity: cap,
                });
            }
            if self.peak_reserved(flavor, start, end) + count > cap {
                return Err(CloudError::NoCapacity {
                    flavor,
                    capacity: cap,
                });
            }
            let id = LeaseId(self.next_id);
            self.next_id += 1;
            let lease = Lease {
                id,
                flavor,
                count,
                start,
                end,
                owner: owner.to_string(),
            };
            self.leases.entry(flavor).or_default().push(lease.clone());
            Ok(lease)
        }

        /// Earliest admissible start ≥ `earliest` by candidate re-scan.
        pub fn earliest_slot(
            &self,
            flavor: FlavorId,
            count: u32,
            length: opml_simkernel::SimDuration,
            earliest: SimTime,
        ) -> Option<SimTime> {
            let cap = self.capacity(flavor);
            if count > cap {
                return None;
            }
            let mut candidates = vec![earliest];
            if let Some(leases) = self.leases.get(&flavor) {
                for l in leases {
                    if l.end > earliest {
                        candidates.push(l.end);
                    }
                }
            }
            candidates.sort_unstable();
            candidates
                .into_iter()
                .find(|&s| self.peak_reserved(flavor, s, s + length) + count <= cap)
        }

        /// Revoke an admitted lease at `at` by linear scan.
        pub fn revoke(&mut self, id: LeaseId, at: SimTime) -> Result<(), CloudError> {
            if self.is_revoked(id) {
                return Err(CloudError::LeaseRevoked);
            }
            // detlint::allow(DL002): unique lease id, at most one match
            let lease = self
                .leases
                .values_mut()
                .flatten()
                .find(|l| l.id == id)
                .ok_or(CloudError::NoSuchLease)?;
            if lease.end <= at {
                return Err(CloudError::OutsideLease);
            }
            lease.end = at.max(lease.start);
            self.revoked.push(id);
            Ok(())
        }

        /// Whether a lease has been revoked.
        pub fn is_revoked(&self, id: LeaseId) -> bool {
            self.revoked.contains(&id)
        }

        /// Look up an admitted lease by linear scan.
        pub fn get(&self, id: LeaseId) -> Option<&Lease> {
            // detlint::allow(DL002): unique lease id, at most one match
            self.leases.values().flatten().find(|l| l.id == id)
        }

        /// All leases ever admitted for `flavor`, in admission order.
        pub fn leases_for(&self, flavor: FlavorId) -> &[Lease] {
            self.leases.get(&flavor).map(Vec::as_slice).unwrap_or(&[])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opml_simkernel::SimDuration;

    fn t(h: u64) -> SimTime {
        SimTime::at(0, 0, h, 0)
    }

    #[test]
    fn reserve_within_capacity() {
        let mut cal = ReservationCalendar::new();
        cal.set_capacity(FlavorId::GpuA100Pcie, 2);
        cal.reserve(FlavorId::GpuA100Pcie, 1, t(0), t(3), "a")
            .unwrap();
        cal.reserve(FlavorId::GpuA100Pcie, 1, t(1), t(4), "b")
            .unwrap();
        // Both nodes busy in [1,3): a third overlapping lease is refused.
        let err = cal
            .reserve(FlavorId::GpuA100Pcie, 1, t(2), t(5), "c")
            .unwrap_err();
        assert!(matches!(err, CloudError::NoCapacity { .. }));
        // Back-to-back is fine (end is exclusive).
        cal.reserve(FlavorId::GpuA100Pcie, 2, t(4), t(6), "d")
            .unwrap();
        cal.debug_assert_invariants();
    }

    #[test]
    fn unregistered_flavor_has_no_capacity() {
        let mut cal = ReservationCalendar::new();
        let err = cal
            .reserve(FlavorId::GpuV100, 1, t(0), t(1), "x")
            .unwrap_err();
        assert_eq!(
            err,
            CloudError::NoCapacity {
                flavor: FlavorId::GpuV100,
                capacity: 0
            }
        );
    }

    #[test]
    fn invalid_window_rejected() {
        let mut cal = ReservationCalendar::new();
        cal.set_capacity(FlavorId::GpuV100, 1);
        assert_eq!(
            cal.reserve(FlavorId::GpuV100, 1, t(5), t(5), "x")
                .unwrap_err(),
            CloudError::InvalidLeaseWindow
        );
    }

    #[test]
    fn peak_reserved_counts_overlap() {
        let mut cal = ReservationCalendar::new();
        cal.set_capacity(FlavorId::GpuP100, 4);
        cal.reserve(FlavorId::GpuP100, 2, t(0), t(2), "a").unwrap();
        cal.reserve(FlavorId::GpuP100, 1, t(1), t(3), "b").unwrap();
        assert_eq!(cal.peak_reserved(FlavorId::GpuP100, t(0), t(4)), 3);
        assert_eq!(cal.peak_reserved(FlavorId::GpuP100, t(2), t(4)), 1);
        assert_eq!(cal.peak_reserved(FlavorId::GpuP100, t(3), t(4)), 0);
        cal.debug_assert_invariants();
    }

    #[test]
    fn earliest_slot_skips_busy_windows() {
        let mut cal = ReservationCalendar::new();
        cal.set_capacity(FlavorId::ComputeGigaio, 1);
        cal.reserve(FlavorId::ComputeGigaio, 1, t(0), t(5), "a")
            .unwrap();
        let slot = cal
            .earliest_slot(FlavorId::ComputeGigaio, 1, SimDuration::hours(2), t(1))
            .unwrap();
        assert_eq!(slot, t(5));
        // With capacity 2 the requested time itself is free.
        cal.set_capacity(FlavorId::ComputeGigaio, 2);
        let slot2 = cal
            .earliest_slot(FlavorId::ComputeGigaio, 1, SimDuration::hours(2), t(1))
            .unwrap();
        assert_eq!(slot2, t(1));
    }

    #[test]
    fn earliest_slot_none_when_over_capacity() {
        let mut cal = ReservationCalendar::new();
        cal.set_capacity(FlavorId::ComputeLiqid, 3);
        assert!(cal
            .earliest_slot(FlavorId::ComputeLiqid, 4, SimDuration::hours(1), t(0))
            .is_none());
    }

    #[test]
    fn earliest_slot_without_any_lease_is_immediate() {
        let mut cal = ReservationCalendar::new();
        cal.set_capacity(FlavorId::GpuMi100, 2);
        assert_eq!(
            cal.earliest_slot(FlavorId::GpuMi100, 2, SimDuration::hours(3), t(7)),
            Some(t(7))
        );
    }

    #[test]
    fn revoke_truncates_and_frees_capacity() {
        let mut cal = ReservationCalendar::new();
        cal.set_capacity(FlavorId::GpuV100, 1);
        let lease = cal.reserve(FlavorId::GpuV100, 1, t(0), t(10), "a").unwrap();
        // Node busy all decade: nobody else fits.
        assert!(cal.reserve(FlavorId::GpuV100, 1, t(4), t(6), "b").is_err());
        cal.revoke(lease.id, t(3)).unwrap();
        cal.debug_assert_invariants();
        assert!(cal.is_revoked(lease.id));
        assert!(!cal.get(lease.id).unwrap().covers(t(5)));
        // Window truncated at t(3): the slot is free again.
        cal.reserve(FlavorId::GpuV100, 1, t(4), t(6), "b").unwrap();
        // Double revocation and unknown ids are typed errors.
        assert_eq!(cal.revoke(lease.id, t(4)), Err(CloudError::LeaseRevoked));
        assert_eq!(cal.revoke(LeaseId(999), t(4)), Err(CloudError::NoSuchLease));
        cal.debug_assert_invariants();
    }

    #[test]
    fn revoke_after_end_is_refused() {
        let mut cal = ReservationCalendar::new();
        cal.set_capacity(FlavorId::GpuP100, 1);
        let lease = cal.reserve(FlavorId::GpuP100, 1, t(0), t(2), "a").unwrap();
        assert_eq!(cal.revoke(lease.id, t(2)), Err(CloudError::OutsideLease));
    }

    #[test]
    fn revoke_before_start_cancels_whole_window() {
        let mut cal = ReservationCalendar::new();
        cal.set_capacity(FlavorId::GpuV100, 1);
        let lease = cal.reserve(FlavorId::GpuV100, 1, t(5), t(9), "a").unwrap();
        cal.revoke(lease.id, t(2)).unwrap();
        cal.debug_assert_invariants();
        // The window collapsed to zero length at its start; the whole
        // span is free again and the truncated end is still a candidate.
        assert_eq!(cal.get(lease.id).unwrap().end, t(5));
        assert_eq!(cal.peak_reserved(FlavorId::GpuV100, t(0), t(12)), 0);
        assert_eq!(
            cal.earliest_slot(FlavorId::GpuV100, 1, SimDuration::hours(2), t(4)),
            Some(t(4))
        );
    }

    #[test]
    fn lease_covers() {
        let mut cal = ReservationCalendar::new();
        cal.set_capacity(FlavorId::RaspberryPi5, 7);
        let lease = cal
            .reserve(FlavorId::RaspberryPi5, 1, t(2), t(4), "edge")
            .unwrap();
        assert!(!lease.covers(t(1)));
        assert!(lease.covers(t(2)));
        assert!(lease.covers(t(3)));
        assert!(!lease.covers(t(4)));
        assert_eq!(cal.get(lease.id).unwrap().owner, "edge");
    }

    #[test]
    fn profile_boundaries_merge_on_adjacent_leases() {
        let mut cal = ReservationCalendar::new();
        cal.set_capacity(FlavorId::GpuP100, 2);
        // Back-to-back equal-count leases: the shared boundary's delta
        // cancels and the profile stores a single [0, 4) plateau.
        cal.reserve(FlavorId::GpuP100, 2, t(0), t(2), "a").unwrap();
        cal.reserve(FlavorId::GpuP100, 2, t(2), t(4), "b").unwrap();
        cal.debug_assert_invariants();
        let profile = &cal.profiles[&FlavorId::GpuP100];
        assert_eq!(profile.segs.len(), 2, "shared boundary must merge away");
        assert_eq!(cal.peak_reserved(FlavorId::GpuP100, t(0), t(4)), 2);
        assert_eq!(cal.peak_reserved(FlavorId::GpuP100, t(1), t(3)), 2);
    }

    #[test]
    fn matches_naive_on_a_scripted_sequence() {
        let flavor = FlavorId::GpuA100Pcie;
        let mut fast = ReservationCalendar::new();
        let mut slow = naive::NaiveCalendar::new();
        fast.set_capacity(flavor, 3);
        slow.set_capacity(flavor, 3);
        let script: [(u32, u64, u64); 7] = [
            (1, 0, 3),
            (2, 1, 4),
            (1, 2, 5),
            (3, 4, 6),
            (1, 3, 4),
            (2, 6, 8),
            (1, 0, 10),
        ];
        let mut ids = Vec::new();
        for (count, s, e) in script {
            let a = fast.reserve(flavor, count, t(s), t(e), "x");
            let b = slow.reserve(flavor, count, t(s), t(e), "x");
            assert_eq!(a.is_ok(), b.is_ok(), "admission diverged at {s}..{e}");
            assert_eq!(a.clone().err(), b.err());
            if let Ok(l) = a {
                ids.push(l.id);
            }
        }
        assert_eq!(fast.revoke(ids[1], t(2)), slow.revoke(ids[1], t(2)));
        for (s, e) in [(0, 10), (1, 2), (3, 7), (9, 12)] {
            assert_eq!(
                fast.peak_reserved(flavor, t(s), t(e)),
                slow.peak_reserved(flavor, t(s), t(e)),
                "peak diverged on {s}..{e}"
            );
        }
        for from in 0..10 {
            assert_eq!(
                fast.earliest_slot(flavor, 2, SimDuration::hours(2), t(from)),
                slow.earliest_slot(flavor, 2, SimDuration::hours(2), t(from)),
                "slot choice diverged from t({from})"
            );
        }
        fast.debug_assert_invariants();
    }

    /// Regression found by `tests/calendar_differential.rs`: an empty
    /// query window (`end <= start`) panicked the sweep-line range-max,
    /// while the naive scan answers with the occupancy at `start`.
    #[test]
    fn peak_over_empty_window_samples_the_instant() {
        let flavor = FlavorId::GpuV100;
        let mut fast = ReservationCalendar::new();
        let mut slow = naive::NaiveCalendar::new();
        fast.set_capacity(flavor, 4);
        slow.set_capacity(flavor, 4);
        fast.reserve(flavor, 3, t(1), t(5), "x").unwrap();
        slow.reserve(flavor, 3, t(1), t(5), "x").unwrap();
        for (s, e) in [(2, 2), (5, 2), (0, 0), (5, 5), (9, 9)] {
            assert_eq!(
                fast.peak_reserved(flavor, t(s), t(e)),
                slow.peak_reserved(flavor, t(s), t(e)),
                "empty-window peak diverged on {s}..{e}"
            );
        }
        assert_eq!(fast.peak_reserved(flavor, t(2), t(2)), 3);
        assert_eq!(fast.peak_reserved(flavor, t(5), t(5)), 0);
    }
}
