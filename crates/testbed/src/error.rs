//! Error types for testbed operations.

use crate::flavor::FlavorId;
use std::fmt;

/// Coarse classification of a [`CloudError`] for retry decisions.
///
/// Transient errors are contention or timing: the same request can
/// succeed later (quota frees up, a lease window opens, an injected
/// infrastructure blip passes). Permanent errors are misuse or missing
/// resources: repeating the identical call can never succeed, so the
/// caller must change strategy (rebook, degrade, abandon) instead of
/// retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Retrying the same request later may succeed.
    Transient,
    /// Retrying the same request can never succeed.
    Permanent,
}

/// Why a testbed operation was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum CloudError {
    /// A project quota would be exceeded.
    QuotaExceeded {
        /// Which quota dimension (e.g. "cores", "instances", "floating_ips").
        resource: &'static str,
        /// The configured limit.
        limit: u64,
        /// What the total would have been after the request.
        requested: u64,
    },
    /// No free node of the requested bare-metal/edge flavor in the window.
    NoCapacity {
        /// The contended flavor.
        flavor: FlavorId,
        /// Nodes that exist for this flavor.
        capacity: u32,
    },
    /// The flavor requires an advance reservation but none covers `now`.
    LeaseRequired(FlavorId),
    /// Provisioning attempted outside the lease window.
    OutsideLease,
    /// Unknown instance id.
    NoSuchInstance,
    /// Unknown lease id.
    NoSuchLease,
    /// Unknown volume id.
    NoSuchVolume,
    /// Unknown floating-IP id.
    NoSuchFip,
    /// Unknown network id.
    NoSuchNetwork,
    /// Instance already deleted.
    AlreadyDeleted,
    /// A lease must end after it starts.
    InvalidLeaseWindow,
    /// Volume is attached and cannot be deleted (or attached elsewhere).
    VolumeInUse,
    /// Volume operation requires an attachment but the volume is detached.
    VolumeNotAttached,
    /// The lease was revoked by the operator before its window ended.
    LeaseRevoked,
    /// An injected transient infrastructure failure (fault injection).
    TransientFault {
        /// The operation that failed (e.g. "create_instance").
        op: &'static str,
    },
    /// The service's bounded admission queue is full of equal-or-higher
    /// priority work: the request is turned away as backpressure, not
    /// failed. Transient by definition — the same request can succeed
    /// the moment load drops.
    Overload {
        /// Queue depth at rejection time.
        queue_depth: u64,
        /// The configured queue bound.
        limit: u64,
    },
}

impl CloudError {
    /// Transient-vs-permanent classification (see [`ErrorClass`]).
    pub fn class(&self) -> ErrorClass {
        match self {
            CloudError::QuotaExceeded { .. }
            | CloudError::NoCapacity { .. }
            | CloudError::OutsideLease
            | CloudError::TransientFault { .. }
            | CloudError::Overload { .. } => ErrorClass::Transient,
            CloudError::LeaseRequired(_)
            | CloudError::NoSuchInstance
            | CloudError::NoSuchLease
            | CloudError::NoSuchVolume
            | CloudError::NoSuchFip
            | CloudError::NoSuchNetwork
            | CloudError::AlreadyDeleted
            | CloudError::InvalidLeaseWindow
            | CloudError::VolumeInUse
            | CloudError::VolumeNotAttached
            | CloudError::LeaseRevoked => ErrorClass::Permanent,
        }
    }

    /// Whether retrying the identical request later can succeed.
    pub fn is_retryable(&self) -> bool {
        self.class() == ErrorClass::Transient
    }
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::QuotaExceeded {
                resource,
                limit,
                requested,
            } => {
                write!(
                    f,
                    "quota exceeded for {resource}: requested {requested} > limit {limit}"
                )
            }
            CloudError::NoCapacity { flavor, capacity } => {
                write!(f, "no capacity for {flavor} (only {capacity} nodes exist)")
            }
            CloudError::LeaseRequired(flavor) => {
                write!(f, "{flavor} requires an advance reservation")
            }
            CloudError::OutsideLease => write!(f, "operation outside the lease window"),
            CloudError::NoSuchInstance => write!(f, "no such instance"),
            CloudError::NoSuchLease => write!(f, "no such lease"),
            CloudError::NoSuchVolume => write!(f, "no such volume"),
            CloudError::NoSuchFip => write!(f, "no such floating ip"),
            CloudError::NoSuchNetwork => write!(f, "no such network"),
            CloudError::AlreadyDeleted => write!(f, "instance already deleted"),
            CloudError::InvalidLeaseWindow => write!(f, "lease must end after it starts"),
            CloudError::VolumeInUse => write!(f, "volume is attached to an instance"),
            CloudError::VolumeNotAttached => write!(f, "volume is not attached"),
            CloudError::LeaseRevoked => write!(f, "lease was revoked"),
            CloudError::TransientFault { op } => {
                write!(f, "transient infrastructure failure during {op}")
            }
            CloudError::Overload { queue_depth, limit } => {
                write!(
                    f,
                    "service overloaded: admission queue at {queue_depth}/{limit}"
                )
            }
        }
    }
}

impl std::error::Error for CloudError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CloudError::QuotaExceeded {
            resource: "cores",
            limit: 1200,
            requested: 1300,
        };
        let s = e.to_string();
        assert!(s.contains("cores") && s.contains("1200") && s.contains("1300"));
        assert!(CloudError::LeaseRequired(FlavorId::GpuV100)
            .to_string()
            .contains("gpu_v100"));
        assert!(CloudError::TransientFault {
            op: "create_instance"
        }
        .to_string()
        .contains("create_instance"));
    }

    #[test]
    fn taxonomy_splits_transient_from_permanent() {
        assert!(CloudError::QuotaExceeded {
            resource: "cores",
            limit: 1,
            requested: 2
        }
        .is_retryable());
        assert!(CloudError::NoCapacity {
            flavor: FlavorId::GpuV100,
            capacity: 0
        }
        .is_retryable());
        assert!(CloudError::OutsideLease.is_retryable());
        assert!(CloudError::TransientFault {
            op: "attach_volume"
        }
        .is_retryable());
        assert!(CloudError::Overload {
            queue_depth: 256,
            limit: 256
        }
        .is_retryable());

        for e in [
            CloudError::LeaseRequired(FlavorId::GpuV100),
            CloudError::NoSuchInstance,
            CloudError::NoSuchLease,
            CloudError::NoSuchVolume,
            CloudError::NoSuchFip,
            CloudError::NoSuchNetwork,
            CloudError::AlreadyDeleted,
            CloudError::InvalidLeaseWindow,
            CloudError::VolumeInUse,
            CloudError::VolumeNotAttached,
            CloudError::LeaseRevoked,
        ] {
            assert_eq!(e.class(), ErrorClass::Permanent, "{e}");
            assert!(!e.is_retryable(), "{e}");
        }
    }
}
