//! Error types for testbed operations.

use crate::flavor::FlavorId;
use std::fmt;

/// Why a testbed operation was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum CloudError {
    /// A project quota would be exceeded.
    QuotaExceeded {
        /// Which quota dimension (e.g. "cores", "instances", "floating_ips").
        resource: &'static str,
        /// The configured limit.
        limit: u64,
        /// What the total would have been after the request.
        requested: u64,
    },
    /// No free node of the requested bare-metal/edge flavor in the window.
    NoCapacity {
        /// The contended flavor.
        flavor: FlavorId,
        /// Nodes that exist for this flavor.
        capacity: u32,
    },
    /// The flavor requires an advance reservation but none covers `now`.
    LeaseRequired(FlavorId),
    /// Provisioning attempted outside the lease window.
    OutsideLease,
    /// Unknown instance id.
    NoSuchInstance,
    /// Unknown lease id.
    NoSuchLease,
    /// Unknown volume id.
    NoSuchVolume,
    /// Instance already deleted.
    AlreadyDeleted,
    /// A lease must end after it starts.
    InvalidLeaseWindow,
    /// Volume is attached and cannot be deleted.
    VolumeInUse,
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::QuotaExceeded {
                resource,
                limit,
                requested,
            } => {
                write!(
                    f,
                    "quota exceeded for {resource}: requested {requested} > limit {limit}"
                )
            }
            CloudError::NoCapacity { flavor, capacity } => {
                write!(f, "no capacity for {flavor} (only {capacity} nodes exist)")
            }
            CloudError::LeaseRequired(flavor) => {
                write!(f, "{flavor} requires an advance reservation")
            }
            CloudError::OutsideLease => write!(f, "operation outside the lease window"),
            CloudError::NoSuchInstance => write!(f, "no such instance"),
            CloudError::NoSuchLease => write!(f, "no such lease"),
            CloudError::NoSuchVolume => write!(f, "no such volume"),
            CloudError::AlreadyDeleted => write!(f, "instance already deleted"),
            CloudError::InvalidLeaseWindow => write!(f, "lease must end after it starts"),
            CloudError::VolumeInUse => write!(f, "volume is attached to an instance"),
        }
    }
}

impl std::error::Error for CloudError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CloudError::QuotaExceeded {
            resource: "cores",
            limit: 1200,
            requested: 1300,
        };
        let s = e.to_string();
        assert!(s.contains("cores") && s.contains("1200") && s.contains("1300"));
        assert!(CloudError::LeaseRequired(FlavorId::GpuV100)
            .to_string()
            .contains("gpu_v100"));
    }
}
