//! Instance flavors (VM) and node types (bare metal / edge).
//!
//! The catalog mirrors the Chameleon node types and KVM flavors named in
//! Table 1 of the paper, plus the generic VM flavors used by project work.
//! Resource figures for the `m1.*` flavors come from §3 of the paper
//! (m1.small minimal; m1.medium 2 vCPU / 4 GB; m1.large 4 vCPU / 8 GB);
//! bare-metal node shapes are representative of the corresponding Chameleon
//! hardware classes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// GPU hardware classes present on the testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuModel {
    /// NVIDIA A100 80 GB (CUDA compute capability 8.0; bfloat16-capable).
    A100_80GB,
    /// NVIDIA V100 (compute capability 7.0).
    V100,
    /// AMD Instinct MI100.
    MI100,
    /// NVIDIA P100.
    P100,
    /// NVIDIA A30 (serving-class, compute capability 8.0).
    A30,
    /// NVIDIA RTX 6000 (project work).
    Rtx6000,
}

impl GpuModel {
    /// Whether this GPU supports bfloat16 reduced-precision training
    /// (compute capability ≥ 8.0) — required by the Unit 4 lab.
    pub fn supports_bf16(self) -> bool {
        matches!(self, GpuModel::A100_80GB | GpuModel::A30)
    }

    /// Device memory in GB.
    pub fn memory_gb(self) -> u32 {
        match self {
            GpuModel::A100_80GB => 80,
            GpuModel::V100 => 32,
            GpuModel::MI100 => 32,
            GpuModel::P100 => 16,
            GpuModel::A30 => 24,
            GpuModel::Rtx6000 => 24,
        }
    }
}

/// Where a flavor can be provisioned, which determines its lifecycle rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SiteKind {
    /// On-demand virtual machines (KVM\@TACC): no advance reservation,
    /// **no automatic termination** — instances run until deleted.
    Vm,
    /// Bare-metal nodes: advance reservation required; auto-terminated at
    /// lease end.
    BareMetal,
    /// CHI\@Edge devices (Raspberry Pi 5, Jetson): reservation required;
    /// auto-terminated at lease end.
    Edge,
}

/// Every instance flavor / node type used by the course.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FlavorId {
    /// Minimal VM (Unit 1 onboarding).
    M1Small,
    /// 2 vCPU / 4 GB VM (Units 2, 3, 7; the workhorse flavor).
    M1Medium,
    /// 4 vCPU / 8 GB VM (Unit 8; project work).
    M1Large,
    /// 8 vCPU / 16 GB VM (project work only).
    M1Xlarge,
    /// Bare-metal node with 4× A100 80 GB PCIe (Unit 4 multi-GPU).
    GpuA100Pcie,
    /// Bare-metal node with 4× V100 (Unit 4 multi-GPU overflow pool).
    GpuV100,
    /// GigaIO composable node with 1× A100 80 GB (Units 4, 5, 6).
    ComputeGigaio,
    /// Liqid composable node with 1× A100 40 GB-class GPU (Units 5, 6).
    ComputeLiqid,
    /// Liqid composable node composed with 2 GPUs (Unit 5 multi-GPU).
    ComputeLiqid2,
    /// Bare-metal node with 2× AMD MI100 (Unit 5 multi-GPU).
    GpuMi100,
    /// Bare-metal node with 2× P100 (Unit 6 system-serving optimizations).
    GpuP100,
    /// Raspberry Pi 5 on CHI\@Edge (Unit 6 edge serving). The course staff
    /// added 7 of these to the platform (§4).
    RaspberryPi5,
    /// Bare-metal CPU node (Cascade Lake class) used by projects for
    /// large-scale data processing (§5: 975 bare-metal non-GPU hours).
    ComputeCascadeLake,
}

/// Static description of a flavor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlavorSpec {
    /// Canonical flavor/node-type name as it appears in Table 1.
    pub name: &'static str,
    /// Virtual or physical CPU cores.
    pub vcpus: u32,
    /// Memory in GB.
    pub ram_gb: u32,
    /// Number of GPUs on the node (0 for CPU-only).
    pub gpu_count: u32,
    /// GPU hardware class, if any.
    pub gpu_model: Option<GpuModel>,
    /// Site the flavor lives on, which fixes its lifecycle rules.
    pub site: SiteKind,
}

impl FlavorId {
    /// All flavors, in a stable order (used for reports and iteration).
    pub const ALL: [FlavorId; 13] = [
        FlavorId::M1Small,
        FlavorId::M1Medium,
        FlavorId::M1Large,
        FlavorId::M1Xlarge,
        FlavorId::GpuA100Pcie,
        FlavorId::GpuV100,
        FlavorId::ComputeGigaio,
        FlavorId::ComputeLiqid,
        FlavorId::ComputeLiqid2,
        FlavorId::GpuMi100,
        FlavorId::GpuP100,
        FlavorId::RaspberryPi5,
        FlavorId::ComputeCascadeLake,
    ];

    /// The static spec for this flavor.
    pub const fn spec(self) -> FlavorSpec {
        match self {
            FlavorId::M1Small => FlavorSpec {
                name: "m1.small",
                vcpus: 1,
                ram_gb: 2,
                gpu_count: 0,
                gpu_model: None,
                site: SiteKind::Vm,
            },
            FlavorId::M1Medium => FlavorSpec {
                name: "m1.medium",
                vcpus: 2,
                ram_gb: 4,
                gpu_count: 0,
                gpu_model: None,
                site: SiteKind::Vm,
            },
            FlavorId::M1Large => FlavorSpec {
                name: "m1.large",
                vcpus: 4,
                ram_gb: 8,
                gpu_count: 0,
                gpu_model: None,
                site: SiteKind::Vm,
            },
            FlavorId::M1Xlarge => FlavorSpec {
                name: "m1.xlarge",
                vcpus: 8,
                ram_gb: 16,
                gpu_count: 0,
                gpu_model: None,
                site: SiteKind::Vm,
            },
            FlavorId::GpuA100Pcie => FlavorSpec {
                name: "gpu_a100_pcie",
                vcpus: 64,
                ram_gb: 512,
                gpu_count: 4,
                gpu_model: Some(GpuModel::A100_80GB),
                site: SiteKind::BareMetal,
            },
            FlavorId::GpuV100 => FlavorSpec {
                name: "gpu_v100",
                vcpus: 40,
                ram_gb: 384,
                gpu_count: 4,
                gpu_model: Some(GpuModel::V100),
                site: SiteKind::BareMetal,
            },
            FlavorId::ComputeGigaio => FlavorSpec {
                name: "compute_gigaio",
                vcpus: 32,
                ram_gb: 256,
                gpu_count: 1,
                gpu_model: Some(GpuModel::A100_80GB),
                site: SiteKind::BareMetal,
            },
            FlavorId::ComputeLiqid => FlavorSpec {
                name: "compute_liqid",
                vcpus: 32,
                ram_gb: 192,
                gpu_count: 1,
                gpu_model: Some(GpuModel::A100_80GB),
                site: SiteKind::BareMetal,
            },
            FlavorId::ComputeLiqid2 => FlavorSpec {
                name: "compute_liqid_2",
                vcpus: 32,
                ram_gb: 192,
                gpu_count: 2,
                gpu_model: Some(GpuModel::A100_80GB),
                site: SiteKind::BareMetal,
            },
            FlavorId::GpuMi100 => FlavorSpec {
                name: "gpu_mi100",
                vcpus: 48,
                ram_gb: 256,
                gpu_count: 2,
                gpu_model: Some(GpuModel::MI100),
                site: SiteKind::BareMetal,
            },
            FlavorId::GpuP100 => FlavorSpec {
                name: "gpu_p100",
                vcpus: 28,
                ram_gb: 128,
                gpu_count: 2,
                gpu_model: Some(GpuModel::P100),
                site: SiteKind::BareMetal,
            },
            FlavorId::RaspberryPi5 => FlavorSpec {
                name: "raspberrypi5",
                vcpus: 4,
                ram_gb: 8,
                gpu_count: 0,
                gpu_model: None,
                site: SiteKind::Edge,
            },
            FlavorId::ComputeCascadeLake => FlavorSpec {
                name: "compute_cascadelake_r",
                vcpus: 48,
                ram_gb: 192,
                gpu_count: 0,
                gpu_model: None,
                site: SiteKind::BareMetal,
            },
        }
    }

    /// The flavor's canonical name (Table 1 spelling).
    pub const fn name(self) -> &'static str {
        self.spec().name
    }

    /// Site kind (fixes lifecycle: VM = run-until-deleted, others leased).
    pub const fn site(self) -> SiteKind {
        self.spec().site
    }

    /// Whether provisioning this flavor requires an advance reservation.
    pub const fn requires_lease(self) -> bool {
        !matches!(self.spec().site, SiteKind::Vm)
    }

    /// Whether the node carries at least one GPU.
    pub const fn has_gpu(self) -> bool {
        self.spec().gpu_count > 0
    }

    /// Parse a Table 1 flavor name back to its id.
    pub fn from_name(name: &str) -> Option<FlavorId> {
        FlavorId::ALL.into_iter().find(|f| f.name() == name)
    }
}

impl fmt::Display for FlavorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for f in FlavorId::ALL {
            assert_eq!(FlavorId::from_name(f.name()), Some(f), "roundtrip {f}");
        }
        assert_eq!(FlavorId::from_name("nope"), None);
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = FlavorId::ALL.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FlavorId::ALL.len());
    }

    #[test]
    fn lifecycle_rules_match_paper() {
        // VMs are on-demand; bare metal and edge require reservations.
        assert!(!FlavorId::M1Medium.requires_lease());
        assert!(FlavorId::GpuA100Pcie.requires_lease());
        assert!(FlavorId::RaspberryPi5.requires_lease());
    }

    #[test]
    fn unit4_gpu_requirements() {
        // §3.4: the single-GPU part needs CC >= 8.0 (bf16) and ~80 GB memory.
        let gigaio = FlavorId::ComputeGigaio.spec();
        let gpu = gigaio.gpu_model.unwrap();
        assert!(gpu.supports_bf16());
        assert!(gpu.memory_gb() >= 80);
        // The multi-GPU part needs >= 4 such GPUs on one node.
        assert_eq!(FlavorId::GpuA100Pcie.spec().gpu_count, 4);
        assert_eq!(FlavorId::GpuV100.spec().gpu_count, 4);
        // V100 (CC 7.0) does NOT support bf16 — the lab text allows it only
        // as an overflow pool where students fall back to fp16.
        assert!(!GpuModel::V100.supports_bf16());
    }

    #[test]
    fn vm_flavor_shapes_match_section3() {
        let m = FlavorId::M1Medium.spec();
        assert_eq!((m.vcpus, m.ram_gb), (2, 4)); // §3.2
        let l = FlavorId::M1Large.spec();
        assert_eq!((l.vcpus, l.ram_gb), (4, 8)); // §3.8
    }

    #[test]
    fn table1_flavor_names_present() {
        for name in [
            "m1.small",
            "m1.medium",
            "gpu_a100_pcie",
            "gpu_v100",
            "compute_gigaio",
            "compute_liqid_2",
            "gpu_mi100",
            "compute_liqid",
            "raspberrypi5",
            "gpu_p100",
            "m1.large",
        ] {
            assert!(FlavorId::from_name(name).is_some(), "missing {name}");
        }
    }
}
