//! # opml-testbed
//!
//! An OpenStack-like research-cloud simulator modelled on the Chameleon
//! Cloud testbed used in *The Cost of Teaching Operational ML* (SC
//! Workshops '25), §4.
//!
//! The paper's cost analysis rests entirely on the testbed's **usage
//! semantics**, which this crate reproduces:
//!
//! * **On-demand VM instances** (the KVM\@TACC site): provisioned instantly
//!   against a project quota, and — crucially — **not terminated
//!   automatically**. §5: "VM instances, however, often persisted beyond
//!   expected durations — sometimes intentionally …, other times due to
//!   neglect." This is the mechanism behind the paper's long-tail cost.
//! * **Bare-metal and edge instances**: require an **advance reservation**
//!   (lease) and are **automatically terminated** when the lease ends, so
//!   actual usage closely tracks expected usage (Fig. 1b).
//! * **Quotas** (§4 "Logistics for classroom use"): 600 VM instances, 1,200
//!   cores, 2.5 TB RAM, 300 floating IPs, 200 routers, 100 security groups,
//!   200 block-storage volumes, 10 TB block storage.
//! * **Floating IPs, networks, routers** — each lab deployment holds one
//!   publicly routable IP for its wall-clock duration; Table 1's second
//!   hours column meters exactly this.
//! * **Block and object storage** (Unit 8 and project work).
//!
//! Everything a simulation does is appended to a [`ledger::Ledger`], the
//! single source of truth consumed by `opml-metering` and `opml-pricing`.

pub mod cloud;
pub mod error;
pub mod flavor;
pub mod instance;
pub mod lease;
pub mod ledger;
pub mod network;
pub mod quota;
pub mod storage;

pub use cloud::Cloud;
pub use error::CloudError;
pub use flavor::{FlavorId, FlavorSpec, GpuModel};
pub use instance::{Instance, InstanceId, InstanceState};
pub use lease::{Lease, LeaseId};
pub use ledger::{Ledger, UsageKind, UsageRecord};
pub use quota::Quota;
