//! Compute instances and their lifecycle.

use crate::flavor::FlavorId;
use crate::lease::LeaseId;
use opml_simkernel::SimTime;
use serde::{Deserialize, Serialize};

/// Opaque instance identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstanceId(pub u64);

/// Lifecycle state of an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstanceState {
    /// Running (accruing instance-hours).
    Active,
    /// Deleted by the user.
    Deleted,
    /// Terminated automatically at lease end (bare metal / edge only).
    AutoTerminated,
    /// Died mid-run (hardware failure or injected fault); stops metering.
    Crashed,
}

/// A compute instance.
///
/// `name` follows the course's naming convention
/// (`<assignment-tag>-<student-netid>[-suffix]`); §5 notes that the
/// convention is what let the authors attribute instances to assignments,
/// and `opml-metering` relies on it the same way.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Instance {
    /// Identifier.
    pub id: InstanceId,
    /// Instance name (attribution key).
    pub name: String,
    /// Flavor / node type.
    pub flavor: FlavorId,
    /// Creation time.
    pub created: SimTime,
    /// Deletion time, once deleted.
    pub deleted: Option<SimTime>,
    /// Lifecycle state.
    pub state: InstanceState,
    /// The lease backing this instance (bare metal / edge only).
    pub lease: Option<LeaseId>,
}

impl Instance {
    /// Whether the instance is still running.
    pub fn is_active(&self) -> bool {
        self.state == InstanceState::Active
    }

    /// Runtime as of `now` (or total runtime if deleted).
    pub fn runtime_hours(&self, now: SimTime) -> f64 {
        let end = self.deleted.unwrap_or(now);
        end.since(self.created).as_hours_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opml_simkernel::SimDuration;

    #[test]
    fn runtime_accrues_until_deleted() {
        let mut inst = Instance {
            id: InstanceId(1),
            name: "lab1-student007".into(),
            flavor: FlavorId::M1Small,
            created: SimTime::at(0, 0, 10, 0),
            deleted: None,
            state: InstanceState::Active,
            lease: None,
        };
        let now = inst.created + SimDuration::hours(3);
        assert_eq!(inst.runtime_hours(now), 3.0);
        inst.deleted = Some(inst.created + SimDuration::hours(2));
        inst.state = InstanceState::Deleted;
        // Once deleted, `now` no longer matters.
        assert_eq!(inst.runtime_hours(now + SimDuration::hours(100)), 2.0);
        assert!(!inst.is_active());
    }
}
