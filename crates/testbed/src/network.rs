//! Networking resources: private networks, routers, floating IPs.
//!
//! Each lab deployment provisions a private network for inter-VM traffic
//! and **one publicly routable floating IP** for SSH and UI access (§3.2,
//! §3.3). Floating-IP hold time is metered — it is the second hours column
//! of Table 1 and is billed on commercial clouds (AWS charges for public
//! IPv4 since Feb 2024; GCP charges for in-use external IPs).

use opml_simkernel::SimTime;
use serde::{Deserialize, Serialize};

/// Opaque floating-IP identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FloatingIpId(pub u64);

/// Opaque network identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NetworkId(pub u64);

/// A floating IP held by a deployment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FloatingIp {
    /// Identifier.
    pub id: FloatingIpId,
    /// Attribution key (deployment name).
    pub name: String,
    /// Allocation time.
    pub allocated: SimTime,
    /// Release time, once released.
    pub released: Option<SimTime>,
}

impl FloatingIp {
    /// Hold time in hours as of `now` (or total if released).
    pub fn hold_hours(&self, now: SimTime) -> f64 {
        self.released
            .unwrap_or(now)
            .since(self.allocated)
            .as_hours_f64()
    }

    /// Whether the IP is still held.
    pub fn is_held(&self) -> bool {
        self.released.is_none()
    }
}

/// A private network with its router (modelled together: every lab that
/// created a network also created a router to the external network).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrivateNetwork {
    /// Identifier.
    pub id: NetworkId,
    /// Attribution key (deployment name).
    pub name: String,
    /// Creation time.
    pub created: SimTime,
    /// Deletion time, once deleted.
    pub deleted: Option<SimTime>,
}

impl PrivateNetwork {
    /// Whether the network still exists.
    pub fn is_active(&self) -> bool {
        self.deleted.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opml_simkernel::SimDuration;

    #[test]
    fn fip_hold_hours() {
        let mut fip = FloatingIp {
            id: FloatingIpId(0),
            name: "lab2-alice".into(),
            allocated: SimTime::at(1, 0, 0, 0),
            released: None,
        };
        assert!(fip.is_held());
        let now = fip.allocated + SimDuration::hours(5);
        assert_eq!(fip.hold_hours(now), 5.0);
        fip.released = Some(fip.allocated + SimDuration::hours(2));
        assert_eq!(fip.hold_hours(now), 2.0);
        assert!(!fip.is_held());
    }
}
