//! Property-based tests for the testbed's invariants.

use opml_simkernel::SimTime;
use opml_testbed::cloud::Cloud;
use opml_testbed::error::CloudError;
use opml_testbed::flavor::FlavorId;
use opml_testbed::lease::ReservationCalendar;
use opml_testbed::quota::{Quota, QuotaUsage};
use proptest::prelude::*;

proptest! {
    /// The reservation calendar never admits more than capacity at any
    /// instant, for arbitrary request sequences.
    #[test]
    fn calendar_never_oversubscribes(
        capacity in 1u32..6,
        requests in prop::collection::vec((0u64..200, 1u64..24, 1u32..4), 1..60),
    ) {
        let mut cal = ReservationCalendar::new();
        cal.set_capacity(FlavorId::GpuV100, capacity);
        let mut admitted = Vec::new();
        for (start, len, count) in requests {
            let s = SimTime(start * 60);
            let e = SimTime((start + len) * 60);
            if let Ok(lease) = cal.reserve(FlavorId::GpuV100, count, s, e, "p") {
                admitted.push(lease);
            }
        }
        // Check the invariant at every lease boundary.
        for probe in admitted.iter().flat_map(|l| [l.start, SimTime(l.end.0 - 1)]) {
            let in_use: u32 = admitted
                .iter()
                .filter(|l| l.start <= probe && probe < l.end)
                .map(|l| l.count)
                .sum();
            prop_assert!(in_use <= capacity, "{in_use} > {capacity} at {probe:?}");
        }
    }

    /// earliest_slot always returns a window that then admits.
    #[test]
    fn earliest_slot_is_admissible(
        capacity in 1u32..4,
        pre in prop::collection::vec((0u64..100, 1u64..12), 0..20),
        len in 1u64..8,
        from in 0u64..100,
    ) {
        let mut cal = ReservationCalendar::new();
        cal.set_capacity(FlavorId::ComputeGigaio, capacity);
        for (start, l) in pre {
            let _ = cal.reserve(
                FlavorId::ComputeGigaio,
                1,
                SimTime(start * 60),
                SimTime((start + l) * 60),
                "pre",
            );
        }
        let dur = opml_simkernel::SimDuration(len * 60);
        let slot = cal.earliest_slot(FlavorId::ComputeGigaio, 1, dur, SimTime(from * 60));
        let start = slot.expect("capacity >= 1 always yields a slot");
        prop_assert!(start >= SimTime(from * 60));
        prop_assert!(cal.reserve(FlavorId::ComputeGigaio, 1, start, start + dur, "x").is_ok());
    }

    /// Quota usage can never exceed configured limits under any sequence
    /// of takes and releases.
    #[test]
    fn quota_never_exceeded(
        limit_inst in 1u64..20,
        limit_cores in 1u64..60,
        ops in prop::collection::vec((any::<bool>(), 1u64..8, 1u64..16), 1..100),
    ) {
        let quota = Quota {
            instances: limit_inst,
            cores: limit_cores,
            ram_gb: u64::MAX,
            ..Quota::unlimited()
        };
        let mut usage = QuotaUsage::default();
        let mut live: Vec<(u64, u64)> = Vec::new();
        for (take, vcpus, ram) in ops {
            if take {
                if usage.take_instance(&quota, vcpus, ram).is_ok() {
                    live.push((vcpus, ram));
                }
            } else if let Some((v, r)) = live.pop() {
                usage.release_instance(v, r);
            }
            prop_assert!(usage.instances <= limit_inst);
            prop_assert!(usage.cores <= limit_cores);
            prop_assert_eq!(usage.instances as usize, live.len());
        }
    }

    /// Ledger conservation: whatever mix of create/advance/delete happens,
    /// finalize closes every record and total hours equal the sum of
    /// per-instance lifetimes.
    #[test]
    fn ledger_conserves_hours(
        ops in prop::collection::vec((0u64..3, 1u64..50), 1..80),
    ) {
        let mut cloud = Cloud::new(Quota::unlimited());
        let mut live: Vec<opml_testbed::InstanceId> = Vec::new();
        let mut expected_hours = 0.0f64;
        let mut created: std::collections::HashMap<_, SimTime> = Default::default();
        for (op, arg) in ops {
            match op {
                0 => {
                    let id = cloud
                        .create_instance(&format!("lab1-s{:03}", arg % 100), FlavorId::M1Small)
                        .expect("unlimited quota");
                    created.insert(id, cloud.now());
                    live.push(id);
                }
                1 => {
                    cloud.advance(opml_simkernel::SimDuration::hours(arg % 10));
                }
                _ => {
                    if let Some(id) = live.pop() {
                        let start = created[&id];
                        expected_hours += cloud.now().since(start).as_hours_f64();
                        cloud.delete_instance(id).expect("live instance");
                    }
                }
            }
        }
        let end = cloud.now();
        for id in live {
            expected_hours += end.since(created[&id]).as_hours_f64();
        }
        cloud.finalize(end);
        let total = cloud.ledger().instance_hours(None);
        prop_assert!((total - expected_hours).abs() < 1e-9, "{total} vs {expected_hours}");
    }

    /// Double-delete always fails, never corrupts accounting.
    #[test]
    fn double_delete_rejected(n in 1usize..10) {
        let mut cloud = Cloud::new(Quota::unlimited());
        let ids: Vec<_> = (0..n)
            .map(|i| cloud.create_instance(&format!("x-s{i:03}"), FlavorId::M1Small).unwrap())
            .collect();
        for id in &ids {
            cloud.delete_instance(*id).unwrap();
            prop_assert_eq!(cloud.delete_instance(*id), Err(CloudError::AlreadyDeleted));
        }
        prop_assert_eq!(cloud.active_instances(), 0);
        prop_assert_eq!(cloud.ledger().records().len(), n);
    }
}
