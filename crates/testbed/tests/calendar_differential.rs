//! Differential property test: the sweep-line [`ReservationCalendar`]
//! must be **byte-identical** to the naive `O(L²)` reference it
//! replaced, on arbitrary operation sequences.
//!
//! The unit tests in `lease.rs` pin specific scripted scenarios; this
//! test lets proptest explore the space — overlapping windows, repeated
//! revocations, zero-progress revokes, multi-flavor interleavings,
//! queries over empty flavors — and requires every observable output
//! (slot choices, admission decisions, concrete `CloudError`s, peaks,
//! revocation outcomes) to match exactly. Shrinking then hands back the
//! minimal diverging script, which is how the scripted regression tests
//! in `lease.rs` were found in the first place.

use opml_simkernel::{SimDuration, SimTime};
use opml_testbed::error::CloudError;
use opml_testbed::flavor::FlavorId;
use opml_testbed::lease::naive::NaiveCalendar;
use opml_testbed::lease::ReservationCalendar;
use opml_testbed::LeaseId;
use proptest::prelude::*;

const FLAVORS: [FlavorId; 2] = [FlavorId::GpuA100Pcie, FlavorId::GpuV100];

/// One abstract calendar operation; indices are resolved modulo the
/// number of admitted leases at replay time so scripts stay valid under
/// shrinking.
#[derive(Debug, Clone)]
enum Op {
    Reserve {
        flavor: usize,
        count: u32,
        start: u64,
        len: u64,
    },
    EarliestSlot {
        flavor: usize,
        count: u32,
        len: u64,
        from: u64,
        /// Book the returned slot, as the semester workflow does.
        then_reserve: bool,
    },
    Peak {
        flavor: usize,
        start: u64,
        len: u64,
    },
    Revoke {
        nth: usize,
        at: u64,
    },
    /// Probe a lease id (admitted index or a never-issued id).
    Get {
        nth: usize,
    },
}

/// Weighted op generator, written against the vendored proptest shim:
/// one flat tuple mapped through a selector (the shim has no
/// `prop_oneof`). Weights favor the booking ops so sequences build up
/// enough contention for `earliest_slot` to have to search.
fn op_strategy() -> impl Strategy<Value = Op> {
    (
        0u8..13,
        0usize..2,
        1u32..4,
        0u64..120,
        1u64..16,
        any::<usize>(),
    )
        .prop_map(|(sel, flavor, count, x, y, nth)| match sel {
            0..=4 => Op::Reserve {
                flavor,
                count,
                start: x,
                len: y,
            },
            5..=8 => Op::EarliestSlot {
                flavor,
                count,
                len: y,
                from: x,
                then_reserve: nth % 2 == 0,
            },
            // Zero-width and empty windows included deliberately.
            9 | 10 => Op::Peak {
                flavor,
                start: x,
                len: (y - 1) * 2,
            },
            11 => Op::Revoke { nth, at: x + y },
            _ => Op::Get { nth },
        })
}

/// Everything observable about one op's outcome, comparable across
/// implementations. Lease ids are included: allocation order is part of
/// the byte-identity contract (ids feed downstream digests).
#[derive(Debug, PartialEq)]
enum Observed {
    Admitted(u64),
    Denied(CloudError),
    Slot(Option<u64>),
    Peak(u32),
    Revoked,
    RevokeErr(CloudError),
    RevokeSkipped,
    Lease(Option<(u64, u64, u64, u32)>),
}

macro_rules! replay {
    ($cal:expr, $ops:expr) => {{
        let cal = $cal;
        let mut seen: Vec<Observed> = Vec::new();
        let mut admitted: Vec<LeaseId> = Vec::new();
        for op in $ops {
            match *op {
                Op::Reserve {
                    flavor,
                    count,
                    start,
                    len,
                } => {
                    let s = SimTime(start * 30);
                    let e = SimTime((start + len) * 30);
                    match cal.reserve(FLAVORS[flavor], count, s, e, "diff") {
                        Ok(lease) => {
                            admitted.push(lease.id);
                            seen.push(Observed::Admitted(lease.id.0));
                        }
                        Err(err) => seen.push(Observed::Denied(err)),
                    }
                }
                Op::EarliestSlot {
                    flavor,
                    count,
                    len,
                    from,
                    then_reserve,
                } => {
                    let dur = SimDuration(len * 30);
                    let slot = cal.earliest_slot(FLAVORS[flavor], count, dur, SimTime(from * 30));
                    seen.push(Observed::Slot(slot.map(|t| t.0)));
                    if let (true, Some(start)) = (then_reserve, slot) {
                        match cal.reserve(FLAVORS[flavor], count, start, start + dur, "diff") {
                            Ok(lease) => {
                                admitted.push(lease.id);
                                seen.push(Observed::Admitted(lease.id.0));
                            }
                            Err(err) => seen.push(Observed::Denied(err)),
                        }
                    }
                }
                Op::Peak { flavor, start, len } => {
                    let s = SimTime(start * 30);
                    seen.push(Observed::Peak(cal.peak_reserved(
                        FLAVORS[flavor],
                        s,
                        SimTime((start + len) * 30),
                    )));
                }
                Op::Revoke { nth, at } => {
                    if admitted.is_empty() {
                        seen.push(Observed::RevokeSkipped);
                    } else {
                        let id = admitted[nth % admitted.len()];
                        match cal.revoke(id, SimTime(at * 30)) {
                            Ok(()) => seen.push(Observed::Revoked),
                            Err(err) => seen.push(Observed::RevokeErr(err)),
                        }
                    }
                }
                Op::Get { nth } => {
                    // Odd probes target ids that were never issued.
                    let id = if admitted.is_empty() || nth % 2 == 1 {
                        LeaseId(u64::MAX - (nth as u64 % 7))
                    } else {
                        admitted[nth % admitted.len()]
                    };
                    seen.push(Observed::Lease(
                        cal.get(id).map(|l| (l.id.0, l.start.0, l.end.0, l.count)),
                    ));
                }
            }
        }
        (seen, admitted)
    }};
}

proptest! {
    /// Arbitrary op sequences produce identical observable behavior on
    /// the sweep-line calendar and the naive reference, including the
    /// exact error variants and the `is_revoked` view afterwards.
    #[test]
    fn sweep_line_matches_naive(
        cap_a in 0u32..5,
        cap_b in 1u32..5,
        ops in prop::collection::vec(op_strategy(), 1..120),
    ) {
        let mut sweep = ReservationCalendar::new();
        let mut naive = NaiveCalendar::new();
        // cap_a may be zero: flavor A then rejects everything, which
        // must be rejected *identically* on both sides.
        sweep.set_capacity(FLAVORS[0], cap_a);
        sweep.set_capacity(FLAVORS[1], cap_b);
        naive.set_capacity(FLAVORS[0], cap_a);
        naive.set_capacity(FLAVORS[1], cap_b);

        let (seen_sweep, admitted_sweep) = replay!(&mut sweep, &ops);
        let (seen_naive, admitted_naive) = replay!(&mut naive, &ops);
        prop_assert_eq!(&seen_sweep, &seen_naive);
        prop_assert_eq!(&admitted_sweep, &admitted_naive);

        // Post-state agrees too: every admitted lease reads back the
        // same, with the same revocation flag.
        for id in &admitted_sweep {
            let ls = sweep.get(*id).expect("admitted lease readable");
            let ln = naive.get(*id).expect("admitted lease readable");
            prop_assert_eq!(
                (ls.start, ls.end, ls.count, ls.flavor),
                (ln.start, ln.end, ln.count, ln.flavor)
            );
            prop_assert_eq!(sweep.is_revoked(*id), naive.is_revoked(*id));
        }

        // And the usage-analysis archive view is order-identical.
        for flavor in FLAVORS {
            let ids_sweep: Vec<u64> = sweep.leases_for(flavor).iter().map(|l| l.id.0).collect();
            let ids_naive: Vec<u64> = naive.leases_for(flavor).iter().map(|l| l.id.0).collect();
            prop_assert_eq!(ids_sweep, ids_naive);
        }
    }
}
