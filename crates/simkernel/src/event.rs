//! A generic time-ordered event queue with stable FIFO tie-breaking, plus a
//! small process clock used by subsystem simulations (serving, scheduler).
//!
//! The queue is a `BinaryHeap` over `(Reverse(time), Reverse(seq))` so that
//! (a) the earliest event pops first and (b) events scheduled at the same
//! instant pop in insertion order — important for determinism when, e.g.,
//! several reservations end at the top of the hour.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: invert so earliest (time, seq) is the maximum.
        (Reverse(self.time), Reverse(self.seq)).cmp(&(Reverse(other.time), Reverse(other.seq)))
    }
}

/// Time-ordered event queue.
///
/// ```
/// use opml_simkernel::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime(10), "later");
/// q.push(SimTime(5), "sooner");
/// q.push(SimTime(5), "sooner-but-second");
/// assert_eq!(q.pop().unwrap(), (SimTime(5), "sooner"));
/// assert_eq!(q.pop().unwrap(), (SimTime(5), "sooner-but-second"));
/// assert_eq!(q.pop().unwrap(), (SimTime(10), "later"));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    pops: u64,
    high_water: usize,
}

/// Lifetime statistics of an [`EventQueue`], for the telemetry layer.
/// The kernel deliberately has no telemetry dependency (telemetry
/// depends on the kernel for `SimTime`); callers read these counters
/// into their metrics registry instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Total events ever scheduled.
    pub pushes: u64,
    /// Total events ever dequeued.
    pub pops: u64,
    /// Largest number of simultaneously pending events.
    pub high_water: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pops: 0,
            high_water: 0,
        }
    }

    /// Create an empty queue sized for `capacity` pending events, so a
    /// hot loop with a predictable backlog never regrows the heap.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            pops: 0,
            high_water: 0,
        }
    }

    /// Schedule `payload` at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
        self.high_water = self.high_water.max(self.heap.len());
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let popped = self.heap.pop().map(|e| (e.time, e.payload));
        if popped.is_some() {
            self.pops += 1;
        }
        popped
    }

    /// Lifetime push/pop/high-water statistics.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            pushes: self.next_seq,
            pops: self.pops,
            high_water: self.high_water,
        }
    }

    /// The timestamp of the earliest event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drain all events scheduled at or before `now`, in order.
    pub fn pop_due(&mut self, now: SimTime) -> Vec<(SimTime, E)> {
        let mut due = Vec::new();
        while self.peek_time().is_some_and(|t| t <= now) {
            due.push(self.pop().expect("peeked event must pop"));
        }
        due
    }
}

/// A monotone simulation clock with convenience advancing.
///
/// Subsystems that simulate wall-clock-like progress (the serving simulator,
/// the job scheduler) own one of these; the semester driver owns another.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProcessClock {
    now: SimTime,
}

impl ProcessClock {
    /// A clock at semester start.
    pub fn new() -> Self {
        ProcessClock { now: SimTime::ZERO }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance by `d` and return the new time.
    pub fn advance(&mut self, d: SimDuration) -> SimTime {
        self.now += d;
        self.now
    }

    /// Jump forward to `t` (no-op if `t` is in the past — the clock is
    /// monotone by construction).
    pub fn advance_to(&mut self, t: SimTime) -> SimTime {
        if t > self.now {
            self.now = t;
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), 3);
        q.push(SimTime(10), 1);
        q.push(SimTime(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_same_time() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_splits_correctly() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), 'a');
        q.push(SimTime(10), 'b');
        q.push(SimTime(15), 'c');
        let due = q.pop_due(SimTime(10));
        assert_eq!(
            due.iter().map(|(_, e)| *e).collect::<Vec<_>>(),
            vec!['a', 'b']
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime(15)));
    }

    #[test]
    fn clock_is_monotone() {
        let mut c = ProcessClock::new();
        c.advance(SimDuration::hours(2));
        assert_eq!(c.now(), SimTime(120));
        c.advance_to(SimTime(60)); // backwards jump ignored
        assert_eq!(c.now(), SimTime(120));
        c.advance_to(SimTime(240));
        assert_eq!(c.now(), SimTime(240));
    }

    #[test]
    fn stats_track_pushes_pops_high_water() {
        let mut q = EventQueue::new();
        assert_eq!(q.stats(), QueueStats::default());
        q.push(SimTime(1), 'a');
        q.push(SimTime(2), 'b');
        q.push(SimTime(3), 'c');
        let _ = q.pop();
        q.push(SimTime(4), 'd');
        let stats = q.stats();
        assert_eq!(stats.pushes, 4);
        assert_eq!(stats.pops, 1);
        assert_eq!(stats.high_water, 3);
        while q.pop().is_some() {}
        assert_eq!(q.stats().pops, 4);
        // Popping empty does not count.
        assert!(q.pop().is_none());
        assert_eq!(q.stats().pops, 4);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert!(q.pop().is_none());
        assert!(q.pop_due(SimTime(100)).is_empty());
    }
}
