//! Little-endian binary encode/decode helpers for on-disk spill runs.
//!
//! The out-of-core semester pipeline writes each shard's output as a
//! compact binary run file and streams it back during the k-way merge.
//! These helpers are the shared wire primitives: fixed-width integers
//! and floats (little-endian; floats by bit pattern, so the round trip
//! is exact for every value including signed zero), and length-prefixed
//! UTF-8 strings.
//!
//! Encoders append to a caller-owned `Vec<u8>` buffer and cannot fail;
//! decoders read from any [`std::io::Read`] and surface truncation as
//! `UnexpectedEof` and malformed payloads as `InvalidData` — never a
//! panic, because the decode path sits under the panic-freedom lint
//! roots of the streaming semester drivers.

use std::io::{self, Read};

/// Append one byte.
#[inline]
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a `u32`, little-endian.
#[inline]
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64`, little-endian.
#[inline]
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` by bit pattern (exact round trip, NaN included).
#[inline]
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Append a length-prefixed UTF-8 string (`u32` byte length + bytes).
///
/// Lengths are truncated to `u32::MAX` by the cast; every name the
/// simulator produces is far below that, and the decoder's length guard
/// rejects anything implausible anyway.
#[inline]
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Read one byte.
#[inline]
pub fn read_u8(r: &mut impl Read) -> io::Result<u8> {
    let mut buf = [0u8; 1];
    r.read_exact(&mut buf)?;
    let [b] = buf;
    Ok(b)
}

/// Read a little-endian `u32`.
#[inline]
pub fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Read a little-endian `u64`.
#[inline]
pub fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Read an `f64` by bit pattern.
#[inline]
pub fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    Ok(f64::from_bits(read_u64(r)?))
}

/// Read a length-prefixed UTF-8 string written by [`put_str`].
///
/// `max_len` bounds the allocation: a corrupt length prefix larger than
/// the caller's plausibility bound is `InvalidData`, not an attempted
/// multi-gigabyte allocation.
pub fn read_string(r: &mut impl Read, max_len: u32) -> io::Result<String> {
    let len = read_u32(r)?;
    if len > max_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("string length {len} exceeds bound {max_len}"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("invalid UTF-8: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xdead_beef);
        put_u64(&mut buf, u64::MAX - 1);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, 1234.5678);
        let mut r = buf.as_slice();
        assert_eq!(read_u8(&mut r).unwrap(), 7);
        assert_eq!(read_u32(&mut r).unwrap(), 0xdead_beef);
        assert_eq!(read_u64(&mut r).unwrap(), u64::MAX - 1);
        let z = read_f64(&mut r).unwrap();
        assert_eq!(z.to_bits(), (-0.0f64).to_bits(), "signed zero preserved");
        assert_eq!(read_f64(&mut r).unwrap(), 1234.5678);
        assert!(r.is_empty());
    }

    #[test]
    fn string_round_trip_and_guards() {
        let mut buf = Vec::new();
        put_str(&mut buf, "lab2-s007");
        put_str(&mut buf, "");
        let mut r = buf.as_slice();
        assert_eq!(read_string(&mut r, 1024).unwrap(), "lab2-s007");
        assert_eq!(read_string(&mut r, 1024).unwrap(), "");

        // Length beyond the bound is InvalidData, not an allocation.
        let mut huge = Vec::new();
        put_u32(&mut huge, u32::MAX);
        let err = read_string(&mut huge.as_slice(), 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Truncated payload is UnexpectedEof.
        let mut cut = Vec::new();
        put_str(&mut cut, "abcdef");
        cut.truncate(cut.len() - 2);
        let err = read_string(&mut cut.as_slice(), 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
