//! Order-stable parallel fan-out.
//!
//! The semester simulation is embarrassingly parallel over students and over
//! replications (seeds). Per the determinism contract, each unit of work
//! derives its own RNG stream from `(master_seed, index)`, and results are
//! collected **by index**, so the output is identical whether rayon runs the
//! closures on 1 thread or 64.

use crate::rng::split_seed;
use rayon::prelude::*;

/// Run `f(index, child_seed)` for `0..n` in parallel; results are returned
/// in index order regardless of execution order.
pub fn indexed_map<R, F>(n: usize, master_seed: u64, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, u64) -> R + Sync,
{
    (0..n)
        .into_par_iter()
        .map(|i| f(i, split_seed(master_seed, i as u64)))
        .collect()
}

/// Run independent replications of a whole simulation under distinct seeds
/// and return per-replication results in seed order.
///
/// Used by the experiment harness to average Table 1 over seeds and to put
/// spread bars on the figure reproductions.
pub fn replications<R, F>(n_reps: usize, master_seed: u64, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    (0..n_reps)
        .into_par_iter()
        .map(|rep| f(split_seed(master_seed, (1u64 << 63) | rep as u64)))
        .collect()
}

/// Run `f` inside a rayon pool pinned to exactly `threads` worker
/// threads, restoring the ambient pool configuration afterwards.
///
/// This is the **one** sanctioned way to pin a thread count: the
/// runtime verifiers (`verify-determinism`, the chaos zero-rate arm),
/// the scale sweep, and the thread-invariance tests all route through
/// it so pool construction cannot drift between callers. `threads == 0`
/// is normalized to 1 (a zero-thread pool cannot make progress).
pub fn with_thread_count<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .expect("build pinned thread pool")
        .install(f)
}

/// Number of worker threads in the rayon pool the caller is running
/// under (the pinned pool inside [`with_thread_count`], the ambient
/// global pool otherwise). Benchmarks record this next to the requested
/// count so a report can never silently claim parallelism it did not
/// have.
pub fn effective_thread_count() -> usize {
    rayon::current_num_threads()
}

/// Parallel map over a slice with index-stable output.
pub fn map_slice<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    items.par_iter().enumerate().map(|(i, t)| f(i, t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexed_map_is_deterministic() {
        let a = indexed_map(64, 42, |i, seed| (i, seed));
        let b = indexed_map(64, 42, |i, seed| (i, seed));
        assert_eq!(a, b);
        // Seeds are all distinct.
        let mut seeds: Vec<u64> = a.iter().map(|&(_, s)| s).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 64);
    }

    #[test]
    fn indexed_map_matches_sequential() {
        let par = indexed_map(100, 7, |i, seed| i as u64 + seed % 1000);
        let seq: Vec<u64> = (0..100)
            .map(|i| i as u64 + split_seed(7, i as u64) % 1000)
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn replications_distinct_seeds() {
        let seeds = replications(16, 5, |seed| seed);
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 16);
        // And distinct from the per-entity namespace of the same master.
        let entity = indexed_map(16, 5, |_, seed| seed);
        for s in &seeds {
            assert!(!entity.contains(s));
        }
    }

    #[test]
    fn map_slice_preserves_order() {
        let items = vec![10, 20, 30, 40];
        let out = map_slice(&items, |i, &x| x + i as i32);
        assert_eq!(out, vec![10, 21, 32, 43]);
    }

    #[test]
    fn with_thread_count_pins_and_restores() {
        let ambient = rayon::current_num_threads();
        let inside = with_thread_count(3, effective_thread_count);
        assert_eq!(inside, 3);
        assert_eq!(rayon::current_num_threads(), ambient, "pool must restore");
        // Nesting: the innermost pin wins, and unwinding restores outward.
        let (outer, inner) = with_thread_count(2, || {
            let inner = with_thread_count(5, rayon::current_num_threads);
            (rayon::current_num_threads(), inner)
        });
        assert_eq!((outer, inner), (2, 5));
        // A zero request is normalized to one worker, not a stuck pool.
        assert_eq!(with_thread_count(0, rayon::current_num_threads), 1);
    }

    #[test]
    fn with_thread_count_results_match_across_counts() {
        let runs: Vec<Vec<(usize, u64)>> = [1usize, 2, 8]
            .iter()
            .map(|&t| with_thread_count(t, || indexed_map(32, 9, |i, seed| (i, seed))))
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
    }
}
