//! Deterministic random-number generation.
//!
//! The simulation's reproducibility contract requires that every entity
//! (student, project group, job arrival process, …) draws from its **own**
//! stream, derived from a master seed and a stable entity identifier. That
//! way, adding parallelism or reordering the entity loop cannot perturb any
//! other entity's draws.
//!
//! The stream generator is **xoshiro256++** (Blackman & Vigna), seeded via
//! **SplitMix64** as its authors recommend. Both are implemented here, in
//! ~60 lines, to pin the exact stream across toolchain and dependency
//! upgrades.

/// Derive a child seed from a master seed and a stable stream identifier.
///
/// Uses one SplitMix64 step over `master ^ golden·id`, which decorrelates
/// even adjacent ids. The same `(master, id)` pair always yields the same
/// child seed.
#[inline]
pub fn split_seed(master: u64, id: u64) -> u64 {
    splitmix64(master ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ pseudo-random generator with convenience samplers.
///
/// Not cryptographic; period 2^256 − 1; passes BigCrush. All samplers are
/// inherent methods so call sites need no trait imports.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a 64-bit seed (expanded with SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut z = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *slot = splitmix64(z);
        }
        // xoshiro256++ must not be seeded with the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x1234_5678_9ABC_DEF0;
        }
        Rng { s }
    }

    /// Create the stream for entity `id` under `master`.
    pub fn for_stream(master: u64, id: u64) -> Self {
        Rng::new(split_seed(master, id))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform f64 in `(0, 1]` — safe to pass to `ln()`.
    #[inline]
    pub fn f64_open(&mut self) -> f64 {
        1.0 - self.f64()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method (unbiased).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64: lo > hi");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform f64 in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal via the Marsaglia polar method.
    pub fn normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Normal with the given mean and standard deviation.
    #[inline]
    pub fn normal_with(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.normal()
    }

    /// Lognormal: `exp(N(mu, sigma))`.
    ///
    /// Lab-duration overruns in the behaviour model are lognormal — the
    /// paper's Fig. 2 long tail is the sum of a handful of these.
    #[inline]
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Exponential with the given mean (`mean = 1/λ`).
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        -mean * self.f64_open().ln()
    }

    /// Pareto (Lomax-style, `x ≥ x_min`) with shape `alpha`.
    #[inline]
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        x_min / self.f64_open().powf(1.0 / alpha)
    }

    /// Gamma(shape k, scale θ) via Marsaglia–Tsang, with the standard boost
    /// for `k < 1`.
    pub fn gamma(&mut self, k: f64, theta: f64) -> f64 {
        assert!(k > 0.0 && theta > 0.0, "gamma requires positive parameters");
        if k < 1.0 {
            // Boost: Gamma(k) = Gamma(k+1) * U^(1/k)
            let g = self.gamma(k + 1.0, 1.0);
            let u = self.f64_open();
            return g * u.powf(1.0 / k) * theta;
        }
        let d = k - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = self.normal();
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = self.f64_open();
            if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v * theta;
            }
        }
    }

    /// Beta(a, b) via the two-gamma construction.
    ///
    /// The per-student "neglect propensity" trait is Beta-distributed: most
    /// students tear instances down, a minority reliably forget.
    pub fn beta(&mut self, a: f64, b: f64) -> f64 {
        let x = self.gamma(a, 1.0);
        let y = self.gamma(b, 1.0);
        x / (x + y)
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Sample an index from unnormalized non-negative weights.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index: weights sum to zero");
        let mut target = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_seed_is_stable_and_decorrelated() {
        assert_eq!(split_seed(7, 3), split_seed(7, 3));
        assert_ne!(split_seed(7, 3), split_seed(7, 4));
        assert_ne!(split_seed(7, 3), split_seed(8, 3));
        // Adjacent ids should not produce adjacent seeds.
        let d = split_seed(7, 3) ^ split_seed(7, 4);
        assert!(d.count_ones() > 8, "adjacent stream seeds too similar");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(5);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_open_never_zero() {
        let mut r = Rng::new(5);
        for _ in 0..10_000 {
            assert!(r.f64_open() > 0.0);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Rng::new(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (8_500..11_500).contains(&c),
                "bucket count {c} out of range"
            );
        }
    }

    #[test]
    fn range_u64_inclusive_bounds_hit() {
        let mut r = Rng::new(13);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            match r.range_u64(3, 5) {
                3 => saw_lo = true,
                5 => saw_hi = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(17);
        let n = 200_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.normal();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn lognormal_median() {
        let mut r = Rng::new(19);
        let mut xs: Vec<f64> = (0..50_001).map(|_| r.lognormal(1.0, 0.7)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        // Median of lognormal(mu, sigma) is exp(mu).
        assert!((median - 1.0f64.exp()).abs() < 0.1, "median {median}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = Rng::new(23);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn pareto_min_respected() {
        let mut r = Rng::new(29);
        for _ in 0..10_000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn gamma_mean_matches() {
        let mut r = Rng::new(31);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gamma(2.5, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.15, "mean {mean}"); // k*theta = 5
    }

    #[test]
    fn gamma_small_shape() {
        let mut r = Rng::new(37);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gamma(0.5, 1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn beta_bounds_and_mean() {
        let mut r = Rng::new(41);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.beta(2.0, 5.0);
            assert!((0.0..=1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 2.0 / 7.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = Rng::new(43);
        let mut counts = [0u32; 3];
        for _ in 0..90_000 {
            counts[r.weighted_index(&[1.0, 2.0, 6.0])] += 1;
        }
        assert!((counts[0] as f64 - 10_000.0).abs() < 1_500.0);
        assert!((counts[1] as f64 - 20_000.0).abs() < 2_000.0);
        assert!((counts[2] as f64 - 60_000.0).abs() < 3_000.0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(47);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(53);
        assert!(!(0..1000).any(|_| r.chance(0.0)));
        assert!((0..1000).all(|_| r.chance(1.0)));
    }
}
