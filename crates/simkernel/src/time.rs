//! Simulated time for the semester simulation.
//!
//! The unit of time is the **minute** since the start of the semester
//! (week 0, day 0, 00:00). The course in the paper spans 14 weeks with
//! instructional content in the first 10, so the whole simulation fits
//! comfortably in a `u64` of minutes.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Minutes in one hour.
pub const MINUTES_PER_HOUR: u64 = 60;
/// Minutes in one day.
pub const MINUTES_PER_DAY: u64 = 24 * MINUTES_PER_HOUR;
/// Minutes in one week.
pub const MINUTES_PER_WEEK: u64 = 7 * MINUTES_PER_DAY;

/// An instant in simulated time (minutes since semester start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time (minutes).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The start of the semester.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole weeks/days/hours/minutes into the semester.
    pub fn at(week: u64, day: u64, hour: u64, minute: u64) -> Self {
        SimTime(week * MINUTES_PER_WEEK + day * MINUTES_PER_DAY + hour * MINUTES_PER_HOUR + minute)
    }

    /// Construct from fractional hours since semester start.
    pub fn from_hours_f64(hours: f64) -> Self {
        SimTime((hours * MINUTES_PER_HOUR as f64).round().max(0.0) as u64)
    }

    /// Week index (0-based) containing this instant.
    pub fn week(self) -> u64 {
        self.0 / MINUTES_PER_WEEK
    }

    /// Day-of-week (0-based) of this instant.
    pub fn day_of_week(self) -> u64 {
        (self.0 % MINUTES_PER_WEEK) / MINUTES_PER_DAY
    }

    /// Hour-of-day of this instant.
    pub fn hour_of_day(self) -> u64 {
        (self.0 % MINUTES_PER_DAY) / MINUTES_PER_HOUR
    }

    /// Total fractional hours since semester start.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / MINUTES_PER_HOUR as f64
    }

    /// Duration elapsed since `earlier`; zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A span of whole minutes.
    pub fn minutes(m: u64) -> Self {
        SimDuration(m)
    }

    /// A span of whole hours.
    pub fn hours(h: u64) -> Self {
        SimDuration(h * MINUTES_PER_HOUR)
    }

    /// A span of fractional hours, rounded to the nearest minute.
    pub fn from_hours_f64(h: f64) -> Self {
        SimDuration((h * MINUTES_PER_HOUR as f64).round().max(0.0) as u64)
    }

    /// A span of whole days.
    pub fn days(d: u64) -> Self {
        SimDuration(d * MINUTES_PER_DAY)
    }

    /// A span of whole weeks.
    pub fn weeks(w: u64) -> Self {
        SimDuration(w * MINUTES_PER_WEEK)
    }

    /// The span as fractional hours — the unit of the paper's Table 1.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / MINUTES_PER_HOUR as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "week {}, day {}, {:02}:{:02}",
            self.week(),
            self.day_of_week(),
            self.hour_of_day(),
            self.0 % MINUTES_PER_HOUR
        )
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let h = self.0 / MINUTES_PER_HOUR;
        let m = self.0 % MINUTES_PER_HOUR;
        if h == 0 {
            write!(f, "{m}m")
        } else if m == 0 {
            write!(f, "{h}h")
        } else {
            write!(f, "{h}h{m:02}m")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calendar_roundtrip() {
        let t = SimTime::at(3, 2, 14, 30);
        assert_eq!(t.week(), 3);
        assert_eq!(t.day_of_week(), 2);
        assert_eq!(t.hour_of_day(), 14);
        assert_eq!(format!("{t}"), "week 3, day 2, 14:30");
    }

    #[test]
    fn hours_conversion() {
        assert_eq!(SimDuration::hours(5).as_hours_f64(), 5.0);
        assert_eq!(SimDuration::from_hours_f64(2.5).0, 150);
        assert!((SimTime::from_hours_f64(1.5).as_hours_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::at(0, 0, 1, 0) + SimDuration::hours(2);
        assert_eq!(t.hour_of_day(), 3);
        assert_eq!((t - SimTime::at(0, 0, 1, 0)).as_hours_f64(), 2.0);
        // Subtraction saturates rather than underflowing.
        assert_eq!((SimTime::ZERO - t).0, 0);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::at(0, 0, 5, 0);
        let b = SimTime::at(0, 0, 3, 0);
        assert_eq!(a.since(b).as_hours_f64(), 2.0);
        assert_eq!(b.since(a), SimDuration::ZERO);
    }

    #[test]
    fn duration_sum_and_display() {
        let total: SimDuration = [SimDuration::hours(1), SimDuration::minutes(30)]
            .into_iter()
            .sum();
        assert_eq!(total.0, 90);
        assert_eq!(format!("{total}"), "1h30m");
        assert_eq!(format!("{}", SimDuration::minutes(45)), "45m");
        assert_eq!(format!("{}", SimDuration::hours(2)), "2h");
    }

    #[test]
    fn week_constructor() {
        assert_eq!(SimDuration::weeks(2).0, 2 * 7 * 24 * 60);
        assert_eq!(SimDuration::days(1).0, 24 * 60);
    }
}
