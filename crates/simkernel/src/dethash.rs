//! Deterministic hashing for hot-path maps.
//!
//! `std::collections::HashMap`'s default [`std::hash::RandomState`] is
//! keyed per process. That is invisible to anything that iterates in
//! sorted order (the DL002 discipline), but it is *not* invisible to
//! allocation accounting: under insert/remove churn, whether a table
//! rehashes in place or grows depends on where tombstones landed, which
//! depends on the random key — so two identical runs can differ by a
//! couple of table-growth allocations. The counting allocator made that
//! jitter measurable (±2 allocations in `shard.sim` per run), and the
//! fix is the classic one: a fixed-seed hasher.
//!
//! [`DetHasher`] is FNV-1a (64-bit), seeded with the FNV offset basis —
//! deterministic across processes, platforms, and thread counts. It is
//! **not** DoS-resistant; use it only for maps keyed by simulation
//! state (ids the simulation itself generated), never for
//! attacker-controlled input. Map iteration order becomes deterministic
//! for a fixed insertion sequence as a side effect, but callers must
//! still sort before iterating where output order matters: the
//! iteration order is an implementation detail of the table, not a
//! contract.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a streaming hasher with a fixed seed.
#[derive(Debug, Clone)]
pub struct DetHasher(u64);

impl Default for DetHasher {
    fn default() -> Self {
        DetHasher(FNV_OFFSET)
    }
}

impl Hasher for DetHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// `BuildHasher` producing [`DetHasher`]s. Zero-sized and `const`
/// constructible, so maps can live in statics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildDetHasher;

impl BuildDetHasher {
    /// Const constructor (usable in `static` initialisers).
    pub const fn new() -> Self {
        BuildDetHasher
    }
}

impl BuildHasher for BuildDetHasher {
    type Hasher = DetHasher;

    #[inline]
    fn build_hasher(&self) -> DetHasher {
        DetHasher::default()
    }
}

/// A `HashMap` whose allocation behaviour is identical across runs.
pub type DetHashMap<K, V> = HashMap<K, V, BuildDetHasher>;

/// A `HashSet` with the same fixed-seed hasher.
pub type DetHashSet<T> = HashSet<T, BuildDetHasher>;

/// Empty [`DetHashMap`] (convenience: `HashMap::new` is not available
/// for custom hashers).
pub fn det_hash_map<K, V>() -> DetHashMap<K, V> {
    HashMap::with_hasher(BuildDetHasher)
}

/// Empty [`DetHashMap`] with a capacity hint.
pub fn det_hash_map_with_capacity<K, V>(capacity: usize) -> DetHashMap<K, V> {
    HashMap::with_capacity_and_hasher(capacity, BuildDetHasher)
}

/// Empty [`DetHashSet`].
pub fn det_hash_set<T>() -> DetHashSet<T> {
    HashSet::with_hasher(BuildDetHasher)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        BuildDetHasher.hash_one(value)
    }

    #[test]
    fn known_fnv1a_vectors() {
        let mut h = DetHasher::default();
        h.write(b"");
        assert_eq!(h.finish(), FNV_OFFSET);
        let mut h = DetHasher::default();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn hash_is_stable_across_builders() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"key"), hash_of(&"key"));
        assert_ne!(hash_of(&"key"), hash_of(&"yek"));
    }

    #[test]
    fn map_roundtrip_under_churn() {
        let mut m: DetHashMap<u64, Vec<u64>> = det_hash_map();
        for i in 0..1000u64 {
            m.insert(i, vec![i]);
            if i % 3 == 0 {
                m.remove(&(i / 2));
            }
        }
        assert!(m.contains_key(&999));
        assert!(!m.is_empty());
        let mut keys: Vec<u64> = m.keys().copied().collect();
        keys.sort_unstable();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    /// The property the hasher exists for: an identical insert/remove
    /// schedule produces an identical sequence of table capacities.
    #[test]
    fn growth_schedule_is_reproducible() {
        let run = || {
            let mut caps = Vec::new();
            let mut m: DetHashMap<u64, u64> = det_hash_map();
            for i in 0..500u64 {
                m.insert(i * 7919, i);
                if i % 5 == 0 {
                    m.remove(&((i / 2) * 7919));
                }
                caps.push(m.capacity());
            }
            caps
        };
        assert_eq!(run(), run());
    }
}
