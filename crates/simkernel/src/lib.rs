//! # opml-simkernel
//!
//! Discrete-event simulation kernel underpinning the course/testbed
//! reproduction of *The Cost of Teaching Operational ML* (SC Workshops '25).
//!
//! The kernel provides four things, each in its own module:
//!
//! * [`time`] — simulated time. The semester simulation counts **minutes**
//!   since the first day of class; helpers convert to hours/days/weeks and
//!   render calendar positions ("week 3, day 2, 14:30").
//! * [`rng`] — deterministic random-number generation. Every simulated
//!   entity (student, group, job) owns an independent stream derived from a
//!   master seed with SplitMix64, so results are bit-identical regardless of
//!   thread schedule or entity iteration order. The generator itself is
//!   xoshiro256++, implemented here so the simulation does not depend on the
//!   `rand` crate's version-to-version stream changes.
//! * [`stats`] — the statistics the paper's evaluation needs: streaming
//!   moments (Welford), exact percentiles, histograms (Fig. 2 is a
//!   per-student cost histogram), and the distribution samplers used by the
//!   behaviour model (lognormal, exponential, Pareto, Beta, Gamma), plus the
//!   two-sample Kolmogorov–Smirnov statistic and Population Stability Index
//!   used by the drift-detection substrate.
//! * [`event`] — a generic time-ordered event queue with stable FIFO
//!   tie-breaking, and a small process-clock wrapper.
//! * [`dethash`] — a fixed-seed FNV-1a `BuildHasher` (`DetHashMap`,
//!   `DetHashSet`) so map growth under churn is identical across runs;
//!   the default `RandomState` makes *allocation counts* seed-dependent
//!   even when outputs are fully deterministic.
//! * [`parallel`] — order-stable parallel fan-out over independent entities
//!   or replications (rayon), merging by index rather than reduction order.
//! * [`binio`] — little-endian binary wire primitives for the
//!   out-of-core spill-run format (panic-free decoders with typed
//!   `io::Error`s, so corrupt run files surface as errors, not crashes).
//!
//! ## Determinism contract
//!
//! All public entry points take an explicit `u64` seed. Two invocations with
//! the same seed produce identical results on any machine and any number of
//! threads. This is property-tested in each module.

pub mod binio;
pub mod dethash;
pub mod event;
pub mod parallel;
pub mod rng;
pub mod stats;
pub mod time;

pub use dethash::{det_hash_map, det_hash_set, BuildDetHasher, DetHashMap, DetHashSet};
pub use event::{EventQueue, ProcessClock, QueueStats};
pub use rng::{split_seed, Rng};
pub use stats::{Histogram, OnlineStats, Summary};
pub use time::{SimDuration, SimTime};
