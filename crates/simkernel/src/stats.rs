//! Statistics for the evaluation and for the monitoring/drift substrate.
//!
//! Three consumers drive this module's contents:
//!
//! 1. The **evaluation harness** needs per-student summaries (mean, median,
//!    percentiles, max) and histograms — Fig. 2 of the paper is a histogram
//!    of per-student cost; §5 quotes "75% of students would have exceeded"
//!    the expected cost, which is a quantile query.
//! 2. The **behaviour model** samples from the distributions in
//!    [`crate::rng`]; this module supplies the descriptive side.
//! 3. The **drift detector** (Unit 7's lab substrate) uses the two-sample
//!    Kolmogorov–Smirnov statistic and the Population Stability Index,
//!    implemented here so `opml-mlops` and the tests share one definition.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance via Welford's algorithm, plus min/max.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator (parallel-reduction friendly; Chan et al.).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n−1 denominator; 0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (∞ if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (−∞ if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }
}

/// A full descriptive summary of a finite sample, with exact percentiles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
    /// Sum of observations.
    pub sum: f64,
}

impl Summary {
    /// Summarize a sample. Returns an all-zero summary for an empty slice.
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                p25: 0.0,
                p50: 0.0,
                p75: 0.0,
                p90: 0.0,
                p99: 0.0,
                max: 0.0,
                sum: 0.0,
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        let mut acc = OnlineStats::new();
        for &v in values {
            acc.push(v);
        }
        Summary {
            count: values.len(),
            mean: acc.mean(),
            std_dev: acc.std_dev(),
            min: sorted[0],
            p25: percentile_sorted(&sorted, 25.0),
            p50: percentile_sorted(&sorted, 50.0),
            p75: percentile_sorted(&sorted, 75.0),
            p90: percentile_sorted(&sorted, 90.0),
            p99: percentile_sorted(&sorted, 99.0),
            max: sorted[sorted.len() - 1],
            sum: acc.sum(),
        }
    }
}

/// Percentile of a **sorted** sample via linear interpolation
/// (the "linear" / type-7 method used by NumPy's default).
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Fraction of the sample strictly exceeding `threshold`.
///
/// §5 of the paper: "75% of students would have exceeded this cost on AWS,
/// and 73% would have exceeded this cost on GCP".
pub fn fraction_above(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v > threshold).count() as f64 / values.len() as f64
}

/// A fixed-width histogram over `[lo, hi)` with overflow/underflow buckets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width buckets over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            // Floating-point edge: clamp to the last bucket.
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Record every value in a slice.
    pub fn record_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.record(x);
        }
    }

    /// Bucket counts (excludes under/overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// `(bucket_lo, bucket_hi, count)` triples.
    pub fn buckets(&self) -> Vec<(f64, f64, u64)> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w, c))
            .collect()
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// Two-sample Kolmogorov–Smirnov statistic (max |F1 − F2|).
///
/// Used by the drift detector on continuous features (e.g. prediction
/// confidence). Both samples must be non-empty.
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "KS needs non-empty samples");
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).expect("NaN in KS sample"));
    sb.sort_by(|x, y| x.partial_cmp(y).expect("NaN in KS sample"));
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        let (xa, xb) = (sa[i], sb[j]);
        if xa <= xb {
            i += 1;
        }
        if xb <= xa {
            j += 1;
        }
        let fa = i as f64 / sa.len() as f64;
        let fb = j as f64 / sb.len() as f64;
        d = d.max((fa - fb).abs());
    }
    d
}

/// Critical value for the two-sample KS test at significance `alpha`
/// (asymptotic formula `c(α)·√((n+m)/(n·m))`).
pub fn ks_critical(n: usize, m: usize, alpha: f64) -> f64 {
    let c = (-0.5 * (alpha / 2.0).ln()).sqrt();
    c * (((n + m) as f64) / ((n * m) as f64)).sqrt()
}

/// Population Stability Index between two samples over shared equal-width
/// buckets. PSI < 0.1 is conventionally "no shift"; > 0.25 "major shift".
pub fn psi(expected: &[f64], actual: &[f64], bins: usize) -> f64 {
    assert!(
        !expected.is_empty() && !actual.is_empty(),
        "PSI needs non-empty samples"
    );
    assert!(bins > 0);
    let lo = expected
        .iter()
        .chain(actual)
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let hi = expected
        .iter()
        .chain(actual)
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let hi = if hi > lo { hi } else { lo + 1.0 };
    let mut he = Histogram::new(lo, hi + 1e-9, bins);
    let mut ha = Histogram::new(lo, hi + 1e-9, bins);
    he.record_all(expected);
    ha.record_all(actual);
    let ne = expected.len() as f64;
    let na = actual.len() as f64;
    // Laplace smoothing so empty buckets don't blow up the log-ratio.
    let eps = 1e-4;
    he.counts()
        .iter()
        .zip(ha.counts())
        .map(|(&ce, &ca)| {
            let pe = (ce as f64 / ne).max(eps);
            let pa = (ca as f64 / na).max(eps);
            (pa - pe) * (pa / pe).ln()
        })
        .sum()
}

/// Pearson correlation of two equal-length samples.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson needs equal-length samples");
    assert!(a.len() >= 2, "pearson needs at least 2 points");
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

/// Two-proportion z-statistic (pooled), used by the A/B-test substrate.
pub fn two_proportion_z(success_a: u64, n_a: u64, success_b: u64, n_b: u64) -> f64 {
    assert!(n_a > 0 && n_b > 0, "z-test needs non-empty groups");
    let pa = success_a as f64 / n_a as f64;
    let pb = success_b as f64 / n_b as f64;
    let pool = (success_a + success_b) as f64 / (n_a + n_b) as f64;
    let se = (pool * (1.0 - pool) * (1.0 / n_a as f64 + 1.0 / n_b as f64)).sqrt();
    if se == 0.0 {
        0.0
    } else {
        (pa - pb) / se
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..300] {
            left.push(x);
        }
        for &x in &xs[300..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(3.0);
        a.push(5.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolation() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 4.0);
        assert!((percentile_sorted(&sorted, 50.0) - 2.5).abs() < 1e-12);
        assert!((percentile_sorted(&sorted, 25.0) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 30.0);
        assert_eq!(s.p50, 30.0);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 50.0);
        assert_eq!(s.sum, 150.0);
    }

    #[test]
    fn summary_of_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0.0);
    }

    #[test]
    fn fraction_above_counts_strict() {
        assert_eq!(fraction_above(&[1.0, 2.0, 3.0, 4.0], 2.0), 0.5);
        assert_eq!(fraction_above(&[], 1.0), 0.0);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record_all(&[-1.0, 0.0, 1.9, 2.0, 9.99, 10.0, 55.0]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.total(), 7);
        let buckets = h.buckets();
        assert_eq!(buckets.len(), 5);
        assert_eq!(buckets[0].0, 0.0);
        assert_eq!(buckets[4].1, 10.0);
    }

    #[test]
    fn ks_identical_samples_zero() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!(ks_statistic(&a, &a) < 1e-12);
    }

    #[test]
    fn ks_disjoint_samples_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0, 12.0];
        assert!((ks_statistic(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_detects_shift() {
        let mut r = Rng::new(99);
        let a: Vec<f64> = (0..2000).map(|_| r.normal()).collect();
        let b: Vec<f64> = (0..2000).map(|_| r.normal() + 1.0).collect();
        let d = ks_statistic(&a, &b);
        assert!(d > ks_critical(2000, 2000, 0.05), "shift undetected: D={d}");
        let c: Vec<f64> = (0..2000).map(|_| r.normal()).collect();
        let d0 = ks_statistic(&a, &c);
        assert!(
            d0 < ks_critical(2000, 2000, 0.001),
            "false positive: D={d0}"
        );
    }

    #[test]
    fn psi_zero_for_same_distribution() {
        let mut r = Rng::new(7);
        let a: Vec<f64> = (0..5000).map(|_| r.normal()).collect();
        let b: Vec<f64> = (0..5000).map(|_| r.normal()).collect();
        assert!(psi(&a, &b, 10) < 0.05);
    }

    #[test]
    fn psi_large_for_shifted_distribution() {
        let mut r = Rng::new(8);
        let a: Vec<f64> = (0..5000).map(|_| r.normal()).collect();
        let b: Vec<f64> = (0..5000).map(|_| r.normal() + 2.0).collect();
        assert!(psi(&a, &b, 10) > 0.25);
    }

    #[test]
    fn pearson_perfect_and_none() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(pearson(&a, &c), 0.0);
    }

    #[test]
    fn z_test_detects_difference() {
        // 60% vs 50% on 1000 each: z ≈ 4.5.
        let z = two_proportion_z(600, 1000, 500, 1000);
        assert!(z > 3.0, "z={z}");
        let z0 = two_proportion_z(500, 1000, 500, 1000);
        assert!(z0.abs() < 1e-12);
    }
}
