//! Property-based tests for the simulation kernel.

use opml_simkernel::event::EventQueue;
use opml_simkernel::parallel::indexed_map;
use opml_simkernel::rng::{split_seed, Rng};
use opml_simkernel::stats::{fraction_above, percentile_sorted, Histogram, OnlineStats, Summary};
use opml_simkernel::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events pop in nondecreasing time order regardless of push order.
    #[test]
    fn event_queue_pops_in_time_order(times in prop::collection::vec(0u64..100_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime(t), i);
        }
        let mut last = SimTime(0);
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// Same-time events preserve insertion order (stable FIFO).
    #[test]
    fn event_queue_fifo_at_equal_times(n in 1usize..100) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(SimTime(42), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    /// OnlineStats merge is equivalent to sequential accumulation at any
    /// split point.
    #[test]
    fn online_stats_merge_any_split(
        xs in prop::collection::vec(-1e6f64..1e6, 2..300),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..split] {
            a.push(x);
        }
        for &x in &xs[split..] {
            b.push(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() <= 1e-5 * (1.0 + whole.variance()));
    }

    /// Percentiles are monotone in p and bounded by min/max.
    #[test]
    fn percentiles_monotone_and_bounded(
        mut xs in prop::collection::vec(-1e9f64..1e9, 1..200),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let vlo = percentile_sorted(&xs, lo);
        let vhi = percentile_sorted(&xs, hi);
        prop_assert!(vlo <= vhi);
        prop_assert!(vlo >= xs[0] && vhi <= xs[xs.len() - 1]);
    }

    /// Summary is internally consistent.
    #[test]
    fn summary_consistency(xs in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let s = Summary::of(&xs);
        prop_assert_eq!(s.count, xs.len());
        prop_assert!(s.min <= s.p25 && s.p25 <= s.p50);
        prop_assert!(s.p50 <= s.p75 && s.p75 <= s.p90);
        prop_assert!(s.p90 <= s.p99 && s.p99 <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!((s.sum - xs.iter().sum::<f64>()).abs() < 1e-4 * (1.0 + s.sum.abs()));
    }

    /// Histogram conserves its observations.
    #[test]
    fn histogram_conserves_counts(
        xs in prop::collection::vec(-100.0f64..200.0, 0..500),
        bins in 1usize..50,
    ) {
        let mut h = Histogram::new(0.0, 100.0, bins);
        h.record_all(&xs);
        let bucketed: u64 = h.counts().iter().sum();
        prop_assert_eq!(bucketed + h.underflow() + h.overflow(), xs.len() as u64);
        prop_assert_eq!(h.total(), xs.len() as u64);
    }

    /// fraction_above is a proper CDF complement.
    #[test]
    fn fraction_above_bounds(
        xs in prop::collection::vec(-1e3f64..1e3, 1..100),
        t in -2e3f64..2e3,
    ) {
        let f = fraction_above(&xs, t);
        prop_assert!((0.0..=1.0).contains(&f));
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if t >= max {
            prop_assert_eq!(f, 0.0);
        }
    }

    /// Stream splitting: child streams are deterministic and (pairwise)
    /// distinct for distinct ids.
    #[test]
    fn split_seed_injective_enough(master in any::<u64>(), a in 0u64..10_000, b in 0u64..10_000) {
        prop_assert_eq!(split_seed(master, a), split_seed(master, a));
        if a != b {
            prop_assert_ne!(split_seed(master, a), split_seed(master, b));
        }
    }

    /// below(n) is always < n; range_u64 respects bounds.
    #[test]
    fn rng_bounds(seed in any::<u64>(), n in 1u64..1_000_000, lo in 0u64..1000, span in 0u64..1000) {
        let mut rng = Rng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(n) < n);
            let v = rng.range_u64(lo, lo + span);
            prop_assert!((lo..=lo + span).contains(&v));
        }
    }

    /// Sim time arithmetic is consistent: (t + d) − t == d.
    #[test]
    fn time_add_sub_roundtrip(t in 0u64..1_000_000, d in 0u64..1_000_000) {
        let base = SimTime(t);
        let dur = SimDuration(d);
        prop_assert_eq!((base + dur) - base, dur);
        prop_assert_eq!((base + dur).since(base), dur);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Per-entity streams: `indexed_map` results equal the sequential
    /// per-stream computation, at any rayon thread count (DESIGN.md §7).
    #[test]
    fn indexed_map_matches_sequential_at_any_thread_count(
        master in any::<u64>(),
        n in 1usize..48,
    ) {
        let sequential: Vec<(u64, u64)> = (0..n)
            .map(|i| {
                let mut rng = Rng::for_stream(master, i as u64);
                (rng.next_u64(), rng.below(1000))
            })
            .collect();
        for threads in [1usize, 4] {
            let parallel = opml_simkernel::parallel::with_thread_count(threads, || {
                indexed_map(n, master, |_, seed| {
                    let mut rng = Rng::new(seed);
                    (rng.next_u64(), rng.below(1000))
                })
            });
            prop_assert_eq!(&parallel, &sequential, "threads={}", threads);
        }
    }

    /// Adding entities never perturbs existing streams: the first `m`
    /// results of an `n`-entity fan-out equal the `m`-entity fan-out.
    #[test]
    fn streams_are_prefix_stable(master in any::<u64>(), m in 1usize..24, extra in 0usize..24) {
        let n = m + extra;
        let small = indexed_map(m, master, |i, seed| (i, Rng::new(seed).next_u64()));
        let large = indexed_map(n, master, |i, seed| (i, Rng::new(seed).next_u64()));
        prop_assert_eq!(&large[..m], &small[..]);
    }
}
