//! Ablation (extension): would spot/preemptible capacity fix the §6 cost
//! problem?
//!
//! The course's GPU-heavy rows dominate the AWS lab bill; spot pricing
//! discounts them ~3–4× — but lab sessions are interactive and
//! uncheckpointed, so a meaningful share of students would be kicked
//! mid-exercise. This experiment prices the GPU lab usage both ways and
//! reports the interruption rate alongside the saving, quantifying why
//! the paper's "commercial clouds are operationally risky for teaching"
//! conclusion survives the spot counter-argument.

use crate::context::ExperimentContext;
use opml_pricing::catalog::Provider;
use opml_pricing::requirement::for_tag;
use opml_pricing::spot::SpotQuote;
use opml_report::compare::{Comparison, ComparisonSet};
use opml_report::table::{fmt_usd, Table};

/// Price the GPU lab rows on spot and compare.
pub fn run(ctx: &ExperimentContext, seed: u64) -> (String, ComparisonSet) {
    let mut table = Table::new(&[
        "Provider",
        "GPU labs on-demand",
        "GPU labs spot",
        "Saving",
        "Students interrupted mid-lab",
    ]);
    let mut cmp = ComparisonSet::new("abl_spot");
    for provider in Provider::ALL {
        // Sum the GPU rows of the priced table, keeping their rates.
        let mut on_demand_total = 0.0;
        let mut spot_total = 0.0;
        let mut weighted_interrupt = 0.0;
        let mut gpu_hours = 0.0;
        for row in &ctx.table.rows {
            if !row.flavor.has_gpu() {
                continue;
            }
            let Some(pricing) = for_tag(&row.tag) else {
                continue;
            };
            let Some(inst) = opml_pricing::equivalence::resolve(&pricing, provider) else {
                continue;
            };
            // Lab sessions: 2–3-hour slots, no checkpointing.
            let session_h = 3.0;
            let q = SpotQuote::quote(
                provider,
                row.instance_hours,
                inst.hourly_usd,
                session_h,
                session_h,
                seed ^ row.instance_hours as u64,
            );
            on_demand_total += q.on_demand_usd;
            spot_total += q.spot_usd;
            weighted_interrupt += q.interrupted_fraction * row.instance_hours;
            gpu_hours += row.instance_hours;
        }
        let interrupt_rate = weighted_interrupt / gpu_hours.max(1e-9);
        let saving = 1.0 - spot_total / on_demand_total.max(1e-9);
        table.row(&[
            provider.name().to_string(),
            fmt_usd(on_demand_total),
            fmt_usd(spot_total),
            format!("{:.0}%", saving * 100.0),
            format!("{:.0}%", interrupt_rate * 100.0),
        ]);
        cmp.push(Comparison::new(
            &format!("{} spot saves >40% on GPU labs (1=true)", provider.name()),
            1.0,
            f64::from(saving > 0.40),
            0.0,
            "",
        ));
        cmp.push(Comparison::new(
            &format!("{} >10% of sessions interrupted (1=true)", provider.name()),
            1.0,
            f64::from(interrupt_rate > 0.10),
            0.0,
            "",
        ));
    }
    (table.render(), cmp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::run_paper_course;

    #[test]
    fn spot_saves_money_but_interrupts_students() {
        let ctx = run_paper_course(53);
        let (text, cmp) = run(&ctx, 53);
        assert!(text.contains("Saving"));
        for c in &cmp.rows {
            assert!(c.within_tolerance(), "{} (measured {})", c.name, c.measured);
        }
    }
}
