//! Fig. 1 reproduction: expected vs. actual per-student infrastructure
//! duration, split into (a) VM labs and (b) bare-metal/edge labs.

use crate::context::ExperimentContext;
use crate::paper;
use opml_cohort::labspec::lab_specs;
use opml_report::chart::paired_bar_chart;
use opml_report::compare::{Comparison, ComparisonSet};

/// `(lab tag, expected per-student hours, actual per-student hours)`.
pub type Fig1Row = (String, f64, f64);

/// Compute both panels.
pub fn rows(ctx: &ExperimentContext) -> (Vec<Fig1Row>, Vec<Fig1Row>) {
    let mut vm = Vec::new();
    let mut leased = Vec::new();
    for spec in lab_specs() {
        let expected = spec.expected_hours * spec.node_count as f64;
        let actual = ctx.rollup.per_student_hours(spec.tag);
        let row = (spec.tag.to_string(), expected, actual);
        if spec.is_leased() {
            leased.push(row);
        } else {
            vm.push(row);
        }
    }
    (vm, leased)
}

/// Render both panels and compare against the paper's per-student
/// actuals (Table 1 hours ÷ 191).
pub fn run(ctx: &ExperimentContext) -> (String, ComparisonSet) {
    let (vm, leased) = rows(ctx);
    let mut text = String::from("(a) VM instances (no auto-termination)\n");
    text.push_str(&paired_bar_chart(&vm, 50));
    text.push_str("\n(b) Bare metal and edge (advance reservation, auto-terminated)\n");
    text.push_str(&paired_bar_chart(&leased, 50));

    let mut cmp = ComparisonSet::new("fig1");
    let paper_actual = |tag: &str| -> f64 {
        paper::TABLE1
            .iter()
            .filter(|r| r.tag == tag)
            .map(|r| r.instance_hours)
            .sum::<f64>()
            / paper::ENROLLMENT as f64
    };
    for (tag, _, actual) in vm.iter().chain(&leased) {
        cmp.push(Comparison::new(
            &format!("{tag} actual h/student"),
            paper_actual(tag),
            *actual,
            0.30,
            "h",
        ));
    }
    // The figure's qualitative claims.
    let vm_overrun = vm.iter().all(|(_, e, a)| a > &(e * 2.0));
    cmp.push(Comparison::new(
        "all VM labs overrun >2x expected (1=true)",
        1.0,
        f64::from(vm_overrun),
        0.0,
        "",
    ));
    let leased_close = leased
        .iter()
        .filter(|(tag, _, _)| !tag.contains("single") && tag != "lab5-multi")
        .all(|(_, e, a)| (a / e - 1.0).abs() < 0.5);
    cmp.push(Comparison::new(
        "bare-metal labs track expected (1=true)",
        1.0,
        f64::from(leased_close),
        0.0,
        "",
    ));
    (text, cmp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::run_paper_course;

    #[test]
    fn fig1_shape_holds() {
        let ctx = run_paper_course(43);
        let (vm, leased) = rows(&ctx);
        assert_eq!(vm.len(), 5);
        assert_eq!(leased.len(), 7);
        // Panel (a): every VM lab's actual exceeds expected.
        for (tag, expected, actual) in &vm {
            assert!(
                actual > &(expected * 2.0),
                "{tag}: actual {actual:.1} should dwarf expected {expected:.1}"
            );
        }
        // Panel (b): plain bare-metal labs stay near expected …
        for (tag, expected, actual) in &leased {
            if ["lab4-multi", "lab6-edge", "lab6-system", "lab6-opt"].contains(&tag.as_str()) {
                assert!(
                    (actual / expected - 1.0).abs() < 0.5,
                    "{tag}: actual {actual:.2} vs expected {expected:.2}"
                );
            }
        }
        // … with the paper's two documented exceptions:
        let get = |t: &str| leased.iter().find(|(tag, _, _)| tag == t).unwrap().clone();
        let (_, e, a) = get("lab4-single");
        assert!(a < e, "single-GPU absorbed into multi-GPU sessions");
        let (_, e, a) = get("lab5-multi");
        assert!(a > 1.5 * e, "multi-GPU re-booking exceeds expected");
    }

    #[test]
    fn fig1_comparisons_mostly_pass() {
        let ctx = run_paper_course(44);
        let (text, cmp) = run(&ctx);
        assert!(text.contains("(a) VM instances"));
        assert!(cmp.pass_rate() > 0.8, "pass rate {}", cmp.pass_rate());
    }
}
