//! Runtime replay-equivalence verifier (`run-experiments verify-determinism`).
//!
//! The static pass (`opml-detlint`) catches nondeterminism *patterns*; this
//! module checks the *outcome*: it runs the headline experiments (`table1`
//! and `fig2`) twice per rayon thread count — 1 thread and the machine's
//! parallelism — with the same seed, hashes every serialized result, and
//! demands byte-identical digests across all four runs. Any hash-order
//! leak, float-reassociation under parallel scheduling, or wall-clock
//! dependence shows up as a digest mismatch.

use opml_report::Table;

use crate::{fig2, table1};

/// Digest of one experiment run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunDigest {
    /// Rayon threads the run was pinned to.
    pub threads: usize,
    /// Repetition index at this thread count (0 or 1).
    pub rep: usize,
    /// FNV-1a 64 hash over every serialized artifact of the run.
    pub hash: u64,
}

/// Outcome of the verification sweep.
#[derive(Debug)]
pub struct VerifyOutcome {
    /// Seed used for every run.
    pub seed: u64,
    /// One digest per (thread count, repetition).
    pub digests: Vec<RunDigest>,
}

impl VerifyOutcome {
    /// True when every run produced the same digest.
    pub fn is_equivalent(&self) -> bool {
        self.digests.windows(2).all(|w| w[0].hash == w[1].hash)
    }

    /// Render the sweep as an opml-report table.
    pub fn to_table(&self) -> String {
        let mut table = Table::new(&["threads", "rep", "digest"]);
        for d in &self.digests {
            table.row(&[
                d.threads.to_string(),
                d.rep.to_string(),
                format!("{:016x}", d.hash),
            ]);
        }
        let verdict = if self.is_equivalent() {
            "replay-equivalent"
        } else {
            "MISMATCH"
        };
        table.footer(&["verdict".to_string(), String::new(), verdict.to_string()]);
        table.render()
    }
}

use crate::digest::fnv1a64;

/// Run `table1` + `fig2` once — with telemetry recording — and digest
/// every serialized artifact, including the telemetry trace bytes, so a
/// nondeterministic event stream fails verification too.
fn digest_one(seed: u64) -> u64 {
    let sink = opml_telemetry::MemorySink::new();
    let telemetry = opml_telemetry::Telemetry::with_sink(sink.clone());
    let ctx = crate::run_paper_course_with(seed, &telemetry);
    let (t1_text, t1_cmp) = table1::run(&ctx);
    let (f2_text, f2_cmp) = fig2::run(&ctx);
    let mut blob = opml_telemetry::export_jsonl(&sink.events());
    blob.push_str(&t1_text);
    blob.push_str(&f2_text);
    blob.push_str(&serde_json::to_string(&t1_cmp).expect("serialize table1 comparisons"));
    blob.push_str(&serde_json::to_string(&f2_cmp).expect("serialize fig2 comparisons"));
    blob.push_str(&serde_json::to_string(&ctx.per_student).expect("serialize per-student usage"));
    blob.push_str(&serde_json::to_string(&ctx.rollup).expect("serialize rollup"));
    blob.push_str(&format!("records={}", ctx.outcome.ledger.records().len()));
    fnv1a64(blob.as_bytes())
}

/// Run the sweep: two repetitions at each thread count.
///
/// Thread counts default to `[1, available_parallelism]` when `threads`
/// is empty, so the check covers both the degenerate serial schedule and
/// the machine's real one.
pub fn verify_determinism(seed: u64, threads: &[usize]) -> VerifyOutcome {
    let default_counts;
    let counts: &[usize] = if threads.is_empty() {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        default_counts = [1, n.max(2)];
        &default_counts
    } else {
        threads
    };
    let mut digests = Vec::new();
    for &t in counts {
        for rep in 0..2 {
            let hash = opml_simkernel::parallel::with_thread_count(t, || digest_one(seed));
            digests.push(RunDigest {
                threads: t,
                rep,
                hash,
            });
        }
    }
    VerifyOutcome { seed, digests }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_match_across_thread_counts() {
        let out = verify_determinism(7, &[1, 3]);
        assert_eq!(out.digests.len(), 4);
        assert!(out.is_equivalent(), "{}", out.to_table());
    }
}
