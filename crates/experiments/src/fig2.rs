//! Fig. 2 reproduction: distribution of estimated per-student cost to
//! execute the lab assignments on commercial clouds.

use crate::context::ExperimentContext;
use crate::paper;
use opml_cohort::labspec::expected_usage_per_student;
use opml_pricing::catalog::Provider;
use opml_pricing::estimate::{expected_student_cost, per_student_lab_costs, ExpectedUsage};
use opml_report::chart::histogram_chart;
use opml_report::compare::{Comparison, ComparisonSet};
use opml_simkernel::stats::{fraction_above, Summary};
use opml_simkernel::Histogram;

/// Distribution statistics for one provider.
#[derive(Debug, Clone)]
pub struct Fig2Stats {
    /// Provider.
    pub provider: Provider,
    /// Per-student cost summary.
    pub summary: Summary,
    /// Expected (baseline) per-student cost.
    pub expected: f64,
    /// Fraction of students above the expected cost.
    pub frac_above_expected: f64,
}

/// Compute the per-student distribution for one provider.
pub fn stats(ctx: &ExperimentContext, provider: Provider) -> Fig2Stats {
    let costs: Vec<f64> = per_student_lab_costs(&ctx.per_student, provider)
        .into_iter()
        .map(|(_, c)| c)
        .collect();
    let expected_rows: Vec<ExpectedUsage> = expected_usage_per_student()
        .into_iter()
        .map(|(tag, ih, fh)| ExpectedUsage {
            tag,
            instance_hours: ih,
            fip_hours: fh,
        })
        .collect();
    let expected = expected_student_cost(&expected_rows, provider);
    Fig2Stats {
        provider,
        frac_above_expected: fraction_above(&costs, expected),
        summary: Summary::of(&costs),
        expected,
    }
}

/// Render histograms and compare against §5.
pub fn run(ctx: &ExperimentContext) -> (String, ComparisonSet) {
    let mut text = String::new();
    let mut cmp = ComparisonSet::new("fig2");
    for provider in Provider::ALL {
        let s = stats(ctx, provider);
        let costs: Vec<f64> = per_student_lab_costs(&ctx.per_student, provider)
            .into_iter()
            .map(|(_, c)| c)
            .collect();
        let mut hist = Histogram::new(0.0, 700.0, 14);
        hist.record_all(&costs);
        text.push_str(&format!(
            "\n{} per-student lab cost (mean {:.0}, median {:.0}, max {:.0}; expected {:.2}; {:.0}% above expected)\n",
            s.provider.name(),
            s.summary.mean,
            s.summary.p50,
            s.summary.max,
            s.expected,
            s.frac_above_expected * 100.0
        ));
        text.push_str(&histogram_chart(&hist.buckets(), 40));
        let (paper_mean, paper_max, paper_frac, paper_expected) = match provider {
            Provider::Aws => (
                paper::LAB_AWS_PER_STUDENT,
                paper::MAX_STUDENT_AWS,
                paper::FRAC_ABOVE_EXPECTED_AWS,
                paper::EXPECTED_AWS_PER_STUDENT,
            ),
            Provider::Gcp => (
                paper::LAB_GCP_PER_STUDENT,
                paper::MAX_STUDENT_GCP,
                paper::FRAC_ABOVE_EXPECTED_GCP,
                paper::EXPECTED_GCP_PER_STUDENT,
            ),
        };
        let p = provider.name();
        cmp.push(Comparison::new(
            &format!("{p} mean cost/student"),
            paper_mean,
            s.summary.mean,
            0.12,
            "$",
        ));
        cmp.push(Comparison::new(
            &format!("{p} expected cost/student"),
            paper_expected,
            s.expected,
            0.10,
            "$",
        ));
        cmp.push(Comparison::new(
            &format!("{p} fraction above expected"),
            paper_frac,
            s.frac_above_expected,
            0.12,
            "",
        ));
        // The cohort maximum is the single noisiest statistic here (one
        // draw from a heavy tail, in the paper as much as in the
        // simulation), hence the wide tolerance.
        cmp.push(Comparison::new(
            &format!("{p} most expensive student"),
            paper_max,
            s.summary.max,
            0.50,
            "$",
        ));
    }
    (text, cmp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::run_paper_course;

    #[test]
    fn distribution_shape_matches_paper() {
        let ctx = run_paper_course(42);
        let aws = stats(&ctx, Provider::Aws);
        // Mean near $124.
        assert!(
            (aws.summary.mean / paper::LAB_AWS_PER_STUDENT - 1.0).abs() < 0.12,
            "AWS mean {}",
            aws.summary.mean
        );
        // Long tail: max several times the mean.
        assert!(
            aws.summary.max > 2.5 * aws.summary.mean,
            "max {} vs mean {}",
            aws.summary.max,
            aws.summary.mean
        );
        // Roughly three quarters exceed the expected cost.
        assert!(
            (aws.frac_above_expected - 0.75).abs() < 0.10,
            "frac above expected {}",
            aws.frac_above_expected
        );
        // Expected baseline lands near $79.80.
        assert!(
            (aws.expected / paper::EXPECTED_AWS_PER_STUDENT - 1.0).abs() < 0.10,
            "expected {}",
            aws.expected
        );
        let gcp = stats(&ctx, Provider::Gcp);
        assert!(
            gcp.summary.mean < aws.summary.mean,
            "GCP labs are cheaper overall"
        );
    }

    #[test]
    fn comparisons_mostly_pass() {
        let ctx = run_paper_course(46);
        let (text, cmp) = run(&ctx);
        assert!(text.contains("AWS per-student"));
        assert!(cmp.pass_rate() >= 0.75, "pass rate {}", cmp.pass_rate());
    }
}
