//! §5 project-phase cost reproduction.

use crate::context::ExperimentContext;
use crate::paper;
use opml_pricing::catalog::Provider;
use opml_pricing::estimate::price_project;
use opml_report::compare::{Comparison, ComparisonSet};
use opml_report::table::{fmt_num, fmt_usd, Table};

/// Render the project summary and compare costs/storage against §5.
pub fn run(ctx: &ExperimentContext) -> (String, ComparisonSet) {
    let p = &ctx.project;
    let aws = price_project(p, Provider::Aws);
    let gcp = price_project(p, Provider::Gcp);
    let per_student = paper::ENROLLMENT as f64;

    let mut table = Table::new(&["Quantity", "Value"]);
    table.row(&["VM hours (no GPU)".into(), fmt_num(p.vm_hours, 0)]);
    table.row(&["GPU instance hours".into(), fmt_num(p.gpu_hours, 0)]);
    table.row(&[
        "Bare-metal CPU hours".into(),
        fmt_num(p.baremetal_cpu_hours, 0),
    ]);
    table.row(&["Edge device hours".into(), fmt_num(p.edge_hours, 0)]);
    table.row(&[
        "Peak block storage (GB)".into(),
        fmt_num(p.peak_block_gb as f64, 0),
    ]);
    table.row(&["Object storage (GB)".into(), fmt_num(p.object_gb, 0)]);
    table.row(&[
        "AWS cost".into(),
        format!("{} ({}/student)", fmt_usd(aws), fmt_usd(aws / per_student)),
    ]);
    table.row(&[
        "GCP cost".into(),
        format!("{} ({}/student)", fmt_usd(gcp), fmt_usd(gcp / per_student)),
    ]);

    let mut cmp = ComparisonSet::new("project_cost");
    cmp.push(Comparison::new(
        "project AWS cost",
        paper::PROJECT_AWS_USD,
        aws,
        0.15,
        "$",
    ));
    cmp.push(Comparison::new(
        "project GCP cost",
        paper::PROJECT_GCP_USD,
        gcp,
        0.15,
        "$",
    ));
    cmp.push(Comparison::new(
        "project block storage",
        paper::PROJECT_BLOCK_GB,
        p.peak_block_gb as f64,
        0.25,
        "GB",
    ));
    cmp.push(Comparison::new(
        "project object storage",
        paper::PROJECT_OBJECT_GB,
        p.object_gb,
        0.25,
        "GB",
    ));
    (table.render(), cmp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::run_paper_course;

    #[test]
    fn project_costs_near_paper() {
        let ctx = run_paper_course(48);
        let (text, cmp) = run(&ctx);
        assert!(text.contains("AWS cost"));
        for c in &cmp.rows {
            assert!(
                c.within_tolerance(),
                "{}: paper {} vs measured {} (ratio {:.3})",
                c.name,
                c.paper,
                c.measured,
                c.ratio()
            );
        }
    }
}
