//! The paper's headline numbers: 186,692 total compute-instance hours,
//! ≈$250 per student, just under $50,000 for the course.

use crate::context::ExperimentContext;
use crate::paper;
use opml_pricing::catalog::Provider;
use opml_pricing::estimate::price_project;
use opml_report::compare::{Comparison, ComparisonSet};
use opml_report::table::{fmt_num, fmt_usd, Table};

/// Compute and compare the headline figures.
pub fn run(ctx: &ExperimentContext) -> (String, ComparisonSet) {
    let lab_hours = ctx.table.total.instance_hours;
    let project_hours = ctx.project.total_instance_hours();
    let total_hours = lab_hours + project_hours;
    let per_student_aws = ctx.table.total.aws_per_student
        + price_project(&ctx.project, Provider::Aws) / paper::ENROLLMENT as f64;
    let per_student_gcp = ctx.table.total.gcp_per_student
        + price_project(&ctx.project, Provider::Gcp) / paper::ENROLLMENT as f64;
    let course_aws = per_student_aws * paper::ENROLLMENT as f64;
    let course_gcp = per_student_gcp * paper::ENROLLMENT as f64;

    let mut table = Table::new(&["Headline", "Paper", "Measured"]);
    table.row(&[
        "Total compute instance hours".into(),
        fmt_num(paper::TOTAL_INSTANCE_HOURS, 0),
        fmt_num(total_hours, 0),
    ]);
    table.row(&[
        "Cost per student (AWS, labs+project)".into(),
        format!("≈{}", fmt_usd(paper::TOTAL_PER_STUDENT_USD)),
        fmt_usd(per_student_aws),
    ]);
    table.row(&[
        "Cost per student (GCP, labs+project)".into(),
        format!("≈{}", fmt_usd(paper::TOTAL_PER_STUDENT_USD)),
        fmt_usd(per_student_gcp),
    ]);
    table.row(&[
        "Whole-course cost (AWS)".into(),
        format!("<{}", fmt_usd(paper::TOTAL_COURSE_USD)),
        fmt_usd(course_aws),
    ]);

    let mut cmp = ComparisonSet::new("headline");
    cmp.push(Comparison::new(
        "total instance hours",
        paper::TOTAL_INSTANCE_HOURS,
        total_hours,
        0.10,
        "h",
    ));
    cmp.push(Comparison::new(
        "per-student cost (AWS)",
        paper::TOTAL_PER_STUDENT_USD,
        per_student_aws,
        0.15,
        "$",
    ));
    cmp.push(Comparison::new(
        "per-student cost (GCP)",
        paper::TOTAL_PER_STUDENT_USD,
        per_student_gcp,
        0.15,
        "$",
    ));
    cmp.push(Comparison::new(
        "course under $50k (1=true)",
        1.0,
        f64::from(course_aws < paper::TOTAL_COURSE_USD && course_gcp < paper::TOTAL_COURSE_USD),
        0.0,
        "",
    ));
    (table.render(), cmp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::run_paper_course;

    #[test]
    fn headline_numbers_hold() {
        let ctx = run_paper_course(49);
        let (_, cmp) = run(&ctx);
        for c in &cmp.rows {
            assert!(
                c.within_tolerance(),
                "{}: paper {} vs measured {} (ratio {:.3})",
                c.name,
                c.paper,
                c.measured,
                c.ratio()
            );
        }
    }
}
