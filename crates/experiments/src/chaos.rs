//! Chaos ablation: what does unreliability cost?
//!
//! The paper's cost pathologies — idle reservations, forgotten
//! deployments, leaked floating IPs — all have the same shape: a student
//! hits friction, walks away, and the meter keeps running. This
//! experiment injects that friction deliberately. The same cohort is
//! re-simulated under a [`FaultProfile::chaos`] plan at increasing
//! injection rates, and the instance-hour and commercial-cost deltas
//! against the fault-free baseline are reported.
//!
//! Determinism contract: the zero-rate arm must produce a byte-identical
//! trace-and-ledger digest to the fault-free baseline (an inert plan
//! draws nothing), and every arm replays byte-identically for a fixed
//! seed. `run-experiments chaos` exits nonzero if the zero-rate arm
//! diverges.

use opml_cohort::semester::{simulate_semester_with, SemesterConfig};
use opml_faults::{site_key, FaultProfile, FaultStats};
use opml_metering::rollup::AssignmentRollup;
use opml_pricing::estimate::price_lab_assignments;
use opml_report::latency::{latency_table, LatencyUnit};
use opml_report::table::{fmt_num, fmt_usd, Table};
use opml_telemetry::{export_jsonl, MemorySink, MetricsSnapshot, Telemetry};

/// What to sweep.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Semester seed (also seeds the fault plan).
    pub seed: u64,
    /// Cohort size (default 191, the paper's enrollment).
    pub enrollment: u32,
    /// Injection rates to sweep. A zero rate is always prepended so the
    /// inert-plan identity is checked on every run.
    pub rates: Vec<f64>,
    /// Rayon threads every arm is pinned to (via
    /// [`opml_simkernel::parallel::with_thread_count`], the shared pool
    /// helper) so the inert-plan identity is checked under a known
    /// schedule.
    pub threads: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 42,
            enrollment: 191,
            rates: vec![0.05, 0.2],
            threads: 1,
        }
    }
}

/// One arm of the sweep.
#[derive(Debug, Clone)]
pub struct ChaosArm {
    /// Injection rate (`None` = the fault-free baseline profile).
    pub rate: Option<f64>,
    /// FNV-1a digest over the exported telemetry trace and the closed
    /// usage ledger — byte-identity proxy for the whole run.
    pub digest: u64,
    /// Total metered instance hours.
    pub instance_hours: f64,
    /// Lab AWS cost.
    pub aws_usd: f64,
    /// Lab GCP cost.
    pub gcp_usd: f64,
    /// Failure-path counters from the run.
    pub stats: FaultStats,
    /// Quota denials (faults can amplify these).
    pub quota_denials: u64,
    /// Metrics snapshot from the arm's run (histograms feed the
    /// latency tables; not part of the digest).
    pub metrics: MetricsSnapshot,
}

impl ChaosArm {
    /// Human label for the arm ("fault-free baseline" / "chaos rate R").
    pub fn label(&self) -> String {
        match self.rate {
            None => "fault-free baseline".to_string(),
            Some(r) => format!("chaos rate {r:.2}"),
        }
    }
}

/// Sweep outcome: the rendered table, all arms (baseline first), and
/// whether the zero-rate arm reproduced the baseline digest.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Rendered comparison table.
    pub text: String,
    /// Baseline arm followed by one arm per requested rate.
    pub arms: Vec<ChaosArm>,
    /// Zero-rate digest == baseline digest (the inert-plan identity).
    pub zero_rate_matches_baseline: bool,
}

fn run_arm(seed: u64, enrollment: u32, rate: Option<f64>) -> ChaosArm {
    let sink = MemorySink::new();
    let telemetry = Telemetry::with_sink(sink.clone());
    let config = SemesterConfig {
        enrollment,
        weeks: 14,
        run_projects: false,
        vm_auto_terminate_after: None,
        faults: match rate {
            None => FaultProfile::none(),
            Some(r) => FaultProfile::chaos(r),
        },
        shard_students: 191,
    };
    let outcome = simulate_semester_with(&config, seed, &telemetry);
    let jsonl = export_jsonl(&sink.events());
    let ledger_json = serde_json::to_string(&outcome.ledger).expect("ledger serializes");
    let digest = site_key(&jsonl) ^ site_key(&ledger_json).rotate_left(1);
    let rollup = AssignmentRollup::from_ledger(&outcome.ledger, enrollment as usize);
    let priced = price_lab_assignments(&rollup);
    ChaosArm {
        rate,
        digest,
        instance_hours: priced.total.instance_hours,
        aws_usd: priced.total.aws_usd,
        gcp_usd: priced.total.gcp_usd,
        stats: outcome.faults,
        quota_denials: outcome.quota_denials,
        metrics: telemetry.metrics_snapshot(),
    }
}

/// Run the sweep: fault-free baseline, then a zero-rate chaos arm (the
/// identity check), then each requested rate. All arms execute inside
/// one pinned pool of `config.threads` rayon threads.
pub fn run(config: &ChaosConfig) -> ChaosReport {
    let (baseline, arms) = opml_simkernel::parallel::with_thread_count(config.threads, || {
        let baseline = run_arm(config.seed, config.enrollment, None);
        let mut arms = vec![baseline.clone()];
        arms.push(run_arm(config.seed, config.enrollment, Some(0.0)));
        for &rate in &config.rates {
            if rate > 0.0 {
                arms.push(run_arm(config.seed, config.enrollment, Some(rate)));
            }
        }
        (baseline, arms)
    });
    let zero_rate_matches_baseline = arms[1].digest == baseline.digest;

    let mut table = Table::new(&[
        "Arm",
        "Injected",
        "Abandoned",
        "Leaked",
        "Instance hours",
        "Δ hours",
        "AWS cost",
        "Δ AWS",
        "GCP cost",
    ]);
    for arm in &arms {
        table.row(&[
            arm.label(),
            arm.stats.injected.to_string(),
            arm.stats.abandoned.to_string(),
            arm.stats.leaked.to_string(),
            fmt_num(arm.instance_hours, 0),
            fmt_num(arm.instance_hours - baseline.instance_hours, 0),
            fmt_usd(arm.aws_usd),
            fmt_usd(arm.aws_usd - baseline.aws_usd),
            fmt_usd(arm.gcp_usd),
        ]);
    }
    let mut text = table.render();
    text.push_str(&format!(
        "\nzero-rate digest {} baseline ({:#018x} vs {:#018x})\n",
        if zero_rate_matches_baseline {
            "matches"
        } else {
            "DIVERGES FROM"
        },
        arms[1].digest,
        baseline.digest,
    ));
    // Per-arm latency tables, in the same shape as the metrics summary
    // and the serve report (count/mean/p50/p90/p99/max).
    for arm in &arms {
        if arm.metrics.histograms.is_empty() {
            continue;
        }
        text.push_str(&format!("\n{} — sim-time latency:\n", arm.label()));
        text.push_str(&latency_table(
            "histogram (sim time)",
            LatencyUnit::Hours,
            arm.metrics.histograms.iter().map(|(n, h)| (n.as_str(), h)),
        ));
    }
    ChaosReport {
        text,
        arms,
        zero_rate_matches_baseline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(rates: Vec<f64>) -> ChaosConfig {
        ChaosConfig {
            seed: 7,
            enrollment: 6,
            rates,
            threads: 2,
        }
    }

    #[test]
    fn zero_rate_is_byte_identical_to_baseline() {
        let report = run(&tiny(vec![]));
        assert!(report.zero_rate_matches_baseline, "{}", report.text);
        assert_eq!(report.arms[0].instance_hours, report.arms[1].instance_hours);
        assert_eq!(report.arms[1].stats.total(), 0);
    }

    #[test]
    fn latency_tables_render_per_arm() {
        let report = run(&tiny(vec![]));
        assert!(
            report.text.contains("— sim-time latency:"),
            "per-arm latency tables missing:\n{}",
            report.text
        );
        assert!(
            report.text.contains("p50 h") && report.text.contains("p99 h"),
            "percentile columns missing:\n{}",
            report.text
        );
        assert!(
            report.text.contains("instance.lifetime"),
            "instance.lifetime histogram missing:\n{}",
            report.text
        );
    }

    #[test]
    fn faults_cost_money_and_replay_deterministically() {
        let report = run(&tiny(vec![0.25]));
        let chaotic = &report.arms[2];
        assert!(chaotic.stats.injected > 0, "nothing injected at 25%");
        assert_ne!(
            chaotic.digest, report.arms[0].digest,
            "chaos arm should perturb the trace"
        );
        let again = run(&tiny(vec![0.25]));
        assert_eq!(chaotic.digest, again.arms[2].digest, "chaos must replay");
    }
}
