//! Quota validation — §4's "Logistics for classroom use".
//!
//! The course negotiated 600 simultaneous instances / 1,200 cores /
//! 2.5 TB RAM / 300 floating IPs for KVM\@TACC. This experiment checks
//! that the simulated cohort's **peak concurrency** (a quantity the
//! paper's ledger-style data cannot show directly) fits that quota with
//! sane headroom, and that the pre-increase default quota would have
//! deadlocked the course — the reason the arrangement was needed.

use crate::context::ExperimentContext;
use opml_report::compare::{Comparison, ComparisonSet};
use opml_report::table::{fmt_num, Table};
use opml_testbed::quota::Quota;

/// Compute peak-concurrency numbers and compare against quotas.
pub fn run(ctx: &ExperimentContext) -> (String, ComparisonSet) {
    let ledger = &ctx.outcome.ledger;
    let peak_instances = ledger.peak_concurrent_instances();
    let peak_cores = ledger.peak_concurrent_cores();
    let quota = Quota::paper_course();
    let default_quota = Quota::chameleon_default();

    let mut table = Table::new(&["Quantity", "Negotiated quota", "Simulated peak", "Headroom"]);
    table.row(&[
        "Simultaneous instances".into(),
        fmt_num(quota.instances as f64, 0),
        fmt_num(peak_instances as f64, 0),
        format!(
            "{:.0}%",
            (1.0 - peak_instances as f64 / quota.instances as f64) * 100.0
        ),
    ]);
    table.row(&[
        "Simultaneous cores".into(),
        fmt_num(quota.cores as f64, 0),
        fmt_num(peak_cores as f64, 0),
        format!(
            "{:.0}%",
            (1.0 - peak_cores as f64 / quota.cores as f64) * 100.0
        ),
    ]);
    table.row(&[
        "Quota denials over the semester".into(),
        String::new(),
        fmt_num(ctx.outcome.quota_denials as f64, 0),
        String::new(),
    ]);

    let mut cmp = ComparisonSet::new("capacity");
    cmp.push(Comparison::new(
        "peak instances within negotiated quota (1=true)",
        1.0,
        f64::from(peak_instances <= quota.instances),
        0.0,
        "",
    ));
    cmp.push(Comparison::new(
        "peak cores within negotiated quota (1=true)",
        1.0,
        f64::from(peak_cores <= quota.cores),
        0.0,
        "",
    ));
    cmp.push(Comparison::new(
        "default quota would be exceeded >10x (1=true)",
        1.0,
        f64::from(peak_instances > default_quota.instances * 10),
        0.0,
        "",
    ));
    // The quota was sized with real headroom but not absurdly: peak
    // should land between 25% and 100% of the negotiated limits.
    cmp.push(Comparison::new(
        "negotiated quota is the right order of magnitude (1=true)",
        1.0,
        f64::from(peak_instances * 4 >= quota.instances && peak_instances <= quota.instances),
        0.0,
        "",
    ));
    (table.render(), cmp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::run_paper_course;

    #[test]
    fn quota_story_holds() {
        let ctx = run_paper_course(52);
        let (text, cmp) = run(&ctx);
        assert!(text.contains("Simultaneous instances"));
        for c in &cmp.rows {
            assert!(c.within_tolerance(), "{}: measured {}", c.name, c.measured);
        }
    }
}
