//! Shared experiment context: one simulated semester plus its rollups.

use opml_cohort::semester::{simulate_semester_with, SemesterConfig, SemesterOutcome};
use opml_metering::rollup::{AssignmentRollup, PerStudentUsage};
use opml_pricing::estimate::{price_lab_assignments, ProjectUsageSummary, Table1};
use opml_telemetry::Telemetry;

/// Everything the figure/table reproductions consume.
#[derive(Debug)]
pub struct ExperimentContext {
    /// The raw semester outcome (ledger + counters).
    pub outcome: SemesterOutcome,
    /// Per-assignment rollup.
    pub rollup: AssignmentRollup,
    /// Per-student usage.
    pub per_student: PerStudentUsage,
    /// Priced Table 1.
    pub table: Table1,
    /// Project-phase summary.
    pub project: ProjectUsageSummary,
    /// Seed used.
    pub seed: u64,
}

/// Simulate the paper's course (191 students, projects on) and derive
/// every rollup the experiments need.
pub fn run_paper_course(seed: u64) -> ExperimentContext {
    run_paper_course_with(seed, &Telemetry::disabled())
}

/// Like [`run_paper_course`], with the semester simulation emitting its
/// trace and metrics through `telemetry`.
pub fn run_paper_course_with(seed: u64, telemetry: &Telemetry) -> ExperimentContext {
    let config = SemesterConfig::paper_course();
    let outcome = simulate_semester_with(&config, seed, telemetry);
    let rollup = AssignmentRollup::from_ledger(&outcome.ledger, config.enrollment as usize);
    let per_student = PerStudentUsage::from_ledger(&outcome.ledger);
    let table = price_lab_assignments(&rollup);
    let project = ProjectUsageSummary::from_ledger(&outcome.ledger);
    ExperimentContext {
        outcome,
        rollup,
        per_student,
        table,
        project,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_populates_every_view() {
        let ctx = run_paper_course(31);
        assert!(ctx.table.total.instance_hours > 10_000.0);
        assert_eq!(ctx.per_student.students.len(), 191);
        assert!(ctx.project.vm_hours > 10_000.0);
        assert!(!ctx.rollup.rows.is_empty());
    }
}
