//! Scale sweep (`run-experiments scale`): sharded cohort simulation at
//! large enrollments.
//!
//! The monolithic semester driver saturates its shared reservation
//! calendar as the cohort grows (placement scans get super-cubically
//! slower), so enrollments far beyond the paper's 191 are infeasible
//! unsharded. The sharded driver replicates the campus per
//! [`SemesterConfig::shard_students`] students, simulates shards in
//! parallel and merges deterministically. This sweep runs one cohort at
//! several rayon thread counts plus the strictly sequential reference,
//! digests each outcome, and demands byte-equivalence across all of
//! them.
//!
//! Wall-clock use in this module is confined to the timing helper and
//! explicitly suppressed for `opml-detlint` — the measured times are
//! reported, never fed back into simulation state.

use crate::digest::fnv1a64;
use opml_cohort::semester::{
    simulate_semester, simulate_semester_serial, SemesterConfig, SemesterOutcome,
};
use opml_report::table::{fmt_num, Table};
use opml_simkernel::parallel::with_thread_count;

/// What to sweep.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Semester seed.
    pub seed: u64,
    /// Cohort size.
    pub enrollment: u32,
    /// Students per shard (the paper's 191 by default).
    pub shard_students: u32,
    /// Rayon thread counts for the parallel arms.
    pub threads: Vec<usize>,
    /// Skip the timed sequential reference and run each parallel arm
    /// once, untimed — the fast mode `check.sh` uses for its golden
    /// digest smoke.
    pub digest_only: bool,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            seed: 42,
            enrollment: 100_000,
            shard_students: 191,
            threads: vec![1, 2, 4, 8],
            digest_only: false,
        }
    }
}

/// One arm of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleArm {
    /// Rayon threads (`None` = the strictly sequential reference).
    pub threads: Option<usize>,
    /// Wall time in seconds (`None` in digest-only mode).
    pub wall_s: Option<f64>,
    /// FNV-1a digest of the serialized outcome.
    pub digest: u64,
    /// Ledger records in the merged outcome.
    pub records: usize,
}

/// Sweep outcome.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// Rendered table.
    pub text: String,
    /// Sequential reference followed by one arm per thread count.
    pub arms: Vec<ScaleArm>,
    /// All digests identical (sequential vs every thread count).
    pub equivalent: bool,
    /// Peak resident set of this process in kB (`VmHWM`), if readable.
    pub peak_rss_kb: Option<u64>,
}

/// Digest every determinism-relevant byte of an outcome: the full
/// serialized ledger plus the scalar counters and fault stats.
pub fn digest_outcome(outcome: &SemesterOutcome) -> u64 {
    let mut blob = serde_json::to_string(&outcome.ledger).expect("ledger serializes");
    blob.push_str(&format!(
        "|qd={}|pb={}|faults={:?}",
        outcome.quota_denials, outcome.slot_pushbacks, outcome.faults
    ));
    fnv1a64(blob.as_bytes())
}

/// Labs-only config for the sweep (projects plan against per-shard
/// campuses too, but the scale story in the paper is about labs).
fn sweep_config(config: &ScaleConfig) -> SemesterConfig {
    SemesterConfig {
        enrollment: config.enrollment,
        run_projects: false,
        shard_students: config.shard_students,
        ..SemesterConfig::paper_course()
    }
}

/// Wall-time one run. The simulator itself never reads the clock; this
/// measures it from outside, which is the one sanctioned use.
fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    // detlint::allow(DL001): harness measures wall time by design
    let start = std::time::Instant::now();
    let r = f();
    // detlint::allow(DL001): harness measures wall time by design
    (r, start.elapsed().as_secs_f64())
}

/// Peak resident set (`VmHWM`) of the current process, in kB.
///
/// Hoisted into the shared profiler layer; re-exported here because
/// existing callers (`bench_semester`, the scale report) import it from
/// this module.
pub use opml_profiler::peak_rss_kb;

/// Run the sweep: the strictly sequential reference first (skipped in
/// digest-only mode — its digest is still produced, untimed, at one
/// thread), then one sharded arm per requested thread count.
pub fn run(config: &ScaleConfig) -> ScaleReport {
    let sem = sweep_config(config);
    let mut arms = Vec::new();
    if config.digest_only {
        let outcome = simulate_semester_serial(&sem, config.seed);
        arms.push(ScaleArm {
            threads: None,
            wall_s: None,
            digest: digest_outcome(&outcome),
            records: outcome.ledger.records().len(),
        });
        for &t in &config.threads {
            let outcome = with_thread_count(t, || simulate_semester(&sem, config.seed));
            arms.push(ScaleArm {
                threads: Some(t),
                wall_s: None,
                digest: digest_outcome(&outcome),
                records: outcome.ledger.records().len(),
            });
        }
    } else {
        let (outcome, wall) = timed(|| simulate_semester_serial(&sem, config.seed));
        arms.push(ScaleArm {
            threads: None,
            wall_s: Some(wall),
            digest: digest_outcome(&outcome),
            records: outcome.ledger.records().len(),
        });
        for &t in &config.threads {
            let (outcome, wall) =
                timed(|| with_thread_count(t, || simulate_semester(&sem, config.seed)));
            arms.push(ScaleArm {
                threads: Some(t),
                wall_s: Some(wall),
                digest: digest_outcome(&outcome),
                records: outcome.ledger.records().len(),
            });
        }
    }
    let equivalent = arms.windows(2).all(|w| w[0].digest == w[1].digest);

    let mut table = Table::new(&["arm", "wall s", "records", "digest"]);
    for arm in &arms {
        table.row(&[
            match arm.threads {
                None => "sequential".to_string(),
                Some(t) => format!("{t} threads"),
            },
            arm.wall_s
                .map_or_else(|| "-".to_string(), |w| fmt_num(w, 3)),
            arm.records.to_string(),
            format!("{:016x}", arm.digest),
        ]);
    }
    let verdict = if equivalent {
        "byte-equivalent"
    } else {
        "MISMATCH"
    };
    table.footer(&[
        "verdict".to_string(),
        String::new(),
        String::new(),
        verdict.to_string(),
    ]);
    let mut text = table.render();
    text.push_str(&format!(
        "\nenrollment {} | shard_students {} | seed {} | digest={:016x}\n",
        config.enrollment, config.shard_students, config.seed, arms[0].digest
    ));
    ScaleReport {
        text,
        arms,
        equivalent,
        peak_rss_kb: peak_rss_kb(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_is_equivalent_across_thread_counts() {
        let report = run(&ScaleConfig {
            seed: 7,
            enrollment: 40,
            shard_students: 12,
            threads: vec![1, 2, 8],
            digest_only: true,
        });
        assert!(report.equivalent, "{}", report.text);
        assert_eq!(report.arms.len(), 4);
        assert!(report.arms[0].records > 0);
    }

    #[test]
    fn digest_is_seed_sensitive() {
        let arm = |seed| {
            run(&ScaleConfig {
                seed,
                enrollment: 24,
                shard_students: 8,
                threads: vec![],
                digest_only: true,
            })
            .arms[0]
                .digest
        };
        assert_ne!(arm(1), arm(2));
    }

    #[test]
    fn peak_rss_is_readable_on_linux() {
        // /proc is available everywhere the harness runs; tolerate None
        // elsewhere rather than asserting a platform.
        if let Some(kb) = peak_rss_kb() {
            assert!(kb > 0);
        }
    }
}
