//! Scale sweep (`run-experiments scale`): sharded cohort simulation at
//! large enrollments.
//!
//! The monolithic semester driver saturates its shared reservation
//! calendar as the cohort grows (placement scans get super-cubically
//! slower), so enrollments far beyond the paper's 191 are infeasible
//! unsharded. The sharded driver replicates the campus per
//! [`SemesterConfig::shard_students`] students, simulates shards in
//! parallel and merges deterministically. This sweep runs one cohort at
//! several rayon thread counts plus the strictly sequential reference,
//! digests each outcome, and demands byte-equivalence across all of
//! them.
//!
//! ## Out-of-core mode
//!
//! With a spill directory (`--spill-dir`) or a memory budget the
//! estimated in-memory peak would exceed (`--mem-budget-mb`), each arm
//! runs through [`opml_cohort::spill::simulate_semester_streaming`]:
//! shard outputs go to on-disk runs and the digest consumes the merged
//! record stream incrementally ([`OutcomeDigest`]), so peak RSS is
//! O(shard), not O(cohort). The stream is byte-identical to the
//! in-memory merge, hence so is the digest — the spill differential
//! test and the `check.sh` forced-spill smoke pin this against the
//! committed goldens.
//!
//! Peak RSS is observed with the profiler's [`RssSampler`] timeline
//! (plus the `VmHWM` high-water fallback) and reported alongside a
//! budget-exceeded verdict so the RSS gate is observable, not inferred.
//!
//! Wall-clock use in this module is confined to the timing helper and
//! explicitly suppressed for `opml-detlint` — the measured times are
//! reported, never fed back into simulation state.

use crate::digest::{fnv1a64, Fnv64};
use opml_cohort::semester::{
    simulate_semester, simulate_semester_serial, SemesterConfig, SemesterOutcome,
};
use opml_cohort::spill::{
    simulate_semester_streaming, simulate_semester_streaming_serial, SpillConfig, StreamOutcome,
};
use opml_faults::FaultStats;
use opml_profiler::RssSampler;
use opml_report::table::{fmt_num, Table};
use opml_simkernel::parallel::with_thread_count;
use opml_telemetry::Telemetry;
use opml_testbed::ledger::UsageRecord;
use std::path::PathBuf;
use std::time::Duration;

/// What to sweep.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Semester seed.
    pub seed: u64,
    /// Cohort size.
    pub enrollment: u32,
    /// Students per shard (the paper's 191 by default).
    pub shard_students: u32,
    /// Rayon thread counts for the parallel arms.
    pub threads: Vec<usize>,
    /// Skip the timed sequential reference and run each parallel arm
    /// once, untimed — the fast mode `check.sh` uses for its golden
    /// digest smoke.
    pub digest_only: bool,
    /// Spill shard runs to this directory (out-of-core mode). `None`
    /// defaults to a per-process temp directory when spilling is
    /// triggered by `mem_budget_mb`.
    pub spill_dir: Option<PathBuf>,
    /// Peak-RSS budget in MB. Spilling engages when the estimated
    /// in-memory peak exceeds it; the report records whether the
    /// *observed* peak stayed within it.
    pub mem_budget_mb: Option<u64>,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            seed: 42,
            enrollment: 100_000,
            shard_students: 191,
            threads: vec![1, 2, 4, 8],
            digest_only: false,
            spill_dir: None,
            mem_budget_mb: None,
        }
    }
}

/// One arm of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleArm {
    /// Rayon threads (`None` = the strictly sequential reference).
    pub threads: Option<usize>,
    /// Wall time in seconds (`None` in digest-only mode).
    pub wall_s: Option<f64>,
    /// FNV-1a digest of the serialized outcome.
    pub digest: u64,
    /// Ledger records in the merged outcome.
    pub records: usize,
}

/// Sweep outcome.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// Rendered table.
    pub text: String,
    /// Sequential reference followed by one arm per thread count.
    pub arms: Vec<ScaleArm>,
    /// All digests identical (sequential vs every thread count).
    pub equivalent: bool,
    /// Peak resident set in kB: the maximum of the sampled timeline
    /// over the sweep, falling back to process `VmHWM`.
    pub peak_rss_kb: Option<u64>,
    /// Whether the arms ran through the out-of-core spill path.
    pub spilled: bool,
    /// The configured memory budget, if any.
    pub mem_budget_mb: Option<u64>,
    /// `Some(true)` when a budget was set and the observed peak
    /// exceeded it. Informational here; the hard gate lives in
    /// `bench_semester --check`.
    pub budget_exceeded: Option<bool>,
}

/// Digest every determinism-relevant byte of an outcome: the full
/// serialized ledger plus the scalar counters and fault stats.
pub fn digest_outcome(outcome: &SemesterOutcome) -> u64 {
    let mut blob = serde_json::to_string(&outcome.ledger).expect("ledger serializes");
    blob.push_str(&format!(
        "|qd={}|pb={}|faults={:?}",
        outcome.quota_denials, outcome.slot_pushbacks, outcome.faults
    ));
    fnv1a64(blob.as_bytes())
}

/// Incremental form of [`digest_outcome`] for the streaming path:
/// records are folded one at a time as the merge delivers them, and
/// the result is bit-identical to digesting the materialized outcome
/// (`Ledger` serializes as `{"records":[...]}` and a record's
/// standalone serialization equals its in-array serialization).
#[derive(Debug)]
pub struct OutcomeDigest {
    hash: Fnv64,
    first: bool,
}

impl OutcomeDigest {
    /// Start a digest (opens the serialized-ledger envelope).
    pub fn new() -> OutcomeDigest {
        let mut hash = Fnv64::new();
        hash.update(b"{\"records\":[");
        OutcomeDigest { hash, first: true }
    }

    /// Fold the next merged record.
    pub fn push(&mut self, record: &UsageRecord) {
        if self.first {
            self.first = false;
        } else {
            self.hash.update(b",");
        }
        let json = serde_json::to_string(record).expect("record serializes");
        self.hash.update(json.as_bytes());
    }

    /// Close the envelope, fold the scalar counters, return the digest.
    pub fn finish(mut self, quota_denials: u64, slot_pushbacks: u64, faults: &FaultStats) -> u64 {
        self.hash.update(b"]}");
        self.hash.update(
            format!("|qd={quota_denials}|pb={slot_pushbacks}|faults={faults:?}").as_bytes(),
        );
        self.hash.finish()
    }
}

impl Default for OutcomeDigest {
    fn default() -> Self {
        OutcomeDigest::new()
    }
}

/// Labs-only config for the sweep (projects plan against per-shard
/// campuses too, but the scale story in the paper is about labs).
fn sweep_config(config: &ScaleConfig) -> SemesterConfig {
    SemesterConfig {
        enrollment: config.enrollment,
        run_projects: false,
        shard_students: config.shard_students,
        ..SemesterConfig::paper_course()
    }
}

/// Estimated in-memory peak RSS for a cohort of `enrollment` students,
/// in MB. Calibrated from observed peaks of the in-memory path
/// (~30 GB at 1M students ≈ 32 KiB/student); deliberately coarse — it
/// only decides *whether* to spill under `--mem-budget-mb`.
pub fn estimated_peak_mb(enrollment: u32) -> u64 {
    u64::from(enrollment) * 32 / 1024
}

/// Wall-time one run. The simulator itself never reads the clock; this
/// measures it from outside, which is the one sanctioned use.
fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    // detlint::allow(DL001): harness measures wall time by design
    let start = std::time::Instant::now();
    let r = f();
    // detlint::allow(DL001): harness measures wall time by design
    (r, start.elapsed().as_secs_f64())
}

/// Peak resident set (`VmHWM`) of the current process, in kB.
///
/// Hoisted into the shared profiler layer; re-exported here because
/// existing callers (`bench_semester`, the scale report) import it from
/// this module.
pub use opml_profiler::peak_rss_kb;

/// Run one spill arm: stream the merged ledger into an incremental
/// digest, never materializing it.
fn spill_arm(
    sem: &SemesterConfig,
    seed: u64,
    spill: &SpillConfig,
    threads: Option<usize>,
) -> ScaleArm {
    let mut digest = OutcomeDigest::new();
    let outcome: StreamOutcome = match threads {
        None => simulate_semester_streaming_serial(sem, seed, &Telemetry::disabled(), spill, |r| {
            digest.push(r)
        }),
        Some(t) => with_thread_count(t, || {
            simulate_semester_streaming(sem, seed, &Telemetry::disabled(), spill, |r| {
                digest.push(r)
            })
        }),
    }
    .unwrap_or_else(|e| panic!("out-of-core scale arm failed: {e}"));
    ScaleArm {
        threads,
        wall_s: None,
        digest: digest.finish(
            outcome.quota_denials,
            outcome.slot_pushbacks,
            &outcome.faults,
        ),
        records: outcome.records as usize,
    }
}

/// Run one in-memory arm.
fn memory_arm(sem: &SemesterConfig, seed: u64, threads: Option<usize>) -> ScaleArm {
    let outcome = match threads {
        None => simulate_semester_serial(sem, seed),
        Some(t) => with_thread_count(t, || simulate_semester(sem, seed)),
    };
    ScaleArm {
        threads,
        wall_s: None,
        digest: digest_outcome(&outcome),
        records: outcome.ledger.records().len(),
    }
}

/// Run the sweep: the strictly sequential reference first (untimed in
/// digest-only mode), then one sharded arm per requested thread count.
/// Spilling engages when a spill directory is given or the estimated
/// peak exceeds the memory budget.
pub fn run(config: &ScaleConfig) -> ScaleReport {
    let sem = sweep_config(config);
    let spilled = config.spill_dir.is_some()
        || config
            .mem_budget_mb
            .is_some_and(|budget| estimated_peak_mb(config.enrollment) > budget);
    let spill_dir = config.spill_dir.clone().unwrap_or_else(|| {
        // detlint::allow(DL001): spill paths are harness plumbing, never simulation input
        std::env::temp_dir().join(format!("opml-spill-{}", std::process::id()))
    });
    let spill = SpillConfig::new(spill_dir);

    let sampler = RssSampler::start(Duration::from_millis(50));
    let mut arms = Vec::new();
    let mut arm_threads: Vec<Option<usize>> = vec![None];
    arm_threads.extend(config.threads.iter().map(|&t| Some(t)));
    for threads in arm_threads {
        let (mut arm, wall) = timed(|| {
            if spilled {
                spill_arm(&sem, config.seed, &spill, threads)
            } else {
                memory_arm(&sem, config.seed, threads)
            }
        });
        if !config.digest_only {
            arm.wall_s = Some(wall);
        }
        arms.push(arm);
    }
    let sampled_peak = sampler.stop().into_iter().map(|s| s.rss_kb).max();
    let peak_rss_kb = match (sampled_peak, peak_rss_kb()) {
        (Some(a), Some(b)) => Some(a.max(b)),
        (a, b) => a.or(b),
    };
    let budget_exceeded = config
        .mem_budget_mb
        .map(|budget| peak_rss_kb.unwrap_or(0) > budget * 1024);
    let equivalent = arms.windows(2).all(|w| w[0].digest == w[1].digest);

    let mut table = Table::new(&["arm", "wall s", "records", "digest"]);
    for arm in &arms {
        table.row(&[
            match arm.threads {
                None => "sequential".to_string(),
                Some(t) => format!("{t} threads"),
            },
            arm.wall_s
                .map_or_else(|| "-".to_string(), |w| fmt_num(w, 3)),
            arm.records.to_string(),
            format!("{:016x}", arm.digest),
        ]);
    }
    let verdict = if equivalent {
        "byte-equivalent"
    } else {
        "MISMATCH"
    };
    table.footer(&[
        "verdict".to_string(),
        String::new(),
        String::new(),
        verdict.to_string(),
    ]);
    let mut text = table.render();
    text.push_str(&format!(
        "\nenrollment {} | shard_students {} | seed {} | digest={:016x}\n",
        config.enrollment, config.shard_students, config.seed, arms[0].digest
    ));
    text.push_str(&format!(
        "path: {}\n",
        if spilled {
            "out-of-core (spill runs + streaming merge)"
        } else {
            "in-memory"
        }
    ));
    if let Some(budget) = config.mem_budget_mb {
        text.push_str(&format!(
            "mem budget: {budget} MB | estimated in-memory peak: {} MB | observed peak: {} | {}\n",
            estimated_peak_mb(config.enrollment),
            peak_rss_kb.map_or_else(|| "n/a".to_string(), |kb| format!("{} MB", kb / 1024)),
            match budget_exceeded {
                Some(true) => "BUDGET EXCEEDED",
                _ => "within budget",
            }
        ));
    }
    ScaleReport {
        text,
        arms,
        equivalent,
        peak_rss_kb,
        spilled,
        mem_budget_mb: config.mem_budget_mb,
        budget_exceeded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opml_simkernel::SimTime;
    use opml_testbed::flavor::FlavorId;
    use opml_testbed::ledger::{Ledger, UsageKind};

    #[test]
    fn tiny_sweep_is_equivalent_across_thread_counts() {
        let report = run(&ScaleConfig {
            seed: 7,
            enrollment: 40,
            shard_students: 12,
            threads: vec![1, 2, 8],
            digest_only: true,
            spill_dir: None,
            mem_budget_mb: None,
        });
        assert!(report.equivalent, "{}", report.text);
        assert_eq!(report.arms.len(), 4);
        assert!(report.arms[0].records > 0);
        assert!(!report.spilled);
    }

    #[test]
    fn forced_spill_matches_in_memory_digest() {
        let base = ScaleConfig {
            seed: 7,
            enrollment: 40,
            shard_students: 12,
            threads: vec![2],
            digest_only: true,
            spill_dir: None,
            mem_budget_mb: None,
        };
        let in_memory = run(&base);
        // detlint::allow(DL001): test-unique temp path, never simulation input
        let dir = std::env::temp_dir().join(format!("opml-scale-test-{}", std::process::id()));
        let spilled = run(&ScaleConfig {
            spill_dir: Some(dir),
            ..base
        });
        assert!(spilled.spilled, "{}", spilled.text);
        assert!(in_memory.equivalent && spilled.equivalent);
        assert_eq!(
            in_memory.arms[0].digest, spilled.arms[0].digest,
            "spill path must reproduce the in-memory digest\n{}\n{}",
            in_memory.text, spilled.text
        );
    }

    #[test]
    fn tiny_budget_triggers_spilling() {
        let report = run(&ScaleConfig {
            seed: 7,
            enrollment: 40,
            shard_students: 12,
            threads: vec![],
            digest_only: true,
            spill_dir: None,
            mem_budget_mb: Some(1), // estimate (1 MB) > budget? 40*32/1024 = 1 → not >
        });
        // estimated_peak_mb(40) == 1, equal to the budget, so no spill;
        // a zero budget always spills.
        assert!(!report.spilled);
        let report = run(&ScaleConfig {
            seed: 7,
            enrollment: 40,
            shard_students: 12,
            threads: vec![],
            digest_only: true,
            spill_dir: None,
            mem_budget_mb: Some(0),
        });
        assert!(report.spilled, "{}", report.text);
        assert_eq!(report.mem_budget_mb, Some(0));
        assert!(report.budget_exceeded.is_some());
    }

    #[test]
    fn streaming_digest_matches_materialized_digest() {
        let mut ledger = Ledger::new();
        let recs = vec![
            UsageRecord {
                name: "lab1-s0".into(),
                kind: UsageKind::Instance {
                    flavor: FlavorId::M1Small,
                    auto_terminated: true,
                },
                start: SimTime(0),
                end: SimTime(90),
            },
            UsageRecord {
                name: "lab1-s0".into(),
                kind: UsageKind::FloatingIp,
                start: SimTime(0),
                end: SimTime(90),
            },
            UsageRecord {
                name: "v0".into(),
                kind: UsageKind::Volume { size_gb: 50 },
                start: SimTime(5),
                end: SimTime(60),
            },
            UsageRecord {
                name: "b0".into(),
                kind: UsageKind::ObjectStorage { gb: 2.5 },
                start: SimTime(9),
                end: SimTime(9),
            },
        ];
        let mut streaming = OutcomeDigest::new();
        for r in &recs {
            ledger.push(r.clone());
            streaming.push(r);
        }
        let faults = FaultStats::default();
        let outcome = SemesterOutcome {
            ledger,
            quota_denials: 3,
            slot_pushbacks: 1,
            faults,
        };
        assert_eq!(
            streaming.finish(3, 1, &faults),
            digest_outcome(&outcome),
            "incremental digest must equal the materialized digest"
        );
        // And the empty envelope agrees too.
        let empty = SemesterOutcome {
            ledger: Ledger::new(),
            quota_denials: 0,
            slot_pushbacks: 0,
            faults: FaultStats::default(),
        };
        assert_eq!(
            OutcomeDigest::new().finish(0, 0, &FaultStats::default()),
            digest_outcome(&empty)
        );
    }

    #[test]
    fn digest_is_seed_sensitive() {
        let arm = |seed| {
            run(&ScaleConfig {
                seed,
                enrollment: 24,
                shard_students: 8,
                threads: vec![],
                digest_only: true,
                spill_dir: None,
                mem_budget_mb: None,
            })
            .arms[0]
                .digest
        };
        assert_ne!(arm(1), arm(2));
    }

    #[test]
    fn peak_rss_is_readable_on_linux() {
        // /proc is available everywhere the harness runs; tolerate None
        // elsewhere rather than asserting a platform.
        if let Some(kb) = peak_rss_kb() {
            assert!(kb > 0);
        }
    }
}
