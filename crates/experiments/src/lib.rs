//! # opml-experiments
//!
//! One module per evaluation artifact in the paper. Each experiment
//! returns rendered text (the table/figure) plus a
//! [`opml_report::ComparisonSet`] of paper-vs-measured quantities;
//! the `run-experiments` binary assembles them into EXPERIMENTS.md.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — usage and estimated cost per assignment |
//! | [`fig1`] | Fig. 1(a,b) — expected vs actual duration per student |
//! | [`fig2`] | Fig. 2 — per-student commercial-cloud cost distribution |
//! | [`fig3`] | Fig. 3 — project usage by instance type |
//! | [`project_cost`] | §5 project-phase totals and cost |
//! | [`headline`] | 186,692 hours; ≈$250/student; <$50k |
//! | [`ablation`] | §5 discussion — VM advance reservations |
//! | [`seeds`] | seed-robustness of the headline quantities |
//! | [`capacity`] | §4 quota validation via peak concurrency |
//! | [`spot_ablation`] | extension — spot pricing with the interruption tax |
//! | [`chaos`] | extension — fault-injection sweep (`run-experiments chaos`) |
//! | [`verify`] | replay-equivalence verifier (`verify-determinism`) |
//! | [`trace`] | telemetry trace capture (`run-experiments trace`) |
//! | [`scale`] | extension — sharded large-cohort sweep (`run-experiments scale`) |
//! | [`serve`] | extension — ramping service soak (`run-experiments serve`) |

pub mod ablation;
pub mod capacity;
pub mod chaos;
pub mod context;
pub mod digest;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod headline;
pub mod paper;
pub mod profile;
pub mod project_cost;
pub mod scale;
pub mod seeds;
pub mod serve;
pub mod spot_ablation;
pub mod table1;
pub mod trace;
pub mod verify;

pub use context::{run_paper_course, run_paper_course_with, ExperimentContext};
