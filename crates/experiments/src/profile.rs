//! Self-profiling of the semester simulator: the `run-experiments
//! profile` subcommand.
//!
//! A profiled run executes one sharded semester with telemetry
//! recording, the wall-phase profiler enabled, the counting allocator
//! attributing (when the `alloc-profile` feature installed it), and a
//! background RSS sampler. It emits three artifacts:
//!
//! * `profile.json` — schema `opml_profile/v2`. Its `counts` subtree is
//!   a *canonical compact JSON string* covering every deterministic
//!   quantity (span paths with sim-time attribution, per-shard event
//!   breakdowns, phase enter counts, ledger record count, ...); the
//!   digest in `counts_digest` is FNV-1a over exactly those bytes, so
//!   "two runs produced the same counts" is one string compare. The
//!   `alloc` subtree is digested the same way (`alloc_digest`):
//!   per-phase allocation counts over the user phases, invariant
//!   across runs *and* thread counts now that pool bookkeeping is
//!   fenced into `runtime.pool`. Wall times, RSS, and thread counts
//!   live outside both digested subtrees.
//! * `profile.folded` — flamegraph.pl/inferno-compatible folded stacks
//!   weighted by sim-minute self time (deterministic bytes).
//! * a human-readable table (stdout) splitting host wall time into
//!   `shard.sim` vs the `merge.*` phases — the sharded-slower-than-
//!   serial anomaly made visible.

use std::time::Duration;

use opml_cohort::semester::{simulate_semester_with, SemesterConfig, SemesterOutcome};
use opml_profiler::{
    profile_spans, shard_breakdown, PhaseStat, RssSample, RssSampler, ShardBreakdown, SpanProfile,
};
use opml_report::Table;
use opml_simkernel::parallel::{effective_thread_count, with_thread_count};
use opml_simkernel::SimTime;
use opml_telemetry::{MemorySink, Telemetry, HARNESS_TRACK, TRACK_ATTR};

use crate::digest::fnv1a64;

/// Schema tag written into `profile.json`.
pub const PROFILE_SCHEMA: &str = "opml_profile/v2";

/// Every event name the profiled semester can emit, preseeded into the
/// telemetry interner before the counted window opens so interning
/// performs **zero** allocations while the counting allocator is
/// attributing (the intern table would otherwise grow mid-run and the
/// growth schedule would depend on which shard first emitted a name).
/// An entry that never fires is harmless; a missing entry only costs
/// one leak-on-first-use allocation, visible as an
/// `interned_count()` probe failure in the differential tests.
const EVENT_NAME_VOCAB: &[&str] = &[
    "breaker.open",
    "fault.inject",
    "instance.crash",
    "instance.launch",
    "instance.terminate",
    "job.complete",
    "job.preempt",
    "job.start",
    "lab.unit",
    "lease.accept",
    "lease.deny",
    "lease.revoke",
    "lease.skip",
    "narrate",
    "project.window_open",
    "queue.pop",
    "quota.deny",
    "recover.degraded",
    "recover.rebook",
    "recover.relaunch",
    "retry.attempt",
    "semester.exec",
    "semester.finalize",
    "semester.plan",
    "semester.week_start",
    "slot.pushback",
    "stage.profile",
    "stage.semester",
    "vm.abandon",
    "vm.retry",
    "volume.abandon",
    "workflow.task",
    "workflow.wave",
];

/// What to profile.
#[derive(Debug, Clone)]
pub struct ProfileConfig {
    /// Semester seed.
    pub seed: u64,
    /// Cohort size.
    pub enrollment: u32,
    /// Students per shard (the sharded-path default).
    pub shard_students: u32,
    /// Rayon thread count to pin for the run.
    pub threads: usize,
    /// Include the project phase (off by default: the sharded sweep the
    /// profiler exists to explain is labs-only, like `scale`).
    pub run_projects: bool,
    /// RSS sampling interval in milliseconds.
    pub rss_sample_ms: u64,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            seed: 42,
            enrollment: 10_000,
            shard_students: SemesterConfig::paper_course().shard_students,
            threads: 2,
            run_projects: false,
            rss_sample_ms: 25,
        }
    }
}

/// Everything a profiled run produces.
#[derive(Debug)]
pub struct ProfileReport {
    /// Full `profile.json` document.
    pub json: String,
    /// The canonical `counts` substring (digested bytes).
    pub counts_json: String,
    /// FNV-1a digest of `counts_json`.
    pub counts_digest: u64,
    /// The canonical `alloc` substring: per-phase allocation counts
    /// over the user phases (digested bytes; all zeros unless the
    /// counting allocator is installed).
    pub alloc_json: String,
    /// FNV-1a digest of `alloc_json`.
    pub alloc_digest: u64,
    /// `profile.folded` contents.
    pub folded: String,
    /// Human-readable report.
    pub text: String,
    /// Recorded telemetry events.
    pub events: u64,
    /// Peak RSS at the end of the run, if readable.
    pub peak_rss_kb: Option<u64>,
}

/// Wall-time one run (harness-side measurement, same pattern as
/// `scale::timed`).
fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    // detlint::allow(DL001): harness measures wall time by design
    let start = std::time::Instant::now();
    let r = f();
    // detlint::allow(DL001): harness measures wall time by design
    (r, start.elapsed().as_secs_f64())
}

/// Run one profiled semester and assemble the artifacts.
pub fn run(config: &ProfileConfig) -> ProfileReport {
    opml_profiler::reset();
    opml_profiler::reset_totals();
    // Pool bookkeeping goes to `runtime.pool`, and the interner's table
    // is fully populated, before any allocation is attributed — both
    // are what keep the user-phase alloc counts thread-count invariant.
    opml_profiler::install_pool_attribution();
    opml_telemetry::intern::preseed(EVENT_NAME_VOCAB);
    opml_profiler::enable();
    let alloc_counted = opml_profiler::counting_allocator_installed();
    if alloc_counted {
        opml_profiler::enable_counting();
    }
    let sampler = RssSampler::start(Duration::from_millis(config.rss_sample_ms.max(1)));

    let sink = MemorySink::new();
    let telemetry = Telemetry::with_sink(sink.clone());
    let sem = SemesterConfig {
        enrollment: config.enrollment,
        run_projects: config.run_projects,
        shard_students: config.shard_students,
        ..SemesterConfig::paper_course()
    };
    let stage = telemetry.span(SimTime::ZERO, "stage.profile", || {
        vec![
            (TRACK_ATTR, HARNESS_TRACK.into()),
            ("seed", config.seed.into()),
            ("enrollment", config.enrollment.into()),
        ]
    });
    let ((outcome, effective_threads), wall_total_s) = timed(|| {
        with_thread_count(config.threads, || {
            (
                simulate_semester_with(&sem, config.seed, &telemetry),
                effective_thread_count(),
            )
        })
    });
    stage.end(SimTime::at(sem.weeks + 1, 0, 0, 0));

    opml_profiler::disable_counting();
    opml_profiler::disable();
    let rss_samples = sampler.stop();
    let events = sink.take_events();

    let spans = profile_spans(&events);
    let shards = shard_breakdown(&events);
    let phases = opml_profiler::phase_report();

    let counts_json = render_counts(config, &outcome, &spans, &shards, &phases);
    let counts_digest = fnv1a64(counts_json.as_bytes());
    let alloc_json = render_alloc(&phases);
    let alloc_digest = fnv1a64(alloc_json.as_bytes());
    let folded = spans.to_folded();
    let peak_rss_kb = opml_profiler::peak_rss_kb();
    let json = render_json(
        config,
        &counts_json,
        counts_digest,
        &alloc_json,
        alloc_digest,
        alloc_counted,
        effective_threads,
        wall_total_s,
        &phases,
        peak_rss_kb,
        &rss_samples,
    );
    let text = render_text(
        config,
        &spans,
        &shards,
        &phases,
        wall_total_s,
        effective_threads,
        counts_digest,
        alloc_counted,
        peak_rss_kb,
        &rss_samples,
    );

    ProfileReport {
        json,
        counts_json,
        counts_digest,
        alloc_json,
        alloc_digest,
        folded,
        text,
        events: spans.events,
        peak_rss_kb,
    }
}

/// Append `s` as a JSON string literal. Profile strings are dotted
/// identifiers, but escape defensively anyway.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The canonical, digested `counts` subtree: compact JSON, fixed field
/// order, deterministic across runs and thread counts. Wall times, RSS
/// and anything host-dependent are excluded by construction.
///
/// `phase_enters` skips two phases whose enter counts are not part of
/// the determinism contract: `(unattributed)` (the RSS sampler's
/// background thread lands there) and `runtime.pool` (one enter per
/// pool dispatch bracket per participating thread — thread-count
/// dependent by nature). Everything else is invariant. Phase
/// *allocation* counts live in the separately-digested `alloc` subtree
/// (see [`render_alloc`]); the full per-phase numbers including the
/// excluded phases stay visible in the non-digested `wall.phases`
/// section.
fn render_counts(
    config: &ProfileConfig,
    outcome: &SemesterOutcome,
    spans: &SpanProfile,
    shards: &ShardBreakdown,
    phases: &[PhaseStat],
) -> String {
    let mut out = String::with_capacity(4096);
    out.push('{');
    out.push_str(&format!("\"seed\":{}", config.seed));
    out.push_str(&format!(",\"enrollment\":{}", config.enrollment));
    out.push_str(&format!(",\"shard_students\":{}", config.shard_students));
    out.push_str(&format!(",\"run_projects\":{}", config.run_projects));
    out.push_str(&format!(",\"events\":{}", spans.events));
    out.push_str(&format!(",\"instants\":{}", spans.instants));
    out.push_str(&format!(",\"begins\":{}", spans.begins));
    out.push_str(&format!(",\"ends\":{}", spans.ends));
    out.push_str(&format!(",\"unbalanced_ends\":{}", spans.unbalanced_ends));
    out.push_str(&format!(",\"open_at_end\":{}", spans.open_at_end));
    out.push_str(&format!(",\"harness_events\":{}", shards.harness_events));
    out.push_str(&format!(",\"preamble_events\":{}", shards.preamble_events));
    out.push_str(&format!(",\"records\":{}", outcome.ledger.records().len()));
    out.push_str(&format!(",\"quota_denials\":{}", outcome.quota_denials));
    out.push_str(&format!(",\"slot_pushbacks\":{}", outcome.slot_pushbacks));

    out.push_str(",\"span_paths\":[");
    for (i, p) in spans.paths.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"path\":");
        push_json_str(&mut out, &p.path);
        out.push_str(&format!(
            ",\"count\":{},\"total_min\":{},\"self_min\":{}}}",
            p.count, p.total_min, p.self_min
        ));
    }
    out.push(']');

    out.push_str(",\"instant_paths\":[");
    for (i, (path, count)) in spans.instant_paths.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"path\":");
        push_json_str(&mut out, path);
        out.push_str(&format!(",\"count\":{count}}}"));
    }
    out.push(']');

    out.push_str(",\"shards\":[");
    for (i, s) in shards.shards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match s.shard {
            Some(k) => out.push_str(&format!("{{\"shard\":{k}")),
            None => out.push_str("{\"shard\":null"),
        }
        out.push_str(&format!(
            ",\"events\":{},\"instants\":{},\"queue_pops\":{},\"quota_denials\":{}}}",
            s.events, s.instants, s.queue_pops, s.quota_denials
        ));
    }
    out.push(']');

    out.push_str(",\"phase_enters\":[");
    let mut first = true;
    for p in phases {
        if p.name == opml_profiler::UNATTRIBUTED_NAME
            || p.name == opml_profiler::phases::RUNTIME_POOL
        {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"phase\":");
        push_json_str(&mut out, p.name);
        out.push_str(&format!(",\"enters\":{}}}", p.enters));
    }
    out.push(']');

    out.push('}');
    out
}

/// The canonical, digested `alloc` subtree: per-phase allocation and
/// deallocation counts/bytes over the **user** phases, compact JSON in
/// phase-report (name-sorted) order.
///
/// Two phases are excluded, and their exclusion is what makes the rest
/// digestable: `runtime.pool` collects the pool dispatch machinery
/// (worker result buffers are chunked by thread count, so its numbers
/// legitimately vary with `--threads`), and `(unattributed)` absorbs
/// the RSS sampler's background thread (sample count varies with wall
/// time). Every phase that remains — `shard.sim`, the `merge.*`
/// stages — allocates identically at any thread count for a fixed seed
/// and config. With the counting allocator absent the subtree is all
/// zeros (and the digest is the stable all-zeros digest).
fn render_alloc(phases: &[PhaseStat]) -> String {
    let mut out = String::with_capacity(512);
    out.push_str("{\"phases\":[");
    let mut first = true;
    for p in phases {
        if p.name == opml_profiler::UNATTRIBUTED_NAME
            || p.name == opml_profiler::phases::RUNTIME_POOL
        {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"phase\":");
        push_json_str(&mut out, p.name);
        out.push_str(&format!(
            ",\"allocs\":{},\"alloc_bytes\":{},\"deallocs\":{},\"dealloc_bytes\":{}}}",
            p.allocs, p.alloc_bytes, p.deallocs, p.dealloc_bytes
        ));
    }
    out.push_str("]}");
    out
}

/// The full `profile.json` document. The digested `counts` and `alloc`
/// strings are embedded verbatim; everything else is explicitly
/// host-dependent.
#[allow(clippy::too_many_arguments)]
fn render_json(
    config: &ProfileConfig,
    counts_json: &str,
    counts_digest: u64,
    alloc_json: &str,
    alloc_digest: u64,
    alloc_counted: bool,
    effective_threads: usize,
    wall_total_s: f64,
    phases: &[PhaseStat],
    peak_rss_kb: Option<u64>,
    rss_samples: &[RssSample],
) -> String {
    let mut out = String::with_capacity(8192);
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{PROFILE_SCHEMA}\",\n"));
    out.push_str(&format!("  \"counts\": {counts_json},\n"));
    out.push_str(&format!("  \"counts_digest\": \"{counts_digest:016x}\",\n"));
    out.push_str(&format!("  \"alloc\": {alloc_json},\n"));
    out.push_str(&format!("  \"alloc_digest\": \"{alloc_digest:016x}\",\n"));
    out.push_str(&format!("  \"alloc_counted\": {alloc_counted},\n"));
    out.push_str(&format!(
        "  \"threads\": {{\"requested\": {}, \"effective\": {}}},\n",
        config.threads, effective_threads
    ));
    out.push_str(&format!(
        "  \"wall\": {{\"total_s\": {wall_total_s:.6}, \"phases\": ["
    ));
    for (i, p) in phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"phase\": ");
        push_json_str(&mut out, p.name);
        out.push_str(&format!(
            ", \"enters\": {}, \"wall_s\": {:.6}, \"allocs\": {}, \"alloc_bytes\": {}, \
             \"deallocs\": {}, \"dealloc_bytes\": {}}}",
            p.enters,
            p.wall_s(),
            p.allocs,
            p.alloc_bytes,
            p.deallocs,
            p.dealloc_bytes
        ));
    }
    out.push_str("\n  ]},\n");
    match peak_rss_kb {
        Some(kb) => out.push_str(&format!("  \"rss\": {{\"peak_kb\": {kb}, \"samples\": [")),
        None => out.push_str("  \"rss\": {\"peak_kb\": null, \"samples\": ["),
    }
    for (i, s) in rss_samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"ms\": {}, \"kb\": {}}}",
            s.elapsed_ms, s.rss_kb
        ));
    }
    out.push_str("\n  ]}\n}\n");
    out
}

/// Human-readable profile: sim-time attribution, shard imbalance, and
/// the host wall-time phase split.
#[allow(clippy::too_many_arguments)]
fn render_text(
    config: &ProfileConfig,
    spans: &SpanProfile,
    shards: &ShardBreakdown,
    phases: &[PhaseStat],
    wall_total_s: f64,
    effective_threads: usize,
    counts_digest: u64,
    alloc_counted: bool,
    peak_rss_kb: Option<u64>,
    rss_samples: &[RssSample],
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "profile: seed {}, {} students ({} per shard), threads {} (effective {})\n\n",
        config.seed, config.enrollment, config.shard_students, config.threads, effective_threads
    ));

    out.push_str("-- sim-time span attribution (deterministic) --\n");
    let mut t = Table::new(&["span path", "count", "total simh", "self simh"]);
    for p in &spans.paths {
        t.row(&[
            p.path.clone(),
            p.count.to_string(),
            format!("{:.1}", p.total_min as f64 / 60.0),
            format!("{:.1}", p.self_min as f64 / 60.0),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\n-- shard breakdown (deterministic) --\n");
    if shards.shards.is_empty() {
        out.push_str("(single-shard run: no shard segmentation)\n");
    } else if shards.shards.len() <= 16 {
        let mut t = Table::new(&["shard", "events", "instants", "queue pops", "quota denials"]);
        for s in &shards.shards {
            t.row(&[
                s.shard.map_or("-".to_string(), |k| k.to_string()),
                s.events.to_string(),
                s.instants.to_string(),
                s.queue_pops.to_string(),
                s.quota_denials.to_string(),
            ]);
        }
        out.push_str(&t.render());
    } else {
        let n = shards.shards.len() as u64;
        let total: u64 = shards.shards.iter().map(|s| s.events).sum();
        let (min, max) = shards.imbalance().unwrap_or((0, 0));
        out.push_str(&format!(
            "{n} shards, {total} events total; events/shard min {min}, mean {:.0}, max {max} \
             (imbalance {:.2}x)\n",
            total as f64 / n as f64,
            if min > 0 {
                max as f64 / min as f64
            } else {
                f64::NAN
            },
        ));
    }

    out.push_str("\n-- host wall-time phases (not deterministic) --\n");
    let mut t = Table::new(&["phase", "enters", "wall s", "allocs", "alloc MB"]);
    for p in phases {
        t.row(&[
            p.name.to_string(),
            p.enters.to_string(),
            format!("{:.3}", p.wall_s()),
            p.allocs.to_string(),
            format!("{:.1}", p.alloc_bytes as f64 / 1e6),
        ]);
    }
    out.push_str(&t.render());
    let shard_wall: f64 = phases
        .iter()
        .filter(|p| p.name == opml_profiler::phases::SHARD_SIM)
        .map(PhaseStat::wall_s)
        .sum();
    let merge_wall: f64 = phases
        .iter()
        .filter(|p| p.name.starts_with("merge."))
        .map(PhaseStat::wall_s)
        .sum();
    out.push_str(&format!(
        "wall total {wall_total_s:.3} s; shard.sim (summed over shards) {shard_wall:.3} s, \
         merge.* {merge_wall:.3} s ({:.0}% of wall)\n",
        merge_wall / wall_total_s.max(1e-9) * 100.0
    ));
    if !alloc_counted {
        out.push_str(
            "allocation columns are zero: counting allocator not installed \
             (build run-experiments with --features alloc-profile)\n",
        );
    }

    match peak_rss_kb {
        Some(kb) => out.push_str(&format!(
            "peak rss: {kb} kB ({} timeline samples)\n",
            rss_samples.len()
        )),
        None => out.push_str("peak rss: n/a (no /proc/self/status)\n"),
    }
    out.push_str(&format!("counts digest: {counts_digest:016x}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ProfileConfig {
        ProfileConfig {
            seed: 7,
            enrollment: 500,
            threads: 2,
            rss_sample_ms: 5,
            ..ProfileConfig::default()
        }
    }

    #[test]
    fn profile_emits_all_artifacts() {
        let report = run(&tiny());
        assert!(report.events > 0);
        assert!(report.json.contains(PROFILE_SCHEMA));
        assert!(report
            .json
            .contains(&format!("{:016x}", report.counts_digest)));
        assert!(
            report.folded.lines().count() >= 2,
            "folded: {}",
            report.folded
        );
        // The merge phases must be named separately from shard simulation.
        assert!(report.text.contains("shard.sim"));
        assert!(report.text.contains("merge.replay_restamp"));
        assert!(report.text.contains("merge.ledger"));
    }

    #[test]
    fn profile_json_parses_and_counts_round_trip() {
        let report = run(&tiny());
        let doc = opml_profiler::Json::parse(&report.json).expect("profile.json parses");
        assert_eq!(
            doc.get("schema").and_then(opml_profiler::Json::as_str),
            Some(PROFILE_SCHEMA)
        );
        let counts = doc.get("counts").expect("counts subtree");
        assert!(counts.get("events").and_then(opml_profiler::Json::as_u64) == Some(report.events));
        // 500 students at the default shard size -> multiple shards.
        let shards = counts
            .get("shards")
            .and_then(opml_profiler::Json::as_array)
            .expect("shards");
        assert!(shards.len() >= 2, "expected multi-shard run");
    }
}
