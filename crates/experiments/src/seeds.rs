//! Seed-robustness: the paper reports one real cohort; our simulator can
//! replay many. This experiment re-runs the labs-only semester across
//! seeds (in parallel, order-stable) and reports the spread of the
//! headline quantities, establishing that the single-seed comparisons in
//! the other experiments are representative rather than cherry-picked.

use crate::paper;
use opml_cohort::semester::{simulate_semester, SemesterConfig};
use opml_metering::rollup::AssignmentRollup;
use opml_pricing::estimate::price_lab_assignments;
use opml_report::compare::{Comparison, ComparisonSet};
use opml_report::table::{fmt_num, Table};
use opml_simkernel::parallel::replications;
use opml_simkernel::stats::Summary;

/// One seed's headline numbers.
#[derive(Debug, Clone)]
pub struct SeedResult {
    /// Lab instance hours.
    pub instance_hours: f64,
    /// Lab AWS cost.
    pub aws_usd: f64,
    /// Lab GCP cost.
    pub gcp_usd: f64,
}

/// Run `n_seeds` independent semesters and summarize.
pub fn run(master_seed: u64, n_seeds: usize) -> (String, ComparisonSet, Vec<SeedResult>) {
    assert!(n_seeds >= 2);
    let results: Vec<SeedResult> = replications(n_seeds, master_seed, |seed| {
        let outcome = simulate_semester(&SemesterConfig::labs_only(), seed);
        let rollup = AssignmentRollup::from_ledger(&outcome.ledger, paper::ENROLLMENT);
        let table = price_lab_assignments(&rollup);
        SeedResult {
            instance_hours: table.total.instance_hours,
            aws_usd: table.total.aws_usd,
            gcp_usd: table.total.gcp_usd,
        }
    });
    let hours = Summary::of(&results.iter().map(|r| r.instance_hours).collect::<Vec<_>>());
    let aws = Summary::of(&results.iter().map(|r| r.aws_usd).collect::<Vec<_>>());
    let gcp = Summary::of(&results.iter().map(|r| r.gcp_usd).collect::<Vec<_>>());

    let mut table = Table::new(&[
        "Quantity",
        "Paper",
        "Mean over seeds",
        "Std dev",
        "Min",
        "Max",
    ]);
    for (name, paper_v, s) in [
        ("lab instance hours", paper::LAB_INSTANCE_HOURS, &hours),
        ("lab AWS cost ($)", paper::LAB_AWS_USD, &aws),
        ("lab GCP cost ($)", paper::LAB_GCP_USD, &gcp),
    ] {
        table.row(&[
            name.to_string(),
            fmt_num(paper_v, 0),
            fmt_num(s.mean, 0),
            fmt_num(s.std_dev, 0),
            fmt_num(s.min, 0),
            fmt_num(s.max, 0),
        ]);
    }
    let mut cmp = ComparisonSet::new("seed_robustness");
    cmp.push(Comparison::new(
        "seed-mean lab instance hours",
        paper::LAB_INSTANCE_HOURS,
        hours.mean,
        0.10,
        "h",
    ));
    cmp.push(Comparison::new(
        "seed-mean AWS cost",
        paper::LAB_AWS_USD,
        aws.mean,
        0.10,
        "$",
    ));
    cmp.push(Comparison::new(
        "seed-mean GCP cost",
        paper::LAB_GCP_USD,
        gcp.mean,
        0.10,
        "$",
    ));
    // The paper's value should sit inside our simulated range.
    cmp.push(Comparison::new(
        "paper hours within simulated range (1=true)",
        1.0,
        f64::from(
            paper::LAB_INSTANCE_HOURS >= hours.min * 0.95
                && paper::LAB_INSTANCE_HOURS <= hours.max * 1.05,
        ),
        0.0,
        "",
    ));
    (table.render(), cmp, results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_mean_is_calibrated_and_spread_is_moderate() {
        let (text, cmp, results) = run(9000, 5);
        assert_eq!(results.len(), 5);
        assert!(text.contains("lab AWS cost"));
        for c in &cmp.rows {
            assert!(
                c.within_tolerance(),
                "{}: paper {} vs measured {} (ratio {:.3})",
                c.name,
                c.paper,
                c.measured,
                c.ratio()
            );
        }
        // Seeds genuinely differ.
        let hours: Vec<f64> = results.iter().map(|r| r.instance_hours).collect();
        let spread = hours.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - hours.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 100.0, "suspiciously identical seeds: {hours:?}");
    }
}
