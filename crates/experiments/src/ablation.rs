//! Ablation: VM advance reservations with automatic termination.
//!
//! §5: "Since the initial offering of this course, Chameleon has
//! introduced advance reservation for VM instances as well, with
//! automatic termination at the end of the reservation." This experiment
//! quantifies what that policy would have saved: the same cohort is
//! re-simulated with VM deployments capped at a reservation length, and
//! lab cost is re-priced.

use opml_cohort::semester::{simulate_semester, SemesterConfig};
use opml_metering::rollup::AssignmentRollup;
use opml_pricing::estimate::price_lab_assignments;
use opml_report::compare::{Comparison, ComparisonSet};
use opml_report::table::{fmt_num, fmt_usd, Table};
use opml_simkernel::SimDuration;

/// Result of one policy arm.
#[derive(Debug, Clone)]
pub struct PolicyArm {
    /// Reservation cap (None = the paper's actual policy).
    pub cap_hours: Option<u64>,
    /// Lab instance hours.
    pub instance_hours: f64,
    /// Lab AWS cost.
    pub aws_usd: f64,
    /// Lab GCP cost.
    pub gcp_usd: f64,
}

/// Run the ablation across reservation caps.
pub fn run(seed: u64, enrollment: u32) -> (String, ComparisonSet, Vec<PolicyArm>) {
    let caps = [None, Some(24u64), Some(8u64)];
    let mut arms = Vec::new();
    for cap in caps {
        let config = SemesterConfig {
            enrollment,
            weeks: 14,
            run_projects: false,
            vm_auto_terminate_after: cap.map(SimDuration::hours),
            faults: opml_faults::FaultProfile::none(),
            shard_students: 191,
        };
        let outcome = simulate_semester(&config, seed);
        let rollup = AssignmentRollup::from_ledger(&outcome.ledger, enrollment as usize);
        let table = price_lab_assignments(&rollup);
        arms.push(PolicyArm {
            cap_hours: cap,
            instance_hours: table.total.instance_hours,
            aws_usd: table.total.aws_usd,
            gcp_usd: table.total.gcp_usd,
        });
    }
    let mut table = Table::new(&["VM policy", "Instance hours", "AWS cost", "GCP cost"]);
    for arm in &arms {
        table.row(&[
            arm.cap_hours
                .map_or("no auto-termination (paper)".to_string(), |h| {
                    format!("auto-terminate after {h} h")
                }),
            fmt_num(arm.instance_hours, 0),
            fmt_usd(arm.aws_usd),
            fmt_usd(arm.gcp_usd),
        ]);
    }
    let mut cmp = ComparisonSet::new("abl_autoterm");
    let baseline = &arms[0];
    let day_cap = &arms[1];
    // VM labs are ~24% of the AWS lab bill but ~46% of the GCP bill
    // (Table 1), so the cap's headroom differs by provider: a 24-hour
    // reservation should recover most of the VM overhang on both.
    cmp.push(Comparison::new(
        "24h cap saves >10% of lab AWS cost (1=true)",
        1.0,
        f64::from(day_cap.aws_usd < baseline.aws_usd * 0.90),
        0.0,
        "",
    ));
    cmp.push(Comparison::new(
        "24h cap saves >25% of lab GCP cost (1=true)",
        1.0,
        f64::from(day_cap.gcp_usd < baseline.gcp_usd * 0.75),
        0.0,
        "",
    ));
    cmp.push(Comparison::new(
        "caps are monotone (1=true)",
        1.0,
        f64::from(
            arms[2].instance_hours <= arms[1].instance_hours
                && arms[1].instance_hours <= arms[0].instance_hours,
        ),
        0.0,
        "",
    ));
    (table.render(), cmp, arms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_termination_saves_money() {
        // Smaller cohort for test speed; the mechanism is per-student.
        let (_, cmp, arms) = run(50, 48);
        assert_eq!(arms.len(), 3);
        assert!(
            arms[1].gcp_usd < arms[0].gcp_usd * 0.75,
            "24h cap GCP: {} vs baseline {}",
            arms[1].gcp_usd,
            arms[0].gcp_usd
        );
        assert!(arms[2].aws_usd <= arms[1].aws_usd);
        for c in &cmp.rows {
            assert!(c.within_tolerance(), "{} failed", c.name);
        }
    }
}
