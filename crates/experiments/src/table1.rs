//! Table 1 reproduction: usage and estimated cost per assignment.

use crate::context::ExperimentContext;
use crate::paper;
use opml_report::compare::{Comparison, ComparisonSet};
use opml_report::table::{fmt_num, fmt_usd, Table};

/// Render the measured Table 1 and compare it against the paper's.
pub fn run(ctx: &ExperimentContext) -> (String, ComparisonSet) {
    let mut table = Table::new(&[
        "Assignment",
        "Instance Type",
        "Instance Hours",
        "Floating IP Hours",
        "AWS Cost",
        "GCP Cost",
    ]);
    for row in &ctx.table.rows {
        table.row(&[
            row.title.clone(),
            row.flavor.name().to_string(),
            fmt_num(row.instance_hours, 0),
            fmt_num(row.fip_hours, 0),
            row.aws_usd.map_or("NA".to_string(), fmt_usd),
            row.gcp_usd.map_or("NA".to_string(), fmt_usd),
        ]);
    }
    let t = &ctx.table.total;
    table.footer(&[
        "Total".into(),
        String::new(),
        fmt_num(t.instance_hours, 0),
        fmt_num(t.fip_hours, 0),
        format!("{} ({})", fmt_usd(t.aws_usd), fmt_usd(t.aws_per_student)),
        format!("{} ({})", fmt_usd(t.gcp_usd), fmt_usd(t.gcp_per_student)),
    ]);

    let mut cmp = ComparisonSet::new("table1");
    cmp.push(Comparison::new(
        "total instance hours",
        paper::LAB_INSTANCE_HOURS,
        t.instance_hours,
        0.10,
        "h",
    ));
    cmp.push(Comparison::new(
        "total floating-IP hours",
        paper::LAB_FIP_HOURS,
        t.fip_hours,
        0.10,
        "h",
    ));
    cmp.push(Comparison::new(
        "total AWS cost",
        paper::LAB_AWS_USD,
        t.aws_usd,
        0.12,
        "$",
    ));
    cmp.push(Comparison::new(
        "total GCP cost",
        paper::LAB_GCP_USD,
        t.gcp_usd,
        0.12,
        "$",
    ));
    cmp.push(Comparison::new(
        "AWS cost per student",
        paper::LAB_AWS_PER_STUDENT,
        t.aws_per_student,
        0.12,
        "$",
    ));
    cmp.push(Comparison::new(
        "GCP cost per student",
        paper::LAB_GCP_PER_STUDENT,
        t.gcp_per_student,
        0.12,
        "$",
    ));
    // Per-row hour comparisons, aggregated by (tag, flavor).
    for p in paper::TABLE1 {
        let measured = ctx
            .table
            .rows
            .iter()
            .find(|r| r.tag == p.tag && r.flavor.name() == p.flavor)
            .map(|r| r.instance_hours)
            .unwrap_or(0.0);
        cmp.push(Comparison::new(
            &format!("{} / {} hours", p.tag, p.flavor),
            p.instance_hours,
            measured,
            0.30,
            "h",
        ));
    }
    (table.render(), cmp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::run_paper_course;

    #[test]
    fn table1_reproduces_paper_shape() {
        let ctx = run_paper_course(42);
        let (rendered, cmp) = run(&ctx);
        assert!(rendered.contains("m1.medium"));
        assert!(rendered.contains("NA"), "edge row must be unpriced");
        // Core totals must land inside their tolerances.
        for name in [
            "total instance hours",
            "total AWS cost",
            "total GCP cost",
            "AWS cost per student",
        ] {
            let row = cmp.rows.iter().find(|c| c.name == name).unwrap();
            assert!(
                row.within_tolerance(),
                "{name}: paper {} vs measured {} (ratio {:.3})",
                row.paper,
                row.measured,
                row.ratio()
            );
        }
        // At least 80% of all comparisons (incl. per-row) pass.
        assert!(cmp.pass_rate() > 0.8, "pass rate {}", cmp.pass_rate());
    }
}
