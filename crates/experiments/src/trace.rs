//! Trace capture for `run-experiments trace`: run a semester with
//! telemetry recording, export the event stream as JSONL and Chrome
//! trace-event JSON, and snapshot the metrics registry.

use opml_cohort::semester::{simulate_semester_with, SemesterConfig, SemesterOutcome};
use opml_simkernel::SimTime;
use opml_telemetry::{
    export_chrome_trace, export_jsonl, MemorySink, MetricsSnapshot, Telemetry, HARNESS_TRACK,
    TRACK_ATTR,
};

/// What to trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Semester seed.
    pub seed: u64,
    /// Cohort size (default 191; the trace smoke run uses a handful).
    pub enrollment: u32,
    /// Skip the project phase (Table 1 scope).
    pub labs_only: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            seed: 42,
            enrollment: 191,
            labs_only: false,
        }
    }
}

/// Captured trace artifacts, ready to write to disk.
#[derive(Debug)]
pub struct TraceArtifacts {
    /// One JSON object per event, in emission (sequence) order.
    pub jsonl: String,
    /// Chrome trace-event document (Perfetto-loadable).
    pub chrome: String,
    /// Number of recorded events.
    pub events: usize,
    /// Metrics recorded during the run.
    pub metrics: MetricsSnapshot,
    /// The simulated semester's outcome (for narration/summary).
    pub outcome: SemesterOutcome,
}

/// Run the configured semester with a recording sink and export both
/// trace formats. Byte-deterministic: the same config produces identical
/// `jsonl`/`chrome` strings on every run and thread count.
pub fn capture_trace(config: &TraceConfig) -> TraceArtifacts {
    let sink = MemorySink::new();
    let telemetry = Telemetry::with_sink(sink.clone());
    let sem_config = SemesterConfig {
        enrollment: config.enrollment,
        run_projects: !config.labs_only,
        ..SemesterConfig::paper_course()
    };
    let stage = telemetry.span(SimTime::ZERO, "stage.semester", || {
        vec![
            (TRACK_ATTR, HARNESS_TRACK.into()),
            ("seed", config.seed.into()),
            ("enrollment", config.enrollment.into()),
            ("labs_only", config.labs_only.into()),
        ]
    });
    let outcome = simulate_semester_with(&sem_config, config.seed, &telemetry);
    let end = SimTime::at(sem_config.weeks + 1, 0, 0, 0);
    stage.end(end);
    let events = sink.events();
    TraceArtifacts {
        jsonl: export_jsonl(&events),
        chrome: export_chrome_trace(&events),
        events: events.len(),
        metrics: telemetry.metrics_snapshot(),
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TraceConfig {
        TraceConfig {
            seed: 7,
            enrollment: 3,
            labs_only: true,
        }
    }

    #[test]
    fn capture_is_byte_deterministic() {
        let a = capture_trace(&tiny());
        let b = capture_trace(&tiny());
        assert_eq!(a.jsonl, b.jsonl);
        assert_eq!(a.chrome, b.chrome);
        assert!(a.events > 0);
        assert!(!a.metrics.counters.is_empty());
    }

    #[test]
    fn harness_stage_wraps_the_run() {
        let art = capture_trace(&tiny());
        let first = art.jsonl.lines().next().expect("events recorded");
        assert!(
            first.contains("\"name\":\"stage.semester\"") && first.contains("\"ph\":\"B\""),
            "first event opens the harness stage span: {first}"
        );
        assert!(art.chrome.contains("\"name\":\"stage.semester\""));
        // Harness events live on tid 2 in the Chrome export.
        assert!(art.chrome.contains("\"tid\":2"));
    }
}
