//! Regenerate every table and figure in the paper's evaluation and print
//! paper-vs-measured comparisons. With `--write-md <path>` the comparison
//! sections are also written as Markdown (used to refresh
//! EXPERIMENTS.md); with `--seed <n>` the semester seed changes; with
//! `--metrics` the telemetry metrics summary is appended; `--quiet`
//! silences all stderr narration.
//!
//! The `verify-determinism` subcommand runs the replay-equivalence
//! verifier instead: `table1` and `fig2` twice per rayon thread count
//! (1 and the machine's parallelism, or `--threads a,b,…`), asserting
//! byte-identical serialized results across all runs.
//!
//! The `trace` subcommand captures a full telemetry trace of one
//! semester and writes `trace.jsonl` (one event per line, sequence
//! order) and `trace_chrome.json` (Chrome trace-event format, loadable
//! in Perfetto / `chrome://tracing`) to `--out <dir>`.
//!
//! The `serve` subcommand soaks the campus cloud as a long-running
//! service: seeded multi-tenant load ramps per round (`--target-rps`,
//! `--increment-rps`, `--max-rps`) through a bounded admission queue
//! with priority-aware shedding, per-tenant quota breakers, and
//! deadline-budgeted retries, until a failure-rate or p99-latency gate
//! trips. Writes a digested `serve.json` to `--out <dir>`.
//!
//! The `profile` subcommand turns the instruments on the harness
//! itself: sim-time span attribution (self/total per span path,
//! per-shard breakdown), wall-clock phase counters around the
//! shard/merge seams, opt-in allocation accounting (feature
//! `alloc-profile`), and a sampled RSS timeline, written as
//! `profile.json` + flamegraph-ready `profile.folded` to `--out <dir>`.

use opml_experiments::{
    ablation, capacity, chaos, fig1, fig2, fig3, headline, profile, project_cost, scale, seeds,
    serve, spot_ablation, table1, trace, verify,
};
use opml_report::compare::ComparisonSet;
use opml_simkernel::SimTime;
use opml_telemetry::{narrate, StderrNarrationSink, Telemetry};

// Opt-in allocation accounting for the `profile` subcommand: installing
// the counting wrapper is a binary-level decision, so it is gated on a
// cargo feature and costs nothing (not even a flag check) by default.
#[cfg(feature = "alloc-profile")]
#[global_allocator]
static COUNTING_ALLOC: opml_profiler::CountingAlloc = opml_profiler::CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quiet = args.iter().any(|a| a == "--quiet");
    let want_metrics = args.iter().any(|a| a == "--metrics");
    let seed = parse_seed(&args);
    let write_md = arg_value(&args, "--write-md");

    // Harness narration goes through telemetry too, so `--quiet`
    // silences the runner and the simulator uniformly.
    let narrator = if quiet {
        Telemetry::disabled()
    } else {
        Telemetry::with_sink(StderrNarrationSink)
    };

    match args.get(1).map(String::as_str) {
        Some("verify-determinism") => run_verify(&args, seed, &narrator),
        Some("trace") => run_trace(&args, seed, want_metrics, &narrator),
        Some("chaos") => run_chaos(&args, seed, &narrator),
        Some("scale") => run_scale(&args, seed, &narrator),
        Some("serve") => run_serve(&args, seed, &narrator),
        Some("profile") => run_profile(&args, seed, &narrator),
        _ => run_full(seed, want_metrics, write_md, &narrator),
    }
}

/// Parse `--seed`, exiting with a diagnostic on malformed input instead
/// of silently falling back to the default.
fn parse_seed(args: &[String]) -> u64 {
    match arg_value(args, "--seed") {
        None => 42,
        Some(raw) => match raw.trim().parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("run-experiments: --seed takes a non-negative integer, got `{raw}`");
                std::process::exit(2);
            }
        },
    }
}

fn run_verify(args: &[String], seed: u64, narrator: &Telemetry) {
    let threads: Vec<usize> = arg_value(args, "--threads")
        .map(|list| {
            list.split(',')
                .map(|t| match t.trim().parse() {
                    Ok(n) if n > 0 => n,
                    _ => {
                        eprintln!(
                            "run-experiments: --threads takes a comma-separated list of \
                             positive integers, got `{t}`"
                        );
                        std::process::exit(2);
                    }
                })
                .collect()
        })
        .unwrap_or_default();
    narrate!(
        narrator,
        SimTime::ZERO,
        "verifying replay equivalence (seed {seed})…"
    );
    let outcome = verify::verify_determinism(seed, &threads);
    println!("{}", outcome.to_table());
    if !outcome.is_equivalent() {
        eprintln!("verify-determinism: FAILED — results differ across runs/thread counts");
        std::process::exit(1);
    }
    narrate!(
        narrator,
        SimTime::ZERO,
        "verify-determinism: all runs byte-identical"
    );
}

fn run_trace(args: &[String], seed: u64, want_metrics: bool, narrator: &Telemetry) {
    let out_dir = arg_value(args, "--out").unwrap_or_else(|| String::from("trace_out"));
    let enrollment: u32 = match arg_value(args, "--enrollment") {
        None => 191,
        Some(raw) => match raw.trim().parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("run-experiments: --enrollment takes a positive integer, got `{raw}`");
                std::process::exit(2);
            }
        },
    };
    let labs_only = args.iter().any(|a| a == "--labs-only");
    let config = trace::TraceConfig {
        seed,
        enrollment,
        labs_only,
    };
    narrate!(
        narrator,
        SimTime::ZERO,
        "tracing a {enrollment}-student semester (seed {seed}, projects {})…",
        if labs_only { "off" } else { "on" }
    );
    let artifacts = trace::capture_trace(&config);
    std::fs::create_dir_all(&out_dir).expect("create trace output directory");
    let jsonl_path = format!("{out_dir}/trace.jsonl");
    let chrome_path = format!("{out_dir}/trace_chrome.json");
    std::fs::write(&jsonl_path, &artifacts.jsonl).expect("write trace.jsonl");
    std::fs::write(&chrome_path, &artifacts.chrome).expect("write trace_chrome.json");
    println!(
        "captured {} events ({} ledger records, {} quota denials)",
        artifacts.events,
        artifacts.outcome.ledger.records().len(),
        artifacts.outcome.quota_denials
    );
    println!("wrote {jsonl_path}");
    println!("wrote {chrome_path}");
    if let Some(kb) = opml_profiler::peak_rss_kb() {
        println!("peak rss: {kb} kB");
    }
    if want_metrics {
        println!("\n== Telemetry metrics ==\n");
        println!("{}", opml_report::metrics_summary(&artifacts.metrics));
    }
}

fn run_chaos(args: &[String], seed: u64, narrator: &Telemetry) {
    let enrollment: u32 = match arg_value(args, "--enrollment") {
        None => 191,
        Some(raw) => match raw.trim().parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("run-experiments: --enrollment takes a positive integer, got `{raw}`");
                std::process::exit(2);
            }
        },
    };
    let parse_rate = |raw: &str| -> f64 {
        match raw.trim().parse::<f64>() {
            Ok(r) if (0.0..=1.0).contains(&r) => r,
            _ => {
                eprintln!("run-experiments: fault rates must be numbers in [0, 1], got `{raw}`");
                std::process::exit(2);
            }
        }
    };
    let rates: Vec<f64> = match (arg_value(args, "--rates"), arg_value(args, "--rate")) {
        (Some(list), _) => list.split(',').map(|r| parse_rate(r)).collect(),
        (None, Some(one)) => vec![parse_rate(&one)],
        (None, None) => chaos::ChaosConfig::default().rates,
    };
    let threads = parse_positive(args, "--threads", 1);
    narrate!(
        narrator,
        SimTime::ZERO,
        "chaos sweep: {enrollment}-student semester (seed {seed}), rates {rates:?}…"
    );
    let report = chaos::run(&chaos::ChaosConfig {
        seed,
        enrollment,
        rates,
        threads,
    });
    println!("== Chaos: cost of injected faults ==\n{}", report.text);
    if let Some(kb) = opml_profiler::peak_rss_kb() {
        println!("peak rss: {kb} kB");
    }
    if !report.zero_rate_matches_baseline {
        eprintln!("chaos: FAILED — zero-rate plan diverged from the fault-free baseline");
        std::process::exit(1);
    }
}

/// Parse a positive-integer flag with a default.
fn parse_positive(args: &[String], flag: &str, default: usize) -> usize {
    match arg_value(args, flag) {
        None => default,
        Some(raw) => match raw.trim().parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("run-experiments: {flag} takes a positive integer, got `{raw}`");
                std::process::exit(2);
            }
        },
    }
}

fn run_scale(args: &[String], seed: u64, narrator: &Telemetry) {
    let defaults = scale::ScaleConfig::default();
    let enrollment = parse_positive(args, "--enrollment", defaults.enrollment as usize) as u32;
    let shard_students =
        parse_positive(args, "--shard-students", defaults.shard_students as usize) as u32;
    let threads: Vec<usize> = match arg_value(args, "--threads") {
        None => defaults.threads,
        Some(list) => list
            .split(',')
            .map(|t| match t.trim().parse() {
                Ok(n) if n > 0 => n,
                _ => {
                    eprintln!(
                        "run-experiments: --threads takes a comma-separated list of \
                         positive integers, got `{t}`"
                    );
                    std::process::exit(2);
                }
            })
            .collect(),
    };
    let digest_only = args.iter().any(|a| a == "--digest-only");
    let spill_dir = arg_value(args, "--spill-dir").map(std::path::PathBuf::from);
    let mem_budget_mb = match arg_value(args, "--mem-budget-mb") {
        None => None,
        Some(raw) => match raw.trim().parse::<u64>() {
            Ok(mb) => Some(mb),
            Err(_) => {
                eprintln!(
                    "run-experiments: --mem-budget-mb takes a non-negative integer, got `{raw}`"
                );
                std::process::exit(2);
            }
        },
    };
    narrate!(
        narrator,
        SimTime::ZERO,
        "scale sweep: {enrollment} students, {shard_students}/shard, threads {threads:?}…"
    );
    let report = scale::run(&scale::ScaleConfig {
        seed,
        enrollment,
        shard_students,
        threads,
        digest_only,
        spill_dir,
        mem_budget_mb,
    });
    println!("== Scale: sharded cohort sweep ==\n{}", report.text);
    if let Some(kb) = report.peak_rss_kb {
        println!("peak rss: {kb} kB");
    }
    if report.spilled {
        println!("spill: out-of-core path engaged");
    }
    if let (Some(budget), Some(exceeded)) = (report.mem_budget_mb, report.budget_exceeded) {
        println!(
            "mem budget: {budget} MB — {}",
            if exceeded { "EXCEEDED" } else { "respected" }
        );
    }
    if !report.equivalent {
        eprintln!("scale: FAILED — sharded outcomes differ across execution strategies");
        std::process::exit(1);
    }
}

fn run_serve(args: &[String], seed: u64, narrator: &Telemetry) {
    let defaults = serve::ServeRunConfig::default();
    let d = &defaults.config;
    let out_dir = arg_value(args, "--out").unwrap_or_else(|| String::from("serve_out"));
    let fault_rate_ppm = match arg_value(args, "--fault-rate") {
        None => d.fault_rate_ppm,
        Some(raw) => match raw.trim().parse::<f64>() {
            Ok(r) if (0.0..=1.0).contains(&r) => (r * 1_000_000.0).round() as u64,
            _ => {
                eprintln!("run-experiments: --fault-rate takes a number in [0, 1], got `{raw}`");
                std::process::exit(2);
            }
        },
    };
    let config = opml_serve::ServeConfig {
        seed,
        tenants: parse_positive(args, "--tenants", d.tenants as usize) as u32,
        servers: parse_positive(args, "--servers", d.servers as usize) as u32,
        queue_bound: parse_positive(args, "--queue-bound", d.queue_bound),
        target_rps: parse_positive(args, "--target-rps", d.target_rps as usize) as u64,
        increment_rps: arg_value(args, "--increment-rps").map_or(d.increment_rps, |raw| match raw
            .trim()
            .parse()
        {
            Ok(n) => n,
            Err(_) => {
                eprintln!(
                    "run-experiments: --increment-rps takes a non-negative integer, \
                         got `{raw}`"
                );
                std::process::exit(2);
            }
        }),
        max_rps: parse_positive(args, "--max-rps", d.max_rps as usize) as u64,
        round_secs: parse_positive(args, "--round-secs", d.round_secs as usize) as u64,
        deadline_s: parse_positive(args, "--deadline-s", d.deadline_s as usize) as u64,
        fault_rate_ppm,
        ..d.clone()
    };
    let threads = parse_positive(args, "--threads", defaults.threads);
    narrate!(
        narrator,
        SimTime::ZERO,
        "service soak: seed {seed}, ramp {}→{} (+{}) ops/s, {} tenants, fault rate {} ppm…",
        config.target_rps,
        config.max_rps,
        config.increment_rps,
        config.tenants,
        config.fault_rate_ppm
    );
    let run = serve::run(&serve::ServeRunConfig { config, threads });
    println!("== Serve: campus cloud under ramping load ==\n{}", run.text);
    std::fs::create_dir_all(&out_dir).expect("create serve output directory");
    let json_path = format!("{out_dir}/serve.json");
    std::fs::write(&json_path, &run.json).expect("write serve.json");
    println!("wrote {json_path}");
    if let Some(kb) = run.peak_rss_kb {
        println!("peak rss: {kb} kB");
    }
    println!("counts_digest={:016x}", run.report.counts_digest);
}

fn run_profile(args: &[String], seed: u64, narrator: &Telemetry) {
    let defaults = profile::ProfileConfig::default();
    let out_dir = arg_value(args, "--out").unwrap_or_else(|| String::from("profile_out"));
    let enrollment = parse_positive(args, "--enrollment", defaults.enrollment as usize) as u32;
    let shard_students =
        parse_positive(args, "--shard-students", defaults.shard_students as usize) as u32;
    let threads = parse_positive(args, "--threads", defaults.threads);
    let config = profile::ProfileConfig {
        seed,
        enrollment,
        shard_students,
        threads,
        run_projects: args.iter().any(|a| a == "--projects"),
        rss_sample_ms: parse_positive(args, "--rss-sample-ms", defaults.rss_sample_ms as usize)
            as u64,
    };
    narrate!(
        narrator,
        SimTime::ZERO,
        "profiling a {enrollment}-student semester (seed {seed}, {threads} threads)…"
    );
    let report = profile::run(&config);
    std::fs::create_dir_all(&out_dir).expect("create profile output directory");
    let json_path = format!("{out_dir}/profile.json");
    let folded_path = format!("{out_dir}/profile.folded");
    std::fs::write(&json_path, &report.json).expect("write profile.json");
    std::fs::write(&folded_path, &report.folded).expect("write profile.folded");
    println!("{}", report.text);
    println!("wrote {json_path}");
    println!("wrote {folded_path}");
    println!("counts_digest={:016x}", report.counts_digest);
}

fn run_full(seed: u64, want_metrics: bool, write_md: Option<String>, narrator: &Telemetry) {
    narrate!(
        narrator,
        SimTime::ZERO,
        "simulating the 191-student semester (seed {seed})…"
    );
    let sim_telemetry = if want_metrics {
        // Metrics live in the registry; no event sink is needed, so the
        // per-event cost stays near zero.
        Telemetry::with_sink(opml_telemetry::NullSink)
    } else {
        Telemetry::disabled()
    };
    let ctx = opml_experiments::run_paper_course_with(seed, &sim_telemetry);
    narrate!(
        narrator,
        SimTime::ZERO,
        "done: {} ledger records, {} quota denials, {} slot pushbacks\n",
        ctx.outcome.ledger.records().len(),
        ctx.outcome.quota_denials,
        ctx.outcome.slot_pushbacks
    );

    let mut sections: Vec<(String, ComparisonSet)> = Vec::new();

    let (text, cmp) = table1::run(&ctx);
    println!("== Table 1: Usage and estimated cost by lab assignment ==\n{text}");
    sections.push((text, cmp));

    let (text, cmp) = fig1::run(&ctx);
    println!("== Figure 1: Expected vs actual duration per student ==\n{text}");
    sections.push((text, cmp));

    let (text, cmp) = fig2::run(&ctx);
    println!("== Figure 2: Per-student cost distribution ==\n{text}");
    sections.push((text, cmp));

    let (text, cmp) = fig3::run(&ctx);
    println!("== Figure 3: Project usage by instance type ==\n{text}");
    sections.push((text, cmp));

    let (text, cmp) = project_cost::run(&ctx);
    println!("== Project phase: usage and cost ==\n{text}");
    sections.push((text, cmp));

    let (text, cmp) = headline::run(&ctx);
    println!("== Headline numbers ==\n{text}");
    sections.push((text, cmp));

    let (text, cmp) = capacity::run(&ctx);
    println!("== Capacity: quota validation ==\n{text}");
    sections.push((text, cmp));

    narrate!(
        narrator,
        SimTime::ZERO,
        "running seed-robustness sweep (5 seeds, labs only)…"
    );
    let (text, cmp, _) = seeds::run(seed, 5);
    println!("== Seed robustness ==\n{text}");
    sections.push((text, cmp));

    let (text, cmp) = spot_ablation::run(&ctx, seed);
    println!("== Ablation: spot/preemptible GPU pricing ==\n{text}");
    sections.push((text, cmp));

    narrate!(
        narrator,
        SimTime::ZERO,
        "running VM auto-termination ablation (reduced cohort)…"
    );
    let (text, cmp, _) = ablation::run(seed, 64);
    println!("== Ablation: VM advance reservations ==\n{text}");
    sections.push((text, cmp));

    // Comparison summary.
    println!("== Paper vs measured ==\n");
    let mut all_pass = 0usize;
    let mut all_rows = 0usize;
    for (_, cmp) in &sections {
        println!("{}", cmp.to_markdown());
        all_rows += cmp.rows.len();
        all_pass += cmp.rows.iter().filter(|c| c.within_tolerance()).count();
    }
    println!(
        "overall: {all_pass}/{all_rows} comparisons within tolerance ({:.0}%)",
        all_pass as f64 / all_rows.max(1) as f64 * 100.0
    );

    let metrics_md = if want_metrics {
        let summary = opml_report::metrics_summary(&sim_telemetry.metrics_snapshot());
        println!("== Telemetry metrics ==\n");
        println!("{summary}");
        Some(summary)
    } else {
        None
    };

    if let Some(path) = write_md {
        let mut md = String::from(
            "<!-- generated by `cargo run -p opml-experiments --bin run-experiments -- --write-md` -->\n\n",
        );
        md.push_str(&format!(
            "# EXPERIMENTS — paper vs. measured\n\n\
             Every table and figure in the evaluation of *The Cost of Teaching\n\
             Operational ML* (Fund et al., SC Workshops '25, §5), reproduced by\n\
             `cargo run --release -p opml-experiments --bin run-experiments`\n\
             (this file was generated at seed {seed}; rerun with `--seed N` for\n\
             other cohort realizations, or `--write-md EXPERIMENTS.md` to\n\
             regenerate it). The matching benches live in `opml-bench`\n\
             (`cargo bench --workspace`).\n\n\
             The reproduction targets **shape**, not absolute replay: the\n\
             paper's numbers are one realization of one real cohort; ours are\n\
             one realization of a calibrated stochastic cohort. Each comparison\n\
             row declares its tolerance; single-order statistics get wide ones,\n\
             aggregate totals tight ones. At this seed, **{all_pass} of\n\
             {all_rows} comparisons are within tolerance** (machine-readable\n\
             record: `experiments_results.json`; the default-seed count is\n\
             pinned by the tier-1 test `tests/paper_numbers.rs`).\n\n",
        ));
        for (_, cmp) in &sections {
            md.push_str(&cmp.to_markdown());
        }
        if let Some(summary) = &metrics_md {
            md.push_str("## Telemetry metrics\n\n");
            md.push_str(summary);
        }
        std::fs::write(&path, md).expect("write markdown");
        narrate!(
            narrator,
            SimTime::ZERO,
            "comparison sections written to {path}"
        );
    }

    let json = serde_json::json!({
        "seed": seed,
        "comparisons": sections
            .iter()
            .map(|(_, c)| c)
            .collect::<Vec<_>>(),
    });
    std::fs::write(
        "experiments_results.json",
        serde_json::to_string_pretty(&json).expect("serialize"),
    )
    .expect("write results json");
    narrate!(
        narrator,
        SimTime::ZERO,
        "structured results written to experiments_results.json"
    );
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}
