//! The paper's published numbers, transcribed from §5.

/// One Table 1 row as printed in the paper.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// Our assignment tag.
    pub tag: &'static str,
    /// Chameleon flavor name.
    pub flavor: &'static str,
    /// Instance hours.
    pub instance_hours: f64,
    /// Floating-IP hours.
    pub fip_hours: f64,
    /// AWS cost (None for the edge row).
    pub aws_usd: Option<f64>,
    /// GCP cost.
    pub gcp_usd: Option<f64>,
}

/// Table 1, row for row.
pub const TABLE1: [PaperRow; 16] = [
    PaperRow {
        tag: "lab1",
        flavor: "m1.small",
        instance_hours: 2_620.0,
        fip_hours: 2_620.0,
        aws_usd: Some(40.0),
        gcp_usd: Some(57.0),
    },
    PaperRow {
        tag: "lab2",
        flavor: "m1.medium",
        instance_hours: 52_332.0,
        fip_hours: 17_444.0,
        aws_usd: Some(2_264.0),
        gcp_usd: Some(5_347.0),
    },
    PaperRow {
        tag: "lab3",
        flavor: "m1.medium",
        instance_hours: 32_344.0,
        fip_hours: 10_781.0,
        aws_usd: Some(1_399.0),
        gcp_usd: Some(3_305.0),
    },
    PaperRow {
        tag: "lab4-multi",
        flavor: "gpu_a100_pcie",
        instance_hours: 167.0,
        fip_hours: 167.0,
        aws_usd: Some(2_993.0),
        gcp_usd: Some(2_456.0),
    },
    PaperRow {
        tag: "lab4-multi",
        flavor: "gpu_v100",
        instance_hours: 210.0,
        fip_hours: 210.0,
        aws_usd: Some(3_764.0),
        gcp_usd: Some(3_088.0),
    },
    PaperRow {
        tag: "lab4-single",
        flavor: "compute_gigaio",
        instance_hours: 218.0,
        fip_hours: 218.0,
        aws_usd: Some(722.0),
        gcp_usd: Some(1_106.0),
    },
    PaperRow {
        tag: "lab5-multi",
        flavor: "compute_liqid_2",
        instance_hours: 330.0,
        fip_hours: 330.0,
        aws_usd: Some(1_524.0),
        gcp_usd: Some(662.0),
    },
    PaperRow {
        tag: "lab5-multi",
        flavor: "gpu_mi100",
        instance_hours: 1_002.0,
        fip_hours: 1_002.0,
        aws_usd: Some(4_627.0),
        gcp_usd: Some(2_009.0),
    },
    PaperRow {
        tag: "lab5-single",
        flavor: "compute_gigaio",
        instance_hours: 28.0,
        fip_hours: 28.0,
        aws_usd: Some(41.0),
        gcp_usd: Some(32.0),
    },
    PaperRow {
        tag: "lab5-single",
        flavor: "compute_liqid",
        instance_hours: 130.0,
        fip_hours: 130.0,
        aws_usd: Some(190.0),
        gcp_usd: Some(150.0),
    },
    PaperRow {
        tag: "lab6-opt",
        flavor: "compute_gigaio",
        instance_hours: 215.0,
        fip_hours: 215.0,
        aws_usd: Some(191.0),
        gcp_usd: Some(154.0),
    },
    PaperRow {
        tag: "lab6-opt",
        flavor: "compute_liqid",
        instance_hours: 460.0,
        fip_hours: 460.0,
        aws_usd: Some(410.0),
        gcp_usd: Some(329.0),
    },
    PaperRow {
        tag: "lab6-edge",
        flavor: "raspberrypi5",
        instance_hours: 492.0,
        fip_hours: 492.0,
        aws_usd: None,
        gcp_usd: None,
    },
    PaperRow {
        tag: "lab6-system",
        flavor: "gpu_p100",
        instance_hours: 707.0,
        fip_hours: 707.0,
        aws_usd: Some(3_582.0),
        gcp_usd: Some(1_417.0),
    },
    PaperRow {
        tag: "lab7",
        flavor: "m1.medium",
        instance_hours: 9_889.0,
        fip_hours: 9_889.0,
        aws_usd: Some(461.0),
        gcp_usd: Some(381.0),
    },
    PaperRow {
        tag: "lab8",
        flavor: "m1.large",
        instance_hours: 8_693.0,
        fip_hours: 8_693.0,
        aws_usd: Some(1_490.0),
        gcp_usd: Some(626.0),
    },
];

/// Enrollment.
pub const ENROLLMENT: usize = 191;
/// Table 1 total instance hours.
pub const LAB_INSTANCE_HOURS: f64 = 109_837.0;
/// Table 1 total floating-IP hours.
pub const LAB_FIP_HOURS: f64 = 53_387.0;
/// Table 1 total AWS cost.
pub const LAB_AWS_USD: f64 = 23_698.0;
/// Table 1 total GCP cost.
pub const LAB_GCP_USD: f64 = 21_119.0;
/// Per-student lab cost, AWS.
pub const LAB_AWS_PER_STUDENT: f64 = 124.0;
/// Per-student lab cost, GCP.
pub const LAB_GCP_PER_STUDENT: f64 = 111.0;

/// §5 expected per-student lab cost, AWS.
pub const EXPECTED_AWS_PER_STUDENT: f64 = 79.80;
/// §5 expected per-student lab cost, GCP.
pub const EXPECTED_GCP_PER_STUDENT: f64 = 58.85;
/// Fraction of students above the expected cost, AWS.
pub const FRAC_ABOVE_EXPECTED_AWS: f64 = 0.75;
/// Fraction of students above the expected cost, GCP.
pub const FRAC_ABOVE_EXPECTED_GCP: f64 = 0.73;
/// Most expensive student's lab usage, AWS.
pub const MAX_STUDENT_AWS: f64 = 665.0;
/// Most expensive student's lab usage, GCP.
pub const MAX_STUDENT_GCP: f64 = 590.0;

/// §5 project-phase totals.
pub const PROJECT_VM_HOURS: f64 = 70_259.0;
/// GPU instance hours.
pub const PROJECT_GPU_HOURS: f64 = 5_446.0;
/// Bare-metal CPU hours.
pub const PROJECT_BAREMETAL_HOURS: f64 = 975.0;
/// Edge hours.
pub const PROJECT_EDGE_HOURS: f64 = 175.0;
/// Block storage (GB).
pub const PROJECT_BLOCK_GB: f64 = 9_216.0;
/// Object storage (GB).
pub const PROJECT_OBJECT_GB: f64 = 1_541.0;
/// Project AWS cost.
pub const PROJECT_AWS_USD: f64 = 25_889.0;
/// Project GCP cost.
pub const PROJECT_GCP_USD: f64 = 26_218.0;

/// Headline: total compute instance hours (labs + projects).
pub const TOTAL_INSTANCE_HOURS: f64 = 186_692.0;
/// Headline: per-student all-in cost, approximately.
pub const TOTAL_PER_STUDENT_USD: f64 = 250.0;
/// Headline: the course costs just under this.
pub const TOTAL_COURSE_USD: f64 = 50_000.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_sum_to_published_totals() {
        let hours: f64 = TABLE1.iter().map(|r| r.instance_hours).sum();
        assert!((hours - LAB_INSTANCE_HOURS).abs() < 1.0, "{hours}");
        let fip: f64 = TABLE1.iter().map(|r| r.fip_hours).sum();
        // The published total is 1 hour off the row sum (rounding in the paper).
        assert!((fip - LAB_FIP_HOURS).abs() < 2.0, "{fip}");
        let aws: f64 = TABLE1.iter().filter_map(|r| r.aws_usd).sum();
        assert!((aws - LAB_AWS_USD).abs() < 1.0, "{aws}");
        let gcp: f64 = TABLE1.iter().filter_map(|r| r.gcp_usd).sum();
        assert!((gcp - LAB_GCP_USD).abs() < 1.0, "{gcp}");
    }

    #[test]
    fn headline_total_is_labs_plus_projects() {
        let projects =
            PROJECT_VM_HOURS + PROJECT_GPU_HOURS + PROJECT_BAREMETAL_HOURS + PROJECT_EDGE_HOURS;
        assert!((LAB_INSTANCE_HOURS + projects - TOTAL_INSTANCE_HOURS).abs() < 1.0);
    }

    #[test]
    fn per_student_consistent_with_totals() {
        assert!((LAB_AWS_USD / ENROLLMENT as f64 - LAB_AWS_PER_STUDENT).abs() < 1.0);
        assert!((LAB_GCP_USD / ENROLLMENT as f64 - LAB_GCP_PER_STUDENT).abs() < 1.0);
    }
}
