//! Fig. 3 reproduction: project-phase hours by instance type.
//!
//! The paper's figure shows per-instance-type bars for 70,259 non-GPU VM
//! hours and 5,446 GPU hours but does not print the per-bar numbers, so
//! only the two panel totals are compared quantitatively; the per-type
//! split follows DESIGN.md's documented mix.

use crate::context::ExperimentContext;
use crate::paper;
use opml_report::chart::bar_chart;
use opml_report::compare::{Comparison, ComparisonSet};

/// Render both panels and compare the §5 totals.
pub fn run(ctx: &ExperimentContext) -> (String, ComparisonSet) {
    let p = &ctx.project;
    let mut vm_rows: Vec<(String, f64)> = Vec::new();
    let mut gpu_rows: Vec<(String, f64)> = Vec::new();
    for &(flavor, hours) in &p.by_flavor {
        let row = (flavor.name().to_string(), hours);
        if flavor.has_gpu() {
            gpu_rows.push(row);
        } else if matches!(flavor.site(), opml_testbed::flavor::SiteKind::Vm) {
            vm_rows.push(row);
        }
    }
    vm_rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("hours finite"));
    gpu_rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("hours finite"));
    let mut text = String::from("Project VM hours by instance type (non-GPU)\n");
    text.push_str(&bar_chart(&vm_rows, 50));
    text.push_str("\nProject GPU hours by instance type\n");
    text.push_str(&bar_chart(&gpu_rows, 50));

    let mut cmp = ComparisonSet::new("fig3");
    cmp.push(Comparison::new(
        "project VM hours",
        paper::PROJECT_VM_HOURS,
        p.vm_hours,
        0.15,
        "h",
    ));
    cmp.push(Comparison::new(
        "project GPU hours",
        paper::PROJECT_GPU_HOURS,
        p.gpu_hours,
        0.25,
        "h",
    ));
    cmp.push(Comparison::new(
        "project bare-metal CPU hours",
        paper::PROJECT_BAREMETAL_HOURS,
        p.baremetal_cpu_hours,
        0.35,
        "h",
    ));
    cmp.push(Comparison::new(
        "project edge hours",
        paper::PROJECT_EDGE_HOURS,
        p.edge_hours,
        0.40,
        "h",
    ));
    (text, cmp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::run_paper_course;

    #[test]
    fn fig3_totals_and_ordering() {
        let ctx = run_paper_course(47);
        let (text, cmp) = run(&ctx);
        assert!(text.contains("m1.medium"));
        for c in &cmp.rows {
            assert!(
                c.within_tolerance(),
                "{}: paper {} vs measured {} (ratio {:.3})",
                c.name,
                c.paper,
                c.measured,
                c.ratio()
            );
        }
        // VM hours dwarf GPU hours — the paper's headline observation
        // that project compute is mostly ordinary services, not GPUs.
        assert!(ctx.project.vm_hours > 8.0 * ctx.project.gpu_hours);
    }
}
