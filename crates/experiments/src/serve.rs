//! Service-mode soak harness (`run-experiments serve`).
//!
//! Wraps [`opml_serve::run_service`] with the same operational contract
//! as the chaos and scale subcommands: the whole soak is pinned to one
//! rayon pool via [`opml_simkernel::parallel::with_thread_count`], the
//! report's counts subtree is digested (byte-identical across reruns
//! and thread counts), and the rendered text reuses the shared latency
//! table so serve, chaos, and the metrics summary all read alike.

use opml_report::latency::{latency_table, LatencyUnit};
use opml_report::table::Table;
use opml_serve::{run_service, OpKind, ServeConfig, ServeReport};
use opml_simkernel::parallel;

/// One soak request: the service config plus harness knobs.
#[derive(Debug, Clone)]
pub struct ServeRunConfig {
    /// The service configuration (seed, ramp, gates, faults).
    pub config: ServeConfig,
    /// Rayon threads the soak is pinned to.
    pub threads: usize,
}

impl Default for ServeRunConfig {
    fn default() -> ServeRunConfig {
        ServeRunConfig {
            config: ServeConfig::default(),
            threads: 1,
        }
    }
}

/// Soak outcome: the sealed report, rendered tables, and the
/// `serve.json` document.
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// The sealed service report.
    pub report: ServeReport,
    /// Rendered summary tables.
    pub text: String,
    /// The `serve.json` document (digested counts subtree inline).
    pub json: String,
    /// Wall-clock seconds for the soak (not digested).
    pub wall_s: f64,
    /// Peak RSS in kB, when the platform exposes it (not digested).
    pub peak_rss_kb: Option<u64>,
}

/// Wall-clock a closure (handful of harness call sites; sim results
/// never depend on it).
fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    // detlint::allow(DL001): harness measures wall time by design
    let start = std::time::Instant::now();
    let out = f();
    // detlint::allow(DL001): harness measures wall time by design
    (out, start.elapsed().as_secs_f64())
}

/// Run the soak under a pinned pool and render the report.
pub fn run(cfg: &ServeRunConfig) -> ServeRun {
    let (report, wall_s) =
        timed(|| parallel::with_thread_count(cfg.threads, || run_service(&cfg.config)));
    let peak_rss_kb = opml_profiler::peak_rss_kb();
    let text = render_text(&report);
    let json = render_json(&report, cfg.threads, wall_s, peak_rss_kb);
    ServeRun {
        report,
        text,
        json,
        wall_s,
        peak_rss_kb,
    }
}

fn render_text(report: &ServeReport) -> String {
    let c = &report.counts;
    let mut out = String::new();

    let mut rounds = Table::new(&[
        "round",
        "rps",
        "generated",
        "completed",
        "shed",
        "rejected",
        "timed out",
        "failed",
        "retries",
        "fail %",
        "p99 s",
        "sustainable",
    ]);
    for r in &c.rounds {
        rounds.row(&[
            r.round.to_string(),
            r.offered_rps.to_string(),
            r.counts.generated.to_string(),
            r.counts.completed.to_string(),
            r.counts.shed.to_string(),
            r.counts.rejected.to_string(),
            r.counts.timed_out.to_string(),
            r.counts.failed.to_string(),
            r.retries.to_string(),
            format!("{:.1}", r.failure_ppm as f64 / 10_000.0),
            r.latency.p99_s.to_string(),
            if r.sustainable { "yes" } else { "no" }.to_string(),
        ]);
    }
    out.push_str(&rounds.render());

    let mut kinds = Table::new(&[
        "op kind",
        "generated",
        "completed",
        "shed",
        "rejected",
        "timed out",
        "failed",
        "injected",
        "sustained ops/s",
    ]);
    for k in &c.per_kind {
        kinds.row(&[
            k.kind.clone(),
            k.counts.generated.to_string(),
            k.counts.completed.to_string(),
            k.counts.shed.to_string(),
            k.counts.rejected.to_string(),
            k.counts.timed_out.to_string(),
            k.counts.failed.to_string(),
            k.injected.to_string(),
            format!("{:.3}", k.sustained_milli_ops_per_sec as f64 / 1_000.0),
        ]);
    }
    out.push('\n');
    out.push_str(&kinds.render());

    let mut tenants = Table::new(&[
        "tenant",
        "priority",
        "generated",
        "completed",
        "shed",
        "rejected",
        "breaker rejects",
        "breaker trips",
    ]);
    for t in &c.per_tenant {
        tenants.row(&[
            t.tenant.to_string(),
            t.priority.to_string(),
            t.counts.generated.to_string(),
            t.counts.completed.to_string(),
            t.counts.shed.to_string(),
            t.counts.rejected.to_string(),
            t.breaker_rejects.to_string(),
            t.breaker_trips.to_string(),
        ]);
    }
    out.push('\n');
    out.push_str(&tenants.render());

    // Same table shape as the metrics summary and the chaos arms, in
    // service-mode units (a tick is a second here).
    out.push_str("\nsim-time latency (completed ops):\n");
    let order = ["overall"]
        .into_iter()
        .chain(OpKind::ALL.iter().map(|k| k.name()));
    out.push_str(&latency_table(
        "latency",
        LatencyUnit::Seconds,
        order.filter_map(|name| report.histograms.get(name).map(|h| (name, h))),
    ));

    out.push_str(&format!(
        "\nstopped at round {} ({}); max sustainable rate {} ops/s; \
         peak queue depth {}\n",
        c.stop_round, c.stop_reason, c.max_sustainable_rps, c.peak_queue_depth,
    ));
    out
}

/// Assemble `serve.json`: the digested counts subtree verbatim, the
/// digest as zero-padded hex, and non-digested harness facts (threads,
/// wall, RSS) outside the subtree.
fn render_json(
    report: &ServeReport,
    threads: usize,
    wall_s: f64,
    peak_rss_kb: Option<u64>,
) -> String {
    let rss = match peak_rss_kb {
        Some(kb) => kb.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\n  \"schema\": \"{schema}\",\n  \"counts\": {counts},\n  \
         \"counts_digest\": \"{digest:016x}\",\n  \"threads\": {threads},\n  \
         \"wall_s\": {wall_s:.3},\n  \"peak_rss_kb\": {rss}\n}}\n",
        schema = opml_serve::SERVE_SCHEMA,
        counts = report.counts_json,
        digest = report.counts_digest,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServeRunConfig {
        ServeRunConfig {
            config: ServeConfig {
                tenants: 3,
                servers: 8,
                queue_bound: 16,
                target_rps: 2,
                increment_rps: 2,
                max_rps: 6,
                round_secs: 15,
                ..ServeConfig::default()
            },
            threads: 2,
        }
    }

    #[test]
    fn renders_tables_and_digest_json() {
        let run = run(&tiny());
        for needle in [
            "round",
            "op kind",
            "tenant",
            "p99 s",
            "launch",
            "quota_check",
            "max sustainable rate",
        ] {
            assert!(
                run.text.contains(needle),
                "`{needle}` missing:\n{}",
                run.text
            );
        }
        assert!(run.json.contains("\"schema\": \"serve/v1\""));
        assert!(run.json.contains("\"counts_digest\": \""));
        // The digested subtree is embedded verbatim.
        assert!(run.json.contains(&run.report.counts_json));
    }

    #[test]
    fn json_counts_subtree_is_rerun_stable() {
        let a = run(&tiny());
        let b = run(&tiny());
        assert_eq!(a.report.counts_json, b.report.counts_json);
        assert_eq!(a.report.counts_digest, b.report.counts_digest);
    }
}
