//! Shared deterministic digesting for the runtime verifiers.
//!
//! One hash function, used by `verify-determinism`, the chaos harness
//! and the `scale` sweep, so every "byte-identical" claim in the repo
//! is made against the same digest.

/// FNV-1a 64-bit (deterministic, dependency-free).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(fnv1a64(b"ledger-a"), fnv1a64(b"ledger-b"));
    }
}
