//! Shared deterministic digesting for the runtime verifiers.
//!
//! One hash function, used by `verify-determinism`, the chaos harness
//! and the `scale` sweep, so every "byte-identical" claim in the repo
//! is made against the same digest. [`Fnv64`] is the incremental form:
//! the out-of-core scale path digests a multi-gigabyte ledger stream
//! record-by-record without ever holding the serialized whole, and
//! feeding the same bytes in any chunking yields the same digest as
//! one [`fnv1a64`] call.

/// Incremental FNV-1a 64-bit hasher. `update` in any chunking is
/// equivalent to hashing the concatenation.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// Fresh hasher (FNV-1a offset basis).
    pub fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Fold `bytes` into the state.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }

    /// The digest of everything updated so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// FNV-1a 64-bit of one contiguous buffer (deterministic,
/// dependency-free).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(fnv1a64(b"ledger-a"), fnv1a64(b"ledger-b"));
    }

    #[test]
    fn chunking_is_irrelevant() {
        let whole = fnv1a64(b"records are streamed in pieces");
        let mut h = Fnv64::new();
        h.update(b"records are ");
        h.update(b"");
        h.update(b"streamed in pieces");
        assert_eq!(h.finish(), whole);
    }
}
