//! # opml-pricing
//!
//! Commercial-cloud cost model for the course's testbed usage — the §5
//! analysis: "we translated the resources consumed on the Chameleon
//! testbed into their equivalent costs on commercial cloud platforms …
//! an 'equivalent' resource was defined as the most cost-effective cloud
//! instance that met the specific needs of each assignment."
//!
//! * [`catalog`] — AWS (us-east-1) and GCP (us-central1) on-demand
//!   instance catalogs, pinned to the paper's July-2025 snapshot. Common
//!   VM rates are public knowledge; GPU rates are **implied** from
//!   Table 1 (`(cost − FIP cost) / hours`) because the calculators cannot
//!   be re-queried — every derivation is documented on the entry.
//! * [`requirement`] — what each assignment actually needs (vCPUs, RAM,
//!   GPU class/count, dedicated cores), and the per-assignment table.
//! * [`equivalence`] — the cheapest-adequate-instance selection
//!   algorithm.
//! * [`cost`] — hourly/storage pricing arithmetic (floating IPs at
//!   $0.005/h on both providers; EBS/PD and S3/GCS for project storage).
//! * [`estimate`] — Table 1 reproduction (per-assignment and total cost),
//!   per-student cost distributions (Fig. 2), expected-cost baselines,
//!   and project-phase estimates.
//! * [`spot`] — an extension: spot/preemptible pricing with the
//!   interruption tax measured by Monte Carlo.

pub mod catalog;
pub mod cost;
pub mod equivalence;
pub mod estimate;
pub mod requirement;
pub mod spot;

pub use catalog::{CloudInstance, Provider};
pub use equivalence::cheapest_adequate;
pub use estimate::{price_lab_assignments, CostRow, Table1};
pub use requirement::Requirement;
