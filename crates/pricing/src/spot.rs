//! Spot/preemptible pricing — an extension of the paper's cost analysis.
//!
//! §6 concludes that on-demand commercial pricing makes the course
//! "risky and potentially cost-prohibitive". The obvious rejoinder is
//! spot/preemptible capacity at a deep discount; this module prices that
//! correctly, i.e. **including the interruption tax**: an interrupted
//! training session loses the work since its last checkpoint, so the
//! effective hours consumed exceed the useful hours — and short-slot lab
//! work (2–3 hours, no checkpoints, a student mid-exercise) is exactly
//! the workload spot handles worst.
//!
//! The model: interruptions arrive Poisson at `interruptions_per_hour`;
//! on interruption the job redoes the work since the last checkpoint
//! (checkpoint interval `checkpoint_h`; a lab session effectively has
//! `checkpoint_h = session length`). [`simulate_spot_session`] measures
//! the effective-hours multiplier by Monte Carlo; [`SpotQuote`] combines
//! it with the discount.

use crate::catalog::Provider;
use opml_simkernel::Rng;
use serde::{Deserialize, Serialize};

/// Spot-market parameters for one provider (July-2025-snapshot-style
/// figures: deep discounts, provider-dependent reclaim rates).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SpotMarket {
    /// Price as a fraction of on-demand (e.g. 0.33 = 67% off).
    pub price_fraction: f64,
    /// Mean interruptions per instance-hour.
    pub interruptions_per_hour: f64,
}

impl SpotMarket {
    /// Representative market for a provider's GPU spot pools.
    pub fn gpu(provider: Provider) -> SpotMarket {
        match provider {
            Provider::Aws => SpotMarket {
                price_fraction: 0.33,
                interruptions_per_hour: 0.05,
            },
            // GCP preemptible: cheaper, reclaimed more aggressively (and
            // hard-capped at 24 h, irrelevant at lab scale).
            Provider::Gcp => SpotMarket {
                price_fraction: 0.25,
                interruptions_per_hour: 0.08,
            },
        }
    }
}

/// Result of the Monte-Carlo session simulation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SpotOverhead {
    /// Effective hours consumed per useful hour (≥ 1).
    pub hours_multiplier: f64,
    /// Fraction of sessions interrupted at least once.
    pub interrupted_fraction: f64,
}

/// Simulate `trials` spot sessions needing `useful_h` hours of work with
/// checkpoints every `checkpoint_h` hours; returns the measured overhead.
///
/// Work lost at an interruption is the time since the last checkpoint;
/// the instance is re-acquired immediately (generous to spot — real
/// re-acquisition adds queueing on top).
pub fn simulate_spot_session(
    useful_h: f64,
    checkpoint_h: f64,
    market: SpotMarket,
    trials: usize,
    seed: u64,
) -> SpotOverhead {
    assert!(useful_h > 0.0 && checkpoint_h > 0.0 && trials > 0);
    let mut rng = Rng::new(seed);
    let mut total_effective = 0.0;
    let mut interrupted = 0usize;
    for _ in 0..trials {
        let mut progress = 0.0f64; // checkpointed progress
        let mut since_ckpt = 0.0f64; // uncheckpointed progress
        let mut effective = 0.0f64;
        let mut hit = false;
        while progress + since_ckpt < useful_h {
            // Time to the next interruption.
            let next_int = rng.exponential(1.0 / market.interruptions_per_hour.max(1e-12));
            // Work until the next checkpoint, completion, or interruption.
            let until_ckpt = checkpoint_h - since_ckpt;
            let until_done = useful_h - progress - since_ckpt;
            let step = until_ckpt.min(until_done);
            if next_int < step {
                // Interrupted: lose the uncheckpointed work.
                effective += next_int;
                since_ckpt = 0.0;
                hit = true;
            } else {
                effective += step;
                since_ckpt += step;
                if since_ckpt >= checkpoint_h - 1e-12 {
                    progress += since_ckpt;
                    since_ckpt = 0.0;
                }
            }
        }
        total_effective += effective;
        interrupted += usize::from(hit);
    }
    SpotOverhead {
        hours_multiplier: total_effective / (useful_h * trials as f64),
        interrupted_fraction: interrupted as f64 / trials as f64,
    }
}

/// A priced spot-vs-on-demand comparison for one workload class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpotQuote {
    /// Provider.
    pub provider: Provider,
    /// On-demand cost for the workload.
    pub on_demand_usd: f64,
    /// Spot cost including the interruption-overhead multiplier.
    pub spot_usd: f64,
    /// Effective-hours multiplier applied.
    pub hours_multiplier: f64,
    /// Fraction of sessions hit by at least one interruption — the
    /// student-experience cost the dollar figure hides.
    pub interrupted_fraction: f64,
}

impl SpotQuote {
    /// Quote a workload of `useful_hours` at an on-demand `rate`, with
    /// sessions of `session_h` and checkpoints every `checkpoint_h`.
    pub fn quote(
        provider: Provider,
        useful_hours: f64,
        rate: f64,
        session_h: f64,
        checkpoint_h: f64,
        seed: u64,
    ) -> SpotQuote {
        let market = SpotMarket::gpu(provider);
        let overhead = simulate_spot_session(session_h, checkpoint_h, market, 2_000, seed);
        SpotQuote {
            provider,
            on_demand_usd: useful_hours * rate,
            spot_usd: useful_hours * rate * market.price_fraction * overhead.hours_multiplier,
            hours_multiplier: overhead.hours_multiplier,
            interrupted_fraction: overhead.interrupted_fraction,
        }
    }

    /// Relative saving vs on-demand (0.6 = 60% cheaper).
    pub fn saving(&self) -> f64 {
        1.0 - self.spot_usd / self.on_demand_usd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_interruptions_means_no_overhead() {
        let market = SpotMarket {
            price_fraction: 0.3,
            interruptions_per_hour: 0.0,
        };
        let o = simulate_spot_session(3.0, 1.0, market, 200, 1);
        assert!((o.hours_multiplier - 1.0).abs() < 1e-9);
        assert_eq!(o.interrupted_fraction, 0.0);
    }

    #[test]
    fn overhead_grows_with_checkpoint_interval() {
        let market = SpotMarket {
            price_fraction: 0.3,
            interruptions_per_hour: 0.2,
        };
        let fine = simulate_spot_session(6.0, 0.25, market, 2_000, 2);
        let coarse = simulate_spot_session(6.0, 6.0, market, 2_000, 2);
        assert!(
            fine.hours_multiplier < coarse.hours_multiplier,
            "fine {} vs coarse {}",
            fine.hours_multiplier,
            coarse.hours_multiplier
        );
        assert!(
            fine.hours_multiplier < 1.1,
            "fine checkpoints nearly free: {}",
            fine.hours_multiplier
        );
        assert!(
            coarse.hours_multiplier > 1.25,
            "checkpoint-free sessions pay: {}",
            coarse.hours_multiplier
        );
    }

    #[test]
    fn overhead_grows_with_interruption_rate() {
        let calm = SpotMarket {
            price_fraction: 0.3,
            interruptions_per_hour: 0.02,
        };
        let angry = SpotMarket {
            price_fraction: 0.3,
            interruptions_per_hour: 0.5,
        };
        let a = simulate_spot_session(3.0, 3.0, calm, 2_000, 3);
        let b = simulate_spot_session(3.0, 3.0, angry, 2_000, 3);
        assert!(b.hours_multiplier > a.hours_multiplier + 0.1);
        assert!(b.interrupted_fraction > a.interrupted_fraction);
    }

    #[test]
    fn spot_saves_money_despite_overhead_for_checkpointed_training() {
        // Project-style training with 15-minute checkpoints.
        let q = SpotQuote::quote(Provider::Aws, 1_000.0, 1.46, 6.0, 0.25, 4);
        assert!(q.saving() > 0.5, "saving {}", q.saving());
        assert!(q.hours_multiplier < 1.15);
    }

    #[test]
    fn uncheckpointed_lab_sessions_still_save_but_interrupt_students() {
        // A 3-hour lab session with no checkpointing: the dollar saving
        // persists (the discount is deep) but a meaningful share of
        // students get kicked mid-lab — the §6 "risk" in another form.
        let q = SpotQuote::quote(Provider::Gcp, 1_000.0, 2.0, 3.0, 3.0, 5);
        assert!(q.saving() > 0.4, "saving {}", q.saving());
        assert!(
            q.interrupted_fraction > 0.15,
            "interruption pain underestimated: {}",
            q.interrupted_fraction
        );
    }

    #[test]
    fn deterministic() {
        let a = SpotQuote::quote(Provider::Aws, 100.0, 1.0, 3.0, 1.0, 6);
        let b = SpotQuote::quote(Provider::Aws, 100.0, 1.0, 3.0, 1.0, 6);
        assert_eq!(a.spot_usd, b.spot_usd);
    }
}
