//! Cost estimators: Table 1, Fig. 2's per-student distribution, the
//! expected-cost baseline, and the project-phase estimate.

use crate::catalog::Provider;
use crate::cost::{
    block_storage_cost, fip_cost, object_storage_cost, project_flavor_rate, FIP_HOURLY_USD,
};
use crate::equivalence::resolve;
use crate::requirement::{assignment_table, for_tag};
use opml_metering::rollup::{AssignmentRollup, PerStudentUsage};
use opml_testbed::flavor::FlavorId;
use opml_testbed::ledger::{Ledger, UsageKind};
use serde::{Deserialize, Serialize};

/// One priced Table 1 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostRow {
    /// Assignment tag.
    pub tag: String,
    /// Table 1 row title.
    pub title: String,
    /// Chameleon flavor (Table 1's "Instance Type" column).
    pub flavor: FlavorId,
    /// Instance hours.
    pub instance_hours: f64,
    /// Floating-IP hours.
    pub fip_hours: f64,
    /// AWS cost (None for the edge row, as in the paper: "NA").
    pub aws_usd: Option<f64>,
    /// GCP cost (None for the edge row).
    pub gcp_usd: Option<f64>,
    /// AWS instance used for pricing.
    pub aws_instance: Option<String>,
    /// GCP instance used for pricing.
    pub gcp_instance: Option<String>,
}

/// Table 1 totals.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Total {
    /// Total instance hours (including the unpriced edge row, as in the
    /// paper's 109,837 total).
    pub instance_hours: f64,
    /// Total FIP hours.
    pub fip_hours: f64,
    /// Total AWS cost.
    pub aws_usd: f64,
    /// Total GCP cost.
    pub gcp_usd: f64,
    /// AWS cost per student.
    pub aws_per_student: f64,
    /// GCP cost per student.
    pub gcp_per_student: f64,
}

/// The full priced table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1 {
    /// Rows in paper order (assignment order, then flavor).
    pub rows: Vec<CostRow>,
    /// Totals.
    pub total: Table1Total,
    /// Enrollment used for per-student figures.
    pub enrollment: usize,
}

/// Price the lab-assignment rollup into Table 1.
///
/// Rollup rows whose tag is not a lab assignment (project usage) are
/// ignored here — they are priced by [`price_project`].
pub fn price_lab_assignments(rollup: &AssignmentRollup) -> Table1 {
    let order: Vec<&'static str> = assignment_table().iter().map(|a| a.tag).collect();
    let mut rows: Vec<CostRow> = Vec::new();
    for usage in &rollup.rows {
        let Some(pricing) = for_tag(&usage.tag) else {
            continue; // project usage
        };
        let price = |provider: Provider| -> (Option<f64>, Option<String>) {
            match resolve(&pricing, provider) {
                None => (None, None),
                Some(inst) => (
                    Some(usage.instance_hours * inst.hourly_usd + fip_cost(usage.fip_hours)),
                    Some(inst.name.to_string()),
                ),
            }
        };
        let (aws_usd, aws_instance) = price(Provider::Aws);
        let (gcp_usd, gcp_instance) = price(Provider::Gcp);
        rows.push(CostRow {
            tag: usage.tag.clone(),
            title: pricing.title.to_string(),
            flavor: usage.flavor,
            instance_hours: usage.instance_hours,
            fip_hours: usage.fip_hours,
            aws_usd,
            gcp_usd,
            aws_instance,
            gcp_instance,
        });
    }
    rows.sort_by_key(|r| {
        (
            order.iter().position(|&t| t == r.tag).unwrap_or(usize::MAX),
            r.flavor,
        )
    });
    let total = Table1Total {
        instance_hours: rows.iter().map(|r| r.instance_hours).sum(),
        fip_hours: rows.iter().map(|r| r.fip_hours).sum(),
        aws_usd: rows.iter().filter_map(|r| r.aws_usd).sum(),
        gcp_usd: rows.iter().filter_map(|r| r.gcp_usd).sum(),
        aws_per_student: rows.iter().filter_map(|r| r.aws_usd).sum::<f64>()
            / rollup.enrollment as f64,
        gcp_per_student: rows.iter().filter_map(|r| r.gcp_usd).sum::<f64>()
            / rollup.enrollment as f64,
    };
    Table1 {
        rows,
        total,
        enrollment: rollup.enrollment,
    }
}

/// Per-student lab cost on one provider (edge usage excluded, matching
/// the paper's exclusion of "Serving from the Edge"). Returns
/// `(student, cost)` sorted by student id.
pub fn per_student_lab_costs(per: &PerStudentUsage, provider: Provider) -> Vec<(u32, f64)> {
    let mut out: Vec<(u32, f64)> = per
        .students
        .iter()
        .map(|(&student, cells)| {
            let mut cost = 0.0;
            for cell in cells {
                let Some(pricing) = for_tag(&cell.tag) else {
                    continue;
                };
                if let Some(inst) = resolve(&pricing, provider) {
                    cost += cell.instance_hours * inst.hourly_usd + fip_cost(cell.fip_hours);
                }
            }
            (student, cost)
        })
        .collect();
    out.sort_by_key(|&(s, _)| s);
    out
}

/// Expected per-deployment usage of one assignment, per student.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExpectedUsage {
    /// Assignment tag.
    pub tag: String,
    /// Expected instance hours per student.
    pub instance_hours: f64,
    /// Expected FIP hours per student.
    pub fip_hours: f64,
}

/// The per-student cost if every student used exactly the expected
/// durations (§5's $79.80 AWS / $58.85 GCP baseline).
pub fn expected_student_cost(expected: &[ExpectedUsage], provider: Provider) -> f64 {
    expected
        .iter()
        .filter_map(|e| {
            let pricing = for_tag(&e.tag)?;
            let inst = resolve(&pricing, provider)?;
            Some(e.instance_hours * inst.hourly_usd + fip_cost(e.fip_hours))
        })
        .sum()
}

/// Aggregated project-phase usage (names starting with `proj`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProjectUsageSummary {
    /// VM hours without GPU.
    pub vm_hours: f64,
    /// GPU instance hours.
    pub gpu_hours: f64,
    /// Bare-metal CPU hours.
    pub baremetal_cpu_hours: f64,
    /// Edge-device hours.
    pub edge_hours: f64,
    /// Floating-IP hours.
    pub fip_hours: f64,
    /// Block-storage GB-hours.
    pub block_gb_hours: f64,
    /// Object storage stored (GB, final) and its GB-hours.
    pub object_gb: f64,
    /// Object-storage GB-hours.
    pub object_gb_hours: f64,
    /// Peak simultaneous block storage GB.
    pub peak_block_gb: u64,
    /// Hours per flavor (Fig. 3's bars).
    pub by_flavor: Vec<(FlavorId, f64)>,
}

impl ProjectUsageSummary {
    /// Build from a ledger, considering only `proj*` records.
    pub fn from_ledger(ledger: &Ledger) -> ProjectUsageSummary {
        use std::collections::BTreeMap;
        // Ordered map: `hours_of` below sums f64 hours over this map, and
        // float addition is not associative — iteration order must be
        // deterministic (DL002).
        let mut by_flavor: BTreeMap<FlavorId, f64> = BTreeMap::new();
        let mut fip_hours = 0.0;
        let mut block_gb_hours = 0.0;
        let mut object_gb = 0.0;
        let mut object_gb_hours = 0.0;
        let mut block_deltas: Vec<(opml_simkernel::SimTime, i64)> = Vec::new();
        for r in ledger.records() {
            if !r.name.starts_with("proj") {
                continue;
            }
            match r.kind {
                UsageKind::Instance { flavor, .. } => {
                    *by_flavor.entry(flavor).or_insert(0.0) += r.hours();
                }
                UsageKind::FloatingIp => fip_hours += r.hours(),
                UsageKind::Volume { size_gb } => {
                    block_gb_hours += size_gb as f64 * r.hours();
                    block_deltas.push((r.start, size_gb as i64));
                    block_deltas.push((r.end, -(size_gb as i64)));
                }
                UsageKind::ObjectStorage { gb } => {
                    object_gb += gb;
                    object_gb_hours += gb * r.hours();
                }
            }
        }
        block_deltas.sort_by_key(|&(t, d)| (t, d));
        let mut cur = 0i64;
        let mut peak = 0i64;
        for (_, d) in block_deltas {
            cur += d;
            peak = peak.max(cur);
        }
        let hours_of = |pred: fn(FlavorId) -> bool| -> f64 {
            by_flavor
                .iter()
                .filter(|(f, _)| pred(**f))
                .map(|(_, h)| h)
                .sum()
        };
        use opml_testbed::flavor::SiteKind;
        let vm_hours = hours_of(|f| matches!(f.site(), SiteKind::Vm));
        let gpu_hours = hours_of(|f| f.has_gpu());
        let baremetal_cpu_hours =
            hours_of(|f| matches!(f.site(), SiteKind::BareMetal) && !f.has_gpu());
        let edge_hours = hours_of(|f| matches!(f.site(), SiteKind::Edge));
        // BTreeMap iteration is already sorted by flavor.
        let by_flavor: Vec<(FlavorId, f64)> = by_flavor.into_iter().collect();
        ProjectUsageSummary {
            vm_hours,
            gpu_hours,
            baremetal_cpu_hours,
            edge_hours,
            fip_hours,
            block_gb_hours,
            object_gb,
            object_gb_hours,
            peak_block_gb: peak as u64,
            by_flavor,
        }
    }

    /// Total instance hours (VM + GPU + bare-metal + edge).
    pub fn total_instance_hours(&self) -> f64 {
        self.vm_hours + self.gpu_hours + self.baremetal_cpu_hours + self.edge_hours
    }
}

/// Price the project phase on one provider (edge hours unpriced; storage
/// included — §5: storage "will be significant for project work").
pub fn price_project(summary: &ProjectUsageSummary, provider: Provider) -> f64 {
    let mut total = 0.0;
    for &(flavor, hours) in &summary.by_flavor {
        if let Some(rate) = project_flavor_rate(provider, flavor) {
            total += hours * rate;
        }
    }
    total += summary.fip_hours * FIP_HOURLY_USD;
    total += block_storage_cost(provider, 1.0, summary.block_gb_hours); // gb folded into gb-hours
    total += object_storage_cost(provider, 1.0, summary.object_gb_hours);
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use opml_simkernel::SimTime;
    use opml_testbed::ledger::UsageRecord;

    fn t(h: u64) -> SimTime {
        SimTime(h * 60)
    }

    fn push_inst(l: &mut Ledger, name: &str, flavor: FlavorId, hours: u64) {
        l.push(UsageRecord {
            name: name.into(),
            kind: UsageKind::Instance {
                flavor,
                auto_terminated: false,
            },
            start: t(0),
            end: t(hours),
        });
        l.push(UsageRecord {
            name: name.into(),
            kind: UsageKind::FloatingIp,
            start: t(0),
            end: t(hours),
        });
    }

    #[test]
    fn table1_row_pricing_matches_paper_formula() {
        // Reconstruct the paper's lab 1 row: 2,620 instance hours and
        // 2,620 FIP hours on m1.small → $40 AWS / $57 GCP.
        let mut l = Ledger::new();
        for s in 0..131 {
            push_inst(&mut l, &format!("lab1-s{s:03}"), FlavorId::M1Small, 20);
        }
        let rollup = AssignmentRollup::from_ledger(&l, 191);
        let table = price_lab_assignments(&rollup);
        assert_eq!(table.rows.len(), 1);
        let row = &table.rows[0];
        assert_eq!(row.instance_hours, 2620.0);
        assert!(
            (row.aws_usd.unwrap() - 40.0).abs() < 1.0,
            "{:?}",
            row.aws_usd
        );
        assert!(
            (row.gcp_usd.unwrap() - 57.0).abs() < 1.5,
            "{:?}",
            row.gcp_usd
        );
        assert_eq!(row.aws_instance.as_deref(), Some("t3.micro"));
        assert_eq!(row.gcp_instance.as_deref(), Some("e2-small"));
    }

    #[test]
    fn edge_row_is_unpriced_but_counted_in_hours() {
        let mut l = Ledger::new();
        push_inst(&mut l, "lab6-edge-s001", FlavorId::RaspberryPi5, 492);
        let table = price_lab_assignments(&AssignmentRollup::from_ledger(&l, 191));
        let row = &table.rows[0];
        assert_eq!(row.aws_usd, None);
        assert_eq!(row.gcp_usd, None);
        assert_eq!(table.total.instance_hours, 492.0);
        assert_eq!(table.total.aws_usd, 0.0);
    }

    #[test]
    fn project_rows_excluded_from_table1() {
        let mut l = Ledger::new();
        push_inst(&mut l, "lab1-s001", FlavorId::M1Small, 2);
        push_inst(&mut l, "proj-g01-api", FlavorId::M1Medium, 100);
        let table = price_lab_assignments(&AssignmentRollup::from_ledger(&l, 191));
        assert_eq!(table.rows.len(), 1);
        assert_eq!(table.rows[0].tag, "lab1");
    }

    #[test]
    fn per_student_costs_separate_students() {
        let mut l = Ledger::new();
        push_inst(&mut l, "lab1-s001", FlavorId::M1Small, 2);
        push_inst(&mut l, "lab1-s002", FlavorId::M1Small, 200); // neglected VM
        let per = PerStudentUsage::from_ledger(&l);
        let costs = per_student_lab_costs(&per, Provider::Aws);
        assert_eq!(costs.len(), 2);
        let c1 = costs.iter().find(|(s, _)| *s == 1).unwrap().1;
        let c2 = costs.iter().find(|(s, _)| *s == 2).unwrap().1;
        assert!(c2 > 50.0 * c1, "neglect must dominate: {c1} vs {c2}");
    }

    #[test]
    fn expected_cost_baseline() {
        // Single assignment: lab1 at 2 expected hours.
        let expected = vec![ExpectedUsage {
            tag: "lab1".into(),
            instance_hours: 2.0,
            fip_hours: 2.0,
        }];
        let aws = expected_student_cost(&expected, Provider::Aws);
        assert!((aws - (2.0 * 0.0104 + 0.01)).abs() < 1e-9);
        // Edge rows contribute nothing.
        let edge = vec![ExpectedUsage {
            tag: "lab6-edge".into(),
            instance_hours: 2.0,
            fip_hours: 2.0,
        }];
        assert_eq!(expected_student_cost(&edge, Provider::Aws), 0.0);
    }

    #[test]
    fn project_summary_classifies_hours() {
        let mut l = Ledger::new();
        push_inst(&mut l, "proj-g01-api", FlavorId::M1Medium, 100);
        push_inst(&mut l, "proj-g01-train", FlavorId::ComputeGigaio, 10);
        push_inst(&mut l, "proj-g02-etl", FlavorId::ComputeCascadeLake, 5);
        push_inst(&mut l, "proj-g02-edge", FlavorId::RaspberryPi5, 3);
        l.push(UsageRecord {
            name: "proj-g01-vol".into(),
            kind: UsageKind::Volume { size_gb: 100 },
            start: t(0),
            end: t(10),
        });
        l.push(UsageRecord {
            name: "proj-g01-bucket".into(),
            kind: UsageKind::ObjectStorage { gb: 50.0 },
            start: t(0),
            end: t(20),
        });
        let s = ProjectUsageSummary::from_ledger(&l);
        assert_eq!(s.vm_hours, 100.0);
        assert_eq!(s.gpu_hours, 10.0);
        assert_eq!(s.baremetal_cpu_hours, 5.0);
        assert_eq!(s.edge_hours, 3.0);
        assert_eq!(s.block_gb_hours, 1000.0);
        assert_eq!(s.object_gb, 50.0);
        assert_eq!(s.peak_block_gb, 100);
        assert_eq!(s.total_instance_hours(), 118.0);
        // Pricing includes VM + GPU + BM + storage but not edge.
        let aws = price_project(&s, Provider::Aws);
        let expected = 100.0 * 0.0416
            + 10.0 * 1.46
            + 5.0 * 4.08
            + 118.0 * FIP_HOURLY_USD
            + block_storage_cost(Provider::Aws, 1.0, 1000.0)
            + object_storage_cost(Provider::Aws, 1.0, 1000.0);
        assert!((aws - expected).abs() < 1e-9, "{aws} vs {expected}");
    }

    #[test]
    fn lab_usage_excluded_from_project_summary() {
        let mut l = Ledger::new();
        push_inst(&mut l, "lab2-s001", FlavorId::M1Medium, 50);
        push_inst(&mut l, "proj-g01-api", FlavorId::M1Medium, 10);
        let s = ProjectUsageSummary::from_ledger(&l);
        assert_eq!(s.vm_hours, 10.0);
    }
}
