//! Cloud instance catalogs — July 2025 on-demand snapshot.
//!
//! Region fixing per the paper: `us-east-1` (AWS) and `us-central1`
//! (GCP). Standard VM rates are the published on-demand prices. GPU
//! instance rates marked `implied: true` are back-derived from Table 1 of
//! the paper (`rate = (row cost − 0.005·FIP hours) / instance hours`)
//! because the paper's exact GPU instance choices are not stated and the
//! calculators cannot be re-queried for July 2025; the names are the
//! closest-matching real shapes. This preserves the evaluation's cost
//! *shape* exactly, which is what the reproduction targets.

use serde::{Deserialize, Serialize};

/// A commercial cloud provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Provider {
    /// Amazon Web Services, us-east-1.
    Aws,
    /// Google Cloud Platform, us-central1.
    Gcp,
}

impl Provider {
    /// Both providers, in report order.
    pub const ALL: [Provider; 2] = [Provider::Aws, Provider::Gcp];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Provider::Aws => "AWS",
            Provider::Gcp => "GCP",
        }
    }
}

/// GPU classes relevant to the course's requirements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CloudGpu {
    /// A100 80 GB class (bf16-capable, large memory).
    A100_80,
    /// A100 40 GB class.
    A100_40,
    /// V100 class.
    V100,
    /// L4/T4/A10G serving class.
    ServingClass,
}

/// One catalog entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CloudInstance {
    /// Provider.
    pub provider: Provider,
    /// Instance type name.
    pub name: &'static str,
    /// vCPUs.
    pub vcpus: u32,
    /// RAM in GB.
    pub ram_gb: u32,
    /// GPU count.
    pub gpus: u32,
    /// GPU class, if any.
    pub gpu: Option<CloudGpu>,
    /// Whether the shape is burstable / shared-core (inadequate when an
    /// assignment needs dedicated cores, e.g. Kubernetes control planes).
    pub shared_core: bool,
    /// On-demand $/hour.
    pub hourly_usd: f64,
    /// Rate back-derived from Table 1 rather than a published price list.
    pub implied: bool,
}

macro_rules! inst {
    ($p:expr, $name:literal, $v:expr, $r:expr, $g:expr, $gc:expr, $sc:expr, $usd:expr, $imp:expr) => {
        CloudInstance {
            provider: $p,
            name: $name,
            vcpus: $v,
            ram_gb: $r,
            gpus: $g,
            gpu: $gc,
            shared_core: $sc,
            hourly_usd: $usd,
            implied: $imp,
        }
    };
}

/// The AWS catalog.
pub fn aws_catalog() -> Vec<CloudInstance> {
    use CloudGpu::*;
    use Provider::Aws;
    vec![
        // Burstable general purpose (t3: 2 hardware threads, CPU credits).
        inst!(Aws, "t3.micro", 2, 1, 0, None, false, 0.0104, false),
        inst!(Aws, "t3.small", 2, 2, 0, None, false, 0.0208, false),
        inst!(Aws, "t3.medium", 2, 4, 0, None, false, 0.0416, false),
        inst!(Aws, "t3.large", 2, 8, 0, None, false, 0.0832, false),
        inst!(Aws, "t3.xlarge", 4, 16, 0, None, false, 0.1664, false),
        inst!(Aws, "t3.2xlarge", 8, 32, 0, None, false, 0.3328, false),
        // Fixed-performance general purpose.
        inst!(Aws, "m5.large", 2, 8, 0, None, false, 0.096, false),
        inst!(Aws, "m5.xlarge", 4, 16, 0, None, false, 0.192, false),
        inst!(Aws, "c5.xlarge", 4, 8, 0, None, false, 0.17, false),
        inst!(Aws, "c5.24xlarge", 96, 192, 0, None, false, 4.08, false),
        // GPU shapes. Implied rates per the module docs.
        inst!(
            Aws,
            "g5.2xlarge",
            8,
            32,
            1,
            Some(ServingClass),
            false,
            1.46,
            true
        ),
        inst!(
            Aws,
            "g5.12xlarge",
            48,
            192,
            2,
            Some(ServingClass),
            false,
            4.617,
            true
        ),
        inst!(
            Aws,
            "g5.16xlarge",
            64,
            256,
            2,
            Some(ServingClass),
            false,
            5.062,
            true
        ),
        inst!(
            Aws,
            "p4de.6xlarge (est)",
            24,
            280,
            1,
            Some(A100_80),
            false,
            3.307,
            true
        ),
        inst!(
            Aws,
            "p4de.12xlarge (est)",
            48,
            560,
            4,
            Some(A100_80),
            false,
            17.919,
            true
        ),
        inst!(Aws, "p3.2xlarge", 8, 61, 1, Some(V100), false, 3.06, false),
        inst!(
            Aws,
            "p4d.24xlarge",
            96,
            1152,
            8,
            Some(A100_40),
            false,
            32.77,
            false
        ),
    ]
}

/// The GCP catalog.
pub fn gcp_catalog() -> Vec<CloudInstance> {
    use CloudGpu::*;
    use Provider::Gcp;
    vec![
        // Shared-core / burstable E2 shapes.
        inst!(Gcp, "e2-micro", 2, 1, 0, None, true, 0.0084, false),
        inst!(Gcp, "e2-small", 2, 2, 0, None, true, 0.0168, false),
        inst!(Gcp, "e2-medium", 2, 4, 0, None, true, 0.0335, false),
        // Dedicated-core shapes.
        inst!(Gcp, "e2-standard-2", 2, 8, 0, None, false, 0.067, false),
        inst!(Gcp, "e2-standard-4", 4, 16, 0, None, false, 0.134, false),
        inst!(Gcp, "n2-standard-2", 2, 8, 0, None, false, 0.1005, true),
        inst!(Gcp, "n2-standard-4", 4, 16, 0, None, false, 0.1942, false),
        inst!(Gcp, "n2-standard-8", 8, 32, 0, None, false, 0.3885, false),
        inst!(
            Gcp,
            "c2-standard-60",
            60,
            240,
            0,
            None,
            false,
            3.1321,
            false
        ),
        // GPU shapes.
        inst!(
            Gcp,
            "g2-standard-12",
            12,
            48,
            1,
            Some(ServingClass),
            false,
            1.1474,
            true
        ),
        inst!(
            Gcp,
            "g2-standard-24",
            24,
            96,
            2,
            Some(ServingClass),
            false,
            2.0,
            true
        ),
        inst!(
            Gcp,
            "a2-ultragpu-1g",
            12,
            170,
            1,
            Some(A100_80),
            false,
            5.068,
            true
        ),
        inst!(
            Gcp,
            "a2-highgpu-4g",
            48,
            340,
            4,
            Some(A100_80),
            false,
            14.701,
            true
        ),
        inst!(
            Gcp,
            "a2-highgpu-1g",
            12,
            85,
            1,
            Some(A100_40),
            false,
            3.673,
            false
        ),
        inst!(
            Gcp,
            "n1-standard-8+V100",
            8,
            30,
            1,
            Some(V100),
            false,
            2.86,
            false
        ),
    ]
}

/// The catalog for a provider.
pub fn catalog(provider: Provider) -> Vec<CloudInstance> {
    match provider {
        Provider::Aws => aws_catalog(),
        Provider::Gcp => gcp_catalog(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogs_are_sane() {
        for p in Provider::ALL {
            let cat = catalog(p);
            assert!(cat.len() >= 10, "{} catalog too small", p.name());
            for inst in &cat {
                assert!(inst.hourly_usd > 0.0, "{} has no price", inst.name);
                assert!(inst.vcpus > 0 && inst.ram_gb > 0, "{} shape", inst.name);
                assert_eq!(inst.gpus > 0, inst.gpu.is_some(), "{} gpu flags", inst.name);
                assert_eq!(inst.provider, p);
            }
            // Names unique within a provider.
            let mut names: Vec<&str> = cat.iter().map(|i| i.name).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), cat.len());
        }
    }

    #[test]
    fn gpu_instances_cost_more_than_cpu() {
        for p in Provider::ALL {
            let cat = catalog(p);
            let max_cpu = cat
                .iter()
                .filter(|i| i.gpus == 0 && i.vcpus <= 8)
                .map(|i| i.hourly_usd)
                .fold(0.0, f64::max);
            let min_gpu = cat
                .iter()
                .filter(|i| i.gpus > 0)
                .map(|i| i.hourly_usd)
                .fold(f64::INFINITY, f64::min);
            assert!(min_gpu > max_cpu, "{}", p.name());
        }
    }

    #[test]
    fn implied_rates_match_table1_derivations() {
        // Spot-check the derivations documented in DESIGN.md §5.
        let aws = aws_catalog();
        let a100x4 = aws
            .iter()
            .find(|i| i.name.contains("p4de.12xlarge"))
            .unwrap();
        // lab4 multi-GPU row: (2993 − 0.005·167)/167 = 17.919.
        assert!((a100x4.hourly_usd - (2993.0 - 0.005 * 167.0) / 167.0).abs() < 0.01);
        let gcp = gcp_catalog();
        let a2 = gcp.iter().find(|i| i.name == "a2-highgpu-4g").unwrap();
        assert!((a2.hourly_usd - (2456.0 - 0.005 * 167.0) / 167.0).abs() < 0.01);
    }
}
