//! Cheapest-adequate-instance selection.

use crate::catalog::{catalog, CloudInstance, Provider};
use crate::requirement::{pin_for, AssignmentPricing, Requirement};

/// Whether an instance meets a requirement.
pub fn adequate(inst: &CloudInstance, req: &Requirement) -> bool {
    if inst.vcpus < req.min_vcpus || inst.ram_gb < req.min_ram_gb {
        return false;
    }
    if inst.gpus < req.min_gpus {
        return false;
    }
    if req.dedicated_cores && inst.shared_core {
        return false;
    }
    if req.min_gpus > 0 {
        let Some(class_req) = req.gpu_class else {
            return true;
        };
        let Some(gpu) = inst.gpu else {
            return false;
        };
        if !class_req.satisfied_by(gpu) {
            return false;
        }
    }
    true
}

/// The cheapest adequate instance in a provider's catalog
/// (ties broken by name for determinism).
pub fn cheapest_adequate(provider: Provider, req: &Requirement) -> Option<CloudInstance> {
    catalog(provider)
        .into_iter()
        .filter(|i| adequate(i, req))
        .min_by(|a, b| {
            a.hourly_usd
                .partial_cmp(&b.hourly_usd)
                .expect("prices are finite")
                .then(a.name.cmp(b.name))
        })
}

/// Resolve the instance used to price an assignment: the paper's pinned
/// choice when recoverable, otherwise generic cheapest-adequate.
///
/// Panics if a pin names a missing catalog entry (checked by tests).
pub fn resolve(pricing: &AssignmentPricing, provider: Provider) -> Option<CloudInstance> {
    if pricing.edge {
        return None;
    }
    if let Some(pin) = pin_for(pricing, provider) {
        let inst = catalog(provider)
            .into_iter()
            .find(|i| i.name == pin)
            .unwrap_or_else(|| panic!("pinned instance {pin} missing from catalog"));
        return Some(inst);
    }
    cheapest_adequate(provider, &pricing.requirement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::requirement::{assignment_table, GpuClassReq};

    #[test]
    fn vm_selection_matches_public_prices() {
        // 2 vCPU / 4 GB, shared-core OK → t3.medium / e2-medium.
        let req = Requirement::vm(2, 4, false);
        assert_eq!(
            cheapest_adequate(Provider::Aws, &req).unwrap().name,
            "t3.medium"
        );
        assert_eq!(
            cheapest_adequate(Provider::Gcp, &req).unwrap().name,
            "e2-medium"
        );
    }

    #[test]
    fn dedicated_cores_excludes_shared_shapes() {
        let req = Requirement::vm(2, 4, true);
        let gcp = cheapest_adequate(Provider::Gcp, &req).unwrap();
        assert!(!gcp.shared_core);
        assert_eq!(gcp.name, "e2-standard-2"); // cheapest dedicated ≥2/4
    }

    #[test]
    fn a100_class_is_enforced() {
        let req = Requirement::gpu(4, GpuClassReq::A100Large);
        for p in Provider::ALL {
            let inst = cheapest_adequate(p, &req).unwrap();
            assert!(inst.gpus >= 4, "{}", inst.name);
            assert_eq!(
                inst.gpu,
                Some(crate::catalog::CloudGpu::A100_80),
                "{}",
                inst.name
            );
        }
    }

    #[test]
    fn any_gpu_picks_cheapest_gpu() {
        let req = Requirement::gpu(1, GpuClassReq::Any);
        let aws = cheapest_adequate(Provider::Aws, &req).unwrap();
        assert!(aws.gpus >= 1);
        // g5.2xlarge ($1.46) is the cheapest adequate AWS GPU shape.
        assert_eq!(aws.name, "g5.2xlarge");
    }

    #[test]
    fn impossible_requirement_returns_none() {
        let req = Requirement::vm(10_000, 1, false);
        assert!(cheapest_adequate(Provider::Aws, &req).is_none());
    }

    #[test]
    fn resolve_uses_pins_and_excludes_edge() {
        let table = assignment_table();
        let lab2 = table.iter().find(|a| a.tag == "lab2").unwrap();
        assert_eq!(resolve(lab2, Provider::Gcp).unwrap().name, "n2-standard-2");
        let edge = table.iter().find(|a| a.tag == "lab6-edge").unwrap();
        assert!(resolve(edge, Provider::Aws).is_none());
    }

    #[test]
    fn every_non_edge_assignment_resolves_on_both_providers() {
        for a in assignment_table() {
            if a.edge {
                continue;
            }
            for p in Provider::ALL {
                let inst = resolve(&a, p)
                    .unwrap_or_else(|| panic!("{} has no {} equivalent", a.tag, p.name()));
                assert!(
                    adequate(&inst, &a.requirement) || a.pin.is_some(),
                    "{}: resolved {} inadequate without a pin",
                    a.tag,
                    inst.name
                );
            }
        }
    }

    #[test]
    fn generic_vs_pinned_deviations_are_known() {
        // Document exactly where the paper's choices deviate from the
        // generic rule — the set must not silently grow.
        let mut deviations = Vec::new();
        for a in assignment_table() {
            if a.edge {
                continue;
            }
            for p in Provider::ALL {
                let pinned = resolve(&a, p).unwrap();
                if let Some(generic) = cheapest_adequate(p, &a.requirement) {
                    if generic.name != pinned.name {
                        deviations.push(format!("{}/{}", a.tag, p.name()));
                    }
                }
            }
        }
        // lab1: paper used e2-small though e2-micro is cheaper (RAM
        // judgement); lab2/3 GCP: n2 over e2-standard-2 (sustained-CPU
        // judgement); lab6-system AWS: a pricier 2-GPU shape; lab8: AWS
        // sized by vCPU (t3.xlarge) while GCP sized by RAM
        // (e2-standard-2).
        for expected in [
            "lab1/GCP",
            "lab2/GCP",
            "lab3/GCP",
            "lab6-system/AWS",
            "lab8/GCP",
        ] {
            assert!(
                deviations.contains(&expected.to_string()),
                "expected deviation {expected} missing from {deviations:?}"
            );
        }
        assert!(
            deviations.len() <= 8,
            "unexpected deviations: {deviations:?}"
        );
    }
}
