//! Price-arithmetic primitives shared by the estimators.

use crate::catalog::Provider;
use opml_testbed::flavor::FlavorId;

/// Floating-IP / public-IPv4 hourly rate — $0.005/h on both providers
/// (AWS public IPv4 since Feb 2024; GCP in-use external IP).
pub const FIP_HOURLY_USD: f64 = 0.005;

/// Block-storage $/GB-month (EBS gp3 vs PD balanced).
pub fn block_storage_gb_month(provider: Provider) -> f64 {
    match provider {
        Provider::Aws => 0.08,
        Provider::Gcp => 0.10,
    }
}

/// Object-storage $/GB-month (S3 standard vs GCS standard).
pub fn object_storage_gb_month(provider: Provider) -> f64 {
    match provider {
        Provider::Aws => 0.023,
        Provider::Gcp => 0.020,
    }
}

/// Hours in a billing month (730 is the cloud-billing convention).
pub const HOURS_PER_MONTH: f64 = 730.0;

/// Cost of holding a floating IP for `hours`.
pub fn fip_cost(hours: f64) -> f64 {
    hours * FIP_HOURLY_USD
}

/// Cost of `gb` of block storage held for `hours`.
pub fn block_storage_cost(provider: Provider, gb: f64, hours: f64) -> f64 {
    gb * block_storage_gb_month(provider) * hours / HOURS_PER_MONTH
}

/// Cost of `gb` of object storage held for `hours`.
pub fn object_storage_cost(provider: Provider, gb: f64, hours: f64) -> f64 {
    gb * object_storage_gb_month(provider) * hours / HOURS_PER_MONTH
}

/// Hourly rate used to price **project-phase** usage of a testbed flavor
/// (the per-flavor blended assumptions of §5's "less precise" project
/// estimate; see DESIGN.md). Returns `None` for edge devices, which have
/// no commercial equivalent.
pub fn project_flavor_rate(provider: Provider, flavor: FlavorId) -> Option<f64> {
    use FlavorId::*;
    let (aws, gcp): (f64, f64) = match flavor {
        M1Small => (0.0104, 0.0168),
        // Projects run multi-service stacks: GCP priced on dedicated n2.
        M1Medium => (0.0416, 0.1005),
        M1Large => (0.1664, 0.1942),
        M1Xlarge => (0.3328, 0.3885),
        // Single-GPU composable nodes.
        ComputeGigaio | ComputeLiqid => (1.46, 1.147),
        // Dual-GPU nodes.
        ComputeLiqid2 | GpuMi100 | GpuP100 => (4.617, 2.0),
        // 4×GPU training nodes.
        GpuA100Pcie | GpuV100 => (17.919, 14.701),
        // Large bare-metal CPU nodes (data processing pipelines).
        ComputeCascadeLake => (4.08, 3.1321),
        RaspberryPi5 => return None,
    };
    Some(match provider {
        Provider::Aws => aws,
        Provider::Gcp => gcp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fip_rate_matches_table1_derivation() {
        // Lab 1: 2,620 instance hours at t3.micro + 2,620 FIP hours =
        // $40.(sub-dollar rounding) on AWS.
        let total = 2620.0 * 0.0104 + fip_cost(2620.0);
        assert!((total - 40.0).abs() < 0.5, "lab1 AWS total {total}");
    }

    #[test]
    fn storage_costs_scale_linearly() {
        let c1 = block_storage_cost(Provider::Aws, 100.0, HOURS_PER_MONTH);
        assert!((c1 - 8.0).abs() < 1e-9);
        let c2 = block_storage_cost(Provider::Aws, 200.0, HOURS_PER_MONTH / 2.0);
        assert!((c1 - c2).abs() < 1e-9);
        assert!(object_storage_cost(Provider::Gcp, 1541.0, HOURS_PER_MONTH * 1.5) < 50.0);
    }

    #[test]
    fn edge_has_no_commercial_rate() {
        for p in Provider::ALL {
            assert_eq!(project_flavor_rate(p, FlavorId::RaspberryPi5), None);
        }
    }

    #[test]
    fn every_other_flavor_has_rates() {
        for f in FlavorId::ALL {
            if f == FlavorId::RaspberryPi5 {
                continue;
            }
            for p in Provider::ALL {
                let r = project_flavor_rate(p, f).unwrap();
                assert!(r > 0.0, "{f} on {}", p.name());
            }
        }
    }

    #[test]
    fn gpu_rates_ordered_by_gpu_count() {
        for p in Provider::ALL {
            let one = project_flavor_rate(p, FlavorId::ComputeGigaio).unwrap();
            let two = project_flavor_rate(p, FlavorId::GpuMi100).unwrap();
            let four = project_flavor_rate(p, FlavorId::GpuA100Pcie).unwrap();
            assert!(one < two && two < four, "{}", p.name());
        }
    }
}
