//! Per-assignment infrastructure requirements for equivalence pricing.
//!
//! §5: "an 'equivalent' resource was defined as the most cost-effective
//! cloud instance that met the specific needs of each assignment." The
//! needs come from §3's per-unit infrastructure descriptions. Where the
//! paper's actual choice is recoverable from Table 1 (the implied rate
//! identifies the instance), the entry carries a **pin** so the Table 1
//! reproduction uses exactly that instance; the generic
//! [`crate::equivalence::cheapest_adequate`] algorithm is exercised and
//! compared against the pins in tests — the deviations are themselves
//! interesting (see EXPERIMENTS.md).

use crate::catalog::{CloudGpu, Provider};
use serde::{Deserialize, Serialize};

/// GPU adequacy classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GpuClassReq {
    /// Needs bf16 + ~80 GB device memory (the Unit 4 13B fine-tune):
    /// only A100-80GB-class shapes qualify.
    A100Large,
    /// Any CUDA-capable GPU is fine (tracking, serving labs).
    Any,
}

impl GpuClassReq {
    /// Whether a catalog GPU class satisfies this requirement.
    pub fn satisfied_by(self, gpu: CloudGpu) -> bool {
        match self {
            GpuClassReq::A100Large => matches!(gpu, CloudGpu::A100_80),
            GpuClassReq::Any => true,
        }
    }
}

/// What an assignment needs from an instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Requirement {
    /// Minimum vCPUs.
    pub min_vcpus: u32,
    /// Minimum RAM (GB).
    pub min_ram_gb: u32,
    /// Minimum GPUs.
    pub min_gpus: u32,
    /// GPU class constraint (when `min_gpus > 0`).
    pub gpu_class: Option<GpuClassReq>,
    /// Whether shared-core/burstable shapes are inadequate (Kubernetes
    /// nodes need sustained cores).
    pub dedicated_cores: bool,
}

impl Requirement {
    /// CPU-only requirement.
    pub const fn vm(min_vcpus: u32, min_ram_gb: u32, dedicated_cores: bool) -> Self {
        Requirement {
            min_vcpus,
            min_ram_gb,
            min_gpus: 0,
            gpu_class: None,
            dedicated_cores,
        }
    }

    /// GPU requirement.
    pub const fn gpu(count: u32, class: GpuClassReq) -> Self {
        Requirement {
            min_vcpus: 4,
            min_ram_gb: 16,
            min_gpus: count,
            gpu_class: Some(class),
            dedicated_cores: true,
        }
    }
}

/// Pricing metadata for one Table 1 assignment row family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AssignmentPricing {
    /// Assignment tag (shared with the cohort simulator's naming).
    pub tag: &'static str,
    /// Table 1 row title.
    pub title: &'static str,
    /// Requirement.
    pub requirement: Requirement,
    /// Paper's instance choice `[AWS, GCP]` where recoverable from the
    /// implied rates; `None` falls back to generic selection.
    pub pin: Option<[&'static str; 2]>,
    /// True for the edge row (no commercial equivalent — excluded from
    /// cost, as the paper excludes "Serving from the Edge").
    pub edge: bool,
}

/// The Table 1 assignment families, in paper order.
pub fn assignment_table() -> Vec<AssignmentPricing> {
    use GpuClassReq::*;
    vec![
        AssignmentPricing {
            tag: "lab1",
            title: "1. Hello, Chameleon",
            requirement: Requirement::vm(1, 1, false),
            pin: Some(["t3.micro", "e2-small"]),
            edge: false,
        },
        AssignmentPricing {
            tag: "lab2",
            title: "2. Cloud Computing",
            requirement: Requirement::vm(2, 4, true),
            pin: Some(["t3.medium", "n2-standard-2"]),
            edge: false,
        },
        AssignmentPricing {
            tag: "lab3",
            title: "3. MLOps",
            requirement: Requirement::vm(2, 4, true),
            pin: Some(["t3.medium", "n2-standard-2"]),
            edge: false,
        },
        AssignmentPricing {
            tag: "lab4-multi",
            title: "4. Train at Scale (Multi GPU)",
            requirement: Requirement::gpu(4, A100Large),
            pin: Some(["p4de.12xlarge (est)", "a2-highgpu-4g"]),
            edge: false,
        },
        AssignmentPricing {
            tag: "lab4-single",
            title: "4. Train at Scale (One GPU)",
            requirement: Requirement::gpu(1, A100Large),
            pin: Some(["p4de.6xlarge (est)", "a2-ultragpu-1g"]),
            edge: false,
        },
        AssignmentPricing {
            tag: "lab5-multi",
            title: "5. Training in a Cluster (Multi GPU)",
            requirement: Requirement::gpu(2, Any),
            pin: Some(["g5.12xlarge", "g2-standard-24"]),
            edge: false,
        },
        AssignmentPricing {
            tag: "lab5-single",
            title: "5. Experiment Tracking (One GPU)",
            requirement: Requirement::gpu(1, Any),
            pin: Some(["g5.2xlarge", "g2-standard-12"]),
            edge: false,
        },
        AssignmentPricing {
            tag: "lab6-opt",
            title: "6. Model Serving Optimizations",
            requirement: Requirement::gpu(1, Any),
            pin: Some(["g5.2xlarge", "g2-standard-12"]),
            edge: false,
        },
        AssignmentPricing {
            tag: "lab6-edge",
            title: "6. Serving from the Edge",
            requirement: Requirement::vm(4, 8, false),
            pin: None,
            edge: true,
        },
        AssignmentPricing {
            tag: "lab6-system",
            title: "6. System Serving Optimizations",
            requirement: Requirement::gpu(2, Any),
            pin: Some(["g5.16xlarge", "g2-standard-24"]),
            edge: false,
        },
        AssignmentPricing {
            tag: "lab7",
            title: "7. Monitoring and Evaluation",
            requirement: Requirement::vm(2, 4, false),
            pin: Some(["t3.medium", "e2-medium"]),
            edge: false,
        },
        AssignmentPricing {
            tag: "lab8",
            title: "8. Persistent Data",
            requirement: Requirement::vm(4, 8, false),
            pin: Some(["t3.xlarge", "e2-standard-2"]),
            edge: false,
        },
    ]
}

/// Look up the pricing metadata for a tag.
pub fn for_tag(tag: &str) -> Option<AssignmentPricing> {
    assignment_table().into_iter().find(|a| a.tag == tag)
}

/// The pinned instance name for a provider, if pinned.
pub fn pin_for(pricing: &AssignmentPricing, provider: Provider) -> Option<&'static str> {
    pricing.pin.map(|[aws, gcp]| match provider {
        Provider::Aws => aws,
        Provider::Gcp => gcp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_covers_all_twelve_families() {
        let t = assignment_table();
        assert_eq!(t.len(), 12);
        let mut tags: Vec<&str> = t.iter().map(|a| a.tag).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), 12, "duplicate tags");
    }

    #[test]
    fn only_edge_row_is_edge() {
        let edge: Vec<&str> = assignment_table()
            .iter()
            .filter(|a| a.edge)
            .map(|a| a.tag)
            .collect();
        assert_eq!(edge, vec!["lab6-edge"]);
    }

    #[test]
    fn pins_reference_existing_catalog_entries() {
        use crate::catalog::catalog;
        for a in assignment_table() {
            for p in Provider::ALL {
                if let Some(pin) = pin_for(&a, p) {
                    assert!(
                        catalog(p).iter().any(|i| i.name == pin),
                        "{}: pinned {pin} missing from {} catalog",
                        a.tag,
                        p.name()
                    );
                }
            }
        }
    }

    #[test]
    fn gpu_class_satisfaction() {
        assert!(GpuClassReq::A100Large.satisfied_by(CloudGpu::A100_80));
        assert!(!GpuClassReq::A100Large.satisfied_by(CloudGpu::V100));
        assert!(!GpuClassReq::A100Large.satisfied_by(CloudGpu::ServingClass));
        assert!(GpuClassReq::Any.satisfied_by(CloudGpu::ServingClass));
    }

    #[test]
    fn for_tag_lookup() {
        assert_eq!(for_tag("lab8").unwrap().title, "8. Persistent Data");
        assert!(for_tag("lab99").is_none());
    }
}
