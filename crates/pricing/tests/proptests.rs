//! Property-based tests for pricing invariants.

use opml_pricing::catalog::Provider;
use opml_pricing::equivalence::{adequate, cheapest_adequate};
use opml_pricing::requirement::{GpuClassReq, Requirement};
use proptest::prelude::*;

proptest! {
    /// The selected instance is always adequate, and no adequate
    /// instance is cheaper — for arbitrary CPU requirements.
    #[test]
    fn selection_is_cheapest_adequate(
        vcpus in 1u32..16,
        ram in 1u32..64,
        dedicated in any::<bool>(),
    ) {
        let req = Requirement::vm(vcpus, ram, dedicated);
        for provider in Provider::ALL {
            if let Some(chosen) = cheapest_adequate(provider, &req) {
                prop_assert!(adequate(&chosen, &req), "{} inadequate", chosen.name);
                for other in opml_pricing::catalog::catalog(provider) {
                    if adequate(&other, &req) {
                        prop_assert!(
                            other.hourly_usd >= chosen.hourly_usd,
                            "{} (${}) beats chosen {} (${})",
                            other.name, other.hourly_usd, chosen.name, chosen.hourly_usd
                        );
                    }
                }
            }
        }
    }

    /// Requirement monotonicity: asking for more never gets cheaper.
    #[test]
    fn more_requirements_never_cheaper(
        vcpus in 1u32..8,
        ram in 1u32..32,
        extra_vcpus in 0u32..8,
        extra_ram in 0u32..32,
    ) {
        for provider in Provider::ALL {
            let base = cheapest_adequate(provider, &Requirement::vm(vcpus, ram, false));
            let bigger =
                cheapest_adequate(provider, &Requirement::vm(vcpus + extra_vcpus, ram + extra_ram, false));
            if let (Some(a), Some(b)) = (base, bigger) {
                prop_assert!(b.hourly_usd >= a.hourly_usd);
            }
        }
    }

    /// GPU selections always carry enough GPUs of an allowed class.
    #[test]
    fn gpu_selection_class_correct(count in 1u32..5, strict in any::<bool>()) {
        let class = if strict { GpuClassReq::A100Large } else { GpuClassReq::Any };
        let req = Requirement::gpu(count, class);
        for provider in Provider::ALL {
            if let Some(inst) = cheapest_adequate(provider, &req) {
                prop_assert!(inst.gpus >= count);
                let gpu = inst.gpu.expect("gpu instance");
                prop_assert!(class.satisfied_by(gpu));
            }
        }
    }
}
