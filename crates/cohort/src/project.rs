//! Project-phase usage model (§3.11, §5).
//!
//! 191 students form 48 groups (47×4 + 1×3). Each group owns a
//! multi-service ML system for the last ~6.5 weeks of the semester.
//! Groups fall into intensity classes — §5: "some groups requiring
//! extremely large-scale data processing capabilities or extended time on
//! multi-GPU nodes for training, and others having less intensive
//! requirements."
//!
//! Calibration targets (§5 project totals): 70,259 VM hours, 5,446 GPU
//! hours, 975 bare-metal CPU hours, 175 edge hours, 9 TB block storage,
//! 1,541 GB object storage. Fig. 3's per-instance-type split is not
//! numerically given in the paper; the flavor mixes here are our
//! documented assumption (see EXPERIMENTS.md).

use crate::semester::{PlannedLease, PlannedVm, PlannedVolume};
use opml_simkernel::{split_seed, Rng, SimDuration, SimTime};
use opml_testbed::flavor::FlavorId;
use opml_testbed::Cloud;
use serde::{Deserialize, Serialize};

/// Number of project groups (47 groups of 4 + 1 group of 3 = 191).
pub const GROUPS: u32 = 48;

/// §5 calibration targets.
pub mod targets {
    /// Total VM hours without GPU.
    pub const VM_HOURS: f64 = 70_259.0;
    /// Total GPU instance hours.
    pub const GPU_HOURS: f64 = 5_446.0;
    /// Bare-metal CPU hours.
    pub const BAREMETAL_HOURS: f64 = 975.0;
    /// Edge-device hours.
    pub const EDGE_HOURS: f64 = 175.0;
    /// Block storage (GB).
    pub const BLOCK_GB: f64 = 9_216.0;
    /// Object storage (GB).
    pub const OBJECT_GB: f64 = 1_541.0;
}

/// VM flavor mix by hours (our documented assumption for Fig. 3).
const VM_MIX: [(FlavorId, f64); 4] = [
    (FlavorId::M1Medium, 0.55),
    (FlavorId::M1Large, 0.30),
    (FlavorId::M1Xlarge, 0.10),
    (FlavorId::M1Small, 0.05),
];

/// GPU flavor mix by hours.
const GPU_MIX: [(FlavorId, f64); 6] = [
    (FlavorId::ComputeGigaio, 0.39),
    (FlavorId::ComputeLiqid, 0.39),
    (FlavorId::ComputeLiqid2, 0.07),
    (FlavorId::GpuMi100, 0.08),
    (FlavorId::GpuP100, 0.05),
    (FlavorId::GpuA100Pcie, 0.02),
];

/// A group's intensity class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Intensity {
    /// Lean system (×0.5 resources).
    Light,
    /// Typical system (×1.0).
    Medium,
    /// Data/GPU-heavy system (×1.6).
    Heavy,
}

impl Intensity {
    /// Sample with weights 0.30/0.45/0.25 (mean multiplier exactly 1.0).
    pub fn sample(rng: &mut Rng) -> Intensity {
        match rng.weighted_index(&[0.30, 0.45, 0.25]) {
            0 => Intensity::Light,
            1 => Intensity::Medium,
            _ => Intensity::Heavy,
        }
    }

    /// Resource multiplier.
    pub fn multiplier(self) -> f64 {
        match self {
            Intensity::Light => 0.5,
            Intensity::Medium => 1.0,
            Intensity::Heavy => 1.6,
        }
    }
}

/// The planned project-phase actions.
#[derive(Debug, Default)]
pub struct ProjectPlan {
    /// VM service deployments.
    pub vms: Vec<PlannedVm>,
    /// Lease-backed deployments (GPU/bare-metal/edge sessions).
    pub leases: Vec<PlannedLease>,
    /// Block volumes.
    pub volumes: Vec<PlannedVolume>,
    /// Object buckets `(name, gb, at)`.
    pub buckets: Vec<(String, f64, SimTime)>,
}

/// Plan all project-phase usage for groups `0..GROUPS`. Leases are
/// admitted against the cloud's reservation calendar here (reservations
/// are future-dated); the semester driver executes the plan in time
/// order.
pub fn plan_projects(
    cloud: &mut Cloud,
    window_start: SimTime,
    window_end: SimTime,
    seed: u64,
) -> ProjectPlan {
    plan_projects_range(cloud, window_start, window_end, seed, 0..GROUPS)
}

/// Plan project-phase usage for a contiguous range of **global** group
/// ids (the sharded semester gives each shard its own id range).
///
/// Group `g`'s RNG stream, resource names (`proj-g<g>-…`) and per-group
/// budgets depend only on `g` and `seed` — never on the range bounds —
/// so planning groups `0..48` in one call or in two split calls against
/// independent campuses draws identical per-group decisions (only
/// calendar contention differs, and each shard owns its own calendar).
pub fn plan_projects_range(
    cloud: &mut Cloud,
    window_start: SimTime,
    window_end: SimTime,
    seed: u64,
    groups: std::ops::Range<u32>,
) -> ProjectPlan {
    assert!(window_end > window_start);
    let window_h = (window_end - window_start).as_hours_f64();
    let mut plan = ProjectPlan::default();
    let vm_weights: Vec<f64> = VM_MIX.iter().map(|&(_, w)| w).collect();
    let gpu_weights: Vec<f64> = GPU_MIX.iter().map(|&(_, w)| w).collect();

    let mut total_block_gb = 0u64;
    for g in groups {
        let mut rng = Rng::new(split_seed(seed, 0x50_0000 + g as u64));
        let intensity = Intensity::sample(&mut rng);
        let m = intensity.multiplier();
        let gname = |suffix: &str| format!("proj-g{g:02}-{suffix}");

        // ---- VM services -------------------------------------------
        let mut vm_budget = targets::VM_HOURS / GROUPS as f64 * m * rng.lognormal(-0.06125, 0.35);
        let mut svc = 0;
        while vm_budget > 1.0 {
            let hours = rng.range_f64(150.0, 900.0).min(vm_budget).min(window_h);
            // detlint::allow(DL008): weighted_index returns an index < vm_weights.len() == VM_MIX.len()
            let flavor = VM_MIX[rng.weighted_index(&vm_weights)].0;
            let latest_start = window_h - hours;
            let start_h = rng.range_f64(0.0, latest_start.max(1e-6));
            plan.vms.push(PlannedVm {
                name: gname(&format!("svc{svc}")),
                flavor,
                node_count: 1,
                start: window_start + SimDuration::from_hours_f64(start_h),
                wall: SimDuration::from_hours_f64(hours),
                fip: svc % 3 == 0, // every third service is public-facing
                network: svc == 0, // one private network per group
                attempts: 0,
                fault_attempts: 0,
            });
            vm_budget -= hours;
            svc += 1;
        }

        // ---- GPU training sessions ---------------------------------
        let mut gpu_budget = targets::GPU_HOURS / GROUPS as f64 * m * rng.lognormal(-0.125, 0.5);
        let mut session = 0;
        while gpu_budget > 0.5 {
            let hours = rng.range_f64(2.0, 8.0).min(gpu_budget.max(2.0));
            // detlint::allow(DL008): weighted_index returns an index < gpu_weights.len() == GPU_MIX.len()
            let flavor = GPU_MIX[rng.weighted_index(&gpu_weights)].0;
            let preferred =
                window_start + SimDuration::from_hours_f64(rng.range_f64(0.0, window_h - hours));
            let dur = SimDuration::from_hours_f64(hours);
            if let Some(start) = cloud.earliest_slot(flavor, 1, dur, preferred) {
                if start + dur <= window_end + SimDuration::weeks(1) {
                    // Slot search admitted this window, so the reserve
                    // should succeed; if it races anything, skip the
                    // session rather than abort the plan.
                    if let Ok(lease) = cloud.reserve(flavor, 1, start, start + dur, &gname("train"))
                    {
                        plan.leases.push(PlannedLease {
                            name: gname(&format!("train{session}")),
                            lease: lease.id,
                            start,
                            end: start + dur,
                        });
                    }
                }
            }
            gpu_budget -= hours;
            session += 1;
        }

        // ---- Bare-metal data processing (≈25% of groups) -----------
        if rng.chance(0.25) {
            let mut bm_budget =
                targets::BAREMETAL_HOURS / GROUPS as f64 / 0.25 * m * rng.lognormal(-0.08, 0.4);
            let mut batch = 0;
            while bm_budget > 1.0 {
                let hours = rng.range_f64(4.0, 12.0).min(bm_budget.max(4.0));
                let preferred = window_start
                    + SimDuration::from_hours_f64(rng.range_f64(0.0, window_h - hours));
                let dur = SimDuration::from_hours_f64(hours);
                if let Some(start) =
                    cloud.earliest_slot(FlavorId::ComputeCascadeLake, 1, dur, preferred)
                {
                    if let Ok(lease) = cloud.reserve(
                        FlavorId::ComputeCascadeLake,
                        1,
                        start,
                        start + dur,
                        &gname("etl"),
                    ) {
                        plan.leases.push(PlannedLease {
                            name: gname(&format!("etl{batch}")),
                            lease: lease.id,
                            start,
                            end: start + dur,
                        });
                    }
                }
                bm_budget -= hours;
                batch += 1;
            }
        }

        // ---- Edge deployments (≈20% of groups) ---------------------
        if rng.chance(0.20) {
            let mut edge_budget =
                targets::EDGE_HOURS / GROUPS as f64 / 0.20 * rng.lognormal(-0.08, 0.4);
            let mut dev = 0;
            while edge_budget > 0.5 {
                let hours = rng.range_f64(2.0, 5.0).min(edge_budget.max(2.0));
                let preferred = window_start
                    + SimDuration::from_hours_f64(rng.range_f64(0.0, window_h - hours));
                let dur = SimDuration::from_hours_f64(hours);
                if let Some(start) = cloud.earliest_slot(FlavorId::RaspberryPi5, 1, dur, preferred)
                {
                    if let Ok(lease) = cloud.reserve(
                        FlavorId::RaspberryPi5,
                        1,
                        start,
                        start + dur,
                        &gname("edge"),
                    ) {
                        plan.leases.push(PlannedLease {
                            name: gname(&format!("edge{dev}")),
                            lease: lease.id,
                            start,
                            end: start + dur,
                        });
                    }
                }
                edge_budget -= hours;
                dev += 1;
            }
        }

        // ---- Storage ------------------------------------------------
        let want_gb = (targets::BLOCK_GB / GROUPS as f64 * m * rng.lognormal(-0.08, 0.4)) as u64;
        // Respect the 10 TB project quota across all groups.
        let gb = want_gb.min(10_240u64.saturating_sub(total_block_gb)).max(2);
        total_block_gb += gb;
        plan.volumes.push(PlannedVolume {
            name: gname("data"),
            gb,
            start: window_start + SimDuration::hours(rng.range_u64(0, 48)),
            end: window_end,
            attempts: 0,
        });
        plan.buckets.push((
            gname("bucket"),
            targets::OBJECT_GB / GROUPS as f64 * m * rng.lognormal(-0.08, 0.4),
            window_start + SimDuration::hours(rng.range_u64(0, 72)),
        ));
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_fixture(seed: u64) -> (Cloud, ProjectPlan) {
        let mut cloud = Cloud::paper_course();
        let start = SimTime::at(8, 3, 12, 0);
        let end = SimTime::at(15, 0, 0, 0);
        let plan = plan_projects(&mut cloud, start, end, seed);
        (cloud, plan)
    }

    #[test]
    fn vm_hours_near_target() {
        let (_, plan) = plan_fixture(1);
        let total: f64 = plan.vms.iter().map(|v| v.wall.as_hours_f64()).sum();
        assert!(
            (total / targets::VM_HOURS - 1.0).abs() < 0.15,
            "VM hours {total:.0} vs target {}",
            targets::VM_HOURS
        );
    }

    #[test]
    fn gpu_hours_near_target() {
        let (_, plan) = plan_fixture(2);
        let gpu: f64 = plan
            .leases
            .iter()
            .filter(|l| l.name.contains("train"))
            .map(|l| (l.end - l.start).as_hours_f64())
            .sum();
        assert!(
            (gpu / targets::GPU_HOURS - 1.0).abs() < 0.25,
            "GPU hours {gpu:.0} vs target {}",
            targets::GPU_HOURS
        );
    }

    #[test]
    fn storage_near_targets_and_within_quota() {
        let (_, plan) = plan_fixture(3);
        let block: u64 = plan.volumes.iter().map(|v| v.gb).sum();
        assert!(block <= 10_240, "block {block} exceeds quota");
        assert!(
            (block as f64 / targets::BLOCK_GB - 1.0).abs() < 0.25,
            "block {block} vs target {}",
            targets::BLOCK_GB
        );
        let object: f64 = plan.buckets.iter().map(|(_, gb, _)| gb).sum();
        assert!(
            (object / targets::OBJECT_GB - 1.0).abs() < 0.25,
            "object {object:.0} vs target {}",
            targets::OBJECT_GB
        );
    }

    #[test]
    fn every_group_plans_something() {
        let (_, plan) = plan_fixture(4);
        for g in 0..GROUPS {
            let prefix = format!("proj-g{g:02}-");
            assert!(
                plan.vms.iter().any(|v| v.name.starts_with(&prefix)),
                "group {g} has no VM services"
            );
            assert!(
                plan.volumes.iter().any(|v| v.name.starts_with(&prefix)),
                "group {g} has no volume"
            );
        }
    }

    #[test]
    fn leases_admitted_in_calendar() {
        let (cloud, plan) = plan_fixture(5);
        for l in &plan.leases {
            assert!(
                cloud.calendar().get(l.lease).is_some(),
                "{} lease missing",
                l.name
            );
        }
    }

    #[test]
    fn intensity_multipliers_average_to_one() {
        let mut rng = Rng::new(9);
        let mean: f64 = (0..50_000)
            .map(|_| Intensity::sample(&mut rng).multiplier())
            .sum::<f64>()
            / 50_000.0;
        assert!((mean - 1.0).abs() < 0.01, "mean multiplier {mean}");
    }

    #[test]
    fn deterministic() {
        let (_, a) = plan_fixture(6);
        let (_, b) = plan_fixture(6);
        assert_eq!(a.vms.len(), b.vms.len());
        assert_eq!(a.leases.len(), b.leases.len());
        let key = |p: &ProjectPlan| -> Vec<(String, u64)> {
            p.vms.iter().map(|v| (v.name.clone(), v.wall.0)).collect()
        };
        assert_eq!(key(&a), key(&b));
    }
}
