//! # opml-cohort
//!
//! The course itself: lab specifications from §3 of the paper, a
//! per-student behaviour model calibrated to §5's observed usage, the
//! project-phase model, and the semester driver that plays the whole
//! 14-week course against an [`opml_testbed::Cloud`].
//!
//! * [`labspec`] — the 12 Table 1 lab/part specifications: flavors, node
//!   counts, expected durations, reservation slot lengths, storage.
//! * [`behavior`] — the student model. VM labs overrun their expected
//!   durations (no auto-termination: "sometimes intentionally …, other
//!   times due to neglect", §5); bare-metal labs quantize to reservation
//!   slots. Per-student latent traits (tidiness, neglect propensity) are
//!   shared across labs, which is what produces Fig. 2's long tail.
//! * [`project`] — 48 groups of 3–4 students (191 total) with
//!   light/medium/heavy intensity classes generating the §5 project-phase
//!   usage (VM services, GPU training sessions, bare-metal data
//!   pipelines, edge deployments, block/object storage).
//! * [`labwork`] — executes each lab's *actual workload* against the
//!   `opml-mlops`/`opml-sched` substrates (used by integration tests and
//!   examples to verify the simulated course teaches real mechanisms).
//! * [`semester`] — the discrete-event driver: plans per-student
//!   deployments and reservations, plays them time-ordered against the
//!   cloud, and returns the closed usage ledger.

pub mod behavior;
pub mod labspec;
pub mod labwork;
pub mod project;
pub mod semester;
pub mod spill;

pub use behavior::StudentProfile;
pub use labspec::{lab_specs, LabSpec};
pub use semester::{simulate_semester, SemesterConfig, SemesterOutcome};
