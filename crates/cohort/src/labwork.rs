//! The labs' *actual workloads*, executed against the real substrates.
//!
//! The semester driver meters infrastructure; this module is the other
//! half of the reproduction: each unit's lab body runs the genuine
//! mechanism it teaches (§3), at laptop scale, so integration tests and
//! the `gourmetgram` example can verify the course's content — not just
//! its cost.

use opml_mlops::allreduce::ReduceAlgo;
use opml_mlops::cicd::{CicdConfig, CicdSystem, Commit, DeployOutcome};
use opml_mlops::data::{
    drop_invalid, fit_normalizer, normalize, run_streaming_job, EtlPipeline, FeatureStore, Record,
};
use opml_mlops::ddp::{train_ddp, DdpConfig};
use opml_mlops::drift::{DriftDetector, DriftStatus};
use opml_mlops::eval::{evaluate, run_behavioral_suite, BehavioralTest};
use opml_mlops::model::{train_epoch, Dataset, Mlp, Sgd};
use opml_mlops::modelparallel::{train_pipeline, PipelineConfig};
use opml_mlops::monitoring::{evaluate_alerts, AlertRule, Cmp, MetricsStore};
use opml_mlops::optimize::{fused_predict, model_bytes, QuantizedMlp};
use opml_mlops::pipeline::{Context, Workflow};
use opml_mlops::precision::{train_epoch_bf16, training_memory_gb, TrainingMemoryConfig};
use opml_mlops::raycluster::{tune, RayCluster};
use opml_mlops::serving::{simulate, LoadSpec, ModelProfile, ServerConfig};
use opml_mlops::tracking::{ExperimentTracker, RunStatus};
use opml_sched::{workload, Cluster, Placement, Policy, SchedSim};
use opml_simkernel::Rng;

/// Outcome of one unit's lab workload.
#[derive(Debug, Clone)]
pub struct LabWorkOutcome {
    /// Which unit ran.
    pub unit: u8,
    /// Named scalar results (accuracy, speedups, detection delay, …).
    pub metrics: Vec<(String, f64)>,
    /// Whether every check in the lab body held.
    pub passed: bool,
}

fn food11(seed: u64) -> Dataset {
    Dataset::blobs(440, 8, 11, 0.6, seed)
}

/// Unit 2: cloud computing — provision the three-VM cluster on the
/// testbed, "install Kubernetes", deploy GourmetGram with replicas and
/// load balancing, survive a pod crash, and scale horizontally.
pub fn unit2_cloud_computing(seed: u64) -> LabWorkOutcome {
    use opml_mlops::orchestrator::{Autoscaler, DeploymentSpec, Orchestrator, PodPhase, Service};
    use opml_testbed::{Cloud, FlavorId};
    // Infrastructure: 3 × m1.medium + network + floating IP (§3.2).
    let mut cloud = Cloud::paper_course();
    let mut ids = Vec::new();
    for k in 0..3 {
        ids.push(
            cloud
                .create_instance(&format!("lab2-s000-node{k}"), FlavorId::M1Medium)
                .expect("quota headroom"),
        );
    }
    let net = cloud.create_network("lab2-s000").expect("network quota");
    let fip = cloud.allocate_fip("lab2-s000").expect("fip quota");
    let provisioned = cloud.active_instances() == 3;
    // Platform: the food-classifier deployment with 3 replicas.
    let mut rng = Rng::new(seed);
    let mut orch = Orchestrator::new();
    orch.apply(&[DeploymentSpec {
        name: "gourmetgram".into(),
        image: "food11:v1".into(),
        replicas: 3,
        max_unavailable: 1,
    }]);
    for _ in 0..4 {
        orch.tick(&mut rng);
    }
    let deployed = orch.ready_pods("gourmetgram").len() == 3;
    // Load balancing across replicas.
    let mut svc = Service::new();
    let mut served = std::collections::BTreeSet::new();
    for _ in 0..9 {
        if let Some(pod) = svc.route(&orch, "gourmetgram") {
            served.insert(pod);
        }
    }
    let balanced = served.len() == 3;
    // Self-healing: kill everything, watch it come back.
    orch.crash_probability = 1.0;
    orch.tick(&mut rng);
    orch.crash_probability = 0.0;
    let crashed = orch.ready_pods("gourmetgram").is_empty()
        || orch
            .pods_of("gourmetgram")
            .iter()
            .any(|p| p.phase != PodPhase::Ready);
    for _ in 0..4 {
        orch.tick(&mut rng);
    }
    let healed = orch.ready_pods("gourmetgram").len() == 3;
    // Horizontal scaling under a traffic spike.
    let hpa = Autoscaler {
        min_replicas: 3,
        max_replicas: 8,
        target_load_per_pod: 40.0,
    };
    hpa.reconcile(&mut orch, "gourmetgram", 260.0);
    for _ in 0..4 {
        orch.tick(&mut rng);
    }
    let scaled = orch.ready_pods("gourmetgram").len() == 7; // ceil(260/40)
                                                            // Teardown (the tidy-student path).
    for id in ids {
        cloud.delete_instance(id).expect("active instance");
    }
    cloud.release_fip(fip).expect("held fip");
    cloud.delete_network(net).expect("active network");
    LabWorkOutcome {
        unit: 2,
        metrics: vec![
            ("vms_provisioned".into(), 3.0),
            ("replicas_ready".into(), 3.0),
            (
                "replicas_after_spike".into(),
                orch.ready_pods("gourmetgram").len() as f64,
            ),
        ],
        passed: provisioned && deployed && balanced && crashed && healed && scaled,
    }
}

/// Unit 3: IaC-style pipeline — train → evaluation gate → register →
/// staged deploy with rollback, on the DAG engine + CI/CD system.
pub fn unit3_mlops(seed: u64) -> LabWorkOutcome {
    let (train, holdout) = food11(seed).split(0.8, seed + 1);
    let mut sys = CicdSystem::new("gourmetgram", CicdConfig::default());
    let healthy = sys.run_commit(&Commit::healthy(1, "initial"), &train, &holdout);
    let mut bad = Commit::healthy(2, "regression");
    bad.latency_regression = 0.6;
    let rolled = sys.run_commit(&bad, &train, &holdout);
    // Also exercise the raw DAG engine with the lab's dummy steps.
    let mut wf = Workflow::new();
    wf.add_task("register", &[], 0, |ctx| {
        ctx.set("version", "1");
        Ok(())
    })
    .expect("fresh name");
    wf.add_task("promote", &["register"], 0, |ctx| {
        ctx.get("version")
            .map(|_| ())
            .ok_or_else(|| "missing version".into())
    })
    .expect("fresh name");
    let wf_ok = wf.run(&Context::new()).succeeded();
    let promoted = matches!(healthy, DeployOutcome::Promoted { .. });
    let rolled_back = matches!(rolled, DeployOutcome::RolledBack { .. });
    LabWorkOutcome {
        unit: 3,
        metrics: vec![
            ("pipeline_waves".into(), 2.0),
            ("promoted".into(), f64::from(promoted)),
            ("rolled_back".into(), f64::from(rolled_back)),
        ],
        passed: promoted && rolled_back && wf_ok,
    }
}

/// Unit 4: memory math for the 13B model, bf16 training, and 4-way DDP
/// with ring all-reduce.
pub fn unit4_train_at_scale(seed: u64) -> LabWorkOutcome {
    let full_gb = training_memory_gb(&TrainingMemoryConfig::llm_13b_full_f32());
    let qlora_gb = training_memory_gb(&TrainingMemoryConfig::llm_13b_qlora());
    let data = food11(seed);
    // Single-GPU part: bf16 + (implicit) gradient accumulation.
    let mut rng = Rng::new(seed);
    let mut model = Mlp::new(&[8, 24, 11], &mut rng);
    let mut opt = Sgd::new(0.1, 0.9);
    let mut bf16_acc = 0.0;
    for _ in 0..20 {
        bf16_acc = train_epoch_bf16(&mut model, &data, &mut opt, 32, &mut rng).1;
    }
    // Multi-GPU part: DDP over 4 workers.
    let (_, ddp) = train_ddp(
        &DdpConfig {
            sizes: vec![8, 24, 11],
            workers: 4,
            epochs: 10,
            batch_size: 16,
            lr: 0.1,
            momentum: 0.9,
            algo: ReduceAlgo::Ring,
            seed,
        },
        &data,
    );
    let ddp_acc = ddp.history.last().map(|&(_, a)| a).unwrap_or(0.0);
    // The lecture's third paradigm: pipeline model parallelism.
    let (_, pipe) = train_pipeline(
        &PipelineConfig {
            sizes: vec![8, 24, 24, 11],
            stages: 3,
            micro_batches: 4,
            micro_batch_size: 16,
            steps: 120,
            lr: 0.1,
            seed,
        },
        &data,
    );
    LabWorkOutcome {
        unit: 4,
        metrics: vec![
            ("full_f32_memory_gb".into(), full_gb),
            ("qlora_memory_gb".into(), qlora_gb),
            ("bf16_accuracy".into(), bf16_acc),
            ("ddp_accuracy".into(), ddp_acc),
            ("pipeline_accuracy".into(), pipe.accuracy),
            ("pipeline_bubble".into(), pipe.bubble_fraction),
        ],
        passed: full_gb > 80.0
            && qlora_gb < 80.0
            && bf16_acc > 0.8
            && ddp_acc > 0.8
            && ddp.in_sync
            && pipe.accuracy > 0.8
            && (pipe.bubble_fraction - 2.0 / 6.0).abs() < 1e-9,
    }
}

/// Unit 5: experiment tracking + hyperparameter search, and cluster
/// scheduling with backfilling.
pub fn unit5_training_infra(seed: u64) -> LabWorkOutcome {
    let data = food11(seed);
    let tracker = ExperimentTracker::new();
    // Ray-Tune-style sweep, runs logged concurrently.
    let lrs = [0.01f32, 0.05, 0.1, 0.2];
    std::thread::scope(|s| {
        for (i, &lr) in lrs.iter().enumerate() {
            let tracker = tracker.clone();
            let data = data.clone();
            s.spawn(move || {
                let run = tracker.start_run("sweep");
                tracker.log_param(run, "lr", &lr.to_string());
                let mut rng = Rng::new(seed + i as u64);
                let mut model = Mlp::new(&[8, 24, 11], &mut rng);
                let mut opt = Sgd::new(lr, 0.9);
                for epoch in 0..15 {
                    let (loss, acc) = train_epoch(&mut model, &data, &mut opt, 32, &mut rng);
                    tracker.log_metric(run, "loss", epoch, loss as f64);
                    tracker.log_metric(run, "acc", epoch, acc);
                    tracker.log_system_metric(run, "gpu_util", epoch, 0.9);
                }
                tracker.end_run(run, RunStatus::Finished);
            });
        }
    });
    let best = tracker.best_run("sweep", "acc", true).expect("sweep ran");
    let best_acc = best.last_metric("acc").unwrap_or(0.0);
    // Ray part: hyperparameter search with ASHA on the task cluster.
    let tune_report = tune(
        &RayCluster::lab_cluster(),
        &tracker,
        &data,
        8,
        5,
        10,
        seed + 50,
    );
    // Scheduling part: backfill vs FCFS on an ML trace.
    let jobs = workload::ml_trace(300, 0.9, seed);
    let fcfs = SchedSim::new(Cluster::homogeneous(8, 4), Policy::Fcfs, Placement::Packed)
        .run(&jobs)
        .metrics();
    let easy = SchedSim::new(
        Cluster::homogeneous(8, 4),
        Policy::EasyBackfill,
        Placement::Packed,
    )
    .run(&jobs)
    .metrics();
    LabWorkOutcome {
        unit: 5,
        metrics: vec![
            ("best_sweep_accuracy".into(), best_acc),
            ("ray_tune_best_accuracy".into(), tune_report.best_accuracy),
            (
                "ray_tune_early_stopped".into(),
                tune_report.early_stopped as f64,
            ),
            ("fcfs_mean_wait_h".into(), fcfs.mean_wait_hours),
            ("backfill_mean_wait_h".into(), easy.mean_wait_hours),
        ],
        passed: best_acc > 0.85
            && tune_report.best_accuracy > 0.85
            && tune_report.early_stopped == 4
            && easy.mean_wait_hours <= fcfs.mean_wait_hours + 1e-9,
    }
}

/// Unit 6: model optimization (int8, fusion) + dynamic-batching serving.
pub fn unit6_serving(seed: u64) -> LabWorkOutcome {
    let data = food11(seed);
    let mut rng = Rng::new(seed);
    let mut model = Mlp::new(&[8, 32, 11], &mut rng);
    let mut opt = Sgd::new(0.1, 0.9);
    for _ in 0..25 {
        train_epoch(&mut model, &data, &mut opt, 32, &mut rng);
    }
    let fp32_acc = data.accuracy(&mut model);
    let q = QuantizedMlp::from_model(&model);
    let int8_acc = q.accuracy(&data);
    let compression = model_bytes(&model) as f64 / q.bytes() as f64;
    let fused_same = fused_predict(&model, &data.x) == model.predict(&data.x);
    let load = LoadSpec {
        rps: 150.0,
        requests: 2000,
    };
    let base = simulate(
        ModelProfile::fp32_server_gpu(),
        ServerConfig::baseline(),
        load,
        seed,
    );
    let batched = simulate(
        ModelProfile::int8_server_gpu(),
        ServerConfig {
            replicas: 2,
            max_batch: 8,
            max_queue_delay_ms: 5.0,
        },
        load,
        seed,
    );
    let edge = simulate(
        ModelProfile::int8_edge_pi5(),
        ServerConfig::baseline(),
        LoadSpec {
            rps: 2.0,
            requests: 100,
        },
        seed,
    );
    LabWorkOutcome {
        unit: 6,
        metrics: vec![
            ("fp32_accuracy".into(), fp32_acc),
            ("int8_accuracy".into(), int8_acc),
            ("compression_ratio".into(), compression),
            ("baseline_p95_ms".into(), base.p95_latency_ms),
            ("optimized_p95_ms".into(), batched.p95_latency_ms),
            ("edge_mean_ms".into(), edge.mean_latency_ms),
        ],
        passed: fp32_acc - int8_acc < 0.05
            && compression > 3.0
            && fused_same
            && batched.p95_latency_ms < base.p95_latency_ms
            && edge.mean_latency_ms > batched.mean_latency_ms,
    }
}

/// Unit 7: offline evaluation, behavioural tests, live monitoring with
/// alerts, and drift detection on a label-free signal.
pub fn unit7_monitoring(seed: u64) -> LabWorkOutcome {
    let data = food11(seed);
    let mut rng = Rng::new(seed);
    let mut model = Mlp::new(&[8, 32, 11], &mut rng);
    let mut opt = Sgd::new(0.1, 0.9);
    for _ in 0..25 {
        train_epoch(&mut model, &data, &mut opt, 32, &mut rng);
    }
    let report = evaluate(&mut model, &data);
    let behav = run_behavioral_suite(
        &mut model,
        &data,
        &[
            BehavioralTest::NoiseInvariance {
                noise: 0.05,
                max_flip_rate: 0.05,
            },
            BehavioralTest::Determinism,
        ],
        seed,
    );
    // Live monitoring: latency degrades, alert fires.
    let mut store = MetricsStore::new();
    for i in 0..200 {
        let lat = if i < 100 { 40.0 } else { 180.0 };
        store.record("latency_ms", i as f64 * 10.0, lat);
    }
    let alerts = evaluate_alerts(
        &store,
        &[AlertRule {
            name: "slo-breach".into(),
            metric: "latency_ms".into(),
            threshold: 100.0,
            cmp: Cmp::Above,
            window_ms: 300.0,
            min_samples: 5,
        }],
        1990.0,
    );
    // Drift: feed feature[0] of clean then shifted data.
    let reference: Vec<f64> = (0..data.len()).map(|i| data.x.get(i, 0) as f64).collect();
    let mut det = DriftDetector::new(reference, 100, 0.01);
    let shifted = data.shifted(2.0);
    let mut drift_seen = false;
    for i in 0..shifted.len() {
        if let Some(r) = det.push(shifted.x.get(i, 0) as f64) {
            if r.status == DriftStatus::Drift {
                drift_seen = true;
                break;
            }
        }
    }
    LabWorkOutcome {
        unit: 7,
        metrics: vec![
            ("accuracy".into(), report.accuracy),
            ("macro_f1".into(), report.macro_f1()),
            ("alerts_fired".into(), alerts.len() as f64),
            ("drift_detected".into(), f64::from(drift_seen)),
        ],
        passed: report.accuracy > 0.85
            && behav.iter().all(|b| b.passed)
            && alerts.len() == 1
            && drift_seen,
    }
}

/// Unit 8: ETL, streaming, and the feature store's point-in-time
/// consistency.
pub fn unit8_data(seed: u64) -> LabWorkOutcome {
    let mut rng = Rng::new(seed);
    let raw: Vec<Record> = (0..500)
        .map(|i| Record {
            entity: i % 50,
            ts_ms: i * 10,
            features: if i % 25 == 0 {
                vec![f64::NAN, 0.0]
            } else {
                vec![rng.normal() * 3.0 + 5.0, rng.normal()]
            },
            label: if i % 17 == 0 {
                None
            } else {
                Some((i % 11) as u32)
            },
        })
        .collect();
    let cleaned_input = raw.clone();
    let pipeline = EtlPipeline::new().stage("drop_invalid", drop_invalid);
    let (cleaned, lineage) = pipeline.run(cleaned_input);
    let (means, stds) = fit_normalizer(&cleaned);
    let normalized = normalize(cleaned.clone(), &means, &stds);
    let (post_means, _) = fit_normalizer(&normalized);
    // Streaming: 3 producers, 4 consumers, exactly-once.
    let batches: Vec<Vec<Record>> = cleaned
        .chunks(cleaned.len() / 3 + 1)
        .map(<[Record]>::to_vec)
        .collect();
    let n_in: usize = batches.iter().map(Vec::len).sum();
    let streamed = run_streaming_job(batches, 4, |r| r);
    // Feature store: point-in-time correctness.
    let mut fs = FeatureStore::new();
    fs.ingest_batch(normalized.clone());
    fs.materialize();
    let pit_ok = normalized
        .iter()
        .take(20)
        .all(|r| fs.get_historical(r.entity, r.ts_ms).is_some());
    let consistency = fs
        .get_online(normalized[0].entity)
        .and_then(|online| {
            let hist = fs.get_historical(normalized[0].entity, u64::MAX)?;
            Some(online == &hist.features)
        })
        .unwrap_or(false);
    LabWorkOutcome {
        unit: 8,
        metrics: vec![
            ("rows_in".into(), lineage[0].1 as f64),
            ("rows_clean".into(), cleaned.len() as f64),
            ("streamed".into(), streamed.len() as f64),
            ("post_norm_mean".into(), post_means[0].abs()),
        ],
        passed: cleaned.len() < raw.len()
            && post_means[0].abs() < 1e-9
            && streamed.len() == n_in
            && pit_ok
            && consistency,
    }
}

/// Run every unit's workload; returns one outcome per unit.
pub fn run_all_units(seed: u64) -> Vec<LabWorkOutcome> {
    run_all_units_with(seed, &opml_telemetry::Telemetry::disabled())
}

/// Run every unit's workload like [`run_all_units`], narrating progress
/// and emitting one `lab.unit` event per unit through `telemetry`.
///
/// The lab bodies run at laptop scale outside the semester clock, so
/// their events sit on the harness track at `SimTime::ZERO`.
pub fn run_all_units_with(seed: u64, telemetry: &opml_telemetry::Telemetry) -> Vec<LabWorkOutcome> {
    use opml_simkernel::SimTime;
    use opml_telemetry::{narrate, HARNESS_TRACK, TRACK_ATTR};
    let units: [(&str, fn(u64) -> LabWorkOutcome, u64); 7] = [
        ("unit 2 (cloud computing)", unit2_cloud_computing, seed),
        ("unit 3 (MLOps pipeline)", unit3_mlops, seed),
        ("unit 4 (training at scale)", unit4_train_at_scale, seed + 1),
        (
            "unit 5 (training infrastructure)",
            unit5_training_infra,
            seed + 2,
        ),
        ("unit 6 (serving)", unit6_serving, seed + 3),
        ("unit 7 (monitoring)", unit7_monitoring, seed + 4),
        ("unit 8 (data systems)", unit8_data, seed + 5),
    ];
    let mut outcomes = Vec::with_capacity(units.len());
    for (label, body, unit_seed) in units {
        narrate!(telemetry, SimTime::ZERO, "running lab workload {label}…");
        let outcome = body(unit_seed);
        telemetry.instant(SimTime::ZERO, "lab.unit", || {
            vec![
                (TRACK_ATTR, HARNESS_TRACK.into()),
                ("unit", u64::from(outcome.unit).into()),
                ("passed", outcome.passed.into()),
                ("metrics", outcome.metrics.len().into()),
            ]
        });
        telemetry.counter_add(
            if outcome.passed {
                "labwork.units_passed"
            } else {
                "labwork.units_failed"
            },
            1,
        );
        outcomes.push(outcome);
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit2_cloud_cluster_lifecycle() {
        let o = unit2_cloud_computing(99);
        assert!(o.passed, "{:?}", o.metrics);
    }

    #[test]
    fn unit3_pipeline_promotes_and_rolls_back() {
        assert!(unit3_mlops(100).passed);
    }

    #[test]
    fn unit4_memory_and_distributed_training() {
        let o = unit4_train_at_scale(101);
        assert!(o.passed, "{:?}", o.metrics);
    }

    #[test]
    fn unit5_tracking_and_scheduling() {
        let o = unit5_training_infra(102);
        assert!(o.passed, "{:?}", o.metrics);
    }

    #[test]
    fn unit6_serving_optimizations() {
        let o = unit6_serving(103);
        assert!(o.passed, "{:?}", o.metrics);
    }

    #[test]
    fn unit7_monitoring_and_drift() {
        let o = unit7_monitoring(104);
        assert!(o.passed, "{:?}", o.metrics);
    }

    #[test]
    fn unit8_data_systems() {
        let o = unit8_data(105);
        assert!(o.passed, "{:?}", o.metrics);
    }
}
