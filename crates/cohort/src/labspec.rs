//! Lab specifications from §3 of the paper.
//!
//! Each Table 1 row family becomes one [`LabSpec`]: the flavor pool it
//! runs on (two pools where the paper lists two hardware rows for one
//! part), node count, the **expected** per-student duration from §3's
//! estimates, and the reservation slot length for bare-metal/edge labs
//! (§4: "short (2-hour or 3-hour) time slots").

use opml_testbed::flavor::FlavorId;
use serde::{Deserialize, Serialize};

/// Storage a lab provisions (Unit 8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StorageSpec {
    /// Block-volume size (GB).
    pub block_gb: u64,
    /// Object storage loaded (GB).
    pub object_gb: f64,
}

/// One lab assignment (or separately-metered part).
#[derive(Debug, Clone, Serialize)]
pub struct LabSpec {
    /// Assignment tag (shared with `opml-pricing`'s assignment table).
    pub tag: &'static str,
    /// Course unit number.
    pub unit: u8,
    /// Human title (Table 1 row).
    pub title: &'static str,
    /// Release week (0-based; the lab is worked during this week).
    pub week: u64,
    /// Flavor pool with selection weights (students land on whichever
    /// hardware class has a free slot; weights reproduce Table 1's split
    /// across rows).
    pub flavors: &'static [(FlavorId, f64)],
    /// Instances per deployment (3 for the Kubernetes labs).
    pub node_count: u32,
    /// Expected per-student wall-clock duration, hours (§3 estimates;
    /// lab 3's figure includes the unattended Kubernetes install).
    pub expected_hours: f64,
    /// Reservation slot length in hours (0 = on-demand VM lab).
    pub slot_hours: u64,
    /// Storage provisioned by the lab.
    pub storage: Option<StorageSpec>,
    /// Whether the deployment needs a private network + router
    /// (multi-node labs).
    pub private_network: bool,
}

impl LabSpec {
    /// Whether this lab runs on leased (auto-terminating) hardware.
    pub fn is_leased(&self) -> bool {
        self.slot_hours > 0
    }
}

/// All lab specs, in course order.
pub fn lab_specs() -> Vec<LabSpec> {
    use FlavorId::*;
    vec![
        LabSpec {
            tag: "lab1",
            unit: 1,
            title: "1. Hello, Chameleon",
            week: 0,
            flavors: &[(M1Small, 1.0)],
            node_count: 1,
            expected_hours: 1.5,
            slot_hours: 0,
            storage: None,
            private_network: false,
        },
        LabSpec {
            tag: "lab2",
            unit: 2,
            title: "2. Cloud Computing",
            week: 1,
            flavors: &[(M1Medium, 1.0)],
            node_count: 3,
            expected_hours: 5.0,
            slot_hours: 0,
            storage: None,
            private_network: true,
        },
        LabSpec {
            tag: "lab3",
            unit: 3,
            title: "3. MLOps",
            week: 2,
            flavors: &[(M1Medium, 1.0)],
            node_count: 3,
            expected_hours: 7.5,
            slot_hours: 0,
            storage: None,
            private_network: true,
        },
        LabSpec {
            tag: "lab4-multi",
            unit: 4,
            title: "4. Train at Scale (Multi GPU)",
            week: 3,
            // 167 h on gpu_a100_pcie vs 210 h on gpu_v100 in Table 1.
            flavors: &[(GpuA100Pcie, 0.44), (GpuV100, 0.56)],
            node_count: 1,
            expected_hours: 2.0,
            slot_hours: 2,
            storage: None,
            private_network: false,
        },
        LabSpec {
            tag: "lab4-single",
            unit: 4,
            title: "4. Train at Scale (One GPU)",
            week: 3,
            flavors: &[(ComputeGigaio, 1.0)],
            node_count: 1,
            expected_hours: 2.0,
            slot_hours: 2,
            storage: None,
            private_network: false,
        },
        LabSpec {
            tag: "lab5-multi",
            unit: 5,
            title: "5. Training in a Cluster (Multi GPU)",
            week: 4,
            // 330 h compute_liqid_2 vs 1,002 h gpu_mi100.
            flavors: &[(ComputeLiqid2, 0.25), (GpuMi100, 0.75)],
            node_count: 1,
            expected_hours: 3.0,
            slot_hours: 3,
            storage: None,
            private_network: false,
        },
        LabSpec {
            tag: "lab5-single",
            unit: 5,
            title: "5. Experiment Tracking (One GPU)",
            week: 4,
            // 28 h compute_gigaio vs 130 h compute_liqid.
            flavors: &[(ComputeGigaio, 0.18), (ComputeLiqid, 0.82)],
            node_count: 1,
            expected_hours: 3.0,
            slot_hours: 3,
            storage: None,
            private_network: false,
        },
        LabSpec {
            tag: "lab6-opt",
            unit: 6,
            title: "6. Model Serving Optimizations",
            week: 5,
            // 215 h compute_gigaio vs 460 h compute_liqid.
            flavors: &[(ComputeGigaio, 0.32), (ComputeLiqid, 0.68)],
            node_count: 1,
            expected_hours: 3.0,
            slot_hours: 3,
            storage: None,
            private_network: false,
        },
        LabSpec {
            tag: "lab6-edge",
            unit: 6,
            title: "6. Serving from the Edge",
            week: 5,
            flavors: &[(RaspberryPi5, 1.0)],
            node_count: 1,
            expected_hours: 2.0,
            slot_hours: 2,
            storage: None,
            private_network: false,
        },
        LabSpec {
            tag: "lab6-system",
            unit: 6,
            title: "6. System Serving Optimizations",
            week: 5,
            flavors: &[(GpuP100, 1.0)],
            node_count: 1,
            expected_hours: 3.0,
            slot_hours: 3,
            storage: None,
            private_network: false,
        },
        LabSpec {
            tag: "lab7",
            unit: 7,
            title: "7. Monitoring and Evaluation",
            week: 6,
            flavors: &[(M1Medium, 1.0)],
            node_count: 1,
            expected_hours: 6.0,
            slot_hours: 0,
            storage: None,
            private_network: false,
        },
        LabSpec {
            tag: "lab8",
            unit: 8,
            title: "8. Persistent Data",
            week: 7,
            flavors: &[(M1Large, 1.0)],
            node_count: 1,
            expected_hours: 3.0,
            slot_hours: 0,
            storage: Some(StorageSpec {
                block_gb: 2,
                object_gb: 1.2,
            }),
            private_network: false,
        },
    ]
}

/// Look up a spec by tag.
pub fn spec_for(tag: &str) -> Option<LabSpec> {
    lab_specs().into_iter().find(|s| s.tag == tag)
}

/// The expected per-student usage rows the §5 "expected cost" baseline
/// is computed from: `(tag, expected instance hours, expected FIP hours)`
/// per student. Multi-node labs multiply instance hours by node count;
/// FIP hours equal the wall-clock duration (one public IP per
/// deployment).
pub fn expected_usage_per_student() -> Vec<(String, f64, f64)> {
    lab_specs()
        .iter()
        .map(|s| {
            (
                s.tag.to_string(),
                s.expected_hours * s.node_count as f64,
                s.expected_hours,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_specs_matching_table1_rows() {
        let specs = lab_specs();
        assert_eq!(specs.len(), 12);
        let mut tags: Vec<&str> = specs.iter().map(|s| s.tag).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), 12);
    }

    #[test]
    fn flavor_weights_sum_to_one() {
        for s in lab_specs() {
            let total: f64 = s.flavors.iter().map(|&(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-9, "{}: weights sum {total}", s.tag);
        }
    }

    #[test]
    fn leased_labs_use_leased_flavors_and_vice_versa() {
        for s in lab_specs() {
            for &(f, _) in s.flavors {
                assert_eq!(
                    s.is_leased(),
                    f.requires_lease(),
                    "{}: slot/flavor mismatch on {f}",
                    s.tag
                );
            }
        }
    }

    #[test]
    fn slot_lengths_match_section4() {
        // §4: students reserved "short (2-hour or 3-hour) time slots".
        for s in lab_specs().iter().filter(|s| s.is_leased()) {
            assert!(s.slot_hours == 2 || s.slot_hours == 3, "{}", s.tag);
        }
    }

    #[test]
    fn kubernetes_labs_have_three_nodes_and_network() {
        for tag in ["lab2", "lab3"] {
            let s = spec_for(tag).unwrap();
            assert_eq!(s.node_count, 3);
            assert!(s.private_network);
        }
    }

    #[test]
    fn unit8_storage_spec() {
        let s = spec_for("lab8").unwrap();
        let st = s.storage.unwrap();
        assert_eq!(st.block_gb, 2);
        assert!((st.object_gb - 1.2).abs() < 1e-9);
    }

    #[test]
    fn expected_usage_matches_specs() {
        let rows = expected_usage_per_student();
        assert_eq!(rows.len(), 12);
        let lab2 = rows.iter().find(|(t, _, _)| t == "lab2").unwrap();
        assert_eq!(lab2.1, 15.0); // 3 nodes × 5 h
        assert_eq!(lab2.2, 5.0);
        let lab4 = rows.iter().find(|(t, _, _)| t == "lab4-multi").unwrap();
        assert_eq!(lab4.1, 2.0);
    }

    #[test]
    fn weeks_are_in_course_order() {
        let specs = lab_specs();
        for pair in specs.windows(2) {
            assert!(pair[0].week <= pair[1].week);
        }
        assert!(
            specs.iter().all(|s| s.week < 10),
            "labs run in the first 10 weeks"
        );
    }
}
