//! The semester driver: plan → time-ordered execution → closed ledger.
//!
//! Planning makes all bare-metal/edge reservations against the cloud's
//! calendar (reservations are future-dated, like the real course's
//! advance arrangements in §4), then every action is executed through a
//! single time-ordered event queue so the cloud's clock stays monotone
//! and lease auto-terminations fire exactly when they should.
//!
//! ## Sharded execution
//!
//! Cohorts larger than [`SemesterConfig::shard_students`] are split
//! into shards of at most that many students, each simulated against
//! its own replicated campus (own capacity calendar, quota ledger,
//! fault engine and telemetry buffer), then merged in shard-index
//! order. The shard structure is a pure function of the config — never
//! of the executing thread count — so the parallel
//! ([`simulate_semester`]) and sequential
//! ([`simulate_semester_serial`]) drivers produce byte-identical
//! outcomes at any rayon pool size. A cohort that fits in one shard
//! takes the legacy single-campus path unchanged.

use crate::behavior::StudentProfile;
use crate::labspec::lab_specs;
use crate::project::{plan_projects_range, ProjectPlan, GROUPS};
use opml_faults::{site_key, CircuitBreaker, FaultKind, FaultPlan, FaultProfile, FaultStats};
use opml_metering::attribution::student_name;
use opml_simkernel::parallel::map_slice;
use opml_simkernel::{split_seed, EventQueue, Rng, SimDuration, SimTime};
use opml_telemetry::{MemorySink, MetricsSnapshot, Telemetry, TelemetryEvent};
use opml_testbed::error::CloudError;
use opml_testbed::flavor::FlavorId;
use opml_testbed::instance::InstanceId;
use opml_testbed::lease::LeaseId;
use opml_testbed::ledger::Ledger;
use opml_testbed::network::{FloatingIpId, NetworkId};
use opml_testbed::storage::VolumeId;
use opml_testbed::Cloud;
use serde::{Deserialize, Serialize};

/// A planned on-demand VM deployment.
#[derive(Debug, Clone)]
pub struct PlannedVm {
    /// Deployment name (attribution key; nodes get `-node<k>` suffixes).
    pub name: String,
    /// Flavor.
    pub flavor: FlavorId,
    /// Instances in the deployment.
    pub node_count: u32,
    /// Creation time.
    pub start: SimTime,
    /// How long the deployment lives.
    pub wall: SimDuration,
    /// Whether it holds a floating IP.
    pub fip: bool,
    /// Whether it creates a private network + router.
    pub network: bool,
    /// Quota-retry attempts so far.
    pub attempts: u32,
    /// Injected-fault retries/relaunches so far (also the attempt index
    /// for fault-plan draws, so each retry re-rolls independently).
    pub fault_attempts: u32,
}

/// A planned lease-backed deployment (instance created at lease start,
/// auto-terminated at lease end).
#[derive(Debug, Clone)]
pub struct PlannedLease {
    /// Instance/FIP name.
    pub name: String,
    /// Admitted lease.
    pub lease: LeaseId,
    /// Lease start.
    pub start: SimTime,
    /// Lease end.
    pub end: SimTime,
}

/// A planned block volume.
#[derive(Debug, Clone)]
pub struct PlannedVolume {
    /// Volume name.
    pub name: String,
    /// Size in GB.
    pub gb: u64,
    /// Creation time.
    pub start: SimTime,
    /// Deletion time.
    pub end: SimTime,
    /// Injected-fault retries so far.
    pub attempts: u32,
}

/// Semester configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SemesterConfig {
    /// Enrolled students (paper: 191).
    pub enrollment: u32,
    /// Semester length in weeks (paper: 14; we close the books at
    /// `weeks + 1` to catch end-of-term teardowns).
    pub weeks: u64,
    /// Whether to simulate the project phase.
    pub run_projects: bool,
    /// Ablation: if set, on-demand VM deployments are capped at this
    /// duration, emulating Chameleon's later addition of VM advance
    /// reservations with automatic termination (§5).
    pub vm_auto_terminate_after: Option<SimDuration>,
    /// Fault injection and recovery policy. [`FaultProfile::none`] (the
    /// default) reproduces the fault-free semester byte-identically.
    pub faults: FaultProfile,
    /// Maximum students per shard. Cohorts at or below this size run on
    /// the legacy single-campus path; larger cohorts are split into
    /// replicated-campus shards (see the module docs). The default is
    /// the paper's enrollment, so the paper course is always exactly
    /// one shard.
    #[serde(default = "default_shard_students")]
    pub shard_students: u32,
}

/// Serde default for [`SemesterConfig::shard_students`] (configs
/// serialized before sharding existed deserialize onto the legacy
/// single-shard path).
fn default_shard_students() -> u32 {
    191
}

impl SemesterConfig {
    /// The paper's course: 191 students, 14 weeks, projects on.
    pub fn paper_course() -> SemesterConfig {
        SemesterConfig {
            enrollment: 191,
            weeks: 14,
            run_projects: true,
            vm_auto_terminate_after: None,
            faults: FaultProfile::none(),
            shard_students: default_shard_students(),
        }
    }

    /// Labs only (the Table 1 scope).
    pub fn labs_only() -> SemesterConfig {
        SemesterConfig {
            run_projects: false,
            ..SemesterConfig::paper_course()
        }
    }

    /// Split the cohort into shards of at most `shard_students`
    /// students each.
    ///
    /// The split is a function of the config alone — never of the
    /// executing thread count — so the shard structure (and therefore
    /// every byte of the merged outcome) is fixed before any execution
    /// strategy is chosen. A cohort that fits in one shard keeps the
    /// legacy single-campus semantics: groups `0..GROUPS` regardless of
    /// enrollment. Multi-shard runs give every full shard all `GROUPS`
    /// project groups and the trailing remainder shard a proportional
    /// share, with globally unique group ids.
    pub fn shards(&self) -> Vec<ShardSpec> {
        let per = self.shard_students.max(1);
        if self.enrollment <= per {
            return vec![ShardSpec {
                index: 0,
                students: 0..self.enrollment,
                groups: 0..GROUPS,
            }];
        }
        let mut shards = Vec::new();
        let mut group_base = 0u32;
        let mut start = 0u32;
        while start < self.enrollment {
            let end = start.saturating_add(per).min(self.enrollment);
            let count = end - start;
            let groups = if count == per {
                GROUPS
            } else {
                // Remainder shard: proportional share, rounded up so
                // any non-empty shard plans at least one group.
                ((u64::from(count) * u64::from(GROUPS)).div_ceil(u64::from(per))) as u32
            };
            shards.push(ShardSpec {
                index: shards.len() as u32,
                students: start..end,
                groups: group_base..group_base + groups,
            });
            group_base += groups;
            start = end;
        }
        shards
    }
}

/// One shard of a (possibly sharded) semester run: a contiguous range
/// of global student ids plus a contiguous range of global project
/// group ids, executed against its own replicated campus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Shard index; shards are merged in index order.
    pub index: u32,
    /// Global student ids simulated by this shard.
    pub students: std::ops::Range<u32>,
    /// Global project-group ids planned by this shard.
    pub groups: std::ops::Range<u32>,
}

impl ShardSpec {
    /// Number of students in this shard.
    pub fn student_count(&self) -> u32 {
        self.students.end - self.students.start
    }
}

/// Result of a semester simulation.
#[derive(Debug)]
pub struct SemesterOutcome {
    /// The closed usage ledger.
    pub ledger: Ledger,
    /// Quota denials encountered (deployments retried later).
    pub quota_denials: u64,
    /// Reservations that could not be placed at the preferred time and
    /// were pushed to a later slot.
    pub slot_pushbacks: u64,
    /// What the failure path did (all zeros under an inert profile).
    pub faults: FaultStats,
}

enum Ev {
    VmUp(PlannedVm),
    VmDown {
        ids: Vec<InstanceId>,
        fip: Option<FloatingIpId>,
        net: Option<NetworkId>,
        vol: Option<VolumeId>,
    },
    /// An injected mid-lab crash of a running deployment (fault path
    /// only; never scheduled under an inert plan).
    VmCrash {
        vm: PlannedVm,
        ids: Vec<InstanceId>,
        fip: Option<FloatingIpId>,
        net: Option<NetworkId>,
        vol: Option<VolumeId>,
        down_at: SimTime,
    },
    LeaseUp {
        name: String,
        lease: LeaseId,
        fip_until: SimTime,
        attempt: u32,
    },
    /// An injected lease revocation (fault path only).
    LeaseRevoked {
        name: String,
        lease: LeaseId,
        end: SimTime,
        attempt: u32,
    },
    FipDown(FloatingIpId),
    VolUp(PlannedVolume),
    VolDown(VolumeId),
    BucketPut {
        name: String,
        gb: f64,
    },
}

impl Ev {
    /// Stable variant tag for the `queue.pop` telemetry event.
    fn kind(&self) -> &'static str {
        match self {
            Ev::VmUp(_) => "vm_up",
            Ev::VmDown { .. } => "vm_down",
            Ev::VmCrash { .. } => "vm_crash",
            Ev::LeaseUp { .. } => "lease_up",
            Ev::LeaseRevoked { .. } => "lease_revoked",
            Ev::FipDown(_) => "fip_down",
            Ev::VolUp(_) => "vol_up",
            Ev::VolDown(_) => "vol_down",
            Ev::BucketPut { .. } => "bucket_put",
        }
    }
}

/// Stream id deriving the fault-plan seed from the semester seed (keeps
/// fault decisions decorrelated from every student stream).
const FAULT_STREAM: u64 = 0xFA57_0001;
/// Stream tag for the walk-away (leak) decision.
const LEAK_TAG: u64 = 0x1EAC;

/// Runtime fault state for one semester run: the immutable plan plus the
/// mutable breaker and counters.
struct FaultEngine {
    plan: FaultPlan,
    profile: FaultProfile,
    breaker: Option<CircuitBreaker>,
    stats: FaultStats,
}

impl FaultEngine {
    fn new(profile: &FaultProfile, seed: u64) -> FaultEngine {
        FaultEngine {
            plan: FaultPlan::new(split_seed(seed, FAULT_STREAM), profile.rates.clone()),
            // An inert profile must reproduce the fault-free semester
            // byte-identically, so the breaker (which would reshape the
            // quota-retry schedule) only arms when something can inject.
            breaker: if profile.is_inert() {
                None
            } else {
                profile.breaker.as_ref().map(|b| b.build())
            },
            profile: profile.clone(),
            stats: FaultStats::default(),
        }
    }

    /// Does the student walk away without cleaning up? Deterministic
    /// per-site draw; never consulted when `leak_prob` is zero.
    fn leaks(&self, site: u64, attempt: u32) -> bool {
        if self.profile.leak_prob <= 0.0 {
            return false;
        }
        Rng::for_stream(
            split_seed(self.plan.seed() ^ LEAK_TAG, site),
            u64::from(attempt),
        )
        .chance(self.profile.leak_prob)
    }
}

/// Simulate a full semester; returns the closed ledger and counters.
///
/// Cohorts larger than [`SemesterConfig::shard_students`] are split
/// into shards executed in parallel on the ambient rayon pool and
/// merged deterministically; the outcome is byte-identical to
/// [`simulate_semester_serial`] at any thread count.
pub fn simulate_semester(config: &SemesterConfig, seed: u64) -> SemesterOutcome {
    simulate_semester_with(config, seed, &Telemetry::disabled())
}

/// Simulate a full semester like [`simulate_semester`], emitting the
/// semester trace through `telemetry`: `semester.plan`/`semester.exec`
/// spans, per-pop `queue.pop` instants, `slot.pushback`/`vm.retry`
/// events, weekly `semester.week_start` transitions, and the cloud's own
/// instance/lease/quota events. Multi-shard runs buffer each shard's
/// trace privately and replay the buffers through `telemetry` in
/// shard-index order, so the merged trace is identical however the
/// shards were scheduled.
pub fn simulate_semester_with(
    config: &SemesterConfig,
    seed: u64,
    telemetry: &Telemetry,
) -> SemesterOutcome {
    let shards = config.shards();
    if let [only] = shards.as_slice() {
        return run_shard(config, seed, only, telemetry, false);
    }
    let runs = map_slice(&shards, |_, shard| {
        run_shard_buffered(config, seed, shard, telemetry.is_enabled())
    });
    merge_shard_runs(runs, telemetry)
}

/// Simulate a full semester strictly sequentially: the same shards as
/// [`simulate_semester`], executed one after another on the calling
/// thread and folded by the same merge. This is the byte-for-byte
/// reference the parallel driver is verified against.
pub fn simulate_semester_serial(config: &SemesterConfig, seed: u64) -> SemesterOutcome {
    simulate_semester_serial_with(config, seed, &Telemetry::disabled())
}

/// Sequential counterpart of [`simulate_semester_with`].
pub fn simulate_semester_serial_with(
    config: &SemesterConfig,
    seed: u64,
    telemetry: &Telemetry,
) -> SemesterOutcome {
    let shards = config.shards();
    if let [only] = shards.as_slice() {
        return run_shard(config, seed, only, telemetry, false);
    }
    let runs: Vec<ShardRun> = shards
        .iter()
        .map(|shard| run_shard_buffered(config, seed, shard, telemetry.is_enabled()))
        .collect();
    merge_shard_runs(runs, telemetry)
}

/// Measured per-student telemetry event volume (2k-student profile run:
/// ~221 events/student), rounded up. Sizes each shard's private sink.
const EVENTS_PER_STUDENT: usize = 232;

/// Measured per-student usage-record volume (~92 records/student),
/// rounded up. Sizes the shard cloud's ledger.
const LEDGER_RECORDS_PER_STUDENT: usize = 96;

/// Event-queue capacity hint per student (peak outstanding future
/// events is far below the total event count).
const QUEUE_EVENTS_PER_STUDENT: usize = 16;

/// Everything one shard produces, ready for the deterministic merge
/// (in memory here; the out-of-core path in [`crate::spill`] writes the
/// same pieces to disk instead).
pub(crate) struct ShardRun {
    pub(crate) outcome: SemesterOutcome,
    pub(crate) events: Vec<TelemetryEvent>,
    pub(crate) metrics: MetricsSnapshot,
}

/// Execute one shard against a private telemetry buffer (or fully
/// disabled telemetry when the parent handle is disabled), so shards
/// never contend on the parent handle and their event streams can be
/// replayed in shard order afterwards.
pub(crate) fn run_shard_buffered(
    config: &SemesterConfig,
    seed: u64,
    shard: &ShardSpec,
    record: bool,
) -> ShardRun {
    // Wall-phase attribution (no-op unless a profiled run enabled the
    // profiler): the shard body vs the merge stages below is exactly
    // the split that explains sharded-vs-serial wall time.
    let _phase = opml_profiler::wall_phase(opml_profiler::phases::SHARD_SIM);
    if record {
        let sink = MemorySink::with_capacity(shard.student_count() as usize * EVENTS_PER_STUDENT);
        let telemetry = Telemetry::with_sink(sink.clone());
        let mut outcome = run_shard(config, seed, shard, &telemetry, true);
        // Sort here, inside the (possibly parallel) shard map, so the
        // merge can k-way merge pre-sorted runs instead of re-sorting
        // the concatenated whole. The single-shard legacy path never
        // comes through here and keeps its close-order ledger.
        outcome.ledger.sort_canonical();
        let metrics = telemetry.metrics_snapshot();
        ShardRun {
            outcome,
            // Drain rather than clone: the buffer is moved wholesale
            // into the merge's restamp pass.
            events: sink.take_events(),
            metrics,
        }
    } else {
        let mut outcome = run_shard(config, seed, shard, &Telemetry::disabled(), true);
        outcome.ledger.sort_canonical();
        ShardRun {
            outcome,
            events: Vec::new(),
            metrics: MetricsSnapshot::default(),
        }
    }
}

/// Fold per-shard runs — already in shard-index order — into one
/// outcome.
///
/// Merge laws, each associative and stable under the fixed shard
/// order: ledgers concatenate and re-sort into the canonical record
/// order ([`Ledger::merge_sorted`]); `u64` counters sum exactly;
/// [`FaultStats`] sum fieldwise; telemetry buffers replay through the
/// parent handle in shard-index order (fresh, gapless sequence
/// stamps); metric snapshots fold via [`Telemetry::merge_metrics`].
fn merge_shard_runs(runs: Vec<ShardRun>, telemetry: &Telemetry) -> SemesterOutcome {
    telemetry.counter_add("semester.shards", runs.len() as u64);
    let mut quota_denials = 0u64;
    let mut slot_pushbacks = 0u64;
    let mut faults = FaultStats::default();
    let mut ledgers = Vec::with_capacity(runs.len());
    for run in runs {
        {
            let _phase = opml_profiler::wall_phase(opml_profiler::phases::MERGE_REPLAY);
            telemetry.replay_owned(run.events);
        }
        {
            let _phase = opml_profiler::wall_phase(opml_profiler::phases::MERGE_METRICS);
            telemetry.merge_metrics(&run.metrics);
        }
        quota_denials += run.outcome.quota_denials;
        slot_pushbacks += run.outcome.slot_pushbacks;
        faults.merge(&run.outcome.faults);
        ledgers.push(run.outcome.ledger);
    }
    let merged_ledger = {
        let _phase = opml_profiler::wall_phase(opml_profiler::phases::MERGE_LEDGER);
        Ledger::merge_sorted(ledgers)
    };
    SemesterOutcome {
        ledger: merged_ledger,
        quota_denials,
        slot_pushbacks,
        faults,
    }
}

/// Run one shard of the semester against its own replicated campus.
///
/// With the cohort-sized single shard this is exactly the legacy
/// monolithic driver (and `annotate` is false so the trace bytes are
/// unchanged); multi-shard callers set `annotate` to stamp the shard
/// index onto the plan span.
pub(crate) fn run_shard(
    config: &SemesterConfig,
    seed: u64,
    shard: &ShardSpec,
    telemetry: &Telemetry,
    annotate: bool,
) -> SemesterOutcome {
    // Capacity hints derived from the shard size (measured per-student
    // volumes at the 2k profile scale, rounded up): they keep the
    // ledger and the event queue from reallocating mid-simulation.
    // Hints, not bounds — a shard that outgrows them just grows.
    let students = shard.student_count() as usize;
    let mut cloud = Cloud::paper_course()
        .with_telemetry(telemetry.clone())
        .with_ledger_capacity(students * LEDGER_RECORDS_PER_STUDENT);
    let mut queue: EventQueue<Ev> = EventQueue::with_capacity(students * QUEUE_EVENTS_PER_STUDENT);
    let mut slot_pushbacks = 0u64;
    let mut fe = FaultEngine::new(&config.faults, seed);
    let plan_span = telemetry.span(SimTime::ZERO, "semester.plan", || {
        let mut attrs = vec![
            ("enrollment", shard.student_count().into()),
            ("weeks", config.weeks.into()),
            ("projects", config.run_projects.into()),
        ];
        if annotate {
            attrs.push(("shard", shard.index.into()));
        }
        attrs
    });

    // ------------------------------------------------ plan student labs
    let specs = lab_specs();
    for sid in shard.students.clone() {
        let mut rng = Rng::new(split_seed(seed, sid as u64));
        let profile = StudentProfile::sample(sid, &mut rng);
        for spec in &specs {
            let week_start = SimTime::at(spec.week, 0, 0, 0);
            let preferred =
                week_start + SimDuration::from_hours_f64(profile.start_offset_hours(&mut rng));
            if spec.is_leased() {
                let slots = profile.slots_booked(spec, &mut rng);
                let mut earliest = preferred;
                for _ in 0..slots {
                    let flavor = profile.pick_flavor(spec, &mut rng);
                    let dur = SimDuration::hours(spec.slot_hours);
                    let Some(start) = cloud.earliest_slot(flavor, 1, dur, earliest) else {
                        continue;
                    };
                    if start > earliest {
                        slot_pushbacks += 1;
                        telemetry.instant(SimTime::ZERO, "slot.pushback", || {
                            vec![
                                ("name", student_name(spec.tag, sid).into()),
                                ("flavor", flavor.name().into()),
                                ("wanted_min", earliest.0.into()),
                                ("got_min", start.0.into()),
                            ]
                        });
                        telemetry.counter_add("semester.slot_pushbacks", 1);
                    }
                    let name = student_name(spec.tag, sid);
                    // earliest_slot admitted this window; if the reserve
                    // is refused anyway, the student just loses the slot.
                    let Ok(lease) = cloud.reserve(flavor, 1, start, start + dur, &name) else {
                        continue;
                    };
                    queue.push(
                        start,
                        Ev::LeaseUp {
                            name,
                            lease: lease.id,
                            fip_until: start + dur,
                            attempt: 0,
                        },
                    );
                    earliest = start + dur;
                }
            } else {
                let mut wall = SimDuration::from_hours_f64(profile.vm_wall_hours(spec, &mut rng));
                if let Some(cap) = config.vm_auto_terminate_after {
                    wall = wall.min(cap);
                }
                queue.push(
                    preferred,
                    Ev::VmUp(PlannedVm {
                        name: student_name(spec.tag, sid),
                        // detlint::allow(DL008): every LabSpec declares at least one flavor
                        flavor: spec.flavors[0].0,
                        node_count: spec.node_count,
                        start: preferred,
                        wall,
                        fip: true,
                        network: spec.private_network,
                        attempts: 0,
                        fault_attempts: 0,
                    }),
                );
                if let Some(storage) = spec.storage {
                    let name = student_name(spec.tag, sid);
                    queue.push(
                        preferred,
                        Ev::VolUp(PlannedVolume {
                            name: format!("{name}-vol"),
                            gb: storage.block_gb,
                            start: preferred,
                            end: preferred + wall,
                            attempts: 0,
                        }),
                    );
                    queue.push(
                        preferred + SimDuration::minutes(30),
                        Ev::BucketPut {
                            name: format!("{name}-bucket"),
                            gb: storage.object_gb,
                        },
                    );
                }
            }
        }
    }

    // ----------------------------------------------------- plan projects
    if config.run_projects && !shard.groups.is_empty() {
        let window_start = SimTime::at(8, 3, 12, 0);
        let window_end = SimTime::at(config.weeks + 1, 0, 0, 0);
        telemetry.instant(window_start, "project.window_open", || {
            vec![("until_min", window_end.0.into())]
        });
        // The project seed and per-group streams are global (shard 0
        // reproduces the legacy plan bit-for-bit); only the group range
        // is shard-local.
        let plan: ProjectPlan = plan_projects_range(
            &mut cloud,
            window_start,
            window_end,
            seed ^ 0x1234_5678,
            shard.groups.clone(),
        );
        for vm in plan.vms {
            queue.push(vm.start, Ev::VmUp(vm));
        }
        for l in plan.leases {
            queue.push(
                l.start,
                Ev::LeaseUp {
                    name: l.name,
                    lease: l.lease,
                    fip_until: l.end,
                    attempt: 0,
                },
            );
        }
        for v in plan.volumes {
            queue.push(v.start, Ev::VolUp(v));
        }
        for (name, gb, at) in plan.buckets {
            queue.push(at, Ev::BucketPut { name, gb });
        }
    }

    // -------------------------------------------------------- execution
    plan_span.end(SimTime::ZERO);
    let exec_span = telemetry.span(SimTime::ZERO, "semester.exec", Vec::new);
    let semester_end = SimTime::at(config.weeks + 1, 0, 0, 0);
    let mut quota_denials = 0u64;
    let mut last_week: Option<u64> = None;
    while let Some((t, ev)) = queue.pop() {
        if telemetry.is_enabled() {
            let week = t.week();
            if last_week != Some(week) {
                last_week = Some(week);
                telemetry.instant(t, "semester.week_start", || vec![("week", week.into())]);
            }
            let kind = ev.kind();
            let depth = queue.len();
            telemetry.instant(t, "queue.pop", || {
                vec![("kind", kind.into()), ("depth", depth.into())]
            });
        }
        cloud.advance_to(t);
        match ev {
            Ev::VmUp(mut vm) => {
                let site = site_key(&vm.name);
                // Retry drift must not outlive the books: a requeued
                // deployment that can no longer finish before finalize is
                // abandoned. First attempts are untouched (legacy path).
                if (vm.attempts > 0 || vm.fault_attempts > 0 || fe.breaker.is_some())
                    && t + vm.wall > semester_end
                {
                    fe.stats.abandoned += 1;
                    telemetry.instant(t, "vm.abandon", || {
                        vec![
                            ("name", vm.name.clone().into()),
                            ("cause", "term_end".into()),
                            ("leaked", false.into()),
                        ]
                    });
                    continue;
                }
                // An open quota breaker defers the whole attempt ("staff
                // said stop launching") without burning a retry.
                if let Some(at) = fe.breaker.as_ref().and_then(|b| b.retry_at(t)) {
                    telemetry.instant(t, "retry.attempt", || {
                        vec![
                            ("name", vm.name.clone().into()),
                            ("cause", "breaker".into()),
                        ]
                    });
                    queue.push(at, Ev::VmUp(vm));
                    continue;
                }
                match deploy_vm(&mut cloud, &vm, &fe.plan) {
                    Ok(((ids, fip, net, vol), degraded)) => {
                        if let Some(b) = fe.breaker.as_mut() {
                            b.record_success();
                        }
                        if degraded {
                            // Floating-IP allocation failed: the lab runs
                            // on the private network only.
                            fe.stats.injected += 1;
                            fe.stats.degraded += 1;
                            telemetry.instant(t, "fault.inject", || {
                                vec![
                                    ("kind", FaultKind::FipFail.name().into()),
                                    ("name", vm.name.clone().into()),
                                ]
                            });
                            telemetry.instant(t, "recover.degraded", || {
                                vec![("name", vm.name.clone().into()), ("mode", "no_fip".into())]
                            });
                        }
                        let down_at = t + vm.wall;
                        if fe.plan.fires(
                            FaultKind::InstanceCrash,
                            Some(vm.flavor),
                            site,
                            vm.fault_attempts,
                        ) {
                            let frac = fe.plan.fraction(
                                FaultKind::InstanceCrash,
                                site,
                                vm.fault_attempts,
                                0.1,
                                0.9,
                            );
                            let crash_in =
                                SimDuration((vm.wall.0 as f64 * frac).ceil().max(1.0) as u64)
                                    .min(vm.wall);
                            queue.push(
                                t + crash_in,
                                Ev::VmCrash {
                                    vm,
                                    ids,
                                    fip,
                                    net,
                                    vol,
                                    down_at,
                                },
                            );
                        } else {
                            queue.push(down_at, Ev::VmDown { ids, fip, net, vol });
                        }
                    }
                    Err(CloudError::QuotaExceeded { .. }) => {
                        quota_denials += 1;
                        vm.attempts += 1;
                        let mut retry_at = fe
                            .profile
                            .quota_retry
                            .backoff(fe.plan.seed(), site, vm.attempts)
                            .map(|d| t + d);
                        if let Some(b) = fe.breaker.as_mut() {
                            if b.record_failure(t) {
                                fe.stats.breaker_trips += 1;
                                telemetry.instant(t, "breaker.open", || {
                                    vec![("name", vm.name.clone().into())]
                                });
                            }
                            if let (Some(at), Some(open_until)) = (retry_at, b.retry_at(t)) {
                                retry_at = Some(at.max(open_until));
                            }
                        }
                        match retry_at {
                            Some(at) => {
                                fe.stats.retries += 1;
                                telemetry.instant(t, "vm.retry", || {
                                    vec![
                                        ("name", vm.name.clone().into()),
                                        ("attempt", vm.attempts.into()),
                                        ("cause", "quota".into()),
                                    ]
                                });
                                // Student tries again later.
                                queue.push(at, Ev::VmUp(vm));
                            }
                            None => {
                                fe.stats.abandoned += 1;
                                telemetry.instant(t, "vm.abandon", || {
                                    vec![
                                        ("name", vm.name.clone().into()),
                                        ("cause", "quota".into()),
                                        ("leaked", false.into()),
                                    ]
                                });
                            }
                        }
                    }
                    Err(e) if e.is_retryable() => {
                        // Injected transient failure on the deploy path.
                        if matches!(e, CloudError::TransientFault { .. }) {
                            fe.stats.injected += 1;
                            telemetry.instant(t, "fault.inject", || {
                                vec![
                                    ("kind", FaultKind::LaunchFail.name().into()),
                                    ("name", vm.name.clone().into()),
                                    ("attempt", vm.fault_attempts.into()),
                                ]
                            });
                        }
                        vm.fault_attempts += 1;
                        retry_or_abandon_vm(&mut fe, telemetry, &mut queue, t, site, vm);
                    }
                    Err(e) => {
                        // Permanent refusal: retrying the identical call
                        // can never succeed, so the student gives up.
                        fe.stats.abandoned += 1;
                        let msg = e.to_string();
                        telemetry.instant(t, "vm.abandon", || {
                            vec![
                                ("name", vm.name.clone().into()),
                                ("cause", msg.clone().into()),
                                ("leaked", false.into()),
                            ]
                        });
                    }
                }
            }
            Ev::VmDown { ids, fip, net, vol } => {
                for id in ids {
                    // Ignore instances already reaped (ablation overlap).
                    let _ = cloud.delete_instance(id);
                }
                if let Some(f) = fip {
                    let _ = cloud.release_fip(f);
                }
                if let Some(n) = net {
                    let _ = cloud.delete_network(n);
                }
                if let Some(v) = vol {
                    let _ = cloud.detach_volume(v);
                    let _ = cloud.delete_volume(v);
                }
            }
            Ev::VmCrash {
                mut vm,
                ids,
                fip,
                net,
                vol,
                down_at,
            } => {
                fe.stats.injected += 1;
                telemetry.instant(t, "fault.inject", || {
                    vec![
                        ("kind", FaultKind::InstanceCrash.name().into()),
                        ("name", vm.name.clone().into()),
                    ]
                });
                if let Some(&first) = ids.first() {
                    let _ = cloud.crash_instance(first);
                }
                let site = site_key(&vm.name);
                if fe.leaks(site, vm.fault_attempts) {
                    // The paper's signature pathology: the student walks
                    // away and the surviving nodes, floating IP, network
                    // and volume all run until semester finalize. A leak
                    // is an abandonment that also keeps metering.
                    fe.stats.abandoned += 1;
                    fe.stats.leaked += 1;
                    telemetry.instant(t, "vm.abandon", || {
                        vec![
                            ("name", vm.name.clone().into()),
                            ("cause", "crash".into()),
                            ("leaked", true.into()),
                        ]
                    });
                    telemetry.counter_add("semester.leaks", 1);
                } else {
                    // Tidy recovery: tear down the survivors now, then
                    // relaunch for the remaining wall if it is worth it.
                    for id in ids.iter().skip(1) {
                        let _ = cloud.delete_instance(*id);
                    }
                    if let Some(f) = fip {
                        let _ = cloud.release_fip(f);
                    }
                    if let Some(n) = net {
                        let _ = cloud.delete_network(n);
                    }
                    if let Some(v) = vol {
                        let _ = cloud.detach_volume(v);
                        let _ = cloud.delete_volume(v);
                    }
                    let remaining = down_at.since(t);
                    vm.fault_attempts += 1;
                    let delay =
                        fe.profile
                            .fault_retry
                            .backoff(fe.plan.seed(), site, vm.fault_attempts);
                    match delay {
                        Some(d) if remaining >= SimDuration::minutes(30) => {
                            fe.stats.retries += 1;
                            vm.wall = remaining;
                            telemetry.instant(t, "recover.relaunch", || {
                                vec![
                                    ("name", vm.name.clone().into()),
                                    ("remaining_min", remaining.0.into()),
                                ]
                            });
                            queue.push(t + d, Ev::VmUp(vm));
                        }
                        _ => {
                            fe.stats.abandoned += 1;
                            telemetry.instant(t, "vm.abandon", || {
                                vec![
                                    ("name", vm.name.clone().into()),
                                    ("cause", "crash".into()),
                                    ("leaked", false.into()),
                                ]
                            });
                        }
                    }
                }
            }
            Ev::LeaseUp {
                name,
                lease,
                fip_until,
                attempt,
            } => {
                // Bare-metal provisioning per §4: student claims the node
                // at slot start; auto-termination reclaims it.
                match cloud.create_leased_instance(&name, lease) {
                    Ok(_inst) => {
                        if let Ok(fip) = cloud.allocate_fip(&name) {
                            queue.push(fip_until, Ev::FipDown(fip));
                        }
                        let site = site_key(&name);
                        if fe.plan.fires(FaultKind::LeaseRevoke, None, site, attempt) {
                            let frac =
                                fe.plan
                                    .fraction(FaultKind::LeaseRevoke, site, attempt, 0.05, 0.95);
                            let window = fip_until.since(t);
                            let revoke_in =
                                SimDuration((window.0 as f64 * frac).ceil().max(1.0) as u64)
                                    .min(window);
                            queue.push(
                                t + revoke_in,
                                Ev::LeaseRevoked {
                                    name,
                                    lease,
                                    end: fip_until,
                                    attempt,
                                },
                            );
                        }
                    }
                    Err(e) => {
                        // The slot no longer exists (e.g. revoked before
                        // its start); the student loses the session.
                        fe.stats.abandoned += 1;
                        let msg = e.to_string();
                        telemetry.instant(t, "lease.skip", || {
                            vec![("name", name.clone().into()), ("error", msg.clone().into())]
                        });
                    }
                }
            }
            Ev::LeaseRevoked {
                name,
                lease,
                end,
                attempt,
            } => {
                let flavor = cloud.calendar().get(lease).map(|l| l.flavor);
                if cloud.revoke_lease(lease).is_ok() {
                    fe.stats.injected += 1;
                    telemetry.instant(t, "fault.inject", || {
                        vec![
                            ("kind", FaultKind::LeaseRevoke.name().into()),
                            ("name", name.clone().into()),
                        ]
                    });
                    let remaining = end.since(t);
                    let next_attempt = attempt + 1;
                    let rebooked = if next_attempt < fe.profile.fault_retry.max_attempts
                        && remaining >= SimDuration::minutes(30)
                    {
                        flavor.and_then(|fl| {
                            cloud
                                .earliest_slot(fl, 1, remaining, t + SimDuration::hours(1))
                                // The rebooked window must still close its
                                // books before finalize.
                                .filter(|&s| s + remaining <= semester_end)
                                .and_then(|s| {
                                    cloud
                                        .reserve(fl, 1, s, s + remaining, &name)
                                        .ok()
                                        .map(|l2| (s, l2.id))
                                })
                        })
                    } else {
                        None
                    };
                    match rebooked {
                        Some((start, lease2)) => {
                            fe.stats.requeued += 1;
                            telemetry.instant(t, "recover.rebook", || {
                                vec![("name", name.clone().into()), ("start_min", start.0.into())]
                            });
                            queue.push(
                                start,
                                Ev::LeaseUp {
                                    name,
                                    lease: lease2,
                                    fip_until: start + remaining,
                                    attempt: next_attempt,
                                },
                            );
                        }
                        None => {
                            fe.stats.abandoned += 1;
                            telemetry.instant(t, "vm.abandon", || {
                                vec![
                                    ("name", name.clone().into()),
                                    ("cause", "lease_revoked".into()),
                                    ("leaked", false.into()),
                                ]
                            });
                        }
                    }
                }
                // A revocation racing the natural lease end is a no-op.
            }
            Ev::FipDown(fip) => {
                let _ = cloud.release_fip(fip);
            }
            Ev::VolUp(mut v) => {
                let site = site_key(&v.name);
                if fe
                    .plan
                    .fires(FaultKind::VolumeAttach, None, site, v.attempts)
                {
                    fe.stats.injected += 1;
                    telemetry.instant(t, "fault.inject", || {
                        vec![
                            ("kind", FaultKind::VolumeAttach.name().into()),
                            ("name", v.name.clone().into()),
                            ("attempt", v.attempts.into()),
                        ]
                    });
                    v.attempts += 1;
                    let delay = fe
                        .profile
                        .fault_retry
                        .backoff(fe.plan.seed(), site, v.attempts);
                    match delay {
                        Some(d) if t + d < v.end => {
                            fe.stats.retries += 1;
                            telemetry.instant(t, "retry.attempt", || {
                                vec![
                                    ("name", v.name.clone().into()),
                                    ("cause", "fault".into()),
                                    ("attempt", v.attempts.into()),
                                ]
                            });
                            queue.push(t + d, Ev::VolUp(v));
                        }
                        _ => {
                            fe.stats.abandoned += 1;
                            telemetry.instant(t, "volume.abandon", || {
                                vec![("name", v.name.clone().into()), ("cause", "fault".into())]
                            });
                        }
                    }
                } else {
                    match cloud.create_volume(&v.name, v.gb) {
                        Ok(id) => {
                            queue.push(v.end, Ev::VolDown(id));
                        }
                        Err(CloudError::QuotaExceeded { .. }) => {
                            quota_denials += 1;
                        }
                        Err(e) => {
                            // Typed failure instead of the old panic: the
                            // student proceeds without the volume.
                            fe.stats.abandoned += 1;
                            let msg = e.to_string();
                            telemetry.instant(t, "volume.abandon", || {
                                vec![
                                    ("name", v.name.clone().into()),
                                    ("cause", msg.clone().into()),
                                ]
                            });
                        }
                    }
                }
            }
            Ev::VolDown(id) => {
                let _ = cloud.detach_volume(id);
                let _ = cloud.delete_volume(id);
            }
            Ev::BucketPut { name, gb } => {
                cloud.bucket(&name).put((gb * 1000.0) as u64, gb);
            }
        }
    }
    cloud.finalize(semester_end);
    exec_span.end(semester_end);
    telemetry.instant(semester_end, "semester.finalize", || {
        vec![("quota_denials", quota_denials.into())]
    });
    let stats = queue.stats();
    telemetry.counter_add("semester.queue_pushes", stats.pushes);
    telemetry.counter_add("semester.queue_pops", stats.pops);
    telemetry.gauge_set("semester.queue_high_water", stats.high_water as f64);
    telemetry.counter_add("semester.quota_denials", quota_denials);
    telemetry.counter_add("semester.faults_injected", fe.stats.injected);
    telemetry.counter_add("semester.faults_abandoned", fe.stats.abandoned);
    telemetry.counter_add("semester.faults_leaked", fe.stats.leaked);
    SemesterOutcome {
        ledger: cloud.into_ledger(),
        quota_denials,
        slot_pushbacks,
        faults: fe.stats,
    }
}

/// Schedule a fault-policy retry of a VM deployment, or abandon it once
/// the policy is exhausted. `vm.fault_attempts` must already count the
/// failure being handled.
fn retry_or_abandon_vm(
    fe: &mut FaultEngine,
    telemetry: &Telemetry,
    queue: &mut EventQueue<Ev>,
    t: SimTime,
    site: u64,
    vm: PlannedVm,
) {
    match fe
        .profile
        .fault_retry
        .backoff(fe.plan.seed(), site, vm.fault_attempts)
    {
        Some(delay) => {
            fe.stats.retries += 1;
            telemetry.instant(t, "vm.retry", || {
                vec![
                    ("name", vm.name.clone().into()),
                    ("attempt", vm.fault_attempts.into()),
                    ("cause", "fault".into()),
                ]
            });
            queue.push(t + delay, Ev::VmUp(vm));
        }
        None => {
            fe.stats.abandoned += 1;
            telemetry.instant(t, "vm.abandon", || {
                vec![
                    ("name", vm.name.clone().into()),
                    ("cause", "fault".into()),
                    ("leaked", false.into()),
                ]
            });
        }
    }
}

type Deployed = (
    Vec<InstanceId>,
    Option<FloatingIpId>,
    Option<NetworkId>,
    Option<VolumeId>,
);

/// Create a VM deployment atomically; on quota failure, roll back any
/// partial allocation so the retry starts clean. Fault seams: the whole
/// launch can fail transiently ([`FaultKind::LaunchFail`], surfaced as
/// [`CloudError::TransientFault`]); floating-IP allocation can fail
/// ([`FaultKind::FipFail`]), degrading the deployment (returned flag)
/// rather than failing it.
fn deploy_vm(
    cloud: &mut Cloud,
    vm: &PlannedVm,
    plan: &FaultPlan,
) -> Result<(Deployed, bool), CloudError> {
    let site = site_key(&vm.name);
    if plan.fires(
        FaultKind::LaunchFail,
        Some(vm.flavor),
        site,
        vm.fault_attempts,
    ) {
        return Err(CloudError::TransientFault {
            op: "create_instance",
        });
    }
    let mut ids = Vec::with_capacity(vm.node_count as usize);
    let rollback = |cloud: &mut Cloud, ids: &[InstanceId]| {
        for &id in ids {
            let _ = cloud.delete_instance(id);
        }
    };
    for k in 0..vm.node_count {
        let node_name = if vm.node_count == 1 {
            vm.name.clone()
        } else {
            format!("{}-node{k}", vm.name)
        };
        match cloud.create_instance(&node_name, vm.flavor) {
            Ok(id) => ids.push(id),
            Err(e) => {
                rollback(cloud, &ids);
                return Err(e);
            }
        }
    }
    let net = if vm.network {
        match cloud.create_network(&vm.name) {
            Ok(n) => Some(n),
            Err(e) => {
                rollback(cloud, &ids);
                return Err(e);
            }
        }
    } else {
        None
    };
    let mut degraded = false;
    let fip = if vm.fip {
        if plan.fires(FaultKind::FipFail, Some(vm.flavor), site, vm.fault_attempts) {
            degraded = true;
            None
        } else {
            match cloud.allocate_fip(&vm.name) {
                Ok(f) => Some(f),
                Err(e) => {
                    if let Some(n) = net {
                        let _ = cloud.delete_network(n);
                    }
                    rollback(cloud, &ids);
                    return Err(e);
                }
            }
        }
    } else {
        None
    };
    Ok(((ids, fip, net, None), degraded))
}

#[cfg(test)]
mod tests {
    use super::*;
    use opml_metering::rollup::AssignmentRollup;

    #[test]
    fn small_semester_runs_clean() {
        let config = SemesterConfig {
            enrollment: 12,
            weeks: 14,
            run_projects: false,
            vm_auto_terminate_after: None,
            faults: FaultProfile::none(),
            shard_students: 191,
        };
        let outcome = simulate_semester(&config, 7);
        assert!(outcome.ledger.instance_hours(None) > 0.0);
        assert_eq!(
            outcome.quota_denials, 0,
            "12 students should never hit quota"
        );
        let rollup = AssignmentRollup::from_ledger(&outcome.ledger, 12);
        // Every lab family appears.
        for tag in [
            "lab1",
            "lab2",
            "lab3",
            "lab4-multi",
            "lab5-multi",
            "lab6-edge",
            "lab7",
            "lab8",
        ] {
            assert!(
                rollup.rows.iter().any(|r| r.tag == tag),
                "missing rollup rows for {tag}"
            );
        }
    }

    #[test]
    fn leased_usage_is_auto_terminated() {
        let config = SemesterConfig {
            enrollment: 8,
            weeks: 14,
            run_projects: false,
            vm_auto_terminate_after: None,
            faults: FaultProfile::none(),
            shard_students: 191,
        };
        let outcome = simulate_semester(&config, 8);
        let rollup = AssignmentRollup::from_ledger(&outcome.ledger, 8);
        for row in rollup.rows.iter().filter(|r| r.flavor.requires_lease()) {
            assert!(
                (row.auto_terminated_hours - row.instance_hours).abs() < 1e-9,
                "{}/{}: leased usage should auto-terminate",
                row.tag,
                row.flavor
            );
        }
    }

    #[test]
    fn vm_reservation_ablation_caps_usage() {
        let base = SemesterConfig {
            enrollment: 24,
            weeks: 14,
            run_projects: false,
            vm_auto_terminate_after: None,
            faults: FaultProfile::none(),
            shard_students: 191,
        };
        let capped = SemesterConfig {
            vm_auto_terminate_after: Some(SimDuration::hours(8)),
            ..base.clone()
        };
        let free = simulate_semester(&base, 9);
        let auto = simulate_semester(&capped, 9);
        let vm_hours = |l: &Ledger| {
            l.instance_hours(Some(FlavorId::M1Medium))
                + l.instance_hours(Some(FlavorId::M1Small))
                + l.instance_hours(Some(FlavorId::M1Large))
        };
        assert!(
            vm_hours(&auto.ledger) < vm_hours(&free.ledger) / 2.0,
            "auto-termination should cut VM hours drastically: {} vs {}",
            vm_hours(&auto.ledger),
            vm_hours(&free.ledger)
        );
        // Bare-metal hours are unaffected by the VM policy.
        let bm_free = free.ledger.instance_hours(Some(FlavorId::GpuV100));
        let bm_auto = auto.ledger.instance_hours(Some(FlavorId::GpuV100));
        assert!((bm_free - bm_auto).abs() < 1e-9);
    }

    #[test]
    fn deterministic_by_seed() {
        let config = SemesterConfig {
            enrollment: 10,
            weeks: 14,
            run_projects: true,
            vm_auto_terminate_after: None,
            faults: FaultProfile::none(),
            shard_students: 191,
        };
        let a = simulate_semester(&config, 11);
        let b = simulate_semester(&config, 11);
        assert_eq!(a.ledger.records().len(), b.ledger.records().len());
        assert_eq!(a.ledger.instance_hours(None), b.ledger.instance_hours(None));
        let c = simulate_semester(&config, 12);
        assert_ne!(a.ledger.instance_hours(None), c.ledger.instance_hours(None));
    }

    #[test]
    fn telemetry_trace_is_byte_identical_across_runs() {
        use opml_telemetry::{export_jsonl, MemorySink, Telemetry};
        let config = SemesterConfig {
            enrollment: 3,
            weeks: 14,
            run_projects: false,
            vm_auto_terminate_after: None,
            faults: FaultProfile::none(),
            shard_students: 191,
        };
        let trace = |seed: u64| {
            let sink = MemorySink::new();
            let telemetry = Telemetry::with_sink(sink.clone());
            let outcome = simulate_semester_with(&config, seed, &telemetry);
            (export_jsonl(&sink.events()), outcome, telemetry)
        };
        let (a, outcome, telemetry) = trace(7);
        let (b, _, _) = trace(7);
        assert_eq!(a, b, "same seed must produce identical trace bytes");
        assert!(!a.is_empty());
        let (c, _, _) = trace(8);
        assert_ne!(a, c, "different seed must change the trace");

        // The spans balance and the metrics agree with the outcome.
        assert!(a.contains("\"name\":\"semester.plan\""));
        assert!(a.contains("\"name\":\"semester.finalize\""));
        let metrics = telemetry.metrics_snapshot();
        assert_eq!(
            metrics.counters["semester.queue_pushes"], metrics.counters["semester.queue_pops"],
            "every scheduled event must execute"
        );
        assert_eq!(
            metrics.counters.get("semester.quota_denials").copied(),
            Some(outcome.quota_denials)
        );
    }

    #[test]
    fn projects_add_usage_after_week_eight() {
        let config = SemesterConfig {
            enrollment: 16,
            weeks: 14,
            run_projects: true,
            vm_auto_terminate_after: None,
            faults: FaultProfile::none(),
            shard_students: 191,
        };
        let outcome = simulate_semester(&config, 13);
        let proj_hours: f64 = outcome
            .ledger
            .with_prefix("proj-")
            .filter(|r| matches!(r.kind, opml_testbed::ledger::UsageKind::Instance { .. }))
            .map(|r| r.hours())
            .sum();
        assert!(proj_hours > 10_000.0, "project usage missing: {proj_hours}");
        // Project records never start before the project window.
        for r in outcome.ledger.with_prefix("proj-") {
            assert!(
                r.start >= SimTime::at(8, 3, 0, 0),
                "{} starts early",
                r.name
            );
        }
    }
}
