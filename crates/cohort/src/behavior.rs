//! The student behaviour model, calibrated to §5 of the paper.
//!
//! ## The mechanism
//!
//! VM instances on the testbed are **not auto-terminated**, so a lab's
//! wall-clock footprint is `work + overhang`: the hands-on time plus
//! however long the deployment lingers afterwards — "sometimes
//! intentionally (to avoid repeating lengthy setup), other times due to
//! neglect" (§5). Bare-metal/edge labs auto-terminate at slot end, so
//! their footprint is a whole number of 2–3-hour slots.
//!
//! ## The model
//!
//! Each student carries two latent traits, drawn once and shared across
//! all labs (this cross-lab correlation is what produces Fig. 2's heavy
//! per-student tail):
//!
//! * `tidy` (P = [`P_TIDY`]): tears deployments down promptly —
//!   overhang ≈ 0. §5 reports 75% of students exceeding the expected AWS
//!   cost, i.e. roughly a quarter did not.
//! * `neglect ∈ (0,1)` (Beta(2,3)): scales how long non-tidy students
//!   leave VMs running.
//!
//! Per (student, lab), `overhang = scale·neglect·L` with `L` lognormal
//! (σ = 1.0, mean 1). The per-lab `scale` is set in closed form so the
//! cohort-mean wall duration hits the paper's observed per-student mean
//! for that lab (Table 1 hours ÷ 191 ÷ node count) — see
//! [`observed_mean_wall`].

use crate::labspec::LabSpec;
use opml_simkernel::Rng;
use serde::{Deserialize, Serialize};

/// Probability a student is tidy (prompt teardown).
pub const P_TIDY: f64 = 0.25;
/// Residual overhang factor for tidy students (they still take a few
/// minutes to tear down).
pub const TIDY_OVERHANG: f64 = 0.05;
/// Beta(α, β) for the neglect trait.
pub const NEGLECT_ALPHA: f64 = 2.0;
/// Beta β parameter.
pub const NEGLECT_BETA: f64 = 3.0;
/// σ of the per-(student, lab) lognormal overhang multiplier.
pub const OVERHANG_SIGMA: f64 = 1.0;
/// σ of the work-time lognormal (how much hands-on time varies).
pub const WORK_SIGMA: f64 = 0.25;
/// Probability a student completes any given leased lab at all.
pub const P_LEASED_PARTICIPATION: f64 = 0.92;
/// Mean work time as a multiple of the expected duration.
pub const WORK_MEAN_FACTOR: f64 = 1.05;

/// Observed mean wall-clock hours per student for each VM lab, derived
/// from Table 1 (`instance hours ÷ 191 ÷ node count`).
pub fn observed_mean_wall(tag: &str) -> Option<f64> {
    Some(match tag {
        "lab1" => 2_620.0 / 191.0,        // 13.7 h
        "lab2" => 52_332.0 / 191.0 / 3.0, // 91.3 h
        "lab3" => 32_344.0 / 191.0 / 3.0, // 56.4 h
        "lab7" => 9_889.0 / 191.0,        // 51.8 h
        "lab8" => 8_693.0 / 191.0,        // 45.5 h
        _ => return None,
    })
}

/// Expected value of the overhang weight `w = tidy·TIDY_OVERHANG +
/// (1−tidy)·E[neglect]·E[L]` used to normalize per-lab scales.
fn mean_overhang_weight() -> f64 {
    let mean_neglect = NEGLECT_ALPHA / (NEGLECT_ALPHA + NEGLECT_BETA);
    P_TIDY * TIDY_OVERHANG + (1.0 - P_TIDY) * mean_neglect
}

/// A student's latent traits and id.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudentProfile {
    /// Student index (0-based).
    pub id: u32,
    /// Tears deployments down promptly.
    pub tidy: bool,
    /// Neglect propensity in (0, 1).
    pub neglect: f64,
    /// Work-speed multiplier (applies to hands-on time).
    pub speed: f64,
}

impl StudentProfile {
    /// Sample a student's traits from their own stream.
    pub fn sample(id: u32, rng: &mut Rng) -> StudentProfile {
        StudentProfile {
            id,
            tidy: rng.chance(P_TIDY),
            neglect: rng.beta(NEGLECT_ALPHA, NEGLECT_BETA),
            speed: rng.lognormal(-WORK_SIGMA * WORK_SIGMA / 2.0, WORK_SIGMA),
        }
    }

    /// Wall-clock hours this student's deployment of a **VM lab** lives,
    /// sampled from the calibrated model.
    pub fn vm_wall_hours(&self, spec: &LabSpec, rng: &mut Rng) -> f64 {
        debug_assert!(!spec.is_leased(), "vm_wall_hours on a leased lab");
        let target = observed_mean_wall(spec.tag).unwrap_or(spec.expected_hours * 2.0);
        let work = spec.expected_hours
            * WORK_MEAN_FACTOR
            * self.speed
            * rng.lognormal(-WORK_SIGMA * WORK_SIGMA / 2.0, WORK_SIGMA);
        let overhang_budget = (target - spec.expected_hours * WORK_MEAN_FACTOR).max(0.0);
        let weight = if self.tidy {
            TIDY_OVERHANG
        } else {
            self.neglect * rng.lognormal(-OVERHANG_SIGMA * OVERHANG_SIGMA / 2.0, OVERHANG_SIGMA)
        };
        let overhang = overhang_budget * weight / mean_overhang_weight();
        work + overhang
    }

    /// Number of reservation slots this student books for a **leased
    /// lab** (0 = did not complete this lab), reproducing the Fig. 1(b)
    /// patterns:
    ///
    /// * each leased lab is skipped by ≈8% of students (labs are graded
    ///   on completion, but not everyone completes every one);
    /// * `lab4-single` / `lab5-single`: §5 — "students could optionally
    ///   complete the single-GPU part on the same instance used for the
    ///   multi-GPU part"; most absorb it, so only a minority book a
    ///   separate slot;
    /// * `lab5-multi`: hyperparameter-search re-booking is concentrated
    ///   in a non-tidy "heavy tuner" minority who come back for several
    ///   Ray Tune sessions (cohort mean ≈ 2.3 slots);
    /// * other leased labs: one slot, with extra sessions again
    ///   concentrated in a non-tidy minority.
    ///
    /// The per-tag constants are calibrated so the cohort-mean slots per
    /// *enrolled* student equal Table 1 hours ÷ 191 ÷ slot length.
    pub fn slots_booked(&self, spec: &LabSpec, rng: &mut Rng) -> u32 {
        debug_assert!(spec.is_leased(), "slots_booked on a VM lab");
        if !rng.chance(P_LEASED_PARTICIPATION) {
            return 0;
        }
        // Extra sessions belong to non-tidy students only; probabilities
        // are scaled by 1/(1−P_TIDY) to keep the cohort means fixed.
        let extra_ok = !self.tidy;
        match spec.tag {
            "lab4-multi" => 1 + u32::from(rng.chance(0.073)),
            "lab4-single" => u32::from(rng.chance(0.62)),
            "lab5-multi" => {
                if extra_ok && rng.chance(0.493) {
                    // Heavy tuner: 1 + Geometric-ish extra sessions.
                    let mut extra = 1;
                    while extra < 12 && rng.chance(0.771) {
                        extra += 1;
                    }
                    1 + extra
                } else {
                    1
                }
            }
            "lab5-single" => u32::from(rng.chance(0.304)),
            "lab6-opt" => {
                1 + if extra_ok && rng.chance(0.293) {
                    1 + u32::from(rng.chance(0.29))
                } else {
                    0
                }
            }
            "lab6-edge" => {
                1 + if extra_ok && rng.chance(0.334) {
                    1 + u32::from(rng.chance(0.60))
                } else {
                    0
                }
            }
            "lab6-system" => {
                1 + if extra_ok && rng.chance(0.321) {
                    1 + u32::from(rng.chance(0.41))
                } else {
                    0
                }
            }
            _ => {
                // Unknown tags are a programming error, not a runtime
                // failure path: flag in debug builds, book one slot.
                debug_assert!(false, "unknown leased lab {}", spec.tag);
                1
            }
        }
    }

    /// Pick the hardware pool for a leased lab by the spec's weights.
    pub fn pick_flavor(&self, spec: &LabSpec, rng: &mut Rng) -> opml_testbed::FlavorId {
        let weights: Vec<f64> = spec.flavors.iter().map(|&(_, w)| w).collect();
        // detlint::allow(DL008): weighted_index returns an index < weights.len() == flavors.len()
        spec.flavors[rng.weighted_index(&weights)].0
    }

    /// Hour offset within the release week when this student starts the
    /// lab (uniform over the first five days).
    pub fn start_offset_hours(&self, rng: &mut Rng) -> f64 {
        rng.range_f64(0.0, 120.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labspec::spec_for;
    use opml_simkernel::split_seed;

    fn cohort(n: usize, seed: u64) -> Vec<(StudentProfile, Rng)> {
        (0..n)
            .map(|i| {
                let mut rng = Rng::new(split_seed(seed, i as u64));
                let p = StudentProfile::sample(i as u32, &mut rng);
                (p, rng)
            })
            .collect()
    }

    #[test]
    fn traits_are_plausible() {
        let students = cohort(2000, 1);
        let tidy = students.iter().filter(|(p, _)| p.tidy).count() as f64 / 2000.0;
        assert!((tidy - P_TIDY).abs() < 0.03, "tidy fraction {tidy}");
        let mean_neglect: f64 = students.iter().map(|(p, _)| p.neglect).sum::<f64>() / 2000.0;
        assert!(
            (mean_neglect - 0.4).abs() < 0.02,
            "mean neglect {mean_neglect}"
        );
    }

    #[test]
    fn vm_wall_means_hit_calibration_targets() {
        for tag in ["lab1", "lab2", "lab3", "lab7", "lab8"] {
            let spec = spec_for(tag).unwrap();
            let target = observed_mean_wall(tag).unwrap();
            let mut total = 0.0;
            let n = 20_000;
            for (p, mut rng) in cohort(n, 42) {
                total += p.vm_wall_hours(&spec, &mut rng);
            }
            let mean = total / n as f64;
            assert!(
                (mean / target - 1.0).abs() < 0.05,
                "{tag}: mean {mean:.1} vs target {target:.1}"
            );
        }
    }

    #[test]
    fn wall_distribution_is_heavy_tailed() {
        let spec = spec_for("lab2").unwrap();
        let mut walls: Vec<f64> = cohort(191, 7)
            .into_iter()
            .map(|(p, mut rng)| p.vm_wall_hours(&spec, &mut rng))
            .collect();
        walls.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = walls.iter().sum::<f64>() / walls.len() as f64;
        let max = walls[walls.len() - 1];
        assert!(max / mean > 3.0, "tail too light: max/mean {}", max / mean);
        // Tidy students keep it close to the expected duration.
        assert!(walls[9] < 3.0 * spec.expected_hours, "p5 {}", walls[9]);
    }

    #[test]
    fn slot_counts_hit_table1_ratios() {
        let n = 20_000;
        let targets = [
            ("lab4-multi", (167.0 + 210.0) / 191.0 / 2.0), // slots of 2 h
            ("lab4-single", 218.0 / 191.0 / 2.0),
            ("lab5-multi", (330.0 + 1002.0) / 191.0 / 3.0),
            ("lab5-single", (28.0 + 130.0) / 191.0 / 3.0),
            ("lab6-opt", (215.0 + 460.0) / 191.0 / 3.0),
            ("lab6-edge", 492.0 / 191.0 / 2.0),
            ("lab6-system", 707.0 / 191.0 / 3.0),
        ];
        for (tag, target_slots) in targets {
            let spec = spec_for(tag).unwrap();
            let mean: f64 = cohort(n, 13)
                .into_iter()
                .map(|(p, mut rng)| p.slots_booked(&spec, &mut rng) as f64)
                .sum::<f64>()
                / n as f64;
            assert!(
                (mean / target_slots - 1.0).abs() < 0.10,
                "{tag}: mean slots {mean:.2} vs target {target_slots:.2}"
            );
        }
    }

    #[test]
    fn flavor_pool_split_matches_weights() {
        let spec = spec_for("lab5-multi").unwrap();
        let n = 20_000;
        let mi100 = cohort(n, 17)
            .into_iter()
            .filter(|_| true)
            .map(|(p, mut rng)| p.pick_flavor(&spec, &mut rng))
            .filter(|&f| f == opml_testbed::FlavorId::GpuMi100)
            .count() as f64
            / n as f64;
        assert!((mi100 - 0.75).abs() < 0.02, "mi100 share {mi100}");
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = spec_for("lab7").unwrap();
        let run = || -> Vec<u64> {
            cohort(50, 3)
                .into_iter()
                .map(|(p, mut rng)| (p.vm_wall_hours(&spec, &mut rng) * 1000.0) as u64)
                .collect()
        };
        assert_eq!(run(), run());
    }
}
