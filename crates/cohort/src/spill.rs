//! Out-of-core semester execution: spill-to-disk shard runs and an
//! incremental k-way merge with O(shard) peak memory.
//!
//! The in-memory sharded drivers ([`crate::semester::simulate_semester`])
//! hold every shard's ledger, telemetry buffer and metrics snapshot
//! until the global merge, so peak RSS is O(cohort) — ~30 GB at 1M
//! students. The streaming drivers here keep the *simulation* identical
//! but write each shard's output to an on-disk **run** the moment the
//! shard finishes, releasing its buffers, and then consume the runs
//! incrementally:
//!
//! 1. **Spill** (`merge.spill` phase): each shard's canonically sorted
//!    ledger, telemetry buffer and metrics snapshot are encoded into
//!    `run-0-<shard>.bin` via the compact binary codecs
//!    ([`opml_testbed::ledger::UsageRecord::encode_into`],
//!    [`opml_telemetry::spillcodec`]).
//! 2. **Aux replay** (`merge.replay_restamp` / `merge.metrics`): the
//!    telemetry and metrics blocks are streamed back in shard-index
//!    order and folded through the parent handle exactly like the
//!    in-memory merge — chunked [`Telemetry::replay_owned`] calls
//!    assign the same gapless sequence stamps because restamping only
//!    depends on arrival order.
//! 3. **Merge** (`merge.spill` for intermediate passes, `merge.stream`
//!    for the final pass): runs are k-way merged with bounded
//!    read-ahead by [`StreamMerge`], the disk extension of
//!    [`Ledger::merge_sorted`]'s index-min heap. When the run count
//!    exceeds the merge fan-in, *contiguous* groups are merged into
//!    intermediate runs first — contiguity preserves the shard-index
//!    tie-break, so the final stream is byte-identical to the
//!    in-memory merge (the spill differential test pins this).
//! 4. **Consume**: the caller's closure sees each merged record once,
//!    in canonical order; nothing cohort-sized is ever materialized.
//!
//! A cohort that fits in one shard takes the legacy single-campus path
//! (no disk at all) and streams its close-order ledger, matching the
//! in-memory single-shard semantics byte for byte.
//!
//! Peak memory is O(threads × shard) during simulation and
//! O(fan-in × read-ahead) during the merge; peak disk is about twice
//! the encoded cohort ledger (one extra copy during an intermediate
//! merge pass).
//!
//! All failure modes — I/O errors, truncated or corrupt run files —
//! surface as [`SpillError`], never a panic: both streaming drivers are
//! detlint DL008 panic-freedom roots.

use crate::semester::{run_shard, run_shard_buffered, SemesterConfig, ShardRun};
use opml_faults::FaultStats;
use opml_simkernel::binio;
use opml_simkernel::parallel::map_slice;
use opml_telemetry::{spillcodec, Telemetry};
use opml_testbed::ledger::{RecordSource, StreamMerge, UsageRecord};
use std::fmt;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every spill-run file.
const MAGIC: &[u8; 8] = b"OPMLRUN1";

/// Fixed header size: magic + aux length + record count.
const HEADER_BYTES: u64 = 8 + 8 + 8;

/// Record-encode buffer flush threshold while writing a run.
const WRITE_CHUNK: usize = 64 * 1024;

/// Events per [`Telemetry::replay_owned`] batch during aux replay.
/// Chunking bounds memory; restamping only depends on arrival order,
/// so any chunk size produces identical sequence stamps.
const REPLAY_CHUNK: usize = 16 * 1024;

/// Out-of-core execution knobs.
#[derive(Debug, Clone)]
pub struct SpillConfig {
    /// Directory for run files. Created on demand; removed afterwards
    /// if it ends up empty and `keep_runs` is false.
    pub dir: PathBuf,
    /// Maximum runs merged in one pass (and therefore the maximum
    /// simultaneously open run files). Values below 2 are treated as 2.
    pub fanin: usize,
    /// Per-run read-ahead buffer in bytes during merges.
    pub read_ahead: usize,
    /// Keep run files after the merge instead of deleting them
    /// (debugging aid).
    pub keep_runs: bool,
}

impl SpillConfig {
    /// Default knobs (fan-in 64, 256 KiB read-ahead) in `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> SpillConfig {
        SpillConfig {
            dir: dir.into(),
            fanin: 64,
            read_ahead: 256 * 1024,
            keep_runs: false,
        }
    }
}

/// What went wrong in the out-of-core pipeline.
#[derive(Debug)]
pub enum SpillError {
    /// An I/O operation on a run file failed.
    Io {
        /// File the operation targeted.
        path: PathBuf,
        /// Underlying error.
        source: io::Error,
    },
    /// A run file decoded to something structurally impossible.
    Corrupt {
        /// Offending file.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
}

impl SpillError {
    fn from_io(path: &Path, source: io::Error) -> SpillError {
        if source.kind() == io::ErrorKind::InvalidData {
            SpillError::Corrupt {
                path: path.to_path_buf(),
                detail: source.to_string(),
            }
        } else {
            SpillError::Io {
                path: path.to_path_buf(),
                source,
            }
        }
    }
}

impl fmt::Display for SpillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpillError::Io { path, source } => {
                write!(f, "spill I/O error on {}: {source}", path.display())
            }
            SpillError::Corrupt { path, detail } => {
                write!(f, "corrupt spill run {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for SpillError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpillError::Io { source, .. } => Some(source),
            SpillError::Corrupt { .. } => None,
        }
    }
}

/// Observability counters for one streaming run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Shard runs written to disk (0 on the single-shard path).
    pub shard_runs: usize,
    /// Intermediate merge passes (0 when the shard count fits the
    /// fan-in).
    pub merge_passes: usize,
    /// Intermediate runs written by those passes.
    pub intermediate_runs: usize,
    /// Total bytes written to spill files (shard runs + intermediates).
    pub spilled_bytes: u64,
    /// Largest number of run files open simultaneously.
    pub max_open_runs: usize,
}

/// Result of a streaming semester run: the scalar outcome plus spill
/// observability. The ledger itself was delivered record-by-record to
/// the consumer and is not held here — that is the point.
#[derive(Debug)]
pub struct StreamOutcome {
    /// Quota denials encountered (sum over shards).
    pub quota_denials: u64,
    /// Reservations pushed to a later slot (sum over shards).
    pub slot_pushbacks: u64,
    /// Fault-path statistics (fieldwise sum over shards).
    pub faults: FaultStats,
    /// Records delivered to the consumer.
    pub records: u64,
    /// Spill pipeline counters.
    pub stats: SpillStats,
}

/// Everything the merge needs to know about one run file without
/// holding any of its contents.
#[derive(Debug, Clone)]
struct RunRef {
    path: PathBuf,
    records: u64,
}

/// Per-shard scalars carried in memory (they are O(1) per shard; only
/// the bulky ledger/events/metrics go to disk).
struct ShardRunMeta {
    run: RunRef,
    quota_denials: u64,
    slot_pushbacks: u64,
    faults: FaultStats,
    has_aux: bool,
    bytes: u64,
}

/// Simulate a full semester out-of-core, shards executed in parallel on
/// the ambient rayon pool, delivering the merged canonical ledger
/// record-by-record to `consumer`.
///
/// The record stream, telemetry replay, metrics fold and scalar sums
/// are byte-identical to [`crate::semester::simulate_semester_with`] on
/// the same config/seed at any thread count (multi-shard configs; a
/// single-shard config streams the legacy close-order ledger, again
/// matching the in-memory path).
pub fn simulate_semester_streaming<F: FnMut(&UsageRecord)>(
    config: &SemesterConfig,
    seed: u64,
    telemetry: &Telemetry,
    spill: &SpillConfig,
    consumer: F,
) -> Result<StreamOutcome, SpillError> {
    run_streaming(config, seed, telemetry, spill, true, consumer)
}

/// Sequential counterpart of [`simulate_semester_streaming`]: same
/// shards, executed one after another on the calling thread, same
/// merge. Peak memory is O(shard) rather than O(threads × shard).
pub fn simulate_semester_streaming_serial<F: FnMut(&UsageRecord)>(
    config: &SemesterConfig,
    seed: u64,
    telemetry: &Telemetry,
    spill: &SpillConfig,
    consumer: F,
) -> Result<StreamOutcome, SpillError> {
    run_streaming(config, seed, telemetry, spill, false, consumer)
}

fn run_streaming<F: FnMut(&UsageRecord)>(
    config: &SemesterConfig,
    seed: u64,
    telemetry: &Telemetry,
    spill: &SpillConfig,
    parallel: bool,
    mut consumer: F,
) -> Result<StreamOutcome, SpillError> {
    let shards = config.shards();

    // A cohort that fits in one shard keeps the legacy single-campus
    // semantics (close-order ledger, no disk) — identical to the
    // in-memory drivers' single-shard fast path.
    if let [only] = shards.as_slice() {
        let outcome = run_shard(config, seed, only, telemetry, false);
        let mut records = 0u64;
        for rec in outcome.ledger.records() {
            consumer(rec);
            records += 1;
        }
        return Ok(StreamOutcome {
            quota_denials: outcome.quota_denials,
            slot_pushbacks: outcome.slot_pushbacks,
            faults: outcome.faults,
            records,
            stats: SpillStats::default(),
        });
    }

    fs::create_dir_all(&spill.dir).map_err(|e| SpillError::from_io(&spill.dir, e))?;
    let record_aux = telemetry.is_enabled();

    // ---- Phase 1: simulate shards, spilling each to its own run file.
    let metas: Vec<ShardRunMeta> = {
        let results = if parallel {
            map_slice(&shards, |_, shard| {
                let run = run_shard_buffered(config, seed, shard, record_aux);
                write_shard_run(spill, shard.index, run, record_aux)
            })
        } else {
            shards
                .iter()
                .map(|shard| {
                    let run = run_shard_buffered(config, seed, shard, record_aux);
                    write_shard_run(spill, shard.index, run, record_aux)
                })
                .collect()
        };
        let mut metas = Vec::with_capacity(results.len());
        for result in results {
            metas.push(result?);
        }
        metas
    };

    let mut stats = SpillStats {
        shard_runs: metas.len(),
        ..SpillStats::default()
    };
    let mut quota_denials = 0u64;
    let mut slot_pushbacks = 0u64;
    let mut faults = FaultStats::default();
    let expected_records: u64 = metas.iter().map(|m| m.run.records).sum();

    // ---- Phase 2: fold aux blocks (telemetry replay + metrics) in
    // shard-index order, mirroring the in-memory merge exactly.
    telemetry.counter_add("semester.shards", metas.len() as u64);
    for meta in &metas {
        replay_aux(meta, spill, telemetry)?;
        quota_denials += meta.quota_denials;
        slot_pushbacks += meta.slot_pushbacks;
        faults.merge(&meta.faults);
        stats.spilled_bytes += meta.bytes;
    }

    // ---- Phase 3: hierarchical merge down to the fan-in, then stream.
    let fanin = spill.fanin.max(2);
    let mut level: Vec<RunRef> = metas.into_iter().map(|m| m.run).collect();
    let mut level_no = 0u32;
    while level.len() > fanin {
        let _phase = opml_profiler::wall_phase(opml_profiler::phases::MERGE_SPILL);
        level_no += 1;
        stats.merge_passes += 1;
        let mut next = Vec::with_capacity(level.len().div_ceil(fanin));
        // Merging CONTIGUOUS groups, in order, preserves the global
        // shard-index tie-break: ties within a group keep their input
        // order (StreamMerge is index-stable), ties across groups are
        // resolved by group order, which equals shard order.
        for (gi, group) in level.chunks(fanin).enumerate() {
            if let [only] = group {
                // An undersized tail group passes through unmerged.
                next.push(only.clone());
                continue;
            }
            let out = RunRef {
                path: spill.dir.join(format!("run-{level_no}-{gi}.bin")),
                records: group.iter().map(|g| g.records).sum(),
            };
            stats.max_open_runs = stats.max_open_runs.max(group.len());
            stats.spilled_bytes += write_merged_run(&out, group, spill)?;
            stats.intermediate_runs += 1;
            if !spill.keep_runs {
                for g in group {
                    let _ = fs::remove_file(&g.path);
                }
            }
            next.push(out);
        }
        level = next;
    }

    let mut records = 0u64;
    {
        let _phase = opml_profiler::wall_phase(opml_profiler::phases::MERGE_STREAM);
        stats.max_open_runs = stats.max_open_runs.max(level.len());
        let sources = open_sources(&level, spill)?;
        let mut merge = StreamMerge::new(sources)?;
        while let Some(rec) = merge.next()? {
            consumer(&rec);
            records += 1;
        }
    }
    if !spill.keep_runs {
        for run in &level {
            let _ = fs::remove_file(&run.path);
        }
        // Only removes the directory if nothing else lives in it.
        let _ = fs::remove_dir(&spill.dir);
    }
    if records != expected_records {
        return Err(SpillError::Corrupt {
            path: spill.dir.clone(),
            detail: format!("merged {records} records, shards produced {expected_records}"),
        });
    }

    Ok(StreamOutcome {
        quota_denials,
        slot_pushbacks,
        faults,
        records,
        stats,
    })
}

/// Write one shard's output as a run file and return the in-memory
/// scalars. Consumes the `ShardRun`, releasing its buffers on return —
/// this is what makes peak RSS O(shard) instead of O(cohort).
fn write_shard_run(
    spill: &SpillConfig,
    shard_index: u32,
    run: ShardRun,
    record_aux: bool,
) -> Result<ShardRunMeta, SpillError> {
    let _phase = opml_profiler::wall_phase(opml_profiler::phases::MERGE_SPILL);
    let path = spill.dir.join(format!("run-0-{shard_index}.bin"));

    let mut aux = Vec::new();
    if record_aux {
        spillcodec::encode_metrics(&run.metrics, &mut aux);
        binio::put_u64(&mut aux, run.events.len() as u64);
        for ev in &run.events {
            spillcodec::encode_event(ev, &mut aux);
        }
    }

    let records = run.outcome.ledger.records();
    let file = File::create(&path).map_err(|e| SpillError::from_io(&path, e))?;
    let mut w = BufWriter::with_capacity(WRITE_CHUNK, file);
    let mut bytes = 0u64;
    let mut buf = Vec::with_capacity(WRITE_CHUNK + 256);
    buf.extend_from_slice(MAGIC);
    binio::put_u64(&mut buf, aux.len() as u64);
    binio::put_u64(&mut buf, records.len() as u64);
    w.write_all(&buf)
        .map_err(|e| SpillError::from_io(&path, e))?;
    w.write_all(&aux)
        .map_err(|e| SpillError::from_io(&path, e))?;
    bytes += buf.len() as u64 + aux.len() as u64;
    drop(aux);
    buf.clear();
    for rec in records {
        rec.encode_into(&mut buf);
        if buf.len() >= WRITE_CHUNK {
            w.write_all(&buf)
                .map_err(|e| SpillError::from_io(&path, e))?;
            bytes += buf.len() as u64;
            buf.clear();
        }
    }
    w.write_all(&buf)
        .map_err(|e| SpillError::from_io(&path, e))?;
    bytes += buf.len() as u64;
    w.into_inner()
        .map_err(|e| SpillError::from_io(&path, e.into_error()))?
        .flush()
        .map_err(|e| SpillError::from_io(&path, e))?;

    Ok(ShardRunMeta {
        run: RunRef {
            path,
            records: records.len() as u64,
        },
        quota_denials: run.outcome.quota_denials,
        slot_pushbacks: run.outcome.slot_pushbacks,
        faults: run.outcome.faults,
        has_aux: record_aux,
        bytes,
    })
}

/// Read a run-file header, leaving the reader positioned at the aux
/// block. Returns `(aux_len, record_count)`.
fn read_header(r: &mut impl io::Read, path: &Path) -> Result<(u64, u64), SpillError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|e| SpillError::from_io(path, e))?;
    if &magic != MAGIC {
        return Err(SpillError::Corrupt {
            path: path.to_path_buf(),
            detail: format!("bad magic {magic:02x?}"),
        });
    }
    let aux_len = binio::read_u64(r).map_err(|e| SpillError::from_io(path, e))?;
    let record_count = binio::read_u64(r).map_err(|e| SpillError::from_io(path, e))?;
    Ok((aux_len, record_count))
}

/// Stream one shard's aux block (metrics + telemetry events) back
/// through the parent handle: chunked `replay_owned` first, then the
/// metrics fold — the same per-shard order as the in-memory merge.
fn replay_aux(
    meta: &ShardRunMeta,
    spill: &SpillConfig,
    telemetry: &Telemetry,
) -> Result<(), SpillError> {
    if !meta.has_aux {
        return Ok(());
    }
    let path = &meta.run.path;
    let file = File::open(path).map_err(|e| SpillError::from_io(path, e))?;
    let mut r = BufReader::with_capacity(spill.read_ahead, file);
    let (aux_len, _records) = read_header(&mut r, path)?;
    if aux_len == 0 {
        return Ok(());
    }
    let metrics = spillcodec::decode_metrics(&mut r).map_err(|e| SpillError::from_io(path, e))?;
    let event_count = binio::read_u64(&mut r).map_err(|e| SpillError::from_io(path, e))?;
    {
        let _phase = opml_profiler::wall_phase(opml_profiler::phases::MERGE_REPLAY);
        let mut pending = Vec::with_capacity(REPLAY_CHUNK.min(event_count as usize));
        for _ in 0..event_count {
            pending
                .push(spillcodec::decode_event(&mut r).map_err(|e| SpillError::from_io(path, e))?);
            if pending.len() >= REPLAY_CHUNK {
                let chunk = std::mem::replace(&mut pending, Vec::with_capacity(REPLAY_CHUNK));
                telemetry.replay_owned(chunk);
            }
        }
        if !pending.is_empty() {
            telemetry.replay_owned(pending);
        }
    }
    {
        let _phase = opml_profiler::wall_phase(opml_profiler::phases::MERGE_METRICS);
        telemetry.merge_metrics(&metrics);
    }
    Ok(())
}

/// A run file opened for streaming record decode: the bounded
/// read-ahead source feeding [`StreamMerge`].
struct RunRecordSource {
    path: PathBuf,
    reader: BufReader<File>,
    remaining: u64,
}

impl RunRecordSource {
    /// Open `run`, skip its aux block, and position at the first
    /// record. Decode is count-driven, so a truncated file surfaces as
    /// `UnexpectedEof` mid-stream rather than silently ending early.
    fn open(run: &RunRef, spill: &SpillConfig) -> Result<RunRecordSource, SpillError> {
        let path = run.path.clone();
        let file = File::open(&path).map_err(|e| SpillError::from_io(&path, e))?;
        let mut reader = BufReader::with_capacity(spill.read_ahead, file);
        let (aux_len, record_count) = read_header(&mut reader, &path)?;
        if record_count != run.records {
            return Err(SpillError::Corrupt {
                path,
                detail: format!(
                    "header says {record_count} records, merge plan expected {}",
                    run.records
                ),
            });
        }
        skip_bytes(&mut reader, aux_len, &path)?;
        Ok(RunRecordSource {
            path,
            reader,
            remaining: record_count,
        })
    }
}

/// Skip `n` bytes of an open run reader (the aux block) without
/// reading them into memory.
fn skip_bytes(r: &mut BufReader<File>, n: u64, path: &Path) -> Result<(), SpillError> {
    match i64::try_from(n) {
        Ok(delta) => r
            .seek_relative(delta)
            .map_err(|e| SpillError::from_io(path, e)),
        Err(_) => Err(SpillError::Corrupt {
            path: path.to_path_buf(),
            detail: format!("implausible aux length {n}"),
        }),
    }
}

impl RecordSource for RunRecordSource {
    type Error = SpillError;

    fn next_record(&mut self) -> Result<Option<UsageRecord>, SpillError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match UsageRecord::decode_from(&mut self.reader) {
            Ok(rec) => {
                self.remaining -= 1;
                Ok(Some(rec))
            }
            Err(e) => Err(SpillError::from_io(&self.path, e)),
        }
    }
}

fn open_sources(runs: &[RunRef], spill: &SpillConfig) -> Result<Vec<RunRecordSource>, SpillError> {
    runs.iter()
        .map(|r| RunRecordSource::open(r, spill))
        .collect()
}

/// Merge a contiguous group of runs into one intermediate run
/// (ledger-only: aux was already replayed). Returns bytes written.
fn write_merged_run(
    out: &RunRef,
    group: &[RunRef],
    spill: &SpillConfig,
) -> Result<u64, SpillError> {
    let path = &out.path;
    let sources = open_sources(group, spill)?;
    let mut merge = StreamMerge::new(sources)?;
    let file = File::create(path).map_err(|e| SpillError::from_io(path, e))?;
    let mut w = BufWriter::with_capacity(WRITE_CHUNK, file);
    let mut buf = Vec::with_capacity(WRITE_CHUNK + 256);
    buf.extend_from_slice(MAGIC);
    binio::put_u64(&mut buf, 0); // no aux in intermediate runs
    binio::put_u64(&mut buf, out.records);
    let mut bytes = 0u64;
    let mut written = 0u64;
    while let Some(rec) = merge.next()? {
        rec.encode_into(&mut buf);
        written += 1;
        if buf.len() >= WRITE_CHUNK {
            w.write_all(&buf)
                .map_err(|e| SpillError::from_io(path, e))?;
            bytes += buf.len() as u64;
            buf.clear();
        }
    }
    w.write_all(&buf)
        .map_err(|e| SpillError::from_io(path, e))?;
    bytes += buf.len() as u64;
    w.into_inner()
        .map_err(|e| SpillError::from_io(path, e.into_error()))?
        .flush()
        .map_err(|e| SpillError::from_io(path, e))?;
    if written != out.records {
        return Err(SpillError::Corrupt {
            path: path.to_path_buf(),
            detail: format!("merged {written} records, inputs declared {}", out.records),
        });
    }
    Ok(bytes + HEADER_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semester::simulate_semester_with;
    use opml_faults::FaultProfile;
    use opml_telemetry::{export_jsonl, MemorySink};
    use opml_testbed::ledger::Ledger;

    fn test_dir(tag: &str) -> PathBuf {
        // detlint::allow(DL001): test-unique temp path, never simulation input
        std::env::temp_dir().join(format!("opml-spill-test-{}-{tag}", std::process::id()))
    }

    fn small_config() -> SemesterConfig {
        SemesterConfig {
            enrollment: 30,
            weeks: 14,
            run_projects: true,
            vm_auto_terminate_after: None,
            faults: FaultProfile::none(),
            shard_students: 8,
        }
    }

    /// Run both paths with recording telemetry and return
    /// (trace bytes, ledger json, metrics json, scalars) for each.
    fn both_paths(config: &SemesterConfig, seed: u64, spill: &SpillConfig) -> [Vec<String>; 2] {
        let sink = MemorySink::new();
        let telemetry = Telemetry::with_sink(sink.clone());
        let outcome = simulate_semester_with(config, seed, &telemetry);
        let in_memory = vec![
            export_jsonl(&sink.events()),
            serde_json::to_string(outcome.ledger.records()).expect("serialize"),
            serde_json::to_string(&telemetry.metrics_snapshot()).expect("serialize"),
            format!(
                "{}|{}|{:?}",
                outcome.quota_denials, outcome.slot_pushbacks, outcome.faults
            ),
        ];

        let sink = MemorySink::new();
        let telemetry = Telemetry::with_sink(sink.clone());
        let mut ledger = Ledger::new();
        let stream = simulate_semester_streaming(config, seed, &telemetry, spill, |r| {
            ledger.push(r.clone())
        })
        .expect("streaming run");
        assert_eq!(stream.records as usize, ledger.records().len());
        let streamed = vec![
            export_jsonl(&sink.events()),
            serde_json::to_string(ledger.records()).expect("serialize"),
            serde_json::to_string(&telemetry.metrics_snapshot()).expect("serialize"),
            format!(
                "{}|{}|{:?}",
                stream.quota_denials, stream.slot_pushbacks, stream.faults
            ),
        ];
        [in_memory, streamed]
    }

    #[test]
    fn streaming_matches_in_memory_bytes() {
        let config = small_config();
        let spill = SpillConfig::new(test_dir("match"));
        let [in_memory, streamed] = both_paths(&config, 42, &spill);
        for (label, (a, b)) in ["trace", "ledger", "metrics", "scalars"]
            .into_iter()
            .zip(in_memory.iter().zip(streamed.iter()))
        {
            assert_eq!(a, b, "{label} bytes diverge between paths");
        }
        assert!(!spill.dir.exists(), "run files cleaned up");
    }

    #[test]
    fn tiny_fanin_forces_intermediate_passes() {
        let config = small_config(); // 4 shards
        let mut spill = SpillConfig::new(test_dir("fanin"));
        spill.fanin = 2;
        let reference = simulate_semester_with(&config, 7, &Telemetry::disabled());
        let mut ledger = Ledger::new();
        let stream =
            simulate_semester_streaming_serial(&config, 7, &Telemetry::disabled(), &spill, |r| {
                ledger.push(r.clone())
            })
            .expect("streaming run");
        assert!(stream.stats.merge_passes >= 1, "{:?}", stream.stats);
        assert!(stream.stats.intermediate_runs >= 1);
        assert!(stream.stats.max_open_runs <= 2);
        assert_eq!(
            serde_json::to_string(ledger.records()).expect("serialize"),
            serde_json::to_string(reference.ledger.records()).expect("serialize"),
        );
    }

    #[test]
    fn single_shard_streams_close_order_without_disk() {
        let config = SemesterConfig {
            enrollment: 6,
            shard_students: 191,
            ..small_config()
        };
        let spill = SpillConfig::new(test_dir("single"));
        let reference = simulate_semester_with(&config, 3, &Telemetry::disabled());
        let mut ledger = Ledger::new();
        let stream = simulate_semester_streaming(&config, 3, &Telemetry::disabled(), &spill, |r| {
            ledger.push(r.clone())
        })
        .expect("streaming run");
        assert_eq!(stream.stats, SpillStats::default());
        assert!(!spill.dir.exists(), "single shard never touches disk");
        // Close order, not canonical order — exactly the legacy bytes.
        assert_eq!(
            serde_json::to_string(ledger.records()).expect("serialize"),
            serde_json::to_string(reference.ledger.records()).expect("serialize"),
        );
    }

    #[test]
    fn corrupt_run_is_a_typed_error() {
        let dir = test_dir("corrupt");
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("run-0-0.bin");
        fs::write(&path, b"NOTARUN!").expect("write");
        let run = RunRef {
            path: path.clone(),
            records: 1,
        };
        let spill = SpillConfig::new(&dir);
        match RunRecordSource::open(&run, &spill) {
            Err(SpillError::Corrupt { .. }) => {}
            Err(other) => panic!("expected Corrupt, got {other:?}"),
            Ok(_) => panic!("expected Corrupt, got a source"),
        }
        let _ = fs::remove_file(&path);
        let _ = fs::remove_dir(&dir);
    }
}
