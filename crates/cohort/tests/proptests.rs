//! Property-based tests for the cohort simulator.

use opml_cohort::semester::{simulate_semester, SemesterConfig};
use opml_faults::{FaultProfile, FaultRates};
use opml_metering::rollup::AssignmentRollup;
use opml_simkernel::SimDuration;
use opml_testbed::ledger::UsageKind;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For arbitrary (small) cohorts and seeds, the semester upholds its
    /// structural invariants: records well-formed, leased usage
    /// auto-terminated, per-student normalization consistent.
    #[test]
    fn semester_invariants(enrollment in 4u32..24, seed in any::<u64>()) {
        let config = SemesterConfig {
            enrollment,
            weeks: 14,
            run_projects: false,
            vm_auto_terminate_after: None,
            faults: FaultProfile::none(),
            shard_students: 191,
        };
        let outcome = simulate_semester(&config, seed);
        let end = opml_simkernel::SimTime::at(15, 0, 0, 0);
        for r in outcome.ledger.records() {
            prop_assert!(r.end >= r.start, "{} ends before start", r.name);
            prop_assert!(r.end <= end, "{} survives finalize", r.name);
        }
        // Leased flavors are always closed by auto-termination.
        for r in outcome.ledger.records() {
            if let UsageKind::Instance { flavor, auto_terminated } = r.kind {
                if flavor.requires_lease() {
                    prop_assert!(auto_terminated, "{} leased but user-closed", r.name);
                }
            }
        }
        let rollup = AssignmentRollup::from_ledger(&outcome.ledger, enrollment as usize);
        let total: f64 = rollup.rows.iter().map(|x| x.instance_hours).sum();
        prop_assert!((total - outcome.ledger.instance_hours(None)).abs() < 1e-6);
    }

    /// The VM auto-termination cap is a true upper bound on every VM
    /// record's duration.
    #[test]
    fn cap_bounds_every_vm_record(cap_hours in 4u64..48, seed in any::<u64>()) {
        let config = SemesterConfig {
            enrollment: 10,
            weeks: 14,
            run_projects: false,
            vm_auto_terminate_after: Some(SimDuration::hours(cap_hours)),
            faults: FaultProfile::none(),
            shard_students: 191,
        };
        let outcome = simulate_semester(&config, seed);
        for r in outcome.ledger.records() {
            if let UsageKind::Instance { flavor, .. } = r.kind {
                if !flavor.requires_lease() {
                    prop_assert!(
                        r.hours() <= cap_hours as f64 + 1e-9,
                        "{}: {} h exceeds the {cap_hours} h cap",
                        r.name,
                        r.hours()
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Under an arbitrary fault profile — any mix of injection rates and
    /// walk-away probability, labs or the full course — the semester
    /// never panics, every ledger record is balanced, and nothing
    /// survives past finalize.
    #[test]
    fn semester_survives_arbitrary_faults(
        seed in any::<u64>(),
        launch in 0.0f64..1.0,
        crash in 0.0f64..1.0,
        fip in 0.0f64..1.0,
        vol in 0.0f64..1.0,
        lease in 0.0f64..1.0,
        leak in 0.0f64..1.0,
        projects in any::<bool>(),
    ) {
        let mut faults = FaultProfile::chaos(0.0);
        faults.rates = FaultRates {
            launch_fail: launch,
            instance_crash: crash,
            fip_fail: fip,
            volume_attach: vol,
            lease_revoke: lease,
            spot_preempt: 0.0,
        };
        faults.leak_prob = leak;
        let config = SemesterConfig {
            enrollment: 5,
            weeks: 14,
            run_projects: projects,
            vm_auto_terminate_after: None,
            faults,
            shard_students: 191,
        };
        let outcome = simulate_semester(&config, seed);
        let end = opml_simkernel::SimTime::at(15, 0, 0, 0);
        for r in outcome.ledger.records() {
            prop_assert!(r.end >= r.start, "{} ends before start", r.name);
            prop_assert!(r.end <= end, "{} survives finalize", r.name);
        }
        // Counter coherence: leaks are a subset of abandonments, and
        // nothing is counted without an injection or denial behind it.
        let f = outcome.faults;
        prop_assert!(f.leaked <= f.abandoned, "leaked {} > abandoned {}", f.leaked, f.abandoned);
        if f.total() > 0 {
            prop_assert!(
                f.injected > 0 || outcome.quota_denials > 0,
                "recovery work with nothing injected: {f:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Replay equivalence at the cohort level: a seeded semester and its
    /// rollups serialize identically whether rayon runs on 1 thread or 8.
    #[test]
    fn rollup_invariant_to_thread_count(enrollment in 4u32..12, seed in any::<u64>()) {
        let config = SemesterConfig {
            enrollment,
            weeks: 14,
            run_projects: false,
            vm_auto_terminate_after: None,
            faults: FaultProfile::none(),
            shard_students: 191,
        };
        let run = |threads: usize| {
            opml_simkernel::parallel::with_thread_count(threads, || {
                let outcome = simulate_semester(&config, seed);
                let rollup = AssignmentRollup::from_ledger(&outcome.ledger, enrollment as usize);
                let per_student =
                    opml_metering::rollup::PerStudentUsage::from_ledger(&outcome.ledger);
                (
                    outcome.ledger.records().len(),
                    serde_json::to_string(&rollup).expect("serialize rollup"),
                    serde_json::to_string(&per_student).expect("serialize per-student"),
                )
            })
        };
        let serial = run(1);
        let parallel = run(8);
        prop_assert_eq!(serial, parallel);
    }
}
