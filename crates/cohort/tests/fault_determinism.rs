//! Determinism of the fault-injected semester: the chaos trace must be
//! byte-identical across rayon thread counts, and a zero-rate chaos
//! profile must be indistinguishable from running with no faults at all.

use opml_cohort::semester::{simulate_semester_with, SemesterConfig};
use opml_faults::FaultProfile;
use opml_simkernel::parallel::with_thread_count;
use opml_telemetry::{export_jsonl, MemorySink, Telemetry};

/// Run one semester under `threads` rayon threads and export its trace.
fn trace(faults: FaultProfile, threads: usize) -> String {
    with_thread_count(threads, || {
        let sink = MemorySink::new();
        let telemetry = Telemetry::with_sink(sink.clone());
        let config = SemesterConfig {
            enrollment: 8,
            weeks: 14,
            run_projects: true,
            vm_auto_terminate_after: None,
            faults,
            shard_students: 191,
        };
        simulate_semester_with(&config, 7, &telemetry);
        export_jsonl(&sink.events())
    })
}

#[test]
fn sharded_chaos_trace_is_thread_count_invariant() {
    // Force multiple shards (8 students, 3 per shard) so the buffered
    // replay path — not just the legacy single-campus path — is covered
    // under fault injection.
    let sharded = |threads: usize| {
        with_thread_count(threads, || {
            let sink = MemorySink::new();
            let telemetry = Telemetry::with_sink(sink.clone());
            let config = SemesterConfig {
                enrollment: 8,
                weeks: 14,
                run_projects: true,
                vm_auto_terminate_after: None,
                faults: FaultProfile::chaos(0.2),
                shard_students: 3,
            };
            simulate_semester_with(&config, 7, &telemetry);
            export_jsonl(&sink.events())
        })
    };
    let serial = sharded(1);
    let parallel = sharded(8);
    assert!(serial.contains("fault.inject"));
    assert_eq!(
        serial, parallel,
        "sharded chaos trace differs across thread counts"
    );
}

#[test]
fn chaos_trace_is_thread_count_invariant() {
    let serial = trace(FaultProfile::chaos(0.2), 1);
    let parallel = trace(FaultProfile::chaos(0.2), 8);
    assert!(
        serial.contains("fault.inject"),
        "a 20% chaos run should inject something"
    );
    assert_eq!(serial, parallel, "chaos trace differs across thread counts");
}

#[test]
fn zero_rate_chaos_equals_no_fault_baseline() {
    let baseline = trace(FaultProfile::none(), 1);
    let zero_rate = trace(FaultProfile::chaos(0.0), 8);
    assert!(!baseline.contains("fault.inject"));
    assert_eq!(
        baseline, zero_rate,
        "an inert chaos profile must reproduce the baseline byte-for-byte"
    );
}
