//! # opml-bench
//!
//! Criterion benchmark harness. One bench target per paper artifact plus
//! the ablations DESIGN.md calls out:
//!
//! * `bench_table1` — full semester simulation + Table 1 pricing, swept
//!   over enrollment (48/96/191). Prints the regenerated totals.
//! * `bench_figures` — Fig. 1/2/3 derivations on a fixed context.
//! * `bench_allreduce` — ring vs tree vs parameter-server across worker
//!   counts and payload sizes; prints per-worker byte series (the Unit 4
//!   lecture's bandwidth-optimality claim).
//! * `bench_sched` — FCFS vs EASY backfill vs fair share on MLaaS-style
//!   traces; prints wait/utilization series.
//! * `bench_serving` — dynamic-batching sweep (batch × load) and the
//!   fp32/int8/edge profile comparison (the Unit 6 lab's trade-off
//!   curves).
//! * `bench_tracking` — concurrent experiment-logging throughput.
//! * `bench_drift` — detector throughput and detection delay vs shift.
//! * `bench_pipeline` — DAG engine wave-execution overhead.
//!
//! Run with `cargo bench --workspace`; each bench prints its series
//! before timing so the numbers are regenerated even on `--test` runs.

use opml_cohort::semester::{simulate_semester, SemesterConfig, SemesterOutcome};

pub mod perfgate;

/// Simulate a labs-only semester at the given enrollment (shared fixture).
pub fn labs_semester(enrollment: u32, seed: u64) -> SemesterOutcome {
    let config = SemesterConfig {
        enrollment,
        weeks: 14,
        run_projects: false,
        vm_auto_terminate_after: None,
        faults: opml_faults::FaultProfile::none(),
        shard_students: 191,
    };
    simulate_semester(&config, seed)
}

/// Simulate the full paper course (labs + projects).
pub fn full_semester(seed: u64) -> SemesterOutcome {
    simulate_semester(&SemesterConfig::paper_course(), seed)
}
