//! Perf-regression gate shared by the bench `--check` modes.
//!
//! A bench invoked with `--check` reruns its measured sections
//! (min-of-K, `PERFGATE_RUNS`) and compares the results against the
//! committed `BENCH_*.json` baseline instead of overwriting it:
//!
//! * **wall-time comparisons** fail when the live minimum exceeds the
//!   baseline by more than `PERFGATE_TOLERANCE` (fractional, default
//!   0.10 = 10% regression allowed) plus `PERFGATE_ABS_SLACK_S`
//!   (absolute seconds, default 0.05 — a purely relative gate on a
//!   milliseconds-scale section is scheduler-jitter-dominated, while
//!   50 ms is far below any real regression in these benches);
//! * **fatal comparisons** (digests, admitted-lease counts, record
//!   counts, schema tags) fail on any mismatch regardless of tolerance
//!   — a perf gate must never wave through a correctness drift;
//! * `PERFGATE_INJECT_SLEEP_MS` injects a synthetic slowdown into every
//!   measured section, which is how `scripts/perfgate.sh`'s own failure
//!   path is tested end to end.
//!
//! Env knobs are read once at [`Gate::from_env`]; malformed values are
//! a usage error (exit 2), not a silent fallback.

use opml_profiler::Json;

/// Gate state for one bench run.
pub struct Gate {
    /// `--check` seen on the command line.
    pub check: bool,
    /// Allowed fractional wall-time regression (`PERFGATE_TOLERANCE`).
    pub tolerance: f64,
    /// Min-of-K run count in check mode (`PERFGATE_RUNS`).
    pub runs: usize,
    /// Absolute wall slack in seconds (`PERFGATE_ABS_SLACK_S`).
    pub abs_slack_s: f64,
    /// Synthetic slowdown per measured section, in milliseconds.
    pub inject_sleep_ms: u64,
    failures: Vec<String>,
    comparisons: usize,
}

fn env_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    match std::env::var(name) {
        Err(_) => default,
        Ok(raw) => match raw.trim().parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("perfgate: {name} must be a number, got `{raw}`");
                std::process::exit(2);
            }
        },
    }
}

impl Gate {
    /// Build a gate from the command line and environment.
    /// `default_runs` is the bench's min-of-K default (cheap benches
    /// use 3; the semester sweep defaults to 1).
    pub fn from_env(args: &[String], default_runs: usize) -> Gate {
        let check = args.iter().any(|a| a == "--check");
        let tolerance: f64 = env_parse("PERFGATE_TOLERANCE", 0.10);
        if !(0.0..=100.0).contains(&tolerance) {
            eprintln!("perfgate: PERFGATE_TOLERANCE must be in [0, 100], got {tolerance}");
            std::process::exit(2);
        }
        Gate {
            check,
            tolerance,
            runs: env_parse::<usize>("PERFGATE_RUNS", default_runs).max(1),
            abs_slack_s: env_parse::<f64>("PERFGATE_ABS_SLACK_S", 0.05).max(0.0),
            inject_sleep_ms: env_parse("PERFGATE_INJECT_SLEEP_MS", 0),
            failures: Vec::new(),
            comparisons: 0,
        }
    }

    /// Min-of-K count for the measured sections: K in check mode, a
    /// single run otherwise (normal mode regenerates the baseline the
    /// way it always did).
    pub fn measure_runs(&self) -> usize {
        if self.check {
            self.runs
        } else {
            1
        }
    }

    /// Synthetic slowdown hook; call inside every measured section.
    /// No-op unless check mode set `PERFGATE_INJECT_SLEEP_MS`.
    pub fn inject_sleep(&self) {
        if self.check && self.inject_sleep_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(self.inject_sleep_ms));
        }
    }

    /// Parse a committed baseline file.
    pub fn load_baseline(&self, path: &str) -> Json {
        let raw = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!(
                    "perfgate: cannot read baseline {path}: {e}\n\
                     (run the bench once without --check to regenerate it)"
                );
                std::process::exit(2);
            }
        };
        match Json::parse(&raw) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("perfgate: baseline {path} is not valid JSON: {e}");
                std::process::exit(2);
            }
        }
    }

    /// Tolerance-gated wall-time comparison.
    pub fn wall(&mut self, label: &str, measured_s: f64, baseline_s: f64) {
        self.comparisons += 1;
        let limit = baseline_s * (1.0 + self.tolerance) + self.abs_slack_s;
        if measured_s > limit {
            self.failures.push(format!(
                "{label}: wall {measured_s:.4}s exceeds baseline {baseline_s:.4}s \
                 by more than {:.0}% (limit {limit:.4}s)",
                self.tolerance * 100.0
            ));
        } else {
            eprintln!(
                "perfgate: {label} ok — {measured_s:.4}s vs baseline {baseline_s:.4}s \
                 (limit {limit:.4}s)"
            );
        }
    }

    /// Tolerance-independent comparison: digests, counts, schema tags.
    pub fn fatal(&mut self, label: &str, ok: bool, detail: &str) {
        self.comparisons += 1;
        if !ok {
            self.failures.push(format!(
                "{label}: {detail} (fatal: tolerance does not apply)"
            ));
        }
    }

    /// Print the verdict; exit nonzero when anything failed.
    pub fn finish(self, bench: &str) {
        if self.failures.is_empty() {
            eprintln!(
                "perfgate({bench}): PASS — {} comparisons, tolerance {:.0}%, min of {} run(s)",
                self.comparisons,
                self.tolerance * 100.0,
                self.runs
            );
        } else {
            for f in &self.failures {
                eprintln!("perfgate({bench}): FAIL — {f}");
            }
            std::process::exit(1);
        }
    }
}

/// Run `f` `runs` times and keep the result of the fastest run.
pub fn min_of<R>(runs: usize, mut f: impl FnMut() -> (R, f64)) -> (R, f64) {
    let (mut best, mut best_wall) = f();
    for _ in 1..runs {
        let (r, wall) = f();
        if wall < best_wall {
            best = r;
            best_wall = wall;
        }
    }
    (best, best_wall)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_gate(tolerance: f64) -> Gate {
        Gate {
            check: true,
            tolerance,
            runs: 1,
            abs_slack_s: 0.0,
            inject_sleep_ms: 0,
            failures: Vec::new(),
            comparisons: 0,
        }
    }

    #[test]
    fn abs_slack_absorbs_jitter_on_tiny_sections() {
        let mut g = quiet_gate(0.10);
        g.abs_slack_s = 0.05;
        // 14 ms baseline, 20 ms measured: >40% relative, inside slack.
        g.wall("tiny", 0.020, 0.014);
        assert!(g.failures.is_empty());
        // An injected 400 ms slowdown still trips the gate.
        g.wall("tiny", 0.414, 0.014);
        assert_eq!(g.failures.len(), 1);
    }

    #[test]
    fn wall_within_tolerance_passes() {
        let mut g = quiet_gate(0.10);
        g.wall("x", 1.05, 1.0);
        assert!(g.failures.is_empty());
        g.wall("x", 1.2, 1.0);
        assert_eq!(g.failures.len(), 1);
    }

    #[test]
    fn fatal_ignores_tolerance() {
        let mut g = quiet_gate(100.0);
        g.fatal("digest", false, "mismatch");
        assert_eq!(g.failures.len(), 1);
    }

    #[test]
    fn min_of_keeps_fastest() {
        let mut walls = vec![3.0, 1.0, 2.0].into_iter();
        let (tag, wall) = min_of(3, || {
            let w = walls.next().unwrap_or(9.0);
            (w as u64, w)
        });
        assert_eq!(wall, 1.0);
        assert_eq!(tag, 1);
    }
}
