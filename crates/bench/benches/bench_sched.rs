//! Ablation: scheduling policies on MLaaS-style traces (Unit 5 lecture).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use opml_sched::{workload, Cluster, Placement, Policy, SchedSim};

fn bench_sched(c: &mut Criterion) {
    // Print the policy comparison series at two loads.
    for load in [0.7f64, 1.1] {
        let jobs = workload::ml_trace(1000, load, 42);
        println!("[sched] load {load}:");
        for policy in Policy::ALL {
            let m = SchedSim::new(Cluster::homogeneous(8, 4), policy, Placement::Packed)
                .run(&jobs)
                .metrics();
            println!(
                "  {:<20} wait {:6.2} h  p95 {:7.2} h  util {:.3}  jain {:.3}",
                policy.name(),
                m.mean_wait_hours,
                m.p95_wait_hours,
                m.utilization,
                m.jain_fairness
            );
        }
    }
    // Placement ablation.
    let jobs = workload::ml_trace(1000, 1.0, 43);
    for placement in [Placement::Packed, Placement::Spread] {
        let m = SchedSim::new(Cluster::homogeneous(8, 4), Policy::EasyBackfill, placement)
            .run(&jobs)
            .metrics();
        println!(
            "[sched] placement {placement:?}: wait {:.2} h util {:.3}",
            m.mean_wait_hours, m.utilization
        );
    }
    let mut group = c.benchmark_group("sched");
    group.sample_size(10);
    let jobs = workload::ml_trace(1000, 0.9, 44);
    for policy in Policy::ALL {
        group.bench_with_input(BenchmarkId::new(policy.name(), 1000), &policy, |b, &p| {
            b.iter(|| {
                SchedSim::new(Cluster::homogeneous(8, 4), p, Placement::Packed)
                    .run(&jobs)
                    .metrics()
                    .mean_wait_hours
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sched);
criterion_main!(benches);
