//! Ablation: gradient-aggregation collectives (Unit 4 lecture).
//!
//! Prints the per-worker byte series showing ring's bandwidth
//! optimality, then times each algorithm across workers × payload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use opml_mlops::allreduce::{all_reduce, ReduceAlgo};
use opml_simkernel::Rng;

fn buffers(n: usize, len: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|_| (0..len).map(|_| rng.range_f64(-1.0, 1.0) as f32).collect())
        .collect()
}

fn bench_allreduce(c: &mut Criterion) {
    // The lecture's claim, measured: max per-worker bytes.
    println!("[allreduce] max bytes/worker for a 1M-element (4 MB) buffer:");
    for n in [2usize, 4, 8] {
        let mut line = format!("  N={n}:");
        for algo in ReduceAlgo::ALL {
            let mut bufs = buffers(n, 1_000_000, 1);
            let stats = all_reduce(&mut bufs, algo);
            line.push_str(&format!(
                " {}={}",
                algo.name(),
                stats.max_bytes_per_worker()
            ));
        }
        println!("{line}");
    }
    let mut group = c.benchmark_group("allreduce");
    group.sample_size(10);
    for &len in &[65_536usize, 1_048_576] {
        group.throughput(Throughput::Bytes((len * 4) as u64));
        for n in [2usize, 4, 8] {
            for algo in ReduceAlgo::ALL {
                group.bench_with_input(
                    BenchmarkId::new(format!("{}-n{n}", algo.name()), len),
                    &(n, len, algo),
                    |b, &(n, len, algo)| {
                        b.iter_batched(
                            || buffers(n, len, 7),
                            |mut bufs| all_reduce(&mut bufs, algo).rounds,
                            criterion::BatchSize::LargeInput,
                        )
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_allreduce);
criterion_main!(benches);
