//! Drift-detector throughput and detection delay (Unit 7 substrate).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use opml_mlops::drift::{DriftDetector, DriftStatus};
use opml_simkernel::Rng;

fn bench_drift(c: &mut Criterion) {
    // Detection-delay series vs shift magnitude.
    println!("[drift] detection delay (observations after onset), window 500:");
    for shift in [0.5f64, 1.0, 2.0] {
        let mut rng = Rng::new(1);
        let reference: Vec<f64> = (0..2000).map(|_| rng.normal()).collect();
        let mut det = DriftDetector::new(reference, 500, 0.01);
        for _ in 0..500 {
            det.push(rng.normal());
        }
        let mut delay = None;
        for i in 0..3000 {
            if let Some(r) = det.push(rng.normal() + shift) {
                if r.status == DriftStatus::Drift {
                    delay = Some(i);
                    break;
                }
            }
        }
        println!("  shift {shift}: {:?}", delay);
    }
    let mut group = c.benchmark_group("drift");
    group.throughput(Throughput::Elements(1000));
    group.sample_size(20);
    group.bench_function("push_1000", |b| {
        let mut rng = Rng::new(2);
        let reference: Vec<f64> = (0..2000).map(|_| rng.normal()).collect();
        b.iter(|| {
            let mut det = DriftDetector::new(reference.clone(), 500, 0.01);
            let mut rng = Rng::new(3);
            let mut drifts = 0;
            for _ in 0..1000 {
                if det.push(rng.normal()).is_some() {
                    drifts += 1;
                }
            }
            drifts
        })
    });
    group.finish();
}

criterion_group!(benches, bench_drift);
criterion_main!(benches);
