//! Ablation: serving configurations (Unit 6 lab's trade-off curves).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use opml_mlops::serving::{simulate, LoadSpec, ModelProfile, ServerConfig};

fn bench_serving(c: &mut Criterion) {
    // Batch-size sweep at fixed load: throughput vs p95 latency.
    println!("[serving] fp32 GPU, 150 rps, batch sweep:");
    for batch in [1usize, 2, 4, 8, 16] {
        let r = simulate(
            ModelProfile::fp32_server_gpu(),
            ServerConfig {
                replicas: 1,
                max_batch: batch,
                max_queue_delay_ms: 5.0,
            },
            LoadSpec {
                rps: 150.0,
                requests: 5000,
            },
            42,
        );
        println!(
            "  batch {batch:>2}: p50 {:7.1} ms  p95 {:8.1} ms  thru {:6.1} rps  mean batch {:.2}",
            r.p50_latency_ms, r.p95_latency_ms, r.throughput_rps, r.mean_batch_size
        );
    }
    // Profile comparison (model-level optimizations).
    println!("[serving] profiles at 80 rps, batch 8:");
    for (name, p) in [
        ("fp32-gpu", ModelProfile::fp32_server_gpu()),
        ("int8-gpu", ModelProfile::int8_server_gpu()),
        ("fp32-cpu", ModelProfile::fp32_server_cpu()),
    ] {
        let r = simulate(
            p,
            ServerConfig {
                replicas: 1,
                max_batch: 8,
                max_queue_delay_ms: 5.0,
            },
            LoadSpec {
                rps: 80.0,
                requests: 3000,
            },
            42,
        );
        println!(
            "  {name:<9} p95 {:8.1} ms  thru {:6.1} rps",
            r.p95_latency_ms, r.throughput_rps
        );
    }
    let mut group = c.benchmark_group("serving");
    group.sample_size(20);
    for batch in [1usize, 8] {
        group.bench_with_input(BenchmarkId::new("simulate", batch), &batch, |b, &k| {
            b.iter(|| {
                simulate(
                    ModelProfile::fp32_server_gpu(),
                    ServerConfig {
                        replicas: 2,
                        max_batch: k,
                        max_queue_delay_ms: 5.0,
                    },
                    LoadSpec {
                        rps: 120.0,
                        requests: 2000,
                    },
                    7,
                )
                .p95_latency_ms
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
