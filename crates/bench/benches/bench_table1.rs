//! Table 1 regeneration benchmark: semester simulation + metering +
//! pricing, swept over enrollment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use opml_bench::labs_semester;
use opml_metering::rollup::AssignmentRollup;
use opml_pricing::estimate::price_lab_assignments;

fn bench_table1(c: &mut Criterion) {
    // Print the regenerated table totals once, outside the timing loop.
    for enrollment in [48u32, 96, 191] {
        let outcome = labs_semester(enrollment, 42);
        let rollup = AssignmentRollup::from_ledger(&outcome.ledger, enrollment as usize);
        let table = price_lab_assignments(&rollup);
        println!(
            "[table1] enrollment {enrollment}: {:.0} instance h, {:.0} FIP h, ${:.0} AWS, ${:.0} GCP (${:.0}/student AWS)",
            table.total.instance_hours,
            table.total.fip_hours,
            table.total.aws_usd,
            table.total.gcp_usd,
            table.total.aws_per_student
        );
    }
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for enrollment in [48u32, 96, 191] {
        group.bench_with_input(
            BenchmarkId::new("simulate+price", enrollment),
            &enrollment,
            |b, &n| {
                b.iter(|| {
                    let outcome = labs_semester(n, 42);
                    let rollup = AssignmentRollup::from_ledger(&outcome.ledger, n as usize);
                    price_lab_assignments(&rollup).total.aws_usd
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
