//! Experiment-tracker ingest throughput (Unit 5 substrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use opml_mlops::tracking::{ExperimentTracker, RunStatus};

fn bench_tracking(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracking");
    group.throughput(Throughput::Elements(10_000));
    for threads in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("log_metric", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    let tracker = ExperimentTracker::new();
                    let per_thread = 10_000 / t;
                    std::thread::scope(|s| {
                        for _ in 0..t {
                            let tracker = tracker.clone();
                            s.spawn(move || {
                                let run = tracker.start_run("bench");
                                for step in 0..per_thread as u64 {
                                    tracker.log_metric(run, "loss", step, 0.5);
                                }
                                tracker.end_run(run, RunStatus::Finished);
                            });
                        }
                    });
                    tracker.run_count()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_tracking);
criterion_main!(benches);
