//! Differential reservation-calendar bench: the sweep-line
//! [`ReservationCalendar`] vs the naive `O(L²)`/`O(L³)` reference it
//! replaced, on the same synthetic ~10k-lease booking workload, written
//! to `BENCH_calendar.json`.
//!
//! The workload replays the student booking pattern from the semester
//! simulator: an advancing frontier of `earliest_slot` → `reserve`
//! pairs with bounded back-jitter, sprinkled with `peak_reserved`
//! queries and revocations. The op script is generated up front from an
//! LCG, so both implementations execute byte-identical requests; every
//! op's result (slot choice, admission decision, error, revocation
//! outcome) is folded into a digest and the bench exits nonzero if the
//! two digests differ — it is a correctness gate first and a stopwatch
//! second.
//!
//! This harness measures wall time by design; the calendar itself never
//! reads the clock (`opml-detlint` enforces that), so DL001 is
//! suppressed only here.
//!
//! With `--check` (the perf-regression gate, see `scripts/perfgate.sh`)
//! the bench reruns both sides min-of-`PERFGATE_RUNS` and compares the
//! wall times against the committed `BENCH_calendar.json` instead of
//! overwriting it; admitted-lease counts and the digest verdict are
//! compared fatally, wall times within `PERFGATE_TOLERANCE`.

use opml_bench::perfgate::{min_of, Gate};
use opml_experiments::digest::fnv1a64;
use opml_profiler::Json;
use opml_simkernel::{SimDuration, SimTime};
use opml_testbed::lease::naive::NaiveCalendar;
use opml_testbed::lease::ReservationCalendar;
use opml_testbed::FlavorId;

const SEED: u64 = 42;
const OPS: usize = 14_000;
const FLAVOR: FlavorId = FlavorId::GpuA100Pcie;
const CAPACITY: u32 = 6;
/// Required wall-time ratio (naive / sweep-line) on this workload.
const SPEEDUP_FLOOR: f64 = 50.0;

/// One scripted calendar operation. Generated independently of either
/// implementation's responses so both sides replay the same stream.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `earliest_slot` then, if a slot is found, `reserve` it — the
    /// semester's booking workflow.
    Book {
        count: u32,
        len_min: u64,
        earliest: SimTime,
    },
    /// Range-max query.
    Peak { start: SimTime, end: SimTime },
    /// Revoke the `nth % admitted` lease at `at`.
    Revoke { nth: usize, at: SimTime },
}

/// Deterministic LCG (same constants as `mmix`), kept local so the
/// bench needs no RNG dependency and the script never drifts.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Generate the op script: ~`OPS` bookings along an advancing frontier
/// with bounded back-jitter (big jumps backwards would make the naive
/// side's candidate scans intractable, not just slow).
fn script() -> Vec<Op> {
    let mut rng = Lcg(SEED);
    let mut ops = Vec::with_capacity(OPS);
    let mut frontier = 0u64; // minutes
    for i in 0..OPS {
        // Mean demand runs ~15% over capacity (≈1.5 nodes × 2.5 h booked
        // every ~24 min against 6 nodes): the scarce-GPU regime where the
        // booking backlog grows and earliest_slot has to sweep past an
        // ever-longer run of busy candidates — the pathology that made
        // 100k-student semesters cost ~17 s serial before the rewrite.
        frontier += 14 + rng.next() % 21;
        match i % 8 {
            3 | 6 => {
                // Staff-style capacity check over a day-or-two window:
                // O(overlap × L) for the naive scan, O(log L + W) for the
                // sweep-line range-max.
                let start = frontier.saturating_sub(rng.next() % 3_000);
                ops.push(Op::Peak {
                    start: SimTime(start),
                    end: SimTime(start + 600 + rng.next() % 2_400),
                });
            }
            5 => ops.push(Op::Revoke {
                nth: rng.next() as usize,
                at: SimTime(frontier.saturating_sub(rng.next() % 240)),
            }),
            _ => ops.push(Op::Book {
                count: 1 + (rng.next() % 2) as u32,
                len_min: 60 * (2 + rng.next() % 2), // the 2–3-hour student slot
                earliest: SimTime(frontier.saturating_sub(rng.next() % 400)),
            }),
        }
    }
    ops
}

/// Replay the script against one implementation via its callbacks,
/// digesting every observable result.
struct Replay {
    digest_parts: Vec<u64>,
    admitted: Vec<u64>,
    booked: u64,
    denied: u64,
    revoked: u64,
}

impl Replay {
    fn new() -> Self {
        Replay {
            digest_parts: Vec::new(),
            admitted: Vec::new(),
            booked: 0,
            denied: 0,
            revoked: 0,
        }
    }

    fn digest(&self) -> u64 {
        let blob: Vec<u8> = self
            .digest_parts
            .iter()
            .flat_map(|p| p.to_le_bytes())
            .collect();
        fnv1a64(&blob)
    }
}

macro_rules! replay_with {
    ($cal:expr, $ops:expr) => {{
        let cal = $cal;
        let mut r = Replay::new();
        for op in $ops {
            match *op {
                Op::Book {
                    count,
                    len_min,
                    earliest,
                } => {
                    let len = SimDuration::minutes(len_min);
                    match cal.earliest_slot(FLAVOR, count, len, earliest) {
                        None => r.digest_parts.push(u64::MAX),
                        Some(start) => {
                            r.digest_parts.push(start.0);
                            match cal.reserve(FLAVOR, count, start, start + len, "bench") {
                                Ok(lease) => {
                                    r.booked += 1;
                                    r.admitted.push(lease.id.0);
                                    r.digest_parts.push(lease.id.0);
                                }
                                Err(e) => {
                                    r.denied += 1;
                                    r.digest_parts.push(fnv1a64(e.to_string().as_bytes()));
                                }
                            }
                        }
                    }
                }
                Op::Peak { start, end } => {
                    r.digest_parts
                        .push(u64::from(cal.peak_reserved(FLAVOR, start, end)));
                }
                Op::Revoke { nth, at } => {
                    if !r.admitted.is_empty() {
                        let id = opml_testbed::LeaseId(r.admitted[nth % r.admitted.len()]);
                        match cal.revoke(id, at) {
                            Ok(()) => {
                                r.revoked += 1;
                                r.digest_parts.push(1);
                            }
                            Err(e) => r.digest_parts.push(fnv1a64(e.to_string().as_bytes())),
                        }
                    }
                }
            }
        }
        r
    }};
}

/// Wall-time one run in seconds.
fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    // detlint::allow(DL001): benchmark harness measures wall time by design
    let start = std::time::Instant::now();
    let r = f();
    // detlint::allow(DL001): benchmark harness measures wall time by design
    (r, start.elapsed().as_secs_f64())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut gate = Gate::from_env(&args, 3);
    let ops = script();

    let (sweep, sweep_wall) = min_of(gate.measure_runs(), || {
        timed(|| {
            gate.inject_sleep();
            let mut cal = ReservationCalendar::new();
            cal.set_capacity(FLAVOR, CAPACITY);
            replay_with!(&mut cal, &ops)
        })
    });
    eprintln!(
        "sweep-line: {:>8.4}s  booked {} denied {} revoked {}",
        sweep_wall, sweep.booked, sweep.denied, sweep.revoked
    );

    let (naive, naive_wall) = min_of(gate.measure_runs(), || {
        timed(|| {
            gate.inject_sleep();
            let mut cal = NaiveCalendar::new();
            cal.set_capacity(FLAVOR, CAPACITY);
            replay_with!(&mut cal, &ops)
        })
    });
    eprintln!(
        "naive:      {:>8.4}s  booked {} denied {} revoked {}",
        naive_wall, naive.booked, naive.denied, naive.revoked
    );

    let identical = sweep.digest() == naive.digest();
    let speedup = naive_wall / sweep_wall.max(1e-9);
    eprintln!(
        "speedup {speedup:.1}x, results {}",
        if identical { "identical" } else { "DIVERGED" }
    );

    if !identical {
        eprintln!("bench_calendar: FAILED — sweep-line diverged from the naive reference");
        std::process::exit(1);
    }

    if gate.check {
        let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_calendar.json");
        let base = gate.load_baseline(out);
        let schema = base.get("schema").and_then(Json::as_str).unwrap_or("");
        gate.fatal(
            "schema",
            schema == "bench_calendar/v1",
            &format!("baseline schema `{schema}` != bench_calendar/v1"),
        );
        let base_ops = base.get("ops").and_then(Json::as_u64).unwrap_or(0);
        gate.fatal(
            "ops",
            base_ops == ops.len() as u64,
            &format!("op count {} != baseline {base_ops}", ops.len()),
        );
        let base_admitted = base
            .get("leases_admitted")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        gate.fatal(
            "leases_admitted",
            base_admitted == sweep.booked,
            &format!("admitted {} != baseline {base_admitted}", sweep.booked),
        );
        gate.fatal(
            "baseline_identical",
            base.get("identical").and_then(Json::as_bool) == Some(true),
            "baseline was recorded with diverging digests",
        );
        let base_sweep = base
            .get("sweep_wall_s")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        let base_naive = base
            .get("naive_wall_s")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        gate.wall("sweep_wall_s", sweep_wall, base_sweep);
        gate.wall("naive_wall_s", naive_wall, base_naive);
        gate.finish("bench_calendar");
        return;
    }

    let report = serde_json::json!({
        "schema": "bench_calendar/v1",
        "seed": SEED,
        "ops": ops.len(),
        "leases_admitted": sweep.booked,
        "capacity": CAPACITY,
        "flavor": "gpu_a100_pcie",
        "naive_wall_s": naive_wall,
        "sweep_wall_s": sweep_wall,
        "speedup": speedup,
        "speedup_floor": SPEEDUP_FLOOR,
        "identical": identical,
        "notes": [
            "identical op script replayed through both implementations; every slot \
             choice, admission decision, error, and revocation folded into the digest",
            "workload: advancing booking frontier with bounded back-jitter, 2-3h slots, \
             peak queries and revocations mixed in (the semester simulator's pattern)",
        ],
    });
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_calendar.json");
    std::fs::write(
        out,
        serde_json::to_string_pretty(&report).expect("serialize bench report"),
    )
    .expect("write BENCH_calendar.json");
    eprintln!("wrote {out}");

    if speedup < SPEEDUP_FLOOR {
        eprintln!("bench_calendar: FAILED — speedup {speedup:.1}x < {SPEEDUP_FLOOR}x");
        std::process::exit(1);
    }
}
