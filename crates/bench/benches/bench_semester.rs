//! Sharded-semester scaling bench: wall time, speedup and peak RSS for
//! the large-cohort sweep, written to `BENCH_semester.json`.
//!
//! Four families of arms, all labs-only at seed 42:
//!
//! * **spill** — the out-of-core streaming pipeline at 1M students
//!   (`BENCH_SPILL_ENROLLMENT` overrides), digest-only, run strictly
//!   FIRST: `peak_rss_kb()` reads the process-lifetime `VmHWM` high
//!   water, so the in-memory arms below would mask the spill arm's
//!   O(shard) peak if they ran earlier. The observed peak is gated
//!   against a fixed 8 GB ceiling (`rss_ceiling_kb`), fatally, in both
//!   write and `--check` mode — this is the machine-checked form of the
//!   issue's "10M under a fixed RSS cap" claim at bench-tractable scale;
//! * **sharded** — 191-student shards, enrollment × rayon thread count,
//!   via the parallel driver;
//! * **serial** — the same shards executed strictly sequentially (the
//!   byte-identity reference);
//! * **unsharded** — the pre-shard monolithic driver
//!   (`shard_students = enrollment`), only at enrollments where it is
//!   still tractable: its shared reservation calendar makes placement
//!   scans super-cubically slower as the cohort grows, which is exactly
//!   why the sharded path exists.
//!
//! The headline `speedup_floor_100k` divides a *linear* extrapolation
//! of the unsharded wall time (measured at its largest tractable
//! enrollment) by the best sharded wall at 100k. Linear extrapolation
//! is a deliberate underestimate — the measured unsharded scaling is
//! super-linear even on the sweep-line calendar, because a shared
//! calendar's backlog grows with the cohort while per-shard calendars
//! stay small — so the true speedup is higher than the recorded floor.
//!
//! Every arm records the rayon pool size actually observed inside the
//! run (`effective_threads`) next to the requested count, plus an
//! `oversubscribed` flag for arms where the request exceeds the host
//! CPUs: on such hosts (the committed report once said `host_cpus: 1`)
//! the multi-thread speedup columns measure scheduling determinism, not
//! hardware parallelism, and are flagged so nobody reads them as real.
//!
//! Every arm's outcome digest is checked against the serial reference;
//! the bench exits nonzero on any divergence, so `scripts/bench.sh`
//! doubles as a determinism gate.
//!
//! This harness measures wall time by design; the simulators under test
//! never read the clock (`opml-detlint` enforces that), so DL001 is
//! suppressed only here.
//!
//! With `--check` (the perf-regression gate, see `scripts/perfgate.sh`)
//! the bench compares each arm against the committed
//! `BENCH_semester.json` instead of overwriting it: digests and record
//! counts fatally, wall times within `PERFGATE_TOLERANCE` (min of
//! `PERFGATE_RUNS`, default 2). Oversubscribed arms are exempt from
//! the *wall* gate only — their times measure host timeslicing, with
//! run-to-run variance far beyond any sane tolerance — while their
//! digest and record gates stay fatal.

use opml_bench::perfgate::{min_of, Gate};
use opml_cohort::semester::{simulate_semester, simulate_semester_serial, SemesterConfig};
use opml_cohort::spill::{simulate_semester_streaming_serial, SpillConfig};
use opml_experiments::scale::{digest_outcome, peak_rss_kb, OutcomeDigest};
use opml_profiler::Json;
use opml_simkernel::parallel::{effective_thread_count, with_thread_count};
use opml_telemetry::Telemetry;

const SEED: u64 = 42;
const SHARD_STUDENTS: u32 = 191;
/// Hard ceiling on the spill arm's observed peak RSS: 8 GB in kB. The
/// in-memory path needs ~30 GB at 1M students; the out-of-core path
/// must stay under this regardless of enrollment (peak is O(shard)).
const SPILL_RSS_CEILING_KB: u64 = 8 * 1024 * 1024;
/// Default spill-arm enrollment (1M); `BENCH_SPILL_ENROLLMENT`
/// overrides for quicker local runs or the 10M endurance run.
const SPILL_ENROLLMENT: u32 = 1_000_000;
/// Sharded/serial sweep enrollments.
const ENROLLMENTS: [u32; 2] = [10_000, 100_000];
/// Thread counts for the parallel arms.
const THREADS: [usize; 3] = [1, 2, 8];
/// Enrollments where the monolithic driver is still tractable (the
/// sweep-line calendar pushed this frontier out from 800).
const UNSHARDED: [u32; 3] = [800, 3000, 10_000];

/// One measured arm, flattened for the JSON report.
struct Arm {
    family: &'static str,
    enrollment: u32,
    threads: usize,
    effective_threads: usize,
    oversubscribed: bool,
    wall_s: f64,
    digest: u64,
    records: usize,
    speedup_vs_serial: Option<f64>,
    matches_serial: bool,
}

fn labs_config(enrollment: u32, shard_students: u32) -> SemesterConfig {
    SemesterConfig {
        enrollment,
        run_projects: false,
        shard_students,
        ..SemesterConfig::paper_course()
    }
}

/// Wall-time one run in seconds.
fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    // detlint::allow(DL001): benchmark harness measures wall time by design
    let start = std::time::Instant::now();
    let outcome = f();
    // detlint::allow(DL001): benchmark harness measures wall time by design
    (outcome, start.elapsed().as_secs_f64())
}

/// The out-of-core arm, measured separately from the in-memory sweep.
struct SpillArm {
    enrollment: u32,
    wall_s: f64,
    digest: u64,
    records: u64,
    shard_runs: usize,
    spilled_bytes: u64,
    peak_rss_kb: Option<u64>,
}

/// Run the spill arm: serial streaming digest-only semester, once
/// (never min-of-K — the interesting number is the RSS high water, and
/// a repeat run cannot lower `VmHWM`).
fn run_spill_arm(gate: &Gate) -> SpillArm {
    let enrollment = std::env::var("BENCH_SPILL_ENROLLMENT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(SPILL_ENROLLMENT);
    let config = labs_config(enrollment, SHARD_STUDENTS);
    // detlint::allow(DL001): spill paths are bench harness plumbing, never simulation input
    let dir = std::env::temp_dir().join(format!("opml-bench-spill-{}", std::process::id()));
    let spill = SpillConfig::new(dir);
    let mut digest = OutcomeDigest::new();
    let (outcome, wall_s) = timed(|| {
        gate.inject_sleep();
        simulate_semester_streaming_serial(&config, SEED, &Telemetry::disabled(), &spill, |r| {
            digest.push(r)
        })
    });
    let outcome = outcome.unwrap_or_else(|e| {
        eprintln!("bench_semester: FAILED — spill arm errored: {e}");
        std::process::exit(1);
    });
    let peak = peak_rss_kb();
    let hash = digest.finish(
        outcome.quota_denials,
        outcome.slot_pushbacks,
        &outcome.faults,
    );
    eprintln!(
        "spill       n={enrollment:>8}            {wall_s:>8.3}s digest {hash:016x} \
         peak_rss {} kB (ceiling {SPILL_RSS_CEILING_KB})",
        peak.map_or_else(|| "?".to_string(), |p| p.to_string()),
    );
    SpillArm {
        enrollment,
        wall_s,
        digest: hash,
        records: outcome.records,
        shard_runs: outcome.stats.shard_runs,
        spilled_bytes: outcome.stats.spilled_bytes,
        peak_rss_kb: peak,
    }
}

/// CPUs actually online on the host, from `/proc/cpuinfo`.
/// `available_parallelism` can be clipped by cgroup quotas or affinity
/// masks, so both numbers are reported.
fn host_cpus_online() -> Option<usize> {
    let info = std::fs::read_to_string("/proc/cpuinfo").ok()?;
    let n = info.lines().filter(|l| l.starts_with("processor")).count();
    (n > 0).then_some(n)
}

fn main() {
    // Cargo passes `--bench` (and possibly filters); apart from
    // `--check`, arguments are accepted and ignored.
    let args: Vec<String> = std::env::args().collect();
    let mut gate = Gate::from_env(&args, 2);
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cpus_online = host_cpus_online();
    let mut arms: Vec<Arm> = Vec::new();
    let mut divergent = false;
    let mut sharded_100k_best = f64::INFINITY;

    // Out-of-core arm first: `VmHWM` never goes down, so this is the
    // only window where the observed peak is the spill pipeline's own.
    let spill_arm = run_spill_arm(&gate);
    let spill_within_ceiling = spill_arm
        .peak_rss_kb
        .is_some_and(|p| p <= SPILL_RSS_CEILING_KB);
    if !spill_within_ceiling {
        eprintln!(
            "bench_semester: FAILED — spill arm peak RSS {:?} kB exceeds the {SPILL_RSS_CEILING_KB} kB \
             ceiling (or was unreadable); the out-of-core pipeline is no longer O(shard)",
            spill_arm.peak_rss_kb
        );
        std::process::exit(1);
    }

    for &enrollment in &ENROLLMENTS {
        let config = labs_config(enrollment, SHARD_STUDENTS);
        let (reference, serial_wall) = min_of(gate.measure_runs(), || {
            timed(|| {
                gate.inject_sleep();
                simulate_semester_serial(&config, SEED)
            })
        });
        let ref_digest = digest_outcome(&reference);
        eprintln!("serial      n={enrollment:>6}            {serial_wall:>8.3}s");
        arms.push(Arm {
            family: "serial",
            enrollment,
            threads: 1,
            effective_threads: 1,
            oversubscribed: false,
            wall_s: serial_wall,
            digest: ref_digest,
            records: reference.ledger.records().len(),
            speedup_vs_serial: None,
            matches_serial: true,
        });
        for &threads in &THREADS {
            let ((outcome, effective_threads), wall) = min_of(gate.measure_runs(), || {
                timed(|| {
                    gate.inject_sleep();
                    with_thread_count(threads, || {
                        (simulate_semester(&config, SEED), effective_thread_count())
                    })
                })
            });
            let oversubscribed = threads > host_cpus;
            let digest = digest_outcome(&outcome);
            let ok = digest == ref_digest;
            divergent |= !ok;
            if enrollment == 100_000 {
                sharded_100k_best = sharded_100k_best.min(wall);
            }
            eprintln!(
                "sharded     n={enrollment:>6} threads={threads} (effective {effective_threads}{}) \
                 {wall:>8.3}s digest {}",
                if oversubscribed { ", OVERSUBSCRIBED" } else { "" },
                if ok { "ok" } else { "MISMATCH" }
            );
            arms.push(Arm {
                family: "sharded",
                enrollment,
                threads,
                effective_threads,
                oversubscribed,
                wall_s: wall,
                digest,
                records: outcome.ledger.records().len(),
                speedup_vs_serial: Some(serial_wall / wall.max(1e-9)),
                matches_serial: ok,
            });
        }
    }

    let mut unsharded_last = (0u32, 0.0f64);
    for &enrollment in &UNSHARDED {
        let config = labs_config(enrollment, enrollment);
        let (outcome, wall) = min_of(gate.measure_runs(), || {
            timed(|| {
                gate.inject_sleep();
                simulate_semester(&config, SEED)
            })
        });
        eprintln!("unsharded   n={enrollment:>6}            {wall:>8.3}s");
        unsharded_last = (enrollment, wall);
        arms.push(Arm {
            family: "unsharded",
            enrollment,
            threads: 1,
            effective_threads: 1,
            oversubscribed: false,
            wall_s: wall,
            digest: digest_outcome(&outcome),
            records: outcome.ledger.records().len(),
            speedup_vs_serial: None,
            matches_serial: true,
        });
    }

    // Speedup floor at 100k: linear extrapolation of the unsharded wall
    // from its largest tractable enrollment vs the best sharded arm.
    let (un_n, un_wall) = unsharded_last;
    let unsharded_100k_floor = un_wall * (100_000.0 / f64::from(un_n));
    let speedup_floor = unsharded_100k_floor / sharded_100k_best.max(1e-9);
    eprintln!(
        "speedup floor at 100k: {speedup_floor:.1}x \
         (unsharded linear floor {unsharded_100k_floor:.1}s vs sharded {sharded_100k_best:.3}s)"
    );

    // Rendered speedup summary. Arms whose requested thread count
    // exceeds the host CPUs carry the caveat inline so the ratio is
    // never quoted bare: on a 1-CPU host every multi-thread arm is
    // timesliced, and `speedup_vs_serial` then measures scheduling
    // determinism, not hardware parallelism.
    eprintln!(
        "\nspeedup_vs_serial summary (host_cpus={host_cpus}, online={}):",
        cpus_online.map_or_else(|| "?".to_string(), |n| n.to_string())
    );
    for a in &arms {
        if let Some(s) = a.speedup_vs_serial {
            let caveat = if a.oversubscribed {
                format!(
                    "  [OVERSUBSCRIBED: requested {} > {host_cpus} host CPUs; \
                     measures scheduling determinism, not parallelism]",
                    a.threads
                )
            } else {
                String::new()
            };
            eprintln!(
                "  n={:>6} threads={} (effective {}): {s:.2}x{caveat}",
                a.enrollment, a.threads, a.effective_threads
            );
        }
    }

    if divergent {
        eprintln!("bench_semester: FAILED — a sharded arm diverged from the serial reference");
        std::process::exit(1);
    }

    if gate.check {
        let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_semester.json");
        let base = gate.load_baseline(out);
        let schema = base.get("schema").and_then(Json::as_str).unwrap_or("");
        gate.fatal(
            "schema",
            schema == "bench_semester/v3",
            &format!("baseline schema `{schema}` != bench_semester/v3"),
        );
        // The RSS ceiling was already enforced above (write and check
        // mode alike). Digest/record identity vs the baseline is fatal
        // when the enrollments match; an env-overridden enrollment
        // changes the workload, so only the ceiling applies. The wall
        // gate never applies — the arm runs once, not min-of-K.
        if let Some(b) = base.get("spill") {
            let base_n = b.get("enrollment").and_then(Json::as_u64).unwrap_or(0);
            if base_n == u64::from(spill_arm.enrollment) {
                let base_digest = b.get("digest").and_then(Json::as_str).unwrap_or("");
                let live_digest = format!("{:016x}", spill_arm.digest);
                gate.fatal(
                    "spill digest",
                    base_digest == live_digest,
                    &format!("digest {live_digest} != baseline {base_digest}"),
                );
                let base_records = b.get("records").and_then(Json::as_u64).unwrap_or(0);
                gate.fatal(
                    "spill records",
                    base_records == spill_arm.records,
                    &format!("records {} != baseline {base_records}", spill_arm.records),
                );
            } else {
                eprintln!(
                    "perfgate: spill arm enrollment {} != baseline {base_n} \
                     (BENCH_SPILL_ENROLLMENT override); digest gate skipped, RSS ceiling still held",
                    spill_arm.enrollment
                );
            }
        } else {
            gate.fatal("spill", false, "spill arm missing from baseline");
        }
        let empty = Vec::new();
        let base_arms = base.get("arms").and_then(Json::as_array).unwrap_or(&empty);
        for a in &arms {
            let label = format!("{}/n={}/t={}", a.family, a.enrollment, a.threads);
            let found = base_arms.iter().find(|b| {
                b.get("family").and_then(Json::as_str) == Some(a.family)
                    && b.get("enrollment").and_then(Json::as_u64) == Some(u64::from(a.enrollment))
                    && b.get("threads").and_then(Json::as_u64) == Some(a.threads as u64)
            });
            let Some(b) = found else {
                gate.fatal(&label, false, "arm missing from baseline");
                continue;
            };
            let base_digest = b.get("digest").and_then(Json::as_str).unwrap_or("");
            let live_digest = format!("{:016x}", a.digest);
            gate.fatal(
                &format!("{label} digest"),
                base_digest == live_digest,
                &format!("digest {live_digest} != baseline {base_digest}"),
            );
            let base_records = b.get("records").and_then(Json::as_u64).unwrap_or(0);
            gate.fatal(
                &format!("{label} records"),
                base_records == a.records as u64,
                &format!("records {} != baseline {base_records}", a.records),
            );
            let base_wall = b.get("wall_s").and_then(Json::as_f64).unwrap_or(0.0);
            if a.oversubscribed {
                // A timesliced arm's wall clock measures host scheduling,
                // not this repo's code (see the module docs); its digest
                // and record gates above stay fatal, the wall does not.
                eprintln!(
                    "perfgate: {label} wall_s {:.4}s vs baseline {base_wall:.4}s \
                     (informational: arm is oversubscribed on this host)",
                    a.wall_s
                );
            } else {
                gate.wall(&format!("{label} wall_s"), a.wall_s, base_wall);
            }
        }
        gate.finish("bench_semester");
        return;
    }

    let arm_values: Vec<serde_json::Value> = arms
        .iter()
        .map(|a| {
            serde_json::json!({
                "family": a.family,
                "enrollment": a.enrollment,
                "threads": a.threads,
                "effective_threads": a.effective_threads,
                "oversubscribed": a.oversubscribed,
                "wall_s": a.wall_s,
                "digest": format!("{:016x}", a.digest),
                "records": a.records,
                "speedup_vs_serial": a.speedup_vs_serial,
                "matches_serial": a.matches_serial,
            })
        })
        .collect();
    let notes: Vec<String> = vec![
        "labs-only cohorts at seed 42; sharded/serial arms use 191-student shards".to_string(),
        "unsharded = monolithic driver (shard_students = enrollment); measured only at \
         tractable enrollments — even on the sweep-line calendar a single shared \
         calendar scales super-linearly with the cohort"
            .to_string(),
        format!(
            "speedup_floor_100k extrapolates the unsharded wall LINEARLY from \
             {un_n} students, a deliberate underestimate of the true speedup"
        ),
        "arms with oversubscribed=true requested more threads than host CPUs; their \
         speedup_vs_serial measures scheduling determinism, not hardware parallelism"
            .to_string(),
        "spill = out-of-core streaming pipeline (digest-only, serial, run first so \
         spill.peak_rss_kb is its own VmHWM high water); its observed peak must stay \
         under rss_ceiling_kb, enforced fatally in write and --check mode alike"
            .to_string(),
    ];
    let report = serde_json::json!({
        "schema": "bench_semester/v3",
        "seed": SEED,
        "host_cpus": host_cpus,
        "host_cpus_online": cpus_online,
        "shard_students": SHARD_STUDENTS,
        "peak_rss_kb": peak_rss_kb(),
        "spill": serde_json::json!({
            "enrollment": spill_arm.enrollment,
            "threads": 1,
            "wall_s": spill_arm.wall_s,
            "digest": format!("{:016x}", spill_arm.digest),
            "records": spill_arm.records,
            "shard_runs": spill_arm.shard_runs,
            "spilled_bytes": spill_arm.spilled_bytes,
            "peak_rss_kb": spill_arm.peak_rss_kb,
            "rss_ceiling_kb": SPILL_RSS_CEILING_KB,
        }),
        "arms": arm_values,
        "speedup_floor_100k": speedup_floor,
        "notes": notes,
    });
    // Cargo runs benches with the package as CWD; anchor the report at
    // the workspace root so `scripts/bench.sh` finds it there.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_semester.json");
    std::fs::write(
        out,
        serde_json::to_string_pretty(&report).expect("serialize bench report"),
    )
    .expect("write BENCH_semester.json");
    eprintln!("wrote {out}");

    if speedup_floor < 3.0 {
        eprintln!("bench_semester: FAILED — speedup floor {speedup_floor:.2}x < 3x");
        std::process::exit(1);
    }
}
