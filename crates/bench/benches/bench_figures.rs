//! Figure regeneration benchmarks: Fig. 1/2/3 derivations from a fixed
//! full-course context, plus the headline aggregation.

use criterion::{criterion_group, criterion_main, Criterion};
use opml_experiments::{fig1, fig2, fig3, headline, run_paper_course};

fn bench_figures(c: &mut Criterion) {
    let ctx = run_paper_course(42);
    // Regenerate and print each figure's comparisons once.
    for (name, (_, cmp)) in [
        ("fig1", fig1::run(&ctx)),
        ("fig2", fig2::run(&ctx)),
        ("fig3", fig3::run(&ctx)),
        ("headline", headline::run(&ctx)),
    ] {
        println!(
            "[{name}] {}/{} comparisons within tolerance",
            cmp.rows.iter().filter(|r| r.within_tolerance()).count(),
            cmp.rows.len()
        );
    }
    let mut group = c.benchmark_group("figures");
    group.sample_size(20);
    group.bench_function("fig1", |b| b.iter(|| fig1::run(&ctx).1.rows.len()));
    group.bench_function("fig2", |b| b.iter(|| fig2::run(&ctx).1.rows.len()));
    group.bench_function("fig3", |b| b.iter(|| fig3::run(&ctx).1.rows.len()));
    group.bench_function("headline", |b| b.iter(|| headline::run(&ctx).1.rows.len()));
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
