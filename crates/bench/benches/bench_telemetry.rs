//! Telemetry overhead at the event-queue hot seam.
//!
//! Three variants of the same push/pop churn: no telemetry calls at all
//! (baseline), instrumented with a *disabled* handle (what production
//! runs pay when tracing is off), and instrumented with a `NullSink`
//! (the cost of formatting attrs + sequencing, minus export).
//!
//! Besides the criterion samples, this bench enforces the observability
//! contract from DESIGN.md §8: the disabled-handle variant must stay
//! within 5% of the uninstrumented baseline. On violation it exits
//! nonzero so `scripts/check.sh` fails.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use opml_simkernel::{EventQueue, SimTime};
use opml_telemetry::{NullSink, Telemetry};

/// Events pushed/popped per iteration.
const EVENTS: u64 = 4_096;

/// The uninstrumented hot loop: interleaved pushes and pops, like the
/// semester driver's main loop.
fn churn_baseline() -> u64 {
    let mut queue: EventQueue<u64> = EventQueue::new();
    let mut acc = 0u64;
    for i in 0..EVENTS {
        queue.push(SimTime(i % 97), i);
        if i % 3 == 0 {
            if let Some((t, p)) = queue.pop() {
                acc = acc.wrapping_add(t.0).wrapping_add(p);
            }
        }
    }
    while let Some((t, p)) = queue.pop() {
        acc = acc.wrapping_add(t.0).wrapping_add(p);
    }
    acc
}

/// The same loop with a telemetry instant at every pop, exactly as the
/// semester driver emits `queue.pop`.
fn churn_instrumented(telemetry: &Telemetry) -> u64 {
    let mut queue: EventQueue<u64> = EventQueue::new();
    let mut acc = 0u64;
    let on_pop = |queue_len: usize, t: SimTime, p: u64| {
        telemetry.instant(t, "queue.pop", || {
            vec![("payload", p.into()), ("depth", queue_len.into())]
        });
        t.0.wrapping_add(p)
    };
    for i in 0..EVENTS {
        queue.push(SimTime(i % 97), i);
        if i % 3 == 0 {
            if let Some((t, p)) = queue.pop() {
                acc = acc.wrapping_add(on_pop(queue.len(), t, p));
            }
        }
    }
    while let Some((t, p)) = queue.pop() {
        acc = acc.wrapping_add(on_pop(queue.len(), t, p));
    }
    acc
}

/// Wall-clock nanoseconds for one run of `f`.
///
/// Wall-clock timing is the point of this harness, not simulation
/// state, so the DL001 wall-clock ban is suppressed here explicitly.
fn time_once(f: &mut impl FnMut() -> u64) -> u128 {
    // detlint::allow(DL001): benchmark harness measures wall time by design
    let start = std::time::Instant::now();
    black_box(f());
    // detlint::allow(DL001): benchmark harness measures wall time by design
    start.elapsed().as_nanos()
}

/// Median of per-round `b/a` time ratios over `rounds` paired rounds.
///
/// Each round times both variants back-to-back, so frequency scaling
/// and background load hit the pair alike and cancel in the ratio; the
/// median then discards rounds where a preemption landed inside one of
/// the two runs. This is far more stable across loaded CI hosts than
/// comparing independent minima.
fn median_paired_ratio(
    rounds: usize,
    mut a: impl FnMut() -> u64,
    mut b: impl FnMut() -> u64,
) -> (u128, u128, f64) {
    let (mut best_a, mut best_b) = (u128::MAX, u128::MAX);
    let mut ratios = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let ta = time_once(&mut a);
        let tb = time_once(&mut b);
        best_a = best_a.min(ta);
        best_b = best_b.min(tb);
        ratios.push(tb as f64 / ta.max(1) as f64);
    }
    ratios.sort_by(f64::total_cmp);
    (best_a, best_b, ratios[ratios.len() / 2])
}

fn bench_telemetry(c: &mut Criterion) {
    let disabled = Telemetry::disabled();
    let null = Telemetry::with_sink(NullSink);

    let mut group = c.benchmark_group("telemetry");
    group.sample_size(20);
    group.bench_function("queue_churn/baseline", |b| b.iter(churn_baseline));
    group.bench_function("queue_churn/disabled", |b| {
        b.iter(|| churn_instrumented(&disabled))
    });
    group.bench_function("queue_churn/null_sink", |b| {
        b.iter(|| churn_instrumented(&null))
    });
    group.finish();

    // Overhead gate. Paired rounds; warm-up first so the comparison
    // isn't dominated by first-touch allocation.
    let _ = churn_baseline();
    let _ = churn_instrumented(&disabled);
    let (base, off, ratio) =
        median_paired_ratio(80, churn_baseline, || churn_instrumented(&disabled));
    println!(
        "[telemetry] disabled-handle overhead: baseline min {base} ns, \
         instrumented(disabled) min {off} ns, median paired ratio {ratio:.4}"
    );
    if ratio > 1.05 {
        eprintln!(
            "[telemetry] FAIL: disabled telemetry costs {:.1}% over baseline (gate: 5%)",
            (ratio - 1.0) * 100.0
        );
        std::process::exit(1);
    }
    println!("[telemetry] disabled-overhead gate passed (<5%)");
}

criterion_group!(benches, bench_telemetry);
criterion_main!(benches);
