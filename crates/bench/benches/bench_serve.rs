//! Service-soak bench: one fixed ramp through `opml_serve::run_service`
//! — the admission queue, shedder, breaker, and retry hot paths under a
//! load that outruns the simulated servers — written to
//! `BENCH_serve.json`.
//!
//! The soak is the digested workload itself: the report's counts
//! subtree is byte-identical across reruns and thread counts, so the
//! bench doubles as a drift gate. Normal mode regenerates the baseline
//! and enforces a throughput floor (`OPS_PER_SEC_WALL_FLOOR`); with
//! `--check` (see `scripts/perfgate.sh --full`) the digest, op totals,
//! and stop round are compared fatally against the committed baseline
//! and the wall time is gated by `PERFGATE_TOLERANCE`.
//!
//! This harness measures wall time by design; the service loop itself
//! never reads the clock (`opml-detlint` enforces that), so DL001 is
//! suppressed only here.

use opml_bench::perfgate::{min_of, Gate};
use opml_profiler::Json;
use opml_serve::{run_service, ServeConfig, ServeReport};
use opml_simkernel::parallel;

const SEED: u64 = 42;
/// Simulated ops the harness must push through per wall second, floor.
/// Deliberately conservative (release builds sustain well over 10x
/// this) so the gate only trips on real algorithmic regressions.
const OPS_PER_SEC_WALL_FLOOR: f64 = 20_000.0;

/// The benched soak: a ramp that outruns the simulated fleet so the
/// overload machinery (shed, reject, time-out, retry) all stay hot.
fn config() -> ServeConfig {
    ServeConfig {
        seed: SEED,
        tenants: 8,
        servers: 512,
        queue_bound: 1024,
        // Open BELOW saturation: 512 simulated servers sustain the
        // 8 ops/s opening round, so `max_sustainable_rps` anchors a
        // real sustainable rate instead of the degenerate 0 a
        // saturated opening round produces (the old 64→512 ramp
        // started past saturation and stopped in round 2 with nothing
        // sustainable on record).
        target_rps: 8,
        increment_rps: 8,
        max_rps: 512,
        round_secs: 600,
        // Let the ramp run to the failure-rate gate: with the latency
        // gate this loose, rounds keep coming until half the offered
        // ops go unserved, which keeps every overload path hot.
        allowable_latency_s: 600,
        deadline_s: 300,
        ..ServeConfig::default()
    }
}

/// Wall-time one run in seconds.
fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    // detlint::allow(DL001): benchmark harness measures wall time by design
    let start = std::time::Instant::now();
    let r = f();
    // detlint::allow(DL001): benchmark harness measures wall time by design
    (r, start.elapsed().as_secs_f64())
}

fn soak(gate: &Gate) -> (ServeReport, f64) {
    let cfg = config();
    min_of(gate.measure_runs(), || {
        timed(|| {
            gate.inject_sleep();
            parallel::with_thread_count(1, || run_service(&cfg))
        })
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut gate = Gate::from_env(&args, 3);

    let (report, wall_s) = soak(&gate);
    let total_ops = report.counts.totals.generated;
    let ops_per_sec_wall = total_ops as f64 / wall_s.max(1e-9);
    eprintln!(
        "serve soak: {:>8.4}s  {} ops ({:.0} ops/s wall), stopped round {} ({}), \
         max sustainable {} ops/s, digest {:016x}",
        wall_s,
        total_ops,
        ops_per_sec_wall,
        report.counts.stop_round,
        report.counts.stop_reason,
        report.counts.max_sustainable_rps,
        report.counts_digest,
    );

    if gate.check {
        let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
        let base = gate.load_baseline(out);
        let schema = base.get("schema").and_then(Json::as_str).unwrap_or("");
        gate.fatal(
            "schema",
            schema == "bench_serve/v1",
            &format!("baseline schema `{schema}` != bench_serve/v1"),
        );
        let digest = format!("{:016x}", report.counts_digest);
        let base_digest = base
            .get("counts_digest")
            .and_then(Json::as_str)
            .unwrap_or("");
        gate.fatal(
            "counts_digest",
            digest == base_digest,
            &format!("digest {digest} != baseline {base_digest}"),
        );
        let base_ops = base.get("total_ops").and_then(Json::as_u64).unwrap_or(0);
        gate.fatal(
            "total_ops",
            total_ops == base_ops,
            &format!("total ops {total_ops} != baseline {base_ops}"),
        );
        let base_stop = base
            .get("stop_round")
            .and_then(Json::as_u64)
            .unwrap_or(u64::MAX);
        gate.fatal(
            "stop_round",
            u64::from(report.counts.stop_round) == base_stop,
            &format!(
                "stop round {} != baseline {base_stop}",
                report.counts.stop_round
            ),
        );
        let base_rate = base
            .get("max_sustainable_rps")
            .and_then(Json::as_u64)
            .unwrap_or(u64::MAX);
        gate.fatal(
            "max_sustainable_rps",
            report.counts.max_sustainable_rps == base_rate,
            &format!(
                "max sustainable {} != baseline {base_rate}",
                report.counts.max_sustainable_rps
            ),
        );
        gate.fatal(
            "sustainable_round_exists",
            report.counts.max_sustainable_rps > 0,
            "ramp opened at or past saturation; no sustainable round on record",
        );
        gate.fatal(
            "ops_per_sec_wall_floor",
            ops_per_sec_wall >= OPS_PER_SEC_WALL_FLOOR,
            &format!("{ops_per_sec_wall:.0} ops/s wall below floor {OPS_PER_SEC_WALL_FLOOR}"),
        );
        let base_wall = base.get("wall_s").and_then(Json::as_f64).unwrap_or(0.0);
        gate.wall("serve_wall_s", wall_s, base_wall);
        gate.finish("bench_serve");
        return;
    }

    let report_json = serde_json::json!({
        "schema": "bench_serve/v1",
        "seed": SEED,
        "total_ops": total_ops,
        "counts_digest": format!("{:016x}", report.counts_digest),
        "stop_round": report.counts.stop_round,
        "stop_reason": report.counts.stop_reason,
        "max_sustainable_rps": report.counts.max_sustainable_rps,
        "wall_s": wall_s,
        "ops_per_sec_wall": ops_per_sec_wall,
        "ops_per_sec_wall_floor": OPS_PER_SEC_WALL_FLOOR,
        "notes": [
            "ramp 8→512 (+8) ops/s against 512 simulated servers: the ramp opens \
             below saturation (so max_sustainable_rps is a real rate, not 0) and \
             runs deep past it, keeping the shed, reject, time-out, and retry \
             paths hot until the failure-rate gate trips",
            "counts digest is thread-invariant and rerun-stable; --check compares \
             it fatally, so this baseline is also a determinism anchor",
        ],
    });
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(
        out,
        serde_json::to_string_pretty(&report_json).expect("serialize bench report"),
    )
    .expect("write BENCH_serve.json");
    eprintln!("wrote {out}");

    if ops_per_sec_wall < OPS_PER_SEC_WALL_FLOOR {
        eprintln!(
            "bench_serve: FAILED — {ops_per_sec_wall:.0} ops/s wall < {OPS_PER_SEC_WALL_FLOOR}"
        );
        std::process::exit(1);
    }
    if report.counts.max_sustainable_rps == 0 {
        eprintln!(
            "bench_serve: FAILED — no sustainable round; the ramp must open below saturation"
        );
        std::process::exit(1);
    }
}
