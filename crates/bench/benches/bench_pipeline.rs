//! DAG workflow-engine overhead (Unit 3 substrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use opml_mlops::pipeline::{Context, Workflow};

fn diamond_workflow(width: usize) -> Workflow {
    let mut wf = Workflow::new();
    wf.add_task("source", &[], 0, |_| Ok(())).expect("fresh");
    let names: Vec<String> = (0..width).map(|i| format!("fan{i}")).collect();
    for n in &names {
        wf.add_task(n, &["source"], 0, |_| Ok(())).expect("fresh");
    }
    let deps: Vec<&str> = names.iter().map(String::as_str).collect();
    wf.add_task("sink", &deps, 0, |_| Ok(())).expect("fresh");
    wf
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);
    for width in [4usize, 16, 64] {
        let wf = diamond_workflow(width);
        group.bench_with_input(BenchmarkId::new("diamond", width), &wf, |b, wf| {
            b.iter(|| {
                let result = wf.run(&Context::new());
                assert!(result.succeeded());
                result.waves
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
